//! `dna` — the command-line front-end of the reproduction.
//!
//! Subcommands:
//!
//! * `dna dump`   — generate a topo-gen topology (and optionally a change
//!   trace) and serialize it to disk as `dna-io` artifacts;
//! * `dna check`  — parse and validate a snapshot file;
//! * `dna diff`   — replay a change trace through an analyzer, printing
//!   per-epoch behavior diffs and stage timings (text or json-lines);
//! * `dna replay --verify` — replay through *both* analyzers and assert
//!   their canonical reports are byte-identical (the offline form of the
//!   E8 equivalence experiment);
//! * `dna serve`  — long-running service: keep live engines resident,
//!   ingest artifacts from stdin (and answer unix-socket clients),
//!   respond to queries against the evolving state;
//! * `dna query`  — compose a protocol query (stdout) or send it to a
//!   serving socket and print the response.
//!
//! Exit codes: 0 success, 1 usage/parse/analysis errors, 2 verification
//! or validation failures (or an `error` response to `dna query`).

use dna_core::{classify, render, summarize, BehaviorDiff, ReplayMode, ReplaySession};
use dna_io::{
    parse_snapshot, parse_trace, write_query, write_report, write_snapshot, write_trace, EpochDiff,
    Query, QueryKind, Report, Response, Trace,
};
use dna_serve::{serve_stream, SessionConfig, SessionManager};
use net_model::{Flow, Snapshot};
use std::fmt::Write as _;
use std::process::ExitCode;
use topo_gen::{fat_tree, wan, Routing, ScenarioGen, ScenarioKind, WanShape, ALL_SCENARIOS};

const USAGE: &str = "\
dna — differential network analysis over dna-io artifacts

USAGE:
  dna dump  --topo fat-tree|wan --out <snap-file> [topology options]
            [--trace <trace-file> --epochs <n> [--scenarios <list|all>]]
  dna check <snap-file>
  dna diff  <snap-file> <trace-file> [--engine differential|scratch]
            [--format text|json-lines] [--limit <n>] [--out <report-file>]
            [--shards <n>]
  dna replay <snap-file> <trace-file> --verify [--quiet] [--shards <n>]
  dna serve [name=]<snap-file>... [--retain <n>] [--retain-bytes <n>]
            [--verify] [--quiet] [--shards <n>] [--socket <path>]
            [--follow [name=]<trace-file>]... [--threads per-session|single]
  dna query [--session <name>] [--socket <path>] <command>

TOPOLOGY OPTIONS (dump):
  --topo fat-tree   --k <even 4..32>      --routing ebgp|ospf
  --topo wan        --n <2..512>          --shape ring|line|mesh
                    --extra <chords>      --max-cost <cost>
  --seed <u64>      seed for topology (wan) and scenario generation

TRACE OPTIONS (dump):
  --trace <file>    also record a change trace against the snapshot
  --epochs <n>      number of change epochs to record (default 10)
  --scenarios <l>   comma-separated scenario kinds, or 'all' (default)

SERVE: each positional opens one named session (default name: the file
stem), the first becoming the default target. The server then reads a
stream of dna-io artifacts from stdin — snapshots (re)load the default
session, traces ingest incrementally, queries are answered — emitting
one response artifact each to stdout, until end of input. With
--socket, clients connect concurrently and the server keeps running
after stdin ends. --follow tails a growing trace file (repeatable;
name= targets a session, default the default session), ingesting each
epoch as it completes and finishing when the trace's end sentinel is
written. With --socket or --follow, sessions get one engine thread
each (parallel bring-up, concurrent multi-session ingest); --threads
single falls back to one shared engine thread. --shards fans engine
bring-up out over N workers (identical results, see README). --retain
bounds the per-session epoch history (default 64) and --retain-bytes
adds a byte budget on its canonical serialized size; --verify attaches
a from-scratch shadow that cross-checks every ingested epoch.

QUERY COMMANDS:
  reach <src-device> <src-ip> <dst-ip> <proto> <sport> <dport>
  reach-pair <src-device> <dst-device>
  blast <n-epochs>
  report <from> <to>
  stats
  sessions
Without --socket the query artifact is printed to stdout (compose mode,
for piping into `dna serve`); with --socket it is sent to a server and
the response is printed instead.

EXAMPLES:
  dna dump --topo fat-tree --k 6 --routing ebgp --out ft6.snap.dna \\
           --trace ft6.trace.dna --epochs 12 --scenarios link-failure,link-recovery
  dna check ft6.snap.dna
  dna diff ft6.snap.dna ft6.trace.dna --format json-lines
  dna replay ft6.snap.dna ft6.trace.dna --verify
  { cat ft6.trace.dna; dna query blast 8; } | dna serve ft6.snap.dna
  dna serve ft6.snap.dna --socket /tmp/dna.sock < /dev/null &
  dna query --socket /tmp/dna.sock reach-pair edge0_0 edge1_1
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("dna: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        print!("{USAGE}");
        return Ok(ExitCode::FAILURE);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "dump" => cmd_dump(rest),
        "check" => cmd_check(rest),
        "diff" => cmd_diff(rest),
        "replay" => cmd_replay(rest),
        "serve" => cmd_serve(rest),
        "query" => cmd_query(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?} (try `dna help`)")),
    }
}

/// Minimal flag cursor: positional arguments plus `--flag value` pairs.
struct Args<'a> {
    rest: &'a [String],
    positionals: Vec<&'a str>,
    flags: Vec<(&'a str, usize)>, // (name, index of value or usize::MAX)
}

impl<'a> Args<'a> {
    fn parse(
        rest: &'a [String],
        value_flags: &[&str],
        bool_flags: &[&str],
    ) -> Result<Self, String> {
        let mut positionals = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < rest.len() {
            let a = rest[i].as_str();
            if let Some(name) = a.strip_prefix("--") {
                if bool_flags.contains(&name) {
                    flags.push((name, usize::MAX));
                } else if value_flags.contains(&name) {
                    i += 1;
                    if i >= rest.len() {
                        return Err(format!("--{name} needs a value"));
                    }
                    flags.push((name, i));
                } else {
                    return Err(format!("unknown flag --{name}"));
                }
            } else {
                positionals.push(a);
            }
            i += 1;
        }
        Ok(Args {
            rest,
            positionals,
            flags,
        })
    }

    fn flag(&self, name: &str) -> Option<&'a str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, idx)| {
                if *idx == usize::MAX {
                    ""
                } else {
                    self.rest[*idx].as_str()
                }
            })
    }

    /// Every value of a repeatable flag, in order of appearance.
    fn flag_values(&self, name: &str) -> Vec<&'a str> {
        self.flags
            .iter()
            .filter(|(n, idx)| *n == name && *idx != usize::MAX)
            .map(|(_, idx)| self.rest[*idx].as_str())
            .collect()
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| *n == name)
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{name} value {v:?}")),
        }
    }
}

/// Prints a line to stdout, reporting whether the write succeeded.
/// Downstream consumers closing the pipe early (`dna diff … | head`) is
/// normal operation, not a panic.
fn println_pipe(s: &str) -> bool {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    writeln!(out, "{s}").is_ok()
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn write_file(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))
}

fn load_snapshot(path: &str) -> Result<Snapshot, String> {
    parse_snapshot(&read_file(path)?).map_err(|e| format!("{path}: {e}"))
}

fn load_trace(path: &str) -> Result<Trace, String> {
    parse_trace(&read_file(path)?).map_err(|e| format!("{path}: {e}"))
}

// ---- dump -------------------------------------------------------------

fn cmd_dump(rest: &[String]) -> Result<ExitCode, String> {
    let args = Args::parse(
        rest,
        &[
            "topo",
            "k",
            "routing",
            "n",
            "shape",
            "extra",
            "max-cost",
            "seed",
            "out",
            "trace",
            "epochs",
            "scenarios",
        ],
        &[],
    )?;
    let seed: u64 = args.parsed("seed", 0)?;
    let topo = args.flag("topo").ok_or("dump needs --topo fat-tree|wan")?;
    // Reject flags belonging to the other topology rather than silently
    // ignoring them — a crossed flag means the user asked for something
    // this artifact will not contain.
    let foreign: &[&str] = match topo {
        "fat-tree" => &["n", "shape", "extra", "max-cost"],
        "wan" => &["k", "routing"],
        _ => &[],
    };
    for f in foreign {
        if args.has(f) {
            return Err(format!("--{f} does not apply to --topo {topo}"));
        }
    }
    let snapshot = match topo {
        "fat-tree" => {
            let k: u32 = args.parsed("k", 4)?;
            if !(4..=32).contains(&k) || !k.is_multiple_of(2) {
                return Err(format!("--k must be even in [4, 32], got {k}"));
            }
            let routing = match args.flag("routing").unwrap_or("ebgp") {
                "ebgp" => Routing::Ebgp,
                "ospf" => Routing::Ospf,
                other => return Err(format!("--routing must be ebgp|ospf, got {other:?}")),
            };
            fat_tree(k, routing).snapshot
        }
        "wan" => {
            let n: usize = args.parsed("n", 10)?;
            if !(2..=512).contains(&n) {
                return Err(format!("--n must be in [2, 512], got {n}"));
            }
            let extra: usize = args.parsed("extra", n / 2)?;
            let shape = match args.flag("shape").unwrap_or("mesh") {
                "ring" => WanShape::Ring,
                "line" => WanShape::Line,
                "mesh" => WanShape::Mesh { extra },
                other => return Err(format!("--shape must be ring|line|mesh, got {other:?}")),
            };
            let max_cost: u32 = args.parsed("max-cost", 8)?;
            wan(n, shape, max_cost, seed).snapshot
        }
        other => return Err(format!("--topo must be fat-tree|wan, got {other:?}")),
    };
    let out = args.flag("out").ok_or("dump needs --out <snap-file>")?;
    write_file(out, &write_snapshot(&snapshot))?;
    println_pipe(&format!(
        "wrote {out}: {} devices, {} links",
        snapshot.device_count(),
        snapshot.links.len()
    ));
    if let Some(trace_path) = args.flag("trace") {
        let epochs: usize = args.parsed("epochs", 10)?;
        let kinds = parse_scenarios(args.flag("scenarios").unwrap_or("all"))?;
        let mut gen = ScenarioGen::new(seed);
        let labeled = gen.labeled_sequence(&snapshot, &kinds, epochs);
        if labeled.len() < epochs {
            eprintln!(
                "note: only {} of {epochs} requested epochs had opportunities",
                labeled.len()
            );
        }
        let trace =
            Trace::from_labeled(labeled.into_iter().map(|(kind, cs)| (kind.to_string(), cs)));
        write_file(trace_path, &write_trace(&trace))?;
        println_pipe(&format!(
            "wrote {trace_path}: {} epochs, {} primitive changes",
            trace.epochs.len(),
            trace.change_count()
        ));
    }
    Ok(ExitCode::SUCCESS)
}

fn parse_scenarios(spec: &str) -> Result<Vec<ScenarioKind>, String> {
    if spec == "all" {
        return Ok(ALL_SCENARIOS.to_vec());
    }
    spec.split(',')
        .map(|s| s.trim().parse::<ScenarioKind>())
        .collect()
}

// ---- check ------------------------------------------------------------

fn cmd_check(rest: &[String]) -> Result<ExitCode, String> {
    let args = Args::parse(rest, &[], &[])?;
    let [path] = args.positionals.as_slice() else {
        return Err("check needs exactly one <snap-file>".into());
    };
    let snapshot = load_snapshot(path)?;
    let problems = snapshot.validate();
    if problems.is_empty() {
        println_pipe(&format!(
            "{path}: ok ({} devices, {} links, {} down, {} external routes)",
            snapshot.device_count(),
            snapshot.links.len(),
            snapshot.environment.down_links.len() + snapshot.environment.down_devices.len(),
            snapshot.environment.external_routes.len()
        ));
        Ok(ExitCode::SUCCESS)
    } else {
        for p in &problems {
            eprintln!("{path}: {p}");
        }
        eprintln!("{path}: {} validation error(s)", problems.len());
        Ok(ExitCode::from(2))
    }
}

// ---- diff -------------------------------------------------------------

fn cmd_diff(rest: &[String]) -> Result<ExitCode, String> {
    let args = Args::parse(rest, &["engine", "format", "limit", "out", "shards"], &[])?;
    let [snap_path, trace_path] = args.positionals.as_slice() else {
        return Err("diff needs <snap-file> <trace-file>".into());
    };
    let snapshot = load_snapshot(snap_path)?;
    let trace = load_trace(trace_path)?;
    let mode = match args.flag("engine").unwrap_or("differential") {
        "differential" => ReplayMode::Differential,
        "scratch" => ReplayMode::Scratch,
        other => {
            return Err(format!(
                "--engine must be differential|scratch, got {other:?}"
            ))
        }
    };
    let json = match args.flag("format").unwrap_or("text") {
        "text" => false,
        "json-lines" => true,
        other => return Err(format!("--format must be text|json-lines, got {other:?}")),
    };
    let limit: usize = args.parsed("limit", 10)?;
    let shards: usize = args.parsed("shards", 1)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let mut session = ReplaySession::with_shards(snapshot, mode, shards)
        .map_err(|e| format!("initial analysis: {e}"))?;
    let mut report = Report::default();
    let mut stdout_open = true;
    for (i, ep) in trace.epochs.iter().enumerate() {
        let out = session
            .step(&ep.changes)
            .map_err(|e| format!("epoch {i}: {e}"))?;
        let diff = out.primary();
        let text = if json {
            epoch_json(i, ep.label.as_deref(), &ep.changes, diff)
        } else {
            let label = ep.label.as_deref().unwrap_or("unlabeled");
            format!(
                "== epoch {i} [{label}] ({} change{}) ==\n{}",
                ep.changes.len(),
                if ep.changes.len() == 1 { "" } else { "s" },
                render(diff, limit).trim_end_matches('\n')
            )
        };
        if stdout_open && !println_pipe(&text) {
            // Keep replaying so --out still gets the full report; just
            // stop talking to the closed pipe.
            stdout_open = false;
            if args.flag("out").is_none() {
                return Ok(ExitCode::SUCCESS);
            }
        }
        report
            .epochs
            .push(EpochDiff::from_behavior(ep.label.clone(), diff));
    }
    if let Some(out_path) = args.flag("out") {
        write_file(out_path, &write_report(&report))?;
        if stdout_open && !json {
            println_pipe(&format!(
                "wrote {out_path}: {} epoch(s)",
                report.epochs.len()
            ));
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// One epoch as a single JSON object on one line. Hand-rolled emission
/// (the workspace has no JSON dependency); strings go through
/// [`json_str`] so arbitrary device names stay well-formed.
fn epoch_json(
    index: usize,
    label: Option<&str>,
    changes: &net_model::ChangeSet,
    diff: &BehaviorDiff,
) -> String {
    let s = summarize(diff);
    let mut out = String::new();
    let _ = write!(out, "{{\"epoch\":{index}");
    if let Some(l) = label {
        let _ = write!(out, ",\"label\":{}", json_str(l));
    }
    let _ = write!(
        out,
        ",\"changes\":{},\"rib_installed\":{},\"rib_withdrawn\":{},\"fib_added\":{},\"fib_removed\":{},\"flow_classes\":{}",
        changes.len(),
        s.routes.0,
        s.routes.1,
        s.fib.0,
        s.fib.1,
        diff.flows.len()
    );
    let _ = write!(out, ",\"kinds\":{{");
    for (i, (kind, n)) in s.counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{n}", json_str(&kind.to_string()));
    }
    out.push('}');
    let _ = write!(out, ",\"flows\":[");
    for (i, f) in dna_core::sorted_flows(diff).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"src\":{},\"kind\":{},\"headers\":[",
            json_str(&f.src),
            json_str(&classify(f).to_string())
        );
        for (j, h) in f.headers.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&json_str(h));
        }
        let _ = write!(
            out,
            "],\"example\":{{\"src\":\"{}\",\"dst\":\"{}\",\"proto\":{},\"sport\":{},\"dport\":{}}}",
            f.example.src, f.example.dst, f.example.proto, f.example.src_port, f.example.dst_port
        );
        for (name, set) in [("before", &f.before), ("after", &f.after)] {
            let _ = write!(out, ",\"{name}\":[");
            for (j, o) in set.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(&o.to_string()));
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push(']');
    let _ = write!(
        out,
        ",\"cp_ms\":{:.3},\"dp_ms\":{:.3},\"total_ms\":{:.3},\"engine_tuples\":{},\"dirty_classes\":{}}}",
        diff.stats.cp_time.as_secs_f64() * 1e3,
        diff.stats.dp_time.as_secs_f64() * 1e3,
        diff.stats.total_time.as_secs_f64() * 1e3,
        diff.stats.cp_tuples,
        diff.stats.dirty_classes
    );
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---- serve ------------------------------------------------------------

/// Splits a `[name=]path` session argument; an unnamed session is named
/// after its file stem (`corpus/ft6.snap.dna` → `ft6`). A prefix
/// containing a path separator is part of the path, not a name —
/// `/data/run=5/ft4.snap.dna` is one path.
fn split_session_arg(arg: &str) -> (String, &str) {
    if let Some((name, path)) = arg.split_once('=') {
        if !name.is_empty() && !name.contains(['/', '\\']) {
            return (name.to_string(), path);
        }
    }
    let base = arg.rsplit(['/', '\\']).next().unwrap_or(arg);
    let stem = base.split('.').next().unwrap_or(base);
    (if stem.is_empty() { "main" } else { stem }.to_string(), arg)
}

/// Splits a `[name=]path` `--follow` argument. Unlike session
/// positionals, an unnamed follow targets the server's *default*
/// session, not a session named after the file stem.
fn split_follow_arg(arg: &str) -> (Option<String>, &str) {
    if let Some((name, path)) = arg.split_once('=') {
        if !name.is_empty() && !name.contains(['/', '\\']) {
            return (Some(name.to_string()), path);
        }
    }
    (None, arg)
}

fn cmd_serve(rest: &[String]) -> Result<ExitCode, String> {
    let args = Args::parse(
        rest,
        &[
            "retain",
            "retain-bytes",
            "socket",
            "shards",
            "threads",
            "follow",
        ],
        &["verify", "quiet"],
    )?;
    if args.positionals.is_empty() {
        return Err("serve needs at least one [name=]<snap-file>".into());
    }
    let retain: usize = args.parsed("retain", 64)?;
    if retain == 0 {
        return Err("--retain must be at least 1".into());
    }
    let retain_bytes: Option<usize> = match args.flag("retain-bytes") {
        None => None,
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| format!("bad --retain-bytes value {v:?}"))?;
            if n == 0 {
                return Err("--retain-bytes must be at least 1".into());
            }
            Some(n)
        }
    };
    let shards: usize = args.parsed("shards", 1)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let per_session = match args.flag("threads").unwrap_or("per-session") {
        "per-session" => true,
        "single" => false,
        other => {
            return Err(format!(
                "--threads must be per-session|single, got {other:?}"
            ))
        }
    };
    let quiet = args.has("quiet");
    let config = SessionConfig {
        retain,
        retain_bytes,
        verify: args.has("verify"),
        shards,
    };
    // Parse every startup artifact up front so a bad file fails fast,
    // before any engine spends seconds on bring-up.
    let mut preload: Vec<(String, Snapshot)> = Vec::new();
    for pos in &args.positionals {
        let (name, path) = split_session_arg(pos);
        // Opening an existing name silently replaces its engine — fine
        // for a stream reload, but two startup positionals colliding
        // (same file stem) would drop a snapshot the operator asked for.
        if preload.iter().any(|(n, _)| *n == name) {
            return Err(format!(
                "duplicate session name {name:?} (from {path}); disambiguate with name=path"
            ));
        }
        preload.push((name, load_snapshot(path)?));
    }
    let follows: Vec<(Option<String>, String)> = args
        .flag_values("follow")
        .into_iter()
        .map(|arg| {
            let (session, path) = split_follow_arg(arg);
            if !std::path::Path::new(path).exists() {
                return Err(format!("--follow {path}: file does not exist yet"));
            }
            // Session names are fully known at startup; a typo'd name
            // would otherwise ship every epoch into "unknown session"
            // errors while the follow itself reports success.
            if let Some(name) = &session {
                if !preload.iter().any(|(n, _)| n == name) {
                    return Err(format!(
                        "--follow {arg}: no session named {name:?} (sessions: {})",
                        preload
                            .iter()
                            .map(|(n, _)| format!("{n:?}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
            }
            Ok((session, path.to_string()))
        })
        .collect::<Result<_, String>>()?;
    let socket = args.flag("socket");
    if socket.is_none() && follows.is_empty() {
        // Pure pipe mode: one client, one engine thread, no channels —
        // the deterministic path the pinned service smoke drives.
        let mut mgr = open_preloaded(config, preload, quiet)?;
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let summary = serve_stream(&mut mgr, None, &mut stdin.lock(), &mut stdout.lock())
            .map_err(|e| format!("serve loop: {e}"))?;
        print_summary(quiet, &summary);
        return Ok(ExitCode::SUCCESS);
    }
    serve_channels(config, preload, follows, socket, per_session, quiet)
}

/// Opens every startup session into a single-threaded manager,
/// announcing each load (shared by pipe mode and `--threads single`).
fn open_preloaded(
    config: SessionConfig,
    preload: Vec<(String, Snapshot)>,
    quiet: bool,
) -> Result<SessionManager, String> {
    let mut mgr = SessionManager::new(config);
    for (name, snapshot) in preload {
        let devices = snapshot.device_count();
        mgr.open(&name, snapshot)?;
        if !quiet {
            eprintln!("dna serve: session {name:?} loaded ({devices} devices)");
        }
    }
    Ok(mgr)
}

fn print_summary(quiet: bool, summary: &dna_serve::ServeSummary) {
    if !quiet {
        eprintln!(
            "dna serve: {} artifact(s): {} epoch(s) ingested, {} query(ies) answered, {} error(s)",
            summary.artifacts, summary.epochs, summary.queries, summary.errors
        );
    }
}

/// Channel mode (socket and/or follow pumps): pumps feed raw artifact
/// text to the engine side over channels. With `--threads per-session`
/// (the default) the engine side is a [`dna_serve::Router`] — one
/// engine thread per session, so sessions load and ingest
/// concurrently; with `--threads single` it is the PR-3 broker, every
/// session on this thread. Runs until every pump is done (forever, in
/// socket mode).
#[cfg(unix)]
fn serve_channels(
    config: SessionConfig,
    preload: Vec<(String, Snapshot)>,
    follows: Vec<(Option<String>, String)>,
    socket: Option<&str>,
    per_session: bool,
    quiet: bool,
) -> Result<ExitCode, String> {
    use std::sync::mpsc;
    // Engine bring-up happens BEFORE the socket exists or any pump
    // starts: a bad snapshot must fail the process while it is still
    // invisible to clients, not after they can connect.
    enum Engine {
        Router(dna_serve::Router),
        Broker(SessionManager),
    }
    let engine = if per_session {
        let mut router = dna_serve::Router::new(config);
        let loaded: Vec<(String, usize)> = preload
            .iter()
            .map(|(n, s)| (n.clone(), s.device_count()))
            .collect();
        router.preload(preload)?;
        if !quiet {
            for (name, devices) in loaded {
                eprintln!("dna serve: session {name:?} loaded ({devices} devices)");
            }
        }
        Engine::Router(router)
    } else {
        Engine::Broker(open_preloaded(config, preload, quiet)?)
    };
    let listener = match socket {
        None => None,
        Some(path) => {
            let sock = std::path::Path::new(path);
            if sock.exists() {
                // Only reclaim the path from a DEAD server: a connectable
                // socket means another instance is live, and deleting its
                // socket would silently divert that server's clients here.
                if std::os::unix::net::UnixStream::connect(sock).is_ok() {
                    return Err(format!("{path} is already served by a running instance"));
                }
                std::fs::remove_file(sock)
                    .map_err(|e| format!("cannot replace stale socket {path}: {e}"))?;
            }
            Some(
                std::os::unix::net::UnixListener::bind(sock)
                    .map_err(|e| format!("cannot bind {path}: {e}"))?,
            )
        }
    };
    let (tx, rx) = mpsc::channel();
    let stdin_tx = tx.clone();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let _ = dna_serve::pump_stream(&stdin_tx, &mut stdin.lock(), &mut stdout.lock());
        // Dropping stdin's sender leaves the other pumps' alive: the
        // server keeps serving them after stdin ends.
    });
    for (session, path) in follows {
        let follow_tx = tx.clone();
        std::thread::spawn(move || {
            let target = std::path::PathBuf::from(&path);
            match dna_serve::follow_trace(
                &follow_tx,
                session.as_deref(),
                &target,
                std::time::Duration::from_millis(50),
            ) {
                Ok(epochs) => {
                    if !quiet {
                        eprintln!(
                            "dna serve: follow {path}: trace ended ({epochs} epoch(s) shipped)"
                        );
                    }
                }
                // Failures always reach stderr, --quiet or not.
                Err(e) => eprintln!("dna serve: follow {path}: {e}"),
            }
        });
    }
    if let Some(listener) = listener {
        let accept_tx = tx.clone();
        std::thread::spawn(move || {
            let _ = dna_serve::accept_loop(accept_tx, listener);
        });
        if !quiet {
            eprintln!("dna serve: listening on {}", socket.unwrap_or_default());
        }
    }
    drop(tx);
    let summary = match engine {
        Engine::Router(router) => router.run(rx),
        Engine::Broker(mut mgr) => dna_serve::run_broker(&mut mgr, rx),
    };
    print_summary(quiet, &summary);
    Ok(ExitCode::SUCCESS)
}

#[cfg(not(unix))]
fn serve_channels(
    _config: SessionConfig,
    _preload: Vec<(String, Snapshot)>,
    _follows: Vec<(Option<String>, String)>,
    _socket: Option<&str>,
    _per_session: bool,
    _quiet: bool,
) -> Result<ExitCode, String> {
    Err("--socket/--follow require a unix platform".into())
}

// ---- query ------------------------------------------------------------

fn cmd_query(rest: &[String]) -> Result<ExitCode, String> {
    let args = Args::parse(rest, &["session", "socket"], &[])?;
    let kind = match args.positionals.as_slice() {
        ["reach", src, sip, dip, proto, sport, dport] => QueryKind::Reach {
            src: src.to_string(),
            flow: Flow {
                src: sip
                    .parse()
                    .map_err(|_| format!("bad source address {sip:?}"))?,
                dst: dip
                    .parse()
                    .map_err(|_| format!("bad destination address {dip:?}"))?,
                proto: proto
                    .parse()
                    .map_err(|_| format!("bad protocol {proto:?}"))?,
                src_port: sport
                    .parse()
                    .map_err(|_| format!("bad source port {sport:?}"))?,
                dst_port: dport
                    .parse()
                    .map_err(|_| format!("bad destination port {dport:?}"))?,
            },
        },
        ["reach-pair", src, dst] => QueryKind::ReachPair {
            src: src.to_string(),
            dst: dst.to_string(),
        },
        ["blast", last] => QueryKind::Blast {
            last: last.parse().map_err(|_| format!("bad window {last:?}"))?,
        },
        ["report", from, to] => QueryKind::Report {
            from: from
                .parse()
                .map_err(|_| format!("bad range start {from:?}"))?,
            to: to.parse().map_err(|_| format!("bad range end {to:?}"))?,
        },
        ["stats"] => QueryKind::Stats,
        ["sessions"] => QueryKind::Sessions,
        [] => return Err("query needs a command (see `dna help`)".into()),
        other => return Err(format!("bad query command {:?}", other.join(" "))),
    };
    let query = Query {
        session: args.flag("session").map(str::to_string),
        kind,
    };
    let text = write_query(&query);
    match args.flag("socket") {
        None => {
            print!("{text}");
            Ok(ExitCode::SUCCESS)
        }
        Some(path) => query_over_socket(path, &text),
    }
}

#[cfg(unix)]
fn query_over_socket(path: &str, text: &str) -> Result<ExitCode, String> {
    let response = dna_serve::query_socket(std::path::Path::new(path), text)
        .map_err(|e| format!("cannot query {path}: {e}"))?;
    print!("{response}");
    match dna_io::parse_response(&response) {
        Ok(Response::Error(_)) => Ok(ExitCode::from(2)),
        Ok(_) => Ok(ExitCode::SUCCESS),
        Err(e) => Err(format!("malformed response from {path}: {e}")),
    }
}

#[cfg(not(unix))]
fn query_over_socket(_path: &str, _text: &str) -> Result<ExitCode, String> {
    Err("--socket requires a unix platform".into())
}

// ---- replay --verify --------------------------------------------------

fn cmd_replay(rest: &[String]) -> Result<ExitCode, String> {
    let args = Args::parse(rest, &["shards"], &["verify", "quiet"])?;
    let [snap_path, trace_path] = args.positionals.as_slice() else {
        return Err("replay needs <snap-file> <trace-file>".into());
    };
    if !args.has("verify") {
        return Err("replay currently requires --verify (for plain replay, use `dna diff`)".into());
    }
    let quiet = args.has("quiet");
    let shards: usize = args.parsed("shards", 1)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let snapshot = load_snapshot(snap_path)?;
    let trace = load_trace(trace_path)?;
    let mut session = ReplaySession::with_shards(snapshot, ReplayMode::Both, shards)
        .map_err(|e| format!("initial analysis: {e}"))?;
    let mut mismatches = 0usize;
    for (i, ep) in trace.epochs.iter().enumerate() {
        let out = session
            .step(&ep.changes)
            .map_err(|e| format!("epoch {i}: {e}"))?;
        let diff = out.differential.as_ref().expect("both mode");
        let scratch = out.scratch.as_ref().expect("both mode");
        // Byte-level comparison of the canonical serialized reports: the
        // strongest form of agreement, and exactly what golden tests pin.
        let a = write_report(&Report {
            epochs: vec![EpochDiff::from_behavior(ep.label.clone(), diff)],
        });
        let b = write_report(&Report {
            epochs: vec![EpochDiff::from_behavior(ep.label.clone(), scratch)],
        });
        let label = ep.label.as_deref().unwrap_or("unlabeled");
        if a == b {
            if !quiet {
                println_pipe(&format!(
                    "epoch {i} [{label}]: OK ({} flow diffs, {} rib, {} fib; cp {:.2?} dp {:.2?})",
                    diff.flows.len(),
                    diff.rib.len(),
                    diff.fib.len(),
                    diff.stats.cp_time,
                    diff.stats.dp_time
                ));
            }
        } else {
            mismatches += 1;
            eprintln!("epoch {i} [{label}]: MISMATCH");
            for (la, lb) in a.lines().zip(b.lines()) {
                if la != lb {
                    eprintln!("  differential: {la}");
                    eprintln!("  from-scratch: {lb}");
                    break;
                }
            }
            let (n_a, n_b) = (a.lines().count(), b.lines().count());
            if n_a != n_b {
                eprintln!("  report lengths differ: {n_a} vs {n_b} lines");
            }
        }
    }
    if mismatches == 0 {
        println_pipe(&format!(
            "replayed {} epoch(s): analyzers byte-identical",
            trace.epochs.len()
        ));
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "replayed {} epoch(s): {mismatches} mismatch(es)",
            trace.epochs.len()
        );
        Ok(ExitCode::from(2))
    }
}
