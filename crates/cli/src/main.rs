//! `dna` — the command-line front-end of the reproduction.
//!
//! Subcommands:
//!
//! * `dna dump`   — generate a topo-gen topology (and optionally a change
//!   trace) and serialize it to disk as `dna-io` artifacts;
//! * `dna check`  — parse and validate a snapshot file;
//! * `dna diff`   — replay a change trace through an analyzer, printing
//!   per-epoch behavior diffs and stage timings (text or json-lines);
//! * `dna replay --verify` — replay through *both* analyzers and assert
//!   their canonical reports are byte-identical (the offline form of the
//!   E8 equivalence experiment);
//! * `dna serve`  — long-running service: keep live engines resident,
//!   ingest artifacts from stdin (and answer unix-socket clients),
//!   respond to queries against the evolving state;
//! * `dna query`  — compose a protocol query (stdout) or send it to a
//!   serving socket and print the response;
//! * `dna watch`  — subscribe a standing query over TCP and stream the
//!   pushed `notify` artifacts live as commits change its answer.
//!
//! Exit codes: 0 success, 1 usage/parse/analysis errors, 2 verification
//! or validation failures (or an `error` response to `dna query`).

use dna_core::{classify, render, summarize, BehaviorDiff, ReplayMode, ReplaySession};
use dna_io::{
    parse_snapshot, parse_trace, write_query, write_report, write_snapshot, write_trace, EpochDiff,
    Query, QueryKind, Report, Response, SubscriptionSpec, Trace,
};
use dna_serve::{serve_stream, SessionConfig, SessionManager};
use net_model::{Flow, Snapshot};
use std::fmt::Write as _;
use std::process::ExitCode;
use topo_gen::{fat_tree, wan, Routing, ScenarioGen, ScenarioKind, WanShape, ALL_SCENARIOS};

const USAGE: &str = "\
dna — differential network analysis over dna-io artifacts

USAGE:
  dna dump  --topo fat-tree|wan --out <snap-file> [topology options]
            [--trace <trace-file> --epochs <n> [--scenarios <list|all>]]
  dna check <snap-file|ckpt-file>
  dna diff  <snap-file> <trace-file> [--engine differential|scratch]
            [--format text|json-lines] [--limit <n>] [--out <report-file>]
            [--shards <n>]
  dna replay <snap-file> <trace-file> --verify [--quiet] [--shards <n>]
  dna serve [name=]<snap-file>... [--retain <n>] [--retain-bytes <n>]
            [--verify] [--quiet] [--shards <n>] [--socket <path>]
            [--listen <addr>] [--follow [name=]<trace-file>]...
            [--threads per-session|single] [--metrics-interval <secs>]
            [--coalesce <max>]
            [--checkpoint-dir <dir> [--checkpoint-every <n>] [--resume]]
  dna query [--session <name>] [--socket <path>] [--connect <addr>]
            [--prometheus] [--rates] <command>
  dna watch --connect <addr> [--session <name>] [--count <n>]
            <subscription>
  dna top   [--socket <path> | --connect <addr>] [--watch <secs>]
  dna checkpoint inspect <ckpt-file>
  dna checkpoint write <snap-file> --out <ckpt-file> [--session <name>]
            [--ref] [--retain <n>] [--verify]
  dna checkpoint resume <ckpt-file> [--trace <trace-file>] [--shards <n>]
            [--out <report-file>] [--quiet]

TOPOLOGY OPTIONS (dump):
  --topo fat-tree   --k <even 4..32>      --routing ebgp|ospf
  --topo wan        --n <2..512>          --shape ring|line|mesh
                    --extra <chords>      --max-cost <cost>
  --seed <u64>      seed for topology (wan) and scenario generation

TRACE OPTIONS (dump):
  --trace <file>    also record a change trace against the snapshot
  --epochs <n>      number of change epochs to record (default 10)
  --scenarios <l>   comma-separated scenario kinds, or 'all' (default)

SERVE: each positional opens one named session (default name: the file
stem), the first becoming the default target. The server then reads a
stream of dna-io artifacts from stdin — snapshots (re)load the default
session, traces ingest incrementally, queries are answered — emitting
one response artifact each to stdout, until end of input. With
--socket, clients connect concurrently and the server keeps running
after stdin ends. --follow tails a growing trace file (repeatable;
name= targets a session, default the default session), ingesting each
epoch as it completes and finishing when the trace's end sentinel is
written. With --socket, --listen or --follow, sessions get one engine
thread each (parallel bring-up, concurrent multi-session ingest);
--threads single falls back to one shared engine thread. --listen
binds a TCP front door (e.g. 127.0.0.1:7700; port 0 picks a free port,
announced on stderr): each connection is served by its own reader
thread, and read-only queries (reach, reach-pair, blast, report,
stats) are answered from the session's latest published read view —
one atomic version check, no engine-thread round trip — while ingest
and the remaining queries route to the engine. --shards fans engine
bring-up out over N workers (identical results, see README). --retain
bounds the per-session epoch history (default 64) and --retain-bytes
adds a byte budget on its canonical serialized size; --verify attaches
a from-scratch shadow that cross-checks every ingested epoch.

DURABILITY: --checkpoint-dir makes every session durable — an atomic
per-session checkpoint is written after every --checkpoint-every
epochs (default 16; 0 disables the cadence) and on demand via the
`checkpoint` query. `dna serve --resume --checkpoint-dir <dir>`
restores every checkpointed session (all in parallel, one engine
thread each) observationally identical to sessions that never
restarted; snapshot positionals may still open additional fresh
sessions. `dna checkpoint` inspects, seeds and offline-resumes the
artifacts.

QUERY COMMANDS:
  reach <src-device> <src-ip> <dst-ip> <proto> <sport> <dport>
  reach-pair <src-device> <dst-device>
  blast <n-epochs>
  report <from> <to>
  stats
  sessions
  checkpoint
  metrics
  trace [n]
  health
  history [n]
  subscribe <subscription>        (see STANDING QUERIES)
  unsubscribe <id>
  notifications <id>
Without --socket/--connect the query artifact is printed to stdout
(compose mode, for piping into `dna serve`); with --socket (unix
socket path) or --connect (TCP host:port) it is sent to a server and
the response is printed instead.

STANDING QUERIES: `subscribe` registers an incrementally-maintained
view on a session; after every applied commit the server re-evaluates
it from that commit's diff (an epoch that cannot intersect a
subscription does zero work and pushes zero bytes) and records a
`notify` event only when the answer changed. Subscriptions:
  reach <src-device> <src-ip> <dst-ip> <proto> <sport> <dport>
  reach-pair <src-device> <dst-device>
  blast <device>
  invariant never-reach <src-device> <dst-device>
  invariant no-blackhole <src-device> <src-ip> <dst-ip> <proto> <sport> <dport>
`subscribe` acks with the subscription id; `dna query notifications
<id>` drains the accumulated events on any transport, and `dna watch
<subscription> --connect <addr>` holds one TCP connection open and
streams each notify as it is pushed (--count exits after n pushed
artifacts). Pushed and polled streams carry byte-identical events. A
slow watcher never blocks the engine: its queue is bounded, overflow
drops the oldest notifies, and the stream resumes with a `resync`
event naming the dropped count.

OBSERVABILITY: `metrics` scrapes the server's live counters, gauges
and latency histograms as a canonical `metrics` artifact (every
transport answers it without an engine round trip; --session narrows
to one session's series); --prometheus re-renders the scrape as
Prometheus text exposition format. `trace [n]` returns the last n
(default: all retained) per-epoch lifecycle spans — parse, control
plane, data plane, view publish timings — as a `spans` artifact.
`health` classifies the server and each session ok|degraded|failed
(engine-thread watchdog: stale heartbeat under queued work, deep
ingest queue, growing epoch lag, panic fence). `history [n]` returns
the server's periodic registry samples as a `history` artifact
(recorded every 15s by default; --metrics-interval tightens the
cadence and also dumps each scrape to stderr); --rates re-renders the
window as per-second counter rates. `dna top` shows a per-session
resource table (rates + queue/lag/memory gauges) one-shot or
refreshing with --watch. Setting DNA_OBS_DISABLED=1 in the server's
environment kills all telemetry recording (telemetry queries then
answer empty artifacts, never errors); DNA_OBS_SLOW_EPOCH_MS=<ms>
logs epochs slower than the threshold; DNA_OBS_SLOW_QUERY_US=<us>
logs queries slower than the threshold; DNA_OBS_STALE_MS,
DNA_OBS_QUEUE_DEPTH_WARN and DNA_OBS_EPOCHS_BEHIND_WARN tune the
health thresholds.

EXAMPLES:
  dna dump --topo fat-tree --k 6 --routing ebgp --out ft6.snap.dna \\
           --trace ft6.trace.dna --epochs 12 --scenarios link-failure,link-recovery
  dna check ft6.snap.dna
  dna diff ft6.snap.dna ft6.trace.dna --format json-lines
  dna replay ft6.snap.dna ft6.trace.dna --verify
  { cat ft6.trace.dna; dna query blast 8; } | dna serve ft6.snap.dna
  dna serve ft6.snap.dna --socket /tmp/dna.sock < /dev/null &
  dna query --socket /tmp/dna.sock reach-pair edge0_0 edge1_1
  dna serve ft6.snap.dna --listen 127.0.0.1:7700 < /dev/null &
  dna query --connect 127.0.0.1:7700 reach-pair edge0_0 edge1_1
  dna watch reach-pair edge0_0 edge1_1 --connect 127.0.0.1:7700
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("dna: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        print!("{USAGE}");
        return Ok(ExitCode::FAILURE);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "dump" => cmd_dump(rest),
        "check" => cmd_check(rest),
        "diff" => cmd_diff(rest),
        "replay" => cmd_replay(rest),
        "serve" => cmd_serve(rest),
        "query" => cmd_query(rest),
        "watch" => cmd_watch(rest),
        "top" => cmd_top(rest),
        "checkpoint" => cmd_checkpoint(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?} (try `dna help`)")),
    }
}

/// Minimal flag cursor: positional arguments plus `--flag value` pairs.
struct Args<'a> {
    rest: &'a [String],
    positionals: Vec<&'a str>,
    flags: Vec<(&'a str, usize)>, // (name, index of value or usize::MAX)
}

impl<'a> Args<'a> {
    fn parse(
        rest: &'a [String],
        value_flags: &[&str],
        bool_flags: &[&str],
    ) -> Result<Self, String> {
        let mut positionals = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < rest.len() {
            let a = rest[i].as_str();
            if let Some(name) = a.strip_prefix("--") {
                if bool_flags.contains(&name) {
                    flags.push((name, usize::MAX));
                } else if value_flags.contains(&name) {
                    i += 1;
                    if i >= rest.len() {
                        return Err(format!("--{name} needs a value"));
                    }
                    flags.push((name, i));
                } else {
                    return Err(format!("unknown flag --{name}"));
                }
            } else {
                positionals.push(a);
            }
            i += 1;
        }
        Ok(Args {
            rest,
            positionals,
            flags,
        })
    }

    fn flag(&self, name: &str) -> Option<&'a str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, idx)| {
                if *idx == usize::MAX {
                    ""
                } else {
                    self.rest[*idx].as_str()
                }
            })
    }

    /// Every value of a repeatable flag, in order of appearance.
    fn flag_values(&self, name: &str) -> Vec<&'a str> {
        self.flags
            .iter()
            .filter(|(n, idx)| *n == name && *idx != usize::MAX)
            .map(|(_, idx)| self.rest[*idx].as_str())
            .collect()
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| *n == name)
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{name} value {v:?}")),
        }
    }
}

/// Prints a line to stdout, reporting whether the write succeeded.
/// Downstream consumers closing the pipe early (`dna diff … | head`) is
/// normal operation, not a panic.
fn println_pipe(s: &str) -> bool {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    writeln!(out, "{s}").is_ok()
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn write_file(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))
}

fn load_snapshot(path: &str) -> Result<Snapshot, String> {
    parse_snapshot(&read_file(path)?).map_err(|e| format!("{path}: {e}"))
}

fn load_trace(path: &str) -> Result<Trace, String> {
    parse_trace(&read_file(path)?).map_err(|e| format!("{path}: {e}"))
}

// ---- dump -------------------------------------------------------------

fn cmd_dump(rest: &[String]) -> Result<ExitCode, String> {
    let args = Args::parse(
        rest,
        &[
            "topo",
            "k",
            "routing",
            "n",
            "shape",
            "extra",
            "max-cost",
            "seed",
            "out",
            "trace",
            "epochs",
            "scenarios",
        ],
        &[],
    )?;
    let seed: u64 = args.parsed("seed", 0)?;
    let topo = args.flag("topo").ok_or("dump needs --topo fat-tree|wan")?;
    // Reject flags belonging to the other topology rather than silently
    // ignoring them — a crossed flag means the user asked for something
    // this artifact will not contain.
    let foreign: &[&str] = match topo {
        "fat-tree" => &["n", "shape", "extra", "max-cost"],
        "wan" => &["k", "routing"],
        _ => &[],
    };
    for f in foreign {
        if args.has(f) {
            return Err(format!("--{f} does not apply to --topo {topo}"));
        }
    }
    let snapshot = match topo {
        "fat-tree" => {
            let k: u32 = args.parsed("k", 4)?;
            if !(4..=32).contains(&k) || !k.is_multiple_of(2) {
                return Err(format!("--k must be even in [4, 32], got {k}"));
            }
            let routing = match args.flag("routing").unwrap_or("ebgp") {
                "ebgp" => Routing::Ebgp,
                "ospf" => Routing::Ospf,
                other => return Err(format!("--routing must be ebgp|ospf, got {other:?}")),
            };
            fat_tree(k, routing).snapshot
        }
        "wan" => {
            let n: usize = args.parsed("n", 10)?;
            if !(2..=512).contains(&n) {
                return Err(format!("--n must be in [2, 512], got {n}"));
            }
            let extra: usize = args.parsed("extra", n / 2)?;
            let shape = match args.flag("shape").unwrap_or("mesh") {
                "ring" => WanShape::Ring,
                "line" => WanShape::Line,
                "mesh" => WanShape::Mesh { extra },
                other => return Err(format!("--shape must be ring|line|mesh, got {other:?}")),
            };
            let max_cost: u32 = args.parsed("max-cost", 8)?;
            wan(n, shape, max_cost, seed).snapshot
        }
        other => return Err(format!("--topo must be fat-tree|wan, got {other:?}")),
    };
    let out = args.flag("out").ok_or("dump needs --out <snap-file>")?;
    write_file(out, &write_snapshot(&snapshot))?;
    println_pipe(&format!(
        "wrote {out}: {} devices, {} links",
        snapshot.device_count(),
        snapshot.links.len()
    ));
    if let Some(trace_path) = args.flag("trace") {
        let epochs: usize = args.parsed("epochs", 10)?;
        let kinds = parse_scenarios(args.flag("scenarios").unwrap_or("all"))?;
        let mut gen = ScenarioGen::new(seed);
        let labeled = gen.labeled_sequence(&snapshot, &kinds, epochs);
        if labeled.len() < epochs {
            eprintln!(
                "note: only {} of {epochs} requested epochs had opportunities",
                labeled.len()
            );
        }
        let trace =
            Trace::from_labeled(labeled.into_iter().map(|(kind, cs)| (kind.to_string(), cs)));
        write_file(trace_path, &write_trace(&trace))?;
        println_pipe(&format!(
            "wrote {trace_path}: {} epochs, {} primitive changes",
            trace.epochs.len(),
            trace.change_count()
        ));
    }
    Ok(ExitCode::SUCCESS)
}

fn parse_scenarios(spec: &str) -> Result<Vec<ScenarioKind>, String> {
    if spec == "all" {
        return Ok(ALL_SCENARIOS.to_vec());
    }
    spec.split(',')
        .map(|s| s.trim().parse::<ScenarioKind>())
        .collect()
}

// ---- check ------------------------------------------------------------

fn cmd_check(rest: &[String]) -> Result<ExitCode, String> {
    let args = Args::parse(rest, &[], &[])?;
    let [path] = args.positionals.as_slice() else {
        return Err("check needs exactly one <snap-file|ckpt-file>".into());
    };
    let text = read_file(path)?;
    // `check` validates snapshots and checkpoints alike: a checkpoint
    // is checked through the snapshot it would resume (inline or ref).
    let (snapshot, ok_line) = match dna_io::sniff(&text).map_err(|e| format!("{path}: {e}"))? {
        (_, dna_io::Artifact::Checkpoint) => {
            let ckpt = dna_io::parse_checkpoint(&text).map_err(|e| format!("{path}: {e}"))?;
            let snapshot = checkpoint_snapshot(path, &ckpt)?;
            let ok = format!(
                "{path}: ok (checkpoint of session {:?}: {} epochs applied, {} retained, {} devices)",
                ckpt.session,
                ckpt.epochs,
                ckpt.history.len(),
                snapshot.device_count()
            );
            (snapshot, ok)
        }
        _ => {
            let snapshot = parse_snapshot(&text).map_err(|e| format!("{path}: {e}"))?;
            let ok = format!(
                "{path}: ok ({} devices, {} links, {} down, {} external routes)",
                snapshot.device_count(),
                snapshot.links.len(),
                snapshot.environment.down_links.len() + snapshot.environment.down_devices.len(),
                snapshot.environment.external_routes.len()
            );
            (snapshot, ok)
        }
    };
    let problems = snapshot.validate();
    if problems.is_empty() {
        println_pipe(&ok_line);
        Ok(ExitCode::SUCCESS)
    } else {
        for p in &problems {
            eprintln!("{path}: {p}");
        }
        eprintln!("{path}: {} validation error(s)", problems.len());
        Ok(ExitCode::from(2))
    }
}

/// Loads a checkpoint's snapshot, resolving `ref` sources relative to
/// the checkpoint file's own directory.
fn checkpoint_snapshot(path: &str, ckpt: &dna_io::Checkpoint) -> Result<Snapshot, String> {
    dna_serve::resolve_checkpoint_snapshot(ckpt, std::path::Path::new(path).parent())
}

// ---- diff -------------------------------------------------------------

fn cmd_diff(rest: &[String]) -> Result<ExitCode, String> {
    let args = Args::parse(rest, &["engine", "format", "limit", "out", "shards"], &[])?;
    let [snap_path, trace_path] = args.positionals.as_slice() else {
        return Err("diff needs <snap-file> <trace-file>".into());
    };
    let snapshot = load_snapshot(snap_path)?;
    let trace = load_trace(trace_path)?;
    let mode = match args.flag("engine").unwrap_or("differential") {
        "differential" => ReplayMode::Differential,
        "scratch" => ReplayMode::Scratch,
        other => {
            return Err(format!(
                "--engine must be differential|scratch, got {other:?}"
            ))
        }
    };
    let json = match args.flag("format").unwrap_or("text") {
        "text" => false,
        "json-lines" => true,
        other => return Err(format!("--format must be text|json-lines, got {other:?}")),
    };
    let limit: usize = args.parsed("limit", 10)?;
    let shards: usize = args.parsed("shards", 1)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let mut session = ReplaySession::with_shards(snapshot, mode, shards)
        .map_err(|e| format!("initial analysis: {e}"))?;
    let mut report = Report::default();
    let mut stdout_open = true;
    for (i, ep) in trace.epochs.iter().enumerate() {
        let out = session
            .step(&ep.changes)
            .map_err(|e| format!("epoch {i}: {e}"))?;
        let diff = out.primary();
        let text = if json {
            epoch_json(i, ep.label.as_deref(), &ep.changes, diff)
        } else {
            let label = ep.label.as_deref().unwrap_or("unlabeled");
            format!(
                "== epoch {i} [{label}] ({} change{}) ==\n{}",
                ep.changes.len(),
                if ep.changes.len() == 1 { "" } else { "s" },
                render(diff, limit).trim_end_matches('\n')
            )
        };
        if stdout_open && !println_pipe(&text) {
            // Keep replaying so --out still gets the full report; just
            // stop talking to the closed pipe.
            stdout_open = false;
            if args.flag("out").is_none() {
                return Ok(ExitCode::SUCCESS);
            }
        }
        report
            .epochs
            .push(EpochDiff::from_behavior(ep.label.clone(), diff));
    }
    if let Some(out_path) = args.flag("out") {
        write_file(out_path, &write_report(&report))?;
        if stdout_open && !json {
            println_pipe(&format!(
                "wrote {out_path}: {} epoch(s)",
                report.epochs.len()
            ));
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// One epoch as a single JSON object on one line. Hand-rolled emission
/// (the workspace has no JSON dependency); strings go through
/// [`json_str`] so arbitrary device names stay well-formed.
fn epoch_json(
    index: usize,
    label: Option<&str>,
    changes: &net_model::ChangeSet,
    diff: &BehaviorDiff,
) -> String {
    let s = summarize(diff);
    let mut out = String::new();
    let _ = write!(out, "{{\"epoch\":{index}");
    if let Some(l) = label {
        let _ = write!(out, ",\"label\":{}", json_str(l));
    }
    let _ = write!(
        out,
        ",\"changes\":{},\"rib_installed\":{},\"rib_withdrawn\":{},\"fib_added\":{},\"fib_removed\":{},\"flow_classes\":{}",
        changes.len(),
        s.routes.0,
        s.routes.1,
        s.fib.0,
        s.fib.1,
        diff.flows.len()
    );
    let _ = write!(out, ",\"kinds\":{{");
    for (i, (kind, n)) in s.counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{n}", json_str(&kind.to_string()));
    }
    out.push('}');
    let _ = write!(out, ",\"flows\":[");
    for (i, f) in dna_core::sorted_flows(diff).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"src\":{},\"kind\":{},\"headers\":[",
            json_str(&f.src),
            json_str(&classify(f).to_string())
        );
        for (j, h) in f.headers.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&json_str(h));
        }
        let _ = write!(
            out,
            "],\"example\":{{\"src\":\"{}\",\"dst\":\"{}\",\"proto\":{},\"sport\":{},\"dport\":{}}}",
            f.example.src, f.example.dst, f.example.proto, f.example.src_port, f.example.dst_port
        );
        for (name, set) in [("before", &f.before), ("after", &f.after)] {
            let _ = write!(out, ",\"{name}\":[");
            for (j, o) in set.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(&o.to_string()));
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push(']');
    let _ = write!(
        out,
        ",\"cp_ms\":{:.3},\"dp_ms\":{:.3},\"total_ms\":{:.3},\"engine_tuples\":{},\"dirty_classes\":{}}}",
        diff.stats.cp_time.as_secs_f64() * 1e3,
        diff.stats.dp_time.as_secs_f64() * 1e3,
        diff.stats.total_time.as_secs_f64() * 1e3,
        diff.stats.cp_tuples,
        diff.stats.dirty_classes
    );
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---- serve ------------------------------------------------------------

/// Splits a `[name=]path` session argument; an unnamed session is named
/// after its file stem (`corpus/ft6.snap.dna` → `ft6`). A prefix
/// containing a path separator is part of the path, not a name —
/// `/data/run=5/ft4.snap.dna` is one path.
fn split_session_arg(arg: &str) -> (String, &str) {
    if let Some((name, path)) = arg.split_once('=') {
        if !name.is_empty() && !name.contains(['/', '\\']) {
            return (name.to_string(), path);
        }
    }
    let base = arg.rsplit(['/', '\\']).next().unwrap_or(arg);
    let stem = base.split('.').next().unwrap_or(base);
    (if stem.is_empty() { "main" } else { stem }.to_string(), arg)
}

/// Splits a `[name=]path` `--follow` argument. Unlike session
/// positionals, an unnamed follow targets the server's *default*
/// session, not a session named after the file stem.
fn split_follow_arg(arg: &str) -> (Option<String>, &str) {
    if let Some((name, path)) = arg.split_once('=') {
        if !name.is_empty() && !name.contains(['/', '\\']) {
            return (Some(name.to_string()), path);
        }
    }
    (None, arg)
}

fn cmd_serve(rest: &[String]) -> Result<ExitCode, String> {
    let args = Args::parse(
        rest,
        &[
            "retain",
            "retain-bytes",
            "socket",
            "listen",
            "shards",
            "threads",
            "follow",
            "checkpoint-dir",
            "checkpoint-every",
            "metrics-interval",
            "coalesce",
        ],
        &["verify", "quiet", "resume"],
    )?;
    let resume = args.has("resume");
    if args.positionals.is_empty() && !resume {
        return Err("serve needs at least one [name=]<snap-file> (or --resume)".into());
    }
    let retain: usize = args.parsed("retain", 64)?;
    if retain == 0 {
        return Err("--retain must be at least 1".into());
    }
    let retain_bytes: Option<usize> = match args.flag("retain-bytes") {
        None => None,
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| format!("bad --retain-bytes value {v:?}"))?;
            if n == 0 {
                return Err("--retain-bytes must be at least 1".into());
            }
            Some(n)
        }
    };
    let shards: usize = args.parsed("shards", 1)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let per_session = match args.flag("threads").unwrap_or("per-session") {
        "per-session" => true,
        "single" => false,
        other => {
            return Err(format!(
                "--threads must be per-session|single, got {other:?}"
            ))
        }
    };
    let quiet = args.has("quiet");
    // All operator-facing stderr below routes through dna_obs::log:
    // `info` lines honor --quiet, `announce` lines always print.
    dna_obs::log::set_quiet(quiet);
    let metrics_interval: u64 = args.parsed("metrics-interval", 0)?;
    {
        // The metrics ticker always runs (default: a coarse 15 s
        // cadence), recording each registry scrape into the history
        // ring behind `dna query history` / `dna top`; an explicit
        // --metrics-interval tightens the cadence AND dumps each
        // scrape to stderr — the same canonical artifact `dna query
        // metrics` returns. Detached thread, dies with the process;
        // under DNA_OBS_DISABLED the ring drops everything.
        let dump = metrics_interval > 0;
        let tick = if dump { metrics_interval } else { 15 };
        std::thread::spawn(move || {
            // An immediate t≈0 sample gives `history --rates` and
            // `dna top` a baseline one tick sooner.
            dna_obs::history().record(dna_obs::uptime_ms(), &dna_obs::global().snapshot(None));
            loop {
                std::thread::sleep(std::time::Duration::from_secs(tick));
                let snap = dna_obs::global().snapshot(None);
                dna_obs::history().record(dna_obs::uptime_ms(), &snap);
                if dump {
                    let report = dna_serve::obs::metrics_report(&snap);
                    eprint!("{}", dna_io::write_metrics(&report));
                }
            }
        });
    }
    let checkpoint_dir = args.flag("checkpoint-dir").map(std::path::PathBuf::from);
    if let Some(dir) = &checkpoint_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create --checkpoint-dir {}: {e}", dir.display()))?;
    }
    // Cadence default: with a checkpoint directory, persist every 16
    // epochs unless told otherwise; without one the value is inert.
    let checkpoint_every: usize = args.parsed("checkpoint-every", 16)?;
    if args.has("checkpoint-every") && checkpoint_dir.is_none() {
        return Err("--checkpoint-every needs --checkpoint-dir".into());
    }
    // Backlog epoch coalescing: 0/1 disables; N>=2 lets a flooded
    // session merge up to N queued epochs into one engine commit. The
    // drain lives in the per-session engine loop, so the shared-thread
    // fallback cannot honor it — reject rather than silently ignore.
    let coalesce: usize = args.parsed("coalesce", 0)?;
    if coalesce >= 2 && !per_session {
        return Err("--coalesce needs --threads per-session (the default)".into());
    }
    let config = SessionConfig {
        retain,
        retain_bytes,
        verify: args.has("verify"),
        shards,
        checkpoint_dir: checkpoint_dir.clone(),
        checkpoint_every,
        coalesce,
    };
    // Parse every startup artifact up front so a bad file fails fast,
    // before any engine spends seconds on bring-up.
    let mut preload: Vec<(String, Snapshot)> = Vec::new();
    for pos in &args.positionals {
        let (name, path) = split_session_arg(pos);
        // Opening an existing name silently replaces its engine — fine
        // for a stream reload, but two startup positionals colliding
        // (same file stem) would drop a snapshot the operator asked for.
        if preload.iter().any(|(n, _)| *n == name) {
            return Err(format!(
                "duplicate session name {name:?} (from {path}); disambiguate with name=path"
            ));
        }
        preload.push((name, load_snapshot(path)?));
    }
    // --resume restores every checkpoint found in the checkpoint
    // directory, under the session names recorded inside the artifacts.
    // A positional naming a session that also has a checkpoint yields
    // to the checkpoint: resuming is the point of the flag, and the
    // checkpointed state strictly extends the snapshot's.
    let mut resumes: Vec<(dna_io::Checkpoint, Snapshot)> = Vec::new();
    if resume {
        let Some(dir) = &checkpoint_dir else {
            return Err("--resume needs --checkpoint-dir".into());
        };
        let mut seen: std::collections::BTreeMap<String, std::path::PathBuf> = Default::default();
        for (path, ckpt) in scan_checkpoints(dir)? {
            let snapshot = dna_serve::resolve_checkpoint_snapshot(&ckpt, path.parent())?;
            if let Some(prev) = seen.get(&ckpt.session) {
                return Err(format!(
                    "two checkpoints resume session {:?} ({} and {})",
                    ckpt.session,
                    prev.display(),
                    path.display()
                ));
            }
            if let Some(pos) = preload.iter().position(|(n, _)| *n == ckpt.session) {
                dna_obs::log::info(&format!(
                    "dna serve: session {:?}: resuming from {} (snapshot positional ignored)",
                    ckpt.session,
                    path.display()
                ));
                preload.remove(pos);
            }
            seen.insert(ckpt.session.clone(), path);
            resumes.push((ckpt, snapshot));
        }
        if resumes.is_empty() && preload.is_empty() {
            return Err(format!(
                "--resume found no checkpoints in {} and no snapshots were given",
                dir.display()
            ));
        }
    }
    let follows: Vec<(Option<String>, String)> = args
        .flag_values("follow")
        .into_iter()
        .map(|arg| {
            let (session, path) = split_follow_arg(arg);
            if !std::path::Path::new(path).exists() {
                return Err(format!("--follow {path}: file does not exist yet"));
            }
            // Session names are fully known at startup; a typo'd name
            // would otherwise ship every epoch into "unknown session"
            // errors while the follow itself reports success.
            if let Some(name) = &session {
                if !preload.iter().any(|(n, _)| n == name)
                    && !resumes.iter().any(|(c, _)| &c.session == name)
                {
                    return Err(format!(
                        "--follow {arg}: no session named {name:?} (sessions: {})",
                        preload
                            .iter()
                            .map(|(n, _)| format!("{n:?}"))
                            .chain(resumes.iter().map(|(c, _)| format!("{:?}", c.session)))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
            }
            Ok((session, path.to_string()))
        })
        .collect::<Result<_, String>>()?;
    let socket = args.flag("socket");
    let listen = args.flag("listen");
    if socket.is_none() && listen.is_none() && follows.is_empty() {
        // Pure pipe mode: one client, one engine thread, no channels —
        // the deterministic path the pinned service smoke drives.
        let mut mgr = open_preloaded(config, preload, resumes)?;
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let summary = serve_stream(&mut mgr, None, &mut stdin.lock(), &mut stdout.lock())
            .map_err(|e| format!("serve loop: {e}"))?;
        print_summary(&summary);
        return Ok(ExitCode::SUCCESS);
    }
    serve_channels(
        config,
        preload,
        resumes,
        follows,
        FrontDoors { socket, listen },
        per_session,
    )
}

/// The client-facing listeners of a channel-mode server: a unix socket
/// path and/or a TCP listen address (either may be absent — a
/// `--follow`-only server has no front door at all).
struct FrontDoors<'a> {
    socket: Option<&'a str>,
    listen: Option<&'a str>,
}

/// Every `<name>.ckpt.dna` checkpoint in a directory, parsed, in file
/// name order (deterministic). Temp files from in-flight atomic writes
/// (dot-prefixed) and other file types are ignored.
fn scan_checkpoints(
    dir: &std::path::Path,
) -> Result<Vec<(std::path::PathBuf, dna_io::Checkpoint)>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".ckpt.dna") && !n.starts_with('.'))
        })
        .collect();
    paths.sort();
    let mut out = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let ckpt =
            dna_io::parse_checkpoint(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((path, ckpt));
    }
    Ok(out)
}

/// Opens every startup session into a single-threaded manager —
/// fresh snapshots and checkpoint resumes alike — announcing each load
/// (shared by pipe mode and `--threads single`).
fn open_preloaded(
    config: SessionConfig,
    preload: Vec<(String, Snapshot)>,
    resumes: Vec<(dna_io::Checkpoint, Snapshot)>,
) -> Result<SessionManager, String> {
    let mut mgr = SessionManager::new(config);
    for (name, snapshot) in preload {
        let devices = snapshot.device_count();
        mgr.open(&name, snapshot)?;
        dna_obs::log::info(&format!(
            "dna serve: session {name:?} loaded ({devices} devices)"
        ));
    }
    for (ckpt, snapshot) in resumes {
        let devices = snapshot.device_count();
        let (name, epochs) = (ckpt.session.clone(), ckpt.epochs);
        mgr.resume_checkpoint(&ckpt, snapshot)?;
        dna_obs::log::info(&format!(
            "dna serve: session {name:?} resumed at epoch {epochs} ({devices} devices)"
        ));
    }
    Ok(mgr)
}

fn print_summary(summary: &dna_serve::ServeSummary) {
    let failures = if summary.failures > 0 {
        format!(", {} session failure(s)", summary.failures)
    } else {
        String::new()
    };
    dna_obs::log::info(&format!(
        "dna serve: {} artifact(s): {} epoch(s) ingested, {} query(ies) answered, {} error(s){failures}",
        summary.artifacts, summary.epochs, summary.queries, summary.errors
    ));
}

/// Channel mode (socket and/or follow pumps): pumps feed raw artifact
/// text to the engine side over channels. With `--threads per-session`
/// (the default) the engine side is a [`dna_serve::Router`] — one
/// engine thread per session, so sessions load and ingest
/// concurrently; with `--threads single` it is the PR-3 broker, every
/// session on this thread. Runs until every pump is done (forever, in
/// socket mode).
#[cfg(unix)]
fn serve_channels(
    config: SessionConfig,
    preload: Vec<(String, Snapshot)>,
    resumes: Vec<(dna_io::Checkpoint, Snapshot)>,
    follows: Vec<(Option<String>, String)>,
    doors: FrontDoors<'_>,
    per_session: bool,
) -> Result<ExitCode, String> {
    use std::sync::mpsc;
    let FrontDoors { socket, listen } = doors;
    // The view registry backing the TCP read path. Attached to the
    // router only when a TCP front door is requested — without
    // readers, publishing a view per epoch would be pure overhead.
    let views = std::sync::Arc::new(dna_serve::ViewRegistry::new());
    // The notify hub backing pushed standing-query deltas. Like the
    // views, only attached when TCP clients can actually watch.
    let hub = std::sync::Arc::new(dna_serve::NotifyHub::new());
    // Engine bring-up happens BEFORE the socket exists or any pump
    // starts: a bad snapshot must fail the process while it is still
    // invisible to clients, not after they can connect.
    enum Engine {
        Router(dna_serve::Router),
        Broker(SessionManager),
    }
    let engine = if per_session {
        let mut router = dna_serve::Router::new(config);
        if listen.is_some() {
            router = router
                .with_views(std::sync::Arc::clone(&views))
                .with_notify_hub(std::sync::Arc::clone(&hub));
        }
        let loaded: Vec<(String, usize)> = preload
            .iter()
            .map(|(n, s)| (n.clone(), s.device_count()))
            .collect();
        let resumed: Vec<(String, u64, usize)> = resumes
            .iter()
            .map(|(c, s)| (c.session.clone(), c.epochs, s.device_count()))
            .collect();
        router.preload(preload)?;
        // All checkpointed sessions come back concurrently — one
        // engine thread each, max-of-resumes wall-clock.
        router.preload_checkpoints(resumes)?;
        for (name, devices) in loaded {
            dna_obs::log::info(&format!(
                "dna serve: session {name:?} loaded ({devices} devices)"
            ));
        }
        for (name, epochs, devices) in resumed {
            dna_obs::log::info(&format!(
                "dna serve: session {name:?} resumed at epoch {epochs} ({devices} devices)"
            ));
        }
        Engine::Router(router)
    } else {
        let mut mgr = open_preloaded(config, preload, resumes)?;
        if listen.is_some() {
            mgr.set_notify_hub(std::sync::Arc::clone(&hub));
        }
        Engine::Broker(mgr)
    };
    let listener = match socket {
        None => None,
        Some(path) => {
            let sock = std::path::Path::new(path);
            if sock.exists() {
                // Only reclaim the path from a DEAD server: a connectable
                // socket means another instance is live, and deleting its
                // socket would silently divert that server's clients here.
                if std::os::unix::net::UnixStream::connect(sock).is_ok() {
                    return Err(format!("{path} is already served by a running instance"));
                }
                std::fs::remove_file(sock)
                    .map_err(|e| format!("cannot replace stale socket {path}: {e}"))?;
            }
            Some(
                std::os::unix::net::UnixListener::bind(sock)
                    .map_err(|e| format!("cannot bind {path}: {e}"))?,
            )
        }
    };
    let (tx, rx) = mpsc::channel();
    let stdin_tx = tx.clone();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let _ = dna_serve::pump_stream(&stdin_tx, &mut stdin.lock(), &mut stdout.lock());
        // Dropping stdin's sender leaves the other pumps' alive: the
        // server keeps serving them after stdin ends.
    });
    for (session, path) in follows {
        let follow_tx = tx.clone();
        std::thread::spawn(move || {
            let target = std::path::PathBuf::from(&path);
            match dna_serve::follow_trace(
                &follow_tx,
                session.as_deref(),
                &target,
                std::time::Duration::from_millis(50),
            ) {
                Ok(epochs) => dna_obs::log::info(&format!(
                    "dna serve: follow {path}: trace ended ({epochs} epoch(s) shipped)"
                )),
                // Failures always reach stderr, --quiet or not.
                Err(e) => dna_obs::log::announce(&format!("dna serve: follow {path}: {e}")),
            }
        });
    }
    if let Some(listener) = listener {
        let accept_tx = tx.clone();
        std::thread::spawn(move || {
            let _ = dna_serve::accept_loop(accept_tx, listener);
        });
        dna_obs::log::info(&format!(
            "dna serve: listening on {}",
            socket.unwrap_or_default()
        ));
    }
    if let Some(addr) = listen {
        let listener = std::net::TcpListener::bind(addr)
            .map_err(|e| format!("cannot bind tcp {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("tcp local address: {e}"))?;
        // Announced even under --quiet: with port 0 this line is the
        // only way a client (or a test harness) learns the port.
        dna_obs::log::announce(&format!("dna serve: listening on tcp {local}"));
        let accept_tx = tx.clone();
        let views = std::sync::Arc::clone(&views);
        let hub = std::sync::Arc::clone(&hub);
        std::thread::spawn(move || {
            let _ = dna_serve::tcp_accept_loop(accept_tx, listener, views, hub);
        });
    }
    drop(tx);
    let summary = match engine {
        Engine::Router(router) => router.run(rx),
        Engine::Broker(mut mgr) => dna_serve::run_broker(&mut mgr, rx),
    };
    print_summary(&summary);
    Ok(ExitCode::SUCCESS)
}

#[cfg(not(unix))]
fn serve_channels(
    _config: SessionConfig,
    _preload: Vec<(String, Snapshot)>,
    _resumes: Vec<(dna_io::Checkpoint, Snapshot)>,
    _follows: Vec<(Option<String>, String)>,
    _doors: FrontDoors<'_>,
    _per_session: bool,
) -> Result<ExitCode, String> {
    Err("--socket/--listen/--follow require a unix platform".into())
}

// ---- query ------------------------------------------------------------

/// Parses the five positional flow tokens (`<src-ip> <dst-ip> <proto>
/// <sport> <dport>`) shared by `reach`, `subscribe reach` and
/// `subscribe invariant no-blackhole`.
fn parse_flow(tokens: &[&str]) -> Result<Flow, String> {
    let [sip, dip, proto, sport, dport] = tokens else {
        return Err(format!(
            "a flow takes 5 tokens (<src-ip> <dst-ip> <proto> <sport> <dport>), got {}",
            tokens.len()
        ));
    };
    Ok(Flow {
        src: sip
            .parse()
            .map_err(|_| format!("bad source address {sip:?}"))?,
        dst: dip
            .parse()
            .map_err(|_| format!("bad destination address {dip:?}"))?,
        proto: proto
            .parse()
            .map_err(|_| format!("bad protocol {proto:?}"))?,
        src_port: sport
            .parse()
            .map_err(|_| format!("bad source port {sport:?}"))?,
        dst_port: dport
            .parse()
            .map_err(|_| format!("bad destination port {dport:?}"))?,
    })
}

/// Parses the positional grammar shared by `dna query subscribe …` and
/// `dna watch …` into a standing-query spec.
fn parse_subscribe(tokens: &[&str]) -> Result<SubscriptionSpec, String> {
    Ok(match tokens {
        ["reach", src, flow @ ..] => SubscriptionSpec::Reach {
            src: src.to_string(),
            flow: parse_flow(flow)?,
        },
        ["reach-pair", src, dst] => SubscriptionSpec::ReachPair {
            src: src.to_string(),
            dst: dst.to_string(),
        },
        ["blast", device] => SubscriptionSpec::Blast {
            device: device.to_string(),
        },
        ["invariant", "never-reach", src, dst] => SubscriptionSpec::NeverReach {
            src: src.to_string(),
            dst: dst.to_string(),
        },
        ["invariant", "no-blackhole", src, flow @ ..] => SubscriptionSpec::NoBlackhole {
            src: src.to_string(),
            flow: parse_flow(flow)?,
        },
        other => {
            return Err(format!(
                "bad subscription {:?} (see QUERY COMMANDS in `dna help`)",
                other.join(" ")
            ))
        }
    })
}

fn cmd_query(rest: &[String]) -> Result<ExitCode, String> {
    let args = Args::parse(
        rest,
        &["session", "socket", "connect"],
        &["prometheus", "rates"],
    )?;
    let kind = match args.positionals.as_slice() {
        ["reach", src, flow @ ..] => QueryKind::Reach {
            src: src.to_string(),
            flow: parse_flow(flow)?,
        },
        ["reach-pair", src, dst] => QueryKind::ReachPair {
            src: src.to_string(),
            dst: dst.to_string(),
        },
        ["blast", last] => QueryKind::Blast {
            last: last.parse().map_err(|_| format!("bad window {last:?}"))?,
        },
        ["report", from, to] => QueryKind::Report {
            from: from
                .parse()
                .map_err(|_| format!("bad range start {from:?}"))?,
            to: to.parse().map_err(|_| format!("bad range end {to:?}"))?,
        },
        ["stats"] => QueryKind::Stats,
        ["sessions"] => QueryKind::Sessions,
        ["checkpoint"] => QueryKind::Checkpoint,
        ["metrics"] => QueryKind::Metrics,
        ["trace"] => QueryKind::TraceSpans { last: None },
        ["trace", last] => QueryKind::TraceSpans {
            last: Some(last.parse().map_err(|_| format!("bad window {last:?}"))?),
        },
        ["health"] => QueryKind::Health,
        ["history"] => QueryKind::History { last: None },
        ["history", last] => QueryKind::History {
            last: Some(last.parse().map_err(|_| format!("bad window {last:?}"))?),
        },
        ["subscribe", spec @ ..] => QueryKind::Subscribe(parse_subscribe(spec)?),
        ["unsubscribe", id] => QueryKind::Unsubscribe {
            id: id
                .parse()
                .map_err(|_| format!("bad subscription id {id:?}"))?,
        },
        ["notifications", id] => QueryKind::Notifications {
            id: id
                .parse()
                .map_err(|_| format!("bad subscription id {id:?}"))?,
        },
        [] => return Err("query needs a command (see `dna help`)".into()),
        other => return Err(format!("bad query command {:?}", other.join(" "))),
    };
    let prometheus = args.has("prometheus");
    if prometheus && !matches!(kind, QueryKind::Metrics) {
        return Err("--prometheus only applies to `dna query metrics`".into());
    }
    let rates = args.has("rates");
    if rates && !matches!(kind, QueryKind::History { .. }) {
        return Err("--rates only applies to `dna query history`".into());
    }
    let render = Render { prometheus, rates };
    let query = Query {
        session: args.flag("session").map(str::to_string),
        kind,
    };
    let text = write_query(&query);
    match (args.flag("socket"), args.flag("connect")) {
        (Some(_), Some(_)) => Err("--socket and --connect are mutually exclusive".into()),
        (Some(path), None) => query_over_socket(path, &text, render),
        (None, Some(addr)) => {
            let response = dna_serve::query_tcp(addr, &text)
                .map_err(|e| format!("cannot query tcp {addr}: {e}"))?;
            print_response(addr, &response, render)
        }
        (None, None) => {
            if prometheus || rates {
                return Err(
                    "--prometheus/--rates need a live server (--socket or --connect)".into(),
                );
            }
            print!("{text}");
            Ok(ExitCode::SUCCESS)
        }
    }
}

// ---- watch ------------------------------------------------------------

/// `dna watch`: subscribe over TCP and stream the pushed `notify`
/// artifacts to stdout as commits land — the live-tail counterpart of
/// polling `dna query notifications <id>`. The subscribe ack goes to
/// stderr so stdout carries exactly the pushed delta stream.
fn cmd_watch(rest: &[String]) -> Result<ExitCode, String> {
    use std::io::Write;
    let args = Args::parse(rest, &["session", "connect", "count"], &[])?;
    let spec = parse_subscribe(&args.positionals)?;
    let addr = args
        .flag("connect")
        .ok_or("watch needs --connect <addr> (a `dna serve --listen` front door)")?;
    let count: Option<u64> = match args.flag("count") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("bad --count value {v:?}"))?),
    };
    let query = Query {
        session: args.flag("session").map(str::to_string),
        kind: QueryKind::Subscribe(spec),
    };
    let stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect tcp {addr}: {e}"))?;
    (&stream)
        .write_all(write_query(&query).as_bytes())
        .map_err(|e| format!("cannot send subscribe to {addr}: {e}"))?;
    (&stream)
        .flush()
        .map_err(|e| format!("cannot send subscribe to {addr}: {e}"))?;
    let mut reader = std::io::BufReader::new(&stream);
    let next = |r: &mut std::io::BufReader<&std::net::TcpStream>| {
        dna_serve::read_artifact(r).map_err(|e| format!("lost connection to {addr}: {e}"))
    };
    let ack = next(&mut reader)?.ok_or_else(|| format!("{addr} closed before acknowledging"))?;
    let Ok(n) = dna_io::parse_notify(&ack) else {
        // Anything else is the server's refusal (unknown session or
        // device, failed session, …): print it under the usual exit
        // code contract.
        return print_response(addr, &ack, Render::default());
    };
    eprintln!(
        "dna watch: subscription {} on session {:?} ({addr})",
        n.subscription, n.session
    );
    let mut seen = 0u64;
    while count.is_none_or(|c| seen < c) {
        let Some(text) = next(&mut reader)? else {
            break; // server shut down
        };
        seen += 1;
        let mut out = std::io::stdout().lock();
        // A closed downstream (`dna watch … | head`) ends the tail,
        // it doesn't error it.
        if out.write_all(text.as_bytes()).is_err() || out.flush().is_err() {
            break;
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Client-side rendering switches for a server's answer (both default
/// off: print the canonical artifact bytes).
#[derive(Clone, Copy, Default)]
struct Render {
    /// Re-render a metrics scrape as Prometheus exposition text.
    prometheus: bool,
    /// Re-render a history dump as derived per-second counter rates.
    rates: bool,
}

/// Prints a server's response and maps it to the exit code contract:
/// 0 for an answer, 2 for a protocol-level `error` response. Telemetry
/// queries come back as their own artifact kinds (`metrics`, `spans`,
/// `history`, `health`) rather than a `response`; all are validated
/// before printing, and `--prometheus` / `--rates` re-render
/// client-side (the wire always carries the canonical artifact).
fn print_response(origin: &str, response: &str, render: Render) -> Result<ExitCode, String> {
    match dna_io::sniff(response) {
        Ok((_, dna_io::Artifact::Metrics)) => {
            let report = dna_io::parse_metrics(response)
                .map_err(|e| format!("malformed metrics from {origin}: {e}"))?;
            if render.prometheus {
                print!("{}", prometheus_text(&report));
            } else {
                print!("{response}");
            }
            return Ok(ExitCode::SUCCESS);
        }
        Ok((_, dna_io::Artifact::Spans)) => {
            dna_io::parse_spans(response)
                .map_err(|e| format!("malformed spans from {origin}: {e}"))?;
            print!("{response}");
            return Ok(ExitCode::SUCCESS);
        }
        Ok((_, dna_io::Artifact::History)) => {
            let report = dna_io::parse_history(response)
                .map_err(|e| format!("malformed history from {origin}: {e}"))?;
            if render.rates {
                print!("{}", rates_text(&report));
            } else {
                print!("{response}");
            }
            return Ok(ExitCode::SUCCESS);
        }
        Ok((_, dna_io::Artifact::Health)) => {
            dna_io::parse_health(response)
                .map_err(|e| format!("malformed health from {origin}: {e}"))?;
            print!("{response}");
            return Ok(ExitCode::SUCCESS);
        }
        // Subscription commands answer with `notify` artifacts: the
        // subscribe/unsubscribe ack, or a `notifications` poll batch.
        Ok((_, dna_io::Artifact::Notify)) => {
            dna_io::parse_notify(response)
                .map_err(|e| format!("malformed notify from {origin}: {e}"))?;
            print!("{response}");
            return Ok(ExitCode::SUCCESS);
        }
        _ => {}
    }
    print!("{response}");
    match dna_io::parse_response(response) {
        Ok(Response::Error(_)) => Ok(ExitCode::from(2)),
        Ok(_) => Ok(ExitCode::SUCCESS),
        Err(e) => Err(format!("malformed response from {origin}: {e}")),
    }
}

/// Converts wire history samples into the [`dna_obs`] sample shape so
/// rate derivation has one implementation.
fn obs_samples(report: &dna_io::HistoryReport) -> Vec<dna_obs::Sample> {
    let series = |r: &dna_io::SeriesRow| dna_obs::SeriesValue {
        name: r.name.clone(),
        session: r.session.clone(),
        value: r.value,
    };
    report
        .samples
        .iter()
        .map(|s| dna_obs::Sample {
            t_ms: s.t_ms,
            counters: s.counters.iter().map(series).collect(),
            gauges: s.gauges.iter().map(series).collect(),
        })
        .collect()
}

/// Renders `--rates`: per-second counter deltas across the history
/// window (first sample → last). Lines mirror the metrics grammar's
/// scoping so the output greps the same way.
fn rates_text(report: &dna_io::HistoryReport) -> String {
    let samples = obs_samples(report);
    let mut out = String::new();
    let (Some(first), Some(last)) = (samples.first(), samples.last()) else {
        let _ = writeln!(out, "; history is empty — no window to derive rates over");
        return out;
    };
    let _ = writeln!(
        out,
        "; rates over {:.1}s ({} samples)",
        last.t_ms.saturating_sub(first.t_ms) as f64 / 1_000.0,
        samples.len()
    );
    for r in dna_obs::rates(&samples) {
        match &r.session {
            Some(s) => {
                let _ = writeln!(out, "{} session {:?} {:.2}/s", r.name, s, r.per_second);
            }
            None => {
                let _ = writeln!(out, "{} global {:.2}/s", r.name, r.per_second);
            }
        }
    }
    out
}

/// Renders a metrics scrape in the Prometheus text exposition format:
/// `dna_`-prefixed names, `# TYPE` once per family, histograms in
/// seconds with cumulative `le` buckets. Kept dependency-free on
/// purpose — the format is line-oriented text, like everything else
/// this repo writes.
fn prometheus_text(report: &dna_io::MetricsReport) -> String {
    fn esc(label: &str) -> String {
        label
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    }
    fn labels(session: &Option<String>) -> String {
        match session {
            Some(s) => format!("{{session=\"{}\"}}", esc(s)),
            None => String::new(),
        }
    }
    fn labels_le(session: &Option<String>, le: &str) -> String {
        match session {
            Some(s) => format!("{{session=\"{}\",le=\"{le}\"}}", esc(s)),
            None => format!("{{le=\"{le}\"}}"),
        }
    }
    let mut out = String::new();
    let mut last_family = String::new();
    let mut family = |out: &mut String, name: &str, kind: &str| {
        if last_family != name {
            let _ = writeln!(out, "# TYPE dna_{name} {kind}");
            last_family = name.to_string();
        }
    };
    for c in &report.counters {
        family(&mut out, &c.name, "counter");
        let _ = writeln!(out, "dna_{}{} {}", c.name, labels(&c.session), c.value);
    }
    for g in &report.gauges {
        family(&mut out, &g.name, "gauge");
        let _ = writeln!(out, "dna_{}{} {}", g.name, labels(&g.session), g.value);
    }
    for h in &report.histograms {
        // Our native unit is microseconds (`_us` suffix); Prometheus
        // convention is base seconds.
        let name = format!("{}_seconds", h.name.strip_suffix("_us").unwrap_or(&h.name));
        family(&mut out, &name, "histogram");
        let mut cumulative = 0u64;
        for (bound, count) in &h.buckets {
            cumulative += count;
            let le = match bound {
                Some(us) => format!("{}", *us as f64 / 1e6),
                None => "+Inf".to_string(),
            };
            let _ = writeln!(
                out,
                "dna_{name}_bucket{} {cumulative}",
                labels_le(&h.session, &le)
            );
        }
        let _ = writeln!(
            out,
            "dna_{name}_sum{} {}",
            labels(&h.session),
            h.sum_ns as f64 / 1e9
        );
        let _ = writeln!(out, "dna_{name}_count{} {}", labels(&h.session), h.count);
    }
    out
}

#[cfg(unix)]
fn query_over_socket(path: &str, text: &str, render: Render) -> Result<ExitCode, String> {
    let response = dna_serve::query_socket(std::path::Path::new(path), text)
        .map_err(|e| format!("cannot query {path}: {e}"))?;
    print_response(path, &response, render)
}

#[cfg(not(unix))]
fn query_over_socket(_path: &str, _text: &str, _render: Render) -> Result<ExitCode, String> {
    Err("--socket requires a unix platform".into())
}

// ---- top --------------------------------------------------------------

/// `dna top`: a one-shot (or `--watch <secs>` refreshing) per-session
/// resource table derived from the server's history ring — rates
/// between the freshest two samples, live gauges from the last one.
/// With fewer than two samples the table still prints (rates read 0)
/// and the command exits 0: an empty ring is a young server, not an
/// error.
fn cmd_top(rest: &[String]) -> Result<ExitCode, String> {
    let args = Args::parse(rest, &["socket", "connect", "watch"], &[])?;
    if !args.positionals.is_empty() {
        return Err(format!(
            "top takes no positionals, got {:?}",
            args.positionals
        ));
    }
    let watch: u64 = args.parsed("watch", 0)?;
    let query = write_query(&Query {
        session: None,
        kind: QueryKind::History { last: Some(2) },
    });
    let fetch = || -> Result<String, String> {
        match (args.flag("socket"), args.flag("connect")) {
            (Some(_), Some(_)) => Err("--socket and --connect are mutually exclusive".into()),
            (Some(path), None) => dna_serve::query_socket(std::path::Path::new(path), &query)
                .map_err(|e| format!("cannot query {path}: {e}")),
            (None, Some(addr)) => dna_serve::query_tcp(addr, &query)
                .map_err(|e| format!("cannot query tcp {addr}: {e}")),
            (None, None) => Err("top needs a live server (--socket or --connect)".into()),
        }
    };
    loop {
        let response = fetch()?;
        let report = match dna_io::sniff(&response) {
            Ok((_, dna_io::Artifact::History)) => dna_io::parse_history(&response)
                .map_err(|e| format!("malformed history from server: {e}"))?,
            // Anything else is the server's error story — surface it.
            _ => match dna_io::parse_response(&response) {
                Ok(Response::Error(e)) => return Err(format!("server: {e}")),
                _ => return Err("server sent neither history nor an error response".into()),
            },
        };
        let table = top_table(&report);
        if watch == 0 {
            print!("{table}");
            return Ok(ExitCode::SUCCESS);
        }
        // Watch mode refreshes on stderr (stdout stays clean for
        // piping) until interrupted.
        eprint!("\n{table}");
        std::thread::sleep(std::time::Duration::from_secs(watch));
    }
}

/// Renders the `dna top` table: one row per session seen in the
/// freshest sample, columns mixing derived rates (counters) and live
/// values (gauges).
fn top_table(report: &dna_io::HistoryReport) -> String {
    let samples = obs_samples(report);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>9} {:>7} {:>7} {:>10} {:>10}",
        "SESSION", "EPOCHS/S", "QUERY/S", "QUEUE", "BEHIND", "HIST-B", "VIEW-B"
    );
    let Some(last) = samples.last() else {
        let _ = writeln!(out, "; history is empty — the server has not ticked yet");
        return out;
    };
    let rates = dna_obs::rates(&samples);
    let rate = |name: &str, session: &str| {
        rates
            .iter()
            .find(|r| r.name == name && r.session.as_deref() == Some(session))
            .map_or(0.0, |r| r.per_second)
    };
    let gauge = |name: &str, session: &str| {
        last.gauges
            .iter()
            .find(|g| g.name == name && g.session.as_deref() == Some(session))
            .map_or(0, |g| g.value)
    };
    let mut sessions: Vec<&str> = last
        .counters
        .iter()
        .chain(last.gauges.iter())
        .filter_map(|r| r.session.as_deref())
        .collect();
    sessions.sort_unstable();
    sessions.dedup();
    for s in sessions {
        let _ = writeln!(
            out,
            "{:<16} {:>9.2} {:>9.2} {:>7} {:>7} {:>10} {:>10}",
            s,
            rate("epochs_applied", s),
            rate("queries_answered", s),
            gauge("ingest_queue_depth", s),
            gauge("epochs_behind", s),
            gauge("history_bytes", s),
            gauge("view_bytes", s),
        );
    }
    out
}

// ---- checkpoint -------------------------------------------------------

fn cmd_checkpoint(rest: &[String]) -> Result<ExitCode, String> {
    let Some(sub) = rest.first() else {
        return Err("checkpoint needs a subcommand: inspect | write | resume".into());
    };
    let rest = &rest[1..];
    match sub.as_str() {
        "inspect" => checkpoint_inspect(rest),
        "write" => checkpoint_write(rest),
        "resume" => checkpoint_resume(rest),
        other => Err(format!(
            "unknown checkpoint subcommand {other:?} (inspect | write | resume)"
        )),
    }
}

/// `dna checkpoint inspect <file>`: a human summary of a checkpoint.
fn checkpoint_inspect(rest: &[String]) -> Result<ExitCode, String> {
    let args = Args::parse(rest, &[], &[])?;
    let [path] = args.positionals.as_slice() else {
        return Err("checkpoint inspect needs exactly one <ckpt-file>".into());
    };
    let text = read_file(path)?;
    let ckpt = dna_io::parse_checkpoint(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(out, "{path}: checkpoint of session {:?}", ckpt.session);
    let _ = writeln!(
        out,
        "  epochs applied: {} ({} shadow mismatch(es))",
        ckpt.epochs, ckpt.mismatches
    );
    match (ckpt.history.first(), ckpt.history.last()) {
        (Some((from, _)), Some((to, _))) => {
            let _ = writeln!(
                out,
                "  retained window: {} epoch(s) [{from}..={to}]",
                ckpt.history.len()
            );
        }
        _ => {
            let _ = writeln!(out, "  retained window: empty");
        }
    }
    match &ckpt.source {
        dna_io::CheckpointSource::Ref(p) => {
            let _ = writeln!(out, "  snapshot: ref {p:?}");
        }
        dna_io::CheckpointSource::Inline(s) => {
            let _ = writeln!(
                out,
                "  snapshot: inline ({} devices, {} links)",
                s.device_count(),
                s.links.len()
            );
        }
    }
    let c = &ckpt.config;
    let _ = writeln!(
        out,
        "  config: retain {} retain-bytes {} verify {} (brought up with {} shard(s))",
        c.retain,
        c.retain_bytes.map_or("-".to_string(), |b| b.to_string()),
        if c.verify { "on" } else { "off" },
        c.shards
    );
    let t = &ckpt.totals;
    let _ = writeln!(
        out,
        "  totals: {} changes, {} rib, {} fib, {} flow diffs; cp {:.2?} dp {:.2?} total {:.2?}",
        t.changes,
        t.rib,
        t.fib,
        t.flows,
        std::time::Duration::from_nanos(t.cp_ns),
        std::time::Duration::from_nanos(t.dp_ns),
        std::time::Duration::from_nanos(t.total_ns)
    );
    let _ = write!(out, "  artifact size: {} bytes", text.len());
    println_pipe(&out);
    Ok(ExitCode::SUCCESS)
}

/// `dna checkpoint write <snap-file> --out <ckpt-file>`: an epoch-0
/// checkpoint over a snapshot — the hand-authored seed of a resumable
/// session. `--ref` stores the snapshot path instead of embedding it.
fn checkpoint_write(rest: &[String]) -> Result<ExitCode, String> {
    let args = Args::parse(rest, &["out", "session", "retain"], &["ref", "verify"])?;
    let [snap_path] = args.positionals.as_slice() else {
        return Err("checkpoint write needs exactly one <snap-file>".into());
    };
    let out = args
        .flag("out")
        .ok_or("checkpoint write needs --out <ckpt-file>")?;
    let snapshot = load_snapshot(snap_path)?;
    let retain: u64 = args.parsed("retain", 64)?;
    if retain == 0 {
        return Err("--retain must be at least 1".into());
    }
    let session = match args.flag("session") {
        Some(s) => s.to_string(),
        None => split_session_arg(snap_path).0,
    };
    let source = if args.has("ref") {
        // Refs resolve relative to the *checkpoint file's* directory,
        // not the cwd this command ran in — store the snapshot's
        // absolute path so the artifact works no matter where --out
        // put it (a stored-verbatim relative path would dangle the
        // moment the two directories differ).
        let abs = std::path::absolute(snap_path)
            .map_err(|e| format!("cannot resolve {snap_path}: {e}"))?;
        dna_io::CheckpointSource::Ref(abs.to_string_lossy().into_owned())
    } else {
        dna_io::CheckpointSource::Inline(snapshot.clone())
    };
    let ckpt = dna_io::Checkpoint {
        session: session.clone(),
        config: dna_io::CheckpointConfig {
            retain,
            retain_bytes: None,
            verify: args.has("verify"),
            shards: 1,
        },
        epochs: 0,
        mismatches: 0,
        totals: dna_io::CheckpointTotals::default(),
        source,
        history: Vec::new(),
    };
    write_file(out, &dna_io::write_checkpoint(&ckpt))?;
    println_pipe(&format!(
        "wrote {out}: epoch-0 checkpoint of session {session:?} ({} devices)",
        snapshot.device_count()
    ));
    Ok(ExitCode::SUCCESS)
}

/// `dna checkpoint resume <ckpt-file> [--trace <file>]`: bring the
/// checkpointed session back up (proving the artifact is resumable)
/// and optionally replay a trace through it — the offline form of
/// `dna serve --resume`, sharing `dna diff`'s report output.
fn checkpoint_resume(rest: &[String]) -> Result<ExitCode, String> {
    let args = Args::parse(rest, &["trace", "shards", "out"], &["quiet"])?;
    let [ckpt_path] = args.positionals.as_slice() else {
        return Err("checkpoint resume needs exactly one <ckpt-file>".into());
    };
    let shards: usize = args.parsed("shards", 1)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let quiet = args.has("quiet");
    let text = read_file(ckpt_path)?;
    let ckpt = dna_io::parse_checkpoint(&text).map_err(|e| format!("{ckpt_path}: {e}"))?;
    let snapshot = checkpoint_snapshot(ckpt_path, &ckpt)?;
    let server = SessionConfig {
        shards,
        ..Default::default()
    };
    let start = std::time::Instant::now();
    let session = dna_serve::Session::resume(&ckpt, snapshot, &server)?;
    if !quiet {
        println_pipe(&format!(
            "resumed session {:?} at epoch {} in {:.2?} ({} devices, {} retained epoch(s))",
            session.name(),
            session.epochs(),
            start.elapsed(),
            session.snapshot().device_count(),
            ckpt.history.len()
        ));
    }
    let Some(trace_path) = args.flag("trace") else {
        return Ok(ExitCode::SUCCESS);
    };
    let trace = load_trace(trace_path)?;
    let mut report = Report::default();
    let base = session.epochs();
    let mut session = session;
    for (i, ep) in trace.epochs.iter().enumerate() {
        session
            .ingest(ep)
            .map_err(|e| format!("epoch {}: {e}", base + i))?;
        // The freshest history record is the epoch just applied.
        match session.answer(&QueryKind::Report {
            from: base + i,
            to: base + i + 1,
        }) {
            Response::Report { epochs } if epochs.len() == 1 => {
                let (_, diff) = epochs.into_iter().next().expect("one epoch");
                if !quiet {
                    println_pipe(&format!(
                        "== epoch {} [{}] ({} flow diff(s), {} rib, {} fib) ==",
                        base + i,
                        ep.label.as_deref().unwrap_or("unlabeled"),
                        diff.flows.len(),
                        diff.rib.len(),
                        diff.fib.len()
                    ));
                }
                report.epochs.push(diff);
            }
            _ => return Err(format!("epoch {}: history record missing", base + i)),
        }
    }
    if let Some(out_path) = args.flag("out") {
        write_file(out_path, &write_report(&report))?;
        if !quiet {
            println_pipe(&format!(
                "wrote {out_path}: {} epoch(s) (indices relative to the resumed trace)",
                report.epochs.len()
            ));
        }
    }
    Ok(ExitCode::SUCCESS)
}

// ---- replay --verify --------------------------------------------------

fn cmd_replay(rest: &[String]) -> Result<ExitCode, String> {
    let args = Args::parse(rest, &["shards"], &["verify", "quiet"])?;
    let [snap_path, trace_path] = args.positionals.as_slice() else {
        return Err("replay needs <snap-file> <trace-file>".into());
    };
    if !args.has("verify") {
        return Err("replay currently requires --verify (for plain replay, use `dna diff`)".into());
    }
    let quiet = args.has("quiet");
    let shards: usize = args.parsed("shards", 1)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let snapshot = load_snapshot(snap_path)?;
    let trace = load_trace(trace_path)?;
    let mut session = ReplaySession::with_shards(snapshot, ReplayMode::Both, shards)
        .map_err(|e| format!("initial analysis: {e}"))?;
    let mut mismatches = 0usize;
    for (i, ep) in trace.epochs.iter().enumerate() {
        let out = session
            .step(&ep.changes)
            .map_err(|e| format!("epoch {i}: {e}"))?;
        let diff = out.differential.as_ref().expect("both mode");
        let scratch = out.scratch.as_ref().expect("both mode");
        // Byte-level comparison of the canonical serialized reports: the
        // strongest form of agreement, and exactly what golden tests pin.
        let a = write_report(&Report {
            epochs: vec![EpochDiff::from_behavior(ep.label.clone(), diff)],
        });
        let b = write_report(&Report {
            epochs: vec![EpochDiff::from_behavior(ep.label.clone(), scratch)],
        });
        let label = ep.label.as_deref().unwrap_or("unlabeled");
        if a == b {
            if !quiet {
                println_pipe(&format!(
                    "epoch {i} [{label}]: OK ({} flow diffs, {} rib, {} fib; cp {:.2?} dp {:.2?})",
                    diff.flows.len(),
                    diff.rib.len(),
                    diff.fib.len(),
                    diff.stats.cp_time,
                    diff.stats.dp_time
                ));
            }
        } else {
            mismatches += 1;
            eprintln!("epoch {i} [{label}]: MISMATCH");
            for (la, lb) in a.lines().zip(b.lines()) {
                if la != lb {
                    eprintln!("  differential: {la}");
                    eprintln!("  from-scratch: {lb}");
                    break;
                }
            }
            let (n_a, n_b) = (a.lines().count(), b.lines().count());
            if n_a != n_b {
                eprintln!("  report lengths differ: {n_a} vs {n_b} lines");
            }
        }
    }
    if mismatches == 0 {
        println_pipe(&format!(
            "replayed {} epoch(s): analyzers byte-identical",
            trace.epochs.len()
        ));
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "replayed {} epoch(s): {mismatches} mismatch(es)",
            trace.epochs.len()
        );
        Ok(ExitCode::from(2))
    }
}
