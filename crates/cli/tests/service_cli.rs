//! Binary-level service test: the real `dna` executable serving a
//! snapshot over a unix socket — trace ingest on stdin, concurrent
//! `dna query --socket` clients — exercising the full
//! process/transport/protocol stack the CI smoke also drives.

#![cfg(unix)]

use std::io::Write;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const DNA: &str = env!("CARGO_BIN_EXE_dna");

fn dna(args: &[&str]) -> std::process::Output {
    Command::new(DNA)
        .args(args)
        .output()
        .expect("dna binary runs")
}

fn dna_ok(args: &[&str]) -> String {
    let out = dna(args);
    assert!(
        out.status.success(),
        "dna {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn serve_over_unix_socket_end_to_end() {
    let dir = std::env::temp_dir().join(format!("dna-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("ft4.snap.dna");
    let trace = dir.join("ft4.trace.dna");
    let sock = dir.join("dna.sock");
    let sock_s = sock.to_str().unwrap();
    dna_ok(&[
        "dump",
        "--topo",
        "fat-tree",
        "--k",
        "4",
        "--routing",
        "ebgp",
        "--seed",
        "77",
        "--out",
        snap.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
        "--epochs",
        "6",
        "--scenarios",
        "link-failure,link-recovery",
    ]);
    // Server: session from the snapshot, trace ingest on stdin, socket
    // for queries. Stdin stays open so ingest ordering is ours to pick.
    let mut server = Command::new(DNA)
        .args([
            "serve",
            snap.to_str().unwrap(),
            "--socket",
            sock_s,
            "--quiet",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("server starts");
    let result = std::panic::catch_unwind(|| {
        let deadline = Instant::now() + Duration::from_secs(30);
        while !sock.exists() {
            assert!(Instant::now() < deadline, "socket never appeared");
            std::thread::sleep(Duration::from_millis(20));
        }
        // Before ingest: zero epochs.
        let out = dna_ok(&["query", "--socket", sock_s, "stats"]);
        assert!(out.contains("epochs 0"), "pre-ingest stats: {out}");
        // A query for a missing session is an error response, exit 2.
        let missing = dna(&["query", "--socket", sock_s, "--session", "nope", "stats"]);
        assert_eq!(missing.status.code(), Some(2));
        assert!(String::from_utf8_lossy(&missing.stdout).contains("error"));
        out
    });
    if let Err(e) = result {
        let _ = server.kill();
        std::panic::resume_unwind(e);
    }
    // Ingest the trace through stdin, then close it; the server must
    // keep serving socket clients afterwards.
    {
        let mut stdin = server.stdin.take().expect("piped stdin");
        stdin
            .write_all(&std::fs::read(&trace).unwrap())
            .expect("trace written");
    }
    let result = std::panic::catch_unwind(|| {
        // Ingest is asynchronous to this client; poll until visible.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let out = dna_ok(&["query", "--socket", sock_s, "stats"]);
            if out.contains("epochs 6") {
                break;
            }
            assert!(Instant::now() < deadline, "ingest never surfaced: {out}");
            std::thread::sleep(Duration::from_millis(20));
        }
        let reach = dna_ok(&[
            "query",
            "--socket",
            sock_s,
            "reach-pair",
            "edge0_0",
            "edge1_1",
        ]);
        assert!(reach.contains("ok reach"), "reach: {reach}");
        let blast = dna_ok(&["query", "--socket", sock_s, "blast", "6"]);
        assert!(blast.contains("ok blast"), "blast: {blast}");
        assert!(blast.contains("window 6"), "blast: {blast}");
        let report = dna_ok(&["query", "--socket", sock_s, "report", "0", "2"]);
        assert!(report.contains("ok report"), "report: {report}");
        assert!(report.contains("epoch 0 label"), "report: {report}");
    });
    let _ = server.kill();
    let _ = server.wait();
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = result {
        std::panic::resume_unwind(e);
    }
}
