//! Binary-level service test: the real `dna` executable serving a
//! snapshot over a unix socket — trace ingest on stdin, concurrent
//! `dna query --socket` clients — exercising the full
//! process/transport/protocol stack the CI smoke also drives.

#![cfg(unix)]

use std::io::Write;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const DNA: &str = env!("CARGO_BIN_EXE_dna");

fn dna(args: &[&str]) -> std::process::Output {
    Command::new(DNA)
        .args(args)
        .output()
        .expect("dna binary runs")
}

fn dna_ok(args: &[&str]) -> String {
    let out = dna(args);
    assert!(
        out.status.success(),
        "dna {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

/// Polls a serving socket until its (default-session) stats report `n`
/// ingested epochs; panics after 30s. Tolerates the socket not having
/// appeared yet — the common startup race for every smoke below.
fn wait_epochs(sock: &std::path::Path, n: u32) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if sock.exists() {
            let out = dna(&["query", "--socket", sock.to_str().unwrap(), "stats"]);
            let text = String::from_utf8_lossy(&out.stdout).to_string();
            if text.contains(&format!("epochs {n} ")) {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "never reached epochs {n}: {text}"
            );
        } else {
            assert!(Instant::now() < deadline, "socket never appeared");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn serve_over_unix_socket_end_to_end() {
    let dir = std::env::temp_dir().join(format!("dna-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("ft4.snap.dna");
    let trace = dir.join("ft4.trace.dna");
    let sock = dir.join("dna.sock");
    let sock_s = sock.to_str().unwrap();
    dna_ok(&[
        "dump",
        "--topo",
        "fat-tree",
        "--k",
        "4",
        "--routing",
        "ebgp",
        "--seed",
        "77",
        "--out",
        snap.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
        "--epochs",
        "6",
        "--scenarios",
        "link-failure,link-recovery",
    ]);
    // Server: session from the snapshot, trace ingest on stdin, socket
    // for queries. Stdin stays open so ingest ordering is ours to pick.
    let mut server = Command::new(DNA)
        .args([
            "serve",
            snap.to_str().unwrap(),
            "--socket",
            sock_s,
            "--quiet",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("server starts");
    let result = std::panic::catch_unwind(|| {
        let deadline = Instant::now() + Duration::from_secs(30);
        while !sock.exists() {
            assert!(Instant::now() < deadline, "socket never appeared");
            std::thread::sleep(Duration::from_millis(20));
        }
        // Before ingest: zero epochs.
        let out = dna_ok(&["query", "--socket", sock_s, "stats"]);
        assert!(out.contains("epochs 0"), "pre-ingest stats: {out}");
        // A query for a missing session is an error response, exit 2.
        let missing = dna(&["query", "--socket", sock_s, "--session", "nope", "stats"]);
        assert_eq!(missing.status.code(), Some(2));
        assert!(String::from_utf8_lossy(&missing.stdout).contains("error"));
        out
    });
    if let Err(e) = result {
        let _ = server.kill();
        std::panic::resume_unwind(e);
    }
    // Ingest the trace through stdin, then close it; the server must
    // keep serving socket clients afterwards.
    {
        let mut stdin = server.stdin.take().expect("piped stdin");
        stdin
            .write_all(&std::fs::read(&trace).unwrap())
            .expect("trace written");
    }
    let result = std::panic::catch_unwind(|| {
        // Ingest is asynchronous to this client; poll until visible.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let out = dna_ok(&["query", "--socket", sock_s, "stats"]);
            if out.contains("epochs 6") {
                break;
            }
            assert!(Instant::now() < deadline, "ingest never surfaced: {out}");
            std::thread::sleep(Duration::from_millis(20));
        }
        let reach = dna_ok(&[
            "query",
            "--socket",
            sock_s,
            "reach-pair",
            "edge0_0",
            "edge1_1",
        ]);
        assert!(reach.contains("ok reach"), "reach: {reach}");
        let blast = dna_ok(&["query", "--socket", sock_s, "blast", "6"]);
        assert!(blast.contains("ok blast"), "blast: {blast}");
        assert!(blast.contains("window 6"), "blast: {blast}");
        let report = dna_ok(&["query", "--socket", sock_s, "report", "0", "2"]);
        assert!(report.contains("ok report"), "report: {report}");
        assert!(report.contains("epoch 0 label"), "report: {report}");
    });
    let _ = server.kill();
    let _ = server.wait();
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = result {
        std::panic::resume_unwind(e);
    }
}

/// `--follow` survives rotation of the tailed file: after ingesting
/// the first half of a trace from a file that never received its `end`
/// sentinel, the file is atomically replaced (rename — new inode) by a
/// fresh trace artifact carrying the remaining epochs. The follower
/// must detect the rotation, re-frame from the new file's first byte,
/// and ingest the rest — the binary-level twin of the
/// `TraceTail::rotate` tests in dna-io.
#[test]
fn follow_survives_rotation_of_the_tailed_file() {
    let dir = std::env::temp_dir().join(format!("dna-rotate-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("ft4.snap.dna");
    let trace = dir.join("ft4.trace.dna");
    dna_ok(&[
        "dump",
        "--topo",
        "fat-tree",
        "--k",
        "4",
        "--routing",
        "ebgp",
        "--seed",
        "55",
        "--out",
        snap.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
        "--epochs",
        "6",
        "--scenarios",
        "link-failure,link-recovery",
    ]);
    // Generation 1 of the followed file holds the header and three
    // epoch blocks with no end sentinel — so only the first two ship
    // (the third never reaches its closing boundary and is discarded
    // with the rotation, exactly like a half-written log line).
    // Generation 2 is a complete fresh artifact re-carrying that
    // never-shipped epoch plus the remaining ones.
    let full = std::fs::read_to_string(&trace).unwrap();
    let header = full.lines().next().unwrap();
    let epoch_starts: Vec<usize> = full.match_indices("\nepoch").map(|(i, _)| i + 1).collect();
    assert_eq!(epoch_starts.len(), 6, "trace must have 6 epochs");
    let gen1 = full[..epoch_starts[3]].to_string();
    let gen2 = format!("{header}\n{}", &full[epoch_starts[2]..]);
    let follow = dir.join("live.trace.dna");
    std::fs::write(&follow, gen1).unwrap();
    let sock = dir.join("dna.sock");
    let sock_s = sock.to_str().unwrap().to_string();
    let mut server = Command::new(DNA)
        .args([
            "serve",
            snap.to_str().unwrap(),
            "--socket",
            &sock_s,
            "--follow",
            follow.to_str().unwrap(),
            "--quiet",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("server starts");
    let result = std::panic::catch_unwind(|| {
        wait_epochs(&sock, 2);
        // Rotate: a complete replacement artifact lands via rename
        // (new inode), the way logrotate and atomic writers do it.
        let tmp = dir.join(".live.trace.dna.new");
        std::fs::write(&tmp, gen2).unwrap();
        std::fs::rename(&tmp, &follow).unwrap();
        wait_epochs(&sock, 6);
        let reach = dna_ok(&[
            "query",
            "--socket",
            &sock_s,
            "reach-pair",
            "edge0_0",
            "edge1_1",
        ]);
        assert!(reach.contains("ok reach"), "reach after rotation: {reach}");
    });
    let _ = server.kill();
    let _ = server.wait();
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = result {
        std::panic::resume_unwind(e);
    }
}

/// Binary-level crash-resume: a server with `--checkpoint-dir` takes
/// an on-demand checkpoint mid-trace, dies by SIGKILL, and a fresh
/// `dna serve --resume` process answers queries byte-identically to a
/// server that never crashed (the in-process form is
/// `tests/checkpoint.rs`; CI drives this same flow as a smoke job).
/// The offline tools agree along the way: `dna check` validates the
/// checkpoint and `dna checkpoint inspect` reads it.
#[test]
fn crash_resume_over_socket_answers_byte_identically() {
    let dir = std::env::temp_dir().join(format!("dna-crash-test-{}", std::process::id()));
    let ckdir = dir.join("ckpts");
    std::fs::create_dir_all(&ckdir).unwrap();
    let snap = dir.join("ft4.snap.dna");
    let trace = dir.join("ft4.trace.dna");
    dna_ok(&[
        "dump",
        "--topo",
        "fat-tree",
        "--k",
        "4",
        "--routing",
        "ebgp",
        "--seed",
        "66",
        "--out",
        snap.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
        "--epochs",
        "6",
        "--scenarios",
        "link-failure,link-recovery",
    ]);
    let queries: &[&[&str]] = &[
        &["reach-pair", "edge0_0", "edge1_1"],
        &["blast", "6"],
        &["report", "0", "6"],
    ];
    let run_queries = |sock: &str| -> Vec<String> {
        queries
            .iter()
            .map(|q| {
                let mut args = vec!["query", "--socket", sock];
                args.extend_from_slice(q);
                dna_ok(&args)
            })
            .collect()
    };
    // Split the trace into two complete artifacts at epoch 3.
    let full = std::fs::read_to_string(&trace).unwrap();
    let header = full.lines().next().unwrap();
    let epoch_starts: Vec<usize> = full.match_indices("\nepoch").map(|(i, _)| i + 1).collect();
    let cut = epoch_starts[3];
    let half1 = format!("{}end\n", &full[..cut]);
    let half2 = format!("{header}\n{}", &full[cut..]);
    // Reference: a server that never crashes, fed the whole trace.
    let sock_ref = dir.join("ref.sock");
    let mut reference = Command::new(DNA)
        .args([
            "serve",
            snap.to_str().unwrap(),
            "--socket",
            sock_ref.to_str().unwrap(),
            "--quiet",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("reference server starts");
    {
        let mut stdin = reference.stdin.take().expect("piped stdin");
        stdin.write_all(full.as_bytes()).expect("trace written");
    }
    let result = std::panic::catch_unwind(|| {
        wait_epochs(&sock_ref, 6);
        let expected = run_queries(sock_ref.to_str().unwrap());

        // Life 1: ingest half, checkpoint on demand, die by SIGKILL.
        let sock1 = dir.join("one.sock");
        let mut life1 = Command::new(DNA)
            .args([
                "serve",
                snap.to_str().unwrap(),
                "--socket",
                sock1.to_str().unwrap(),
                "--checkpoint-dir",
                ckdir.to_str().unwrap(),
                "--quiet",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("first life starts");
        {
            let mut stdin = life1.stdin.take().expect("piped stdin");
            stdin.write_all(half1.as_bytes()).expect("half written");
        }
        wait_epochs(&sock1, 3);
        let ck = dna_ok(&["query", "--socket", sock1.to_str().unwrap(), "checkpoint"]);
        assert!(ck.contains("ok checkpointed"), "checkpoint query: {ck}");
        life1.kill().expect("SIGKILL delivered"); // kill -9
        let _ = life1.wait();

        // The surviving artifact is inspectable and valid.
        let ckpt_file = ckdir.join("ft4.ckpt.dna");
        assert!(ckpt_file.exists(), "checkpoint file written");
        let inspect = dna_ok(&["checkpoint", "inspect", ckpt_file.to_str().unwrap()]);
        assert!(inspect.contains("epochs applied: 3"), "{inspect}");
        let check = dna_ok(&["check", ckpt_file.to_str().unwrap()]);
        assert!(check.contains("ok (checkpoint of session"), "{check}");

        // Life 2: resume, ingest the rest, answer like nothing happened.
        let sock2 = dir.join("two.sock");
        let mut life2 = Command::new(DNA)
            .args([
                "serve",
                "--resume",
                "--checkpoint-dir",
                ckdir.to_str().unwrap(),
                "--socket",
                sock2.to_str().unwrap(),
                "--quiet",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("second life starts");
        {
            let mut stdin = life2.stdin.take().expect("piped stdin");
            stdin.write_all(half2.as_bytes()).expect("rest written");
        }
        let inner = std::panic::catch_unwind(|| {
            wait_epochs(&sock2, 6);
            let resumed = run_queries(sock2.to_str().unwrap());
            assert_eq!(
                resumed, expected,
                "resumed responses diverged from the never-crashed server"
            );
        });
        let _ = life2.kill();
        let _ = life2.wait();
        if let Err(e) = inner {
            std::panic::resume_unwind(e);
        }
    });
    let _ = reference.kill();
    let _ = reference.wait();
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = result {
        std::panic::resume_unwind(e);
    }
}

/// The announce-line contract, pinned at the binary level: even under
/// `--quiet`, a server bound to an ephemeral TCP port prints exactly
/// one `dna serve: listening on tcp <addr>` line to stderr — with port
/// 0 that line is the only way a client learns the port, so it must
/// outrank the quiet flag. The discovered port is then put to work:
/// `dna query --connect` scrapes live `metrics` (and its spans twin)
/// and re-renders the scrape as Prometheus exposition text.
#[test]
fn quiet_server_still_announces_its_tcp_port() {
    use std::io::BufRead;
    let dir = std::env::temp_dir().join(format!("dna-announce-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("ft4.snap.dna");
    let trace = dir.join("ft4.trace.dna");
    dna_ok(&[
        "dump",
        "--topo",
        "fat-tree",
        "--k",
        "4",
        "--routing",
        "ebgp",
        "--seed",
        "88",
        "--out",
        snap.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
        "--epochs",
        "4",
        "--scenarios",
        "link-failure,link-recovery",
    ]);
    let mut server = Command::new(DNA)
        .args([
            "serve",
            snap.to_str().unwrap(),
            "--listen",
            "127.0.0.1:0",
            "--quiet",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("server starts");
    let mut stderr = std::io::BufReader::new(server.stderr.take().expect("piped stderr"));
    let mut announce = String::new();
    stderr
        .read_line(&mut announce)
        .expect("announce line arrives");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let addr = announce
            .strip_prefix("dna serve: listening on tcp ")
            .unwrap_or_else(|| panic!("announce contract broken: {announce:?}"))
            .trim()
            .to_string();

        // Ingest the trace, then scrape telemetry over the announced port.
        {
            let mut stdin = server.stdin.take().expect("piped stdin");
            stdin
                .write_all(&std::fs::read(&trace).unwrap())
                .expect("trace written");
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let out = dna_ok(&["query", "--connect", &addr, "metrics"]);
            assert!(out.starts_with("dna-io v1 metrics"), "not a scrape: {out}");
            if out.contains("counter \"epochs_applied\" session \"ft4\" 4") {
                break;
            }
            assert!(Instant::now() < deadline, "ingest never surfaced: {out}");
            std::thread::sleep(Duration::from_millis(20));
        }
        let spans = dna_ok(&["query", "--connect", &addr, "trace", "2"]);
        assert!(spans.starts_with("dna-io v1 spans"), "not a dump: {spans}");
        assert_eq!(
            spans.matches("\n  span ").count(),
            2,
            "trace 2 must return exactly two rows: {spans}"
        );
        let prom = dna_ok(&["query", "--connect", &addr, "metrics", "--prometheus"]);
        assert!(
            prom.contains("# TYPE dna_epochs_applied counter"),
            "prometheus rendering: {prom}"
        );
        assert!(
            prom.contains("dna_epochs_applied{session=\"ft4\"} 4"),
            "prometheus rendering: {prom}"
        );
        assert!(
            prom.contains("dna_epoch_apply_seconds_bucket{session=\"ft4\",le=\"+Inf\"} 4"),
            "prometheus histogram rendering: {prom}"
        );
        // The health plane over the same port: the server and the
        // (quiesced) session both classify ok.
        let health = dna_ok(&["query", "--connect", &addr, "health"]);
        assert!(
            health.starts_with("dna-io v1 health"),
            "not health: {health}"
        );
        assert!(health.contains("server ok"), "health: {health}");
        assert!(health.contains("session \"ft4\" ok"), "health: {health}");
        // One-shot `dna top` parses whatever the history ring holds —
        // possibly nothing this early — and always exits 0 with the
        // table header.
        let top = dna_ok(&["top", "--connect", &addr]);
        assert!(top.contains("SESSION"), "top header missing: {top}");
    }));
    let _ = server.kill();
    let _ = server.wait();
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = result {
        std::panic::resume_unwind(e);
    }
}

/// The kill switch honors the contract from the other side: a server
/// started with `DNA_OBS_DISABLED=1` answers every telemetry query
/// over TCP with a grammatically valid **empty** artifact — never an
/// error — and the query plane proper (reach etc.) is untouched.
/// Health still reports `server ok`: no data is not a fault.
#[test]
fn disabled_telemetry_answers_empty_artifacts_over_tcp() {
    use std::io::BufRead;
    let dir = std::env::temp_dir().join(format!("dna-disabled-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("ft4.snap.dna");
    let trace = dir.join("ft4.trace.dna");
    dna_ok(&[
        "dump",
        "--topo",
        "fat-tree",
        "--k",
        "4",
        "--routing",
        "ebgp",
        "--seed",
        "99",
        "--out",
        snap.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
        "--epochs",
        "4",
        "--scenarios",
        "link-failure,link-recovery",
    ]);
    let mut server = Command::new(DNA)
        .args([
            "serve",
            snap.to_str().unwrap(),
            "--listen",
            "127.0.0.1:0",
            "--quiet",
        ])
        .env("DNA_OBS_DISABLED", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("server starts");
    let mut stderr = std::io::BufReader::new(server.stderr.take().expect("piped stderr"));
    let mut announce = String::new();
    stderr
        .read_line(&mut announce)
        .expect("announce line arrives");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let addr = announce
            .strip_prefix("dna serve: listening on tcp ")
            .unwrap_or_else(|| panic!("announce contract broken: {announce:?}"))
            .trim()
            .to_string();
        {
            let mut stdin = server.stdin.take().expect("piped stdin");
            stdin
                .write_all(&std::fs::read(&trace).unwrap())
                .expect("trace written");
        }
        // The query plane proper works; poll it to know ingest landed.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let out = dna_ok(&["query", "--connect", &addr, "stats"]);
            if out.contains("epochs 4") {
                break;
            }
            assert!(Instant::now() < deadline, "ingest never surfaced: {out}");
            std::thread::sleep(Duration::from_millis(20));
        }
        // Every telemetry kind: a valid artifact with nothing recorded
        // in it, exit 0. The registry keeps its series (scrapes stay
        // shape-stable) but every value is pinned at zero; the span and
        // history rings drop everything.
        let metrics = dna_ok(&["query", "--connect", &addr, "metrics"]);
        assert!(metrics.starts_with("dna-io v1 metrics"), "{metrics}");
        assert!(
            metrics.contains("counter \"epochs_applied\" session \"ft4\" 0"),
            "disabled counters must scrape as zero: {metrics}"
        );
        for line in metrics.lines() {
            let t = line.trim_start();
            if t.starts_with("counter ") || t.starts_with("gauge ") {
                assert!(t.ends_with(" 0"), "recorded under kill switch: {line}");
            }
        }
        let spans = dna_ok(&["query", "--connect", &addr, "trace"]);
        assert_eq!(spans, "dna-io v1 spans\nend\n", "not empty: {spans}");
        let history = dna_ok(&["query", "--connect", &addr, "history"]);
        assert_eq!(history, "dna-io v1 history\nend\n", "not empty: {history}");
        // Zeroed gauges classify as idle, never as a fault: server ok,
        // session ok.
        let health = dna_ok(&["query", "--connect", &addr, "health"]);
        assert!(health.starts_with("dna-io v1 health"), "{health}");
        assert!(health.contains("server ok"), "{health}");
        assert!(health.contains("session \"ft4\" ok"), "{health}");
        // The pinned query plane is byte-stable with telemetry off.
        let reach = dna_ok(&[
            "query",
            "--connect",
            &addr,
            "reach-pair",
            "edge0_0",
            "edge1_1",
        ]);
        assert!(reach.contains("ok reach"), "reach: {reach}");
    }));
    let _ = server.kill();
    let _ = server.wait();
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = result {
        std::panic::resume_unwind(e);
    }
}

/// Two sessions, two growing trace files, one server: `--follow`
/// tails both files into their named sessions (each on its own engine
/// thread) while socket clients query both — the binary-level form of
/// the concurrent multi-session ingest test.
#[test]
fn follow_ingests_two_growing_traces_concurrently() {
    let dir = std::env::temp_dir().join(format!("dna-follow-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mk = |name: &str, routing: &str, seed: &str| {
        let snap = dir.join(format!("{name}.snap.dna"));
        let trace = dir.join(format!("{name}.trace.dna"));
        dna_ok(&[
            "dump",
            "--topo",
            "fat-tree",
            "--k",
            "4",
            "--routing",
            routing,
            "--seed",
            seed,
            "--out",
            snap.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
            "--epochs",
            "6",
            "--scenarios",
            "link-failure,link-recovery",
        ]);
        (snap, trace)
    };
    let (snap_a, trace_a) = mk("a", "ebgp", "91");
    let (snap_b, trace_b) = mk("b", "ospf", "92");
    // The follow files start with just the artifact header; epochs and
    // the end sentinel arrive while the server is live.
    let follow_a = dir.join("a.follow.dna");
    let follow_b = dir.join("b.follow.dna");
    let full_a = std::fs::read_to_string(&trace_a).unwrap();
    let full_b = std::fs::read_to_string(&trace_b).unwrap();
    let split = |full: &str| {
        let head_len = full.find('\n').unwrap() + 1;
        (full[..head_len].to_string(), full[head_len..].to_string())
    };
    let (head_a, rest_a) = split(&full_a);
    let (head_b, rest_b) = split(&full_b);
    std::fs::write(&follow_a, head_a).unwrap();
    std::fs::write(&follow_b, head_b).unwrap();
    let sock = dir.join("dna.sock");
    let sock_s = sock.to_str().unwrap().to_string();
    let mut server = Command::new(DNA)
        .args([
            "serve",
            &format!("a={}", snap_a.to_str().unwrap()),
            &format!("b={}", snap_b.to_str().unwrap()),
            "--socket",
            &sock_s,
            "--follow",
            &format!("a={}", follow_a.to_str().unwrap()),
            "--follow",
            &format!("b={}", follow_b.to_str().unwrap()),
            "--shards",
            "2",
            "--quiet",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("server starts");
    let result = std::panic::catch_unwind(|| {
        let deadline = Instant::now() + Duration::from_secs(30);
        while !sock.exists() {
            assert!(Instant::now() < deadline, "socket never appeared");
            std::thread::sleep(Duration::from_millis(20));
        }
        // Grow both trace files to completion while the server is live.
        use std::fs::OpenOptions;
        for (path, rest) in [(&follow_a, &rest_a), (&follow_b, &rest_b)] {
            let mut f = OpenOptions::new().append(true).open(path).unwrap();
            f.write_all(rest.as_bytes()).unwrap();
        }
        // Both sessions must absorb their own trace — and only theirs.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let a = dna_ok(&["query", "--socket", &sock_s, "--session", "a", "stats"]);
            let b = dna_ok(&["query", "--socket", &sock_s, "--session", "b", "stats"]);
            if a.contains("epochs 6") && b.contains("epochs 6") {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "follow ingest never surfaced:\n{a}\n{b}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        let sessions = dna_ok(&["query", "--socket", &sock_s, "sessions"]);
        assert!(sessions.contains("session \"a\" epochs 6"), "{sessions}");
        assert!(sessions.contains("session \"b\" epochs 6"), "{sessions}");
    });
    let _ = server.kill();
    let _ = server.wait();
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = result {
        std::panic::resume_unwind(e);
    }
}
