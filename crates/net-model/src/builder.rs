//! Fluent snapshot construction, used by tests, examples and generators.
//!
//! ```
//! use net_model::builder::NetBuilder;
//!
//! let snap = NetBuilder::new()
//!     .router("r1")
//!     .iface("r1", "eth0", "10.0.0.1/31")
//!     .router("r2")
//!     .iface("r2", "eth0", "10.0.0.0/31")
//!     .link("r1", "eth0", "r2", "eth0")
//!     .build();
//! assert!(snap.validate().is_empty());
//! ```

use crate::acl::Acl;
use crate::config::{BgpConfig, BgpNeighbor, DeviceConfig, IfaceConfig, NextHop, StaticRoute};
use crate::ip::{ip, Ipv4Addr, Ipv4Prefix};
use crate::route::RouteMap;
use crate::snapshot::{Endpoint, Link, Snapshot};

/// Builds [`Snapshot`]s incrementally. Methods panic on references to
/// devices that were never declared — builder misuse is a programming
/// error, not a runtime condition.
#[derive(Default)]
pub struct NetBuilder {
    snap: Snapshot,
}

impl NetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn dev(&mut self, name: &str) -> &mut DeviceConfig {
        self.snap
            .devices
            .get_mut(name)
            .unwrap_or_else(|| panic!("device {name:?} not declared"))
    }

    /// Declares a router.
    pub fn router(mut self, name: &str) -> Self {
        self.snap
            .devices
            .insert(name.to_string(), DeviceConfig::default());
        self
    }

    /// Adds an interface; `cidr` is `"a.b.c.d/len"` where the address part
    /// is the interface address.
    pub fn iface(mut self, dev: &str, name: &str, cidr: &str) -> Self {
        let (addr_s, len_s) = cidr.split_once('/').expect("addr/len");
        let addr: Ipv4Addr = ip(addr_s);
        let len: u8 = len_s.parse().expect("prefix length");
        self.dev(dev)
            .interfaces
            .insert(name.to_string(), IfaceConfig::new(addr, len));
        self
    }

    /// Enables OSPF (area 0) on an interface with a cost.
    pub fn ospf(mut self, dev: &str, iface: &str, cost: u32) -> Self {
        let ic = self
            .dev(dev)
            .interfaces
            .get_mut(iface)
            .unwrap_or_else(|| panic!("iface {dev}[{iface}] not declared"));
        *ic = ic.clone().with_ospf(cost);
        self
    }

    /// Marks an OSPF interface passive (advertised, no adjacency).
    pub fn ospf_passive(mut self, dev: &str, iface: &str, cost: u32) -> Self {
        let ic = self
            .dev(dev)
            .interfaces
            .get_mut(iface)
            .unwrap_or_else(|| panic!("iface {dev}[{iface}] not declared"));
        let mut o = ic.clone().with_ospf(cost);
        o.ospf.as_mut().unwrap().passive = true;
        *ic = o;
        self
    }

    /// Adds a physical link between two interfaces.
    pub fn link(mut self, d1: &str, i1: &str, d2: &str, i2: &str) -> Self {
        self.snap
            .links
            .push(Link::new(Endpoint::new(d1, i1), Endpoint::new(d2, i2)));
        self
    }

    /// Starts a BGP process.
    pub fn bgp(mut self, dev: &str, asn: u32, router_id: u32) -> Self {
        self.dev(dev).bgp = Some(BgpConfig {
            asn,
            router_id,
            neighbors: vec![],
            networks: vec![],
        });
        self
    }

    /// Adds a BGP neighbor with optional import/export route-map names.
    pub fn neighbor(
        mut self,
        dev: &str,
        peer: &str,
        remote_as: u32,
        import: Option<&str>,
        export: Option<&str>,
    ) -> Self {
        self.dev(dev)
            .bgp
            .as_mut()
            .expect("bgp process declared first")
            .neighbors
            .push(BgpNeighbor {
                peer: ip(peer),
                remote_as,
                import_policy: import.map(str::to_string),
                export_policy: export.map(str::to_string),
            });
        self
    }

    /// Adds a BGP network statement.
    pub fn network(mut self, dev: &str, prefix: Ipv4Prefix) -> Self {
        self.dev(dev)
            .bgp
            .as_mut()
            .expect("bgp process declared first")
            .networks
            .push(prefix);
        self
    }

    /// Adds a static route toward a next-hop address.
    pub fn static_route(mut self, dev: &str, prefix: Ipv4Prefix, nh: &str) -> Self {
        self.dev(dev).static_routes.push(StaticRoute {
            prefix,
            next_hop: NextHop::Ip(ip(nh)),
            admin_distance: 1,
        });
        self
    }

    /// Adds a discard (null) static route.
    pub fn static_discard(mut self, dev: &str, prefix: Ipv4Prefix) -> Self {
        self.dev(dev).static_routes.push(StaticRoute {
            prefix,
            next_hop: NextHop::Discard,
            admin_distance: 1,
        });
        self
    }

    /// Installs a named route map.
    pub fn route_map(mut self, dev: &str, name: &str, map: RouteMap) -> Self {
        self.dev(dev).route_maps.insert(name.to_string(), map);
        self
    }

    /// Installs a named ACL.
    pub fn acl(mut self, dev: &str, name: &str, acl: Acl) -> Self {
        self.dev(dev).acls.insert(name.to_string(), acl);
        self
    }

    /// Binds an inbound ACL to an interface.
    pub fn acl_in(mut self, dev: &str, iface: &str, acl: &str) -> Self {
        self.dev(dev)
            .interfaces
            .get_mut(iface)
            .unwrap_or_else(|| panic!("iface {dev}[{iface}] not declared"))
            .acl_in = Some(acl.to_string());
        self
    }

    /// Binds an outbound ACL to an interface.
    pub fn acl_out(mut self, dev: &str, iface: &str, acl: &str) -> Self {
        self.dev(dev)
            .interfaces
            .get_mut(iface)
            .unwrap_or_else(|| panic!("iface {dev}[{iface}] not declared"))
            .acl_out = Some(acl.to_string());
        self
    }

    /// Finishes, returning the snapshot.
    pub fn build(self) -> Snapshot {
        self.snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::pfx;

    #[test]
    fn builds_a_valid_two_router_network() {
        let snap = NetBuilder::new()
            .router("r1")
            .iface("r1", "eth0", "10.0.0.1/31")
            .router("r2")
            .iface("r2", "eth0", "10.0.0.0/31")
            .link("r1", "eth0", "r2", "eth0")
            .build();
        assert!(snap.validate().is_empty());
        assert_eq!(snap.device_count(), 2);
        assert_eq!(snap.links.len(), 1);
    }

    #[test]
    fn bgp_and_statics_compose() {
        let snap = NetBuilder::new()
            .router("r1")
            .iface("r1", "eth0", "10.0.0.1/31")
            .bgp("r1", 65001, 1)
            .neighbor("r1", "10.0.0.0", 65002, None, None)
            .network("r1", pfx("192.168.0.0/24"))
            .static_route("r1", pfx("0.0.0.0/0"), "10.0.0.0")
            .static_discard("r1", pfx("192.168.0.0/24"))
            .build();
        let dc = &snap.devices["r1"];
        assert_eq!(dc.bgp.as_ref().unwrap().neighbors.len(), 1);
        assert_eq!(dc.static_routes.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn undeclared_device_panics() {
        NetBuilder::new().iface("ghost", "eth0", "10.0.0.1/24");
    }
}
