//! Vendor-neutral device configuration model (the Batfish-like layer).

use crate::acl::Acl;
use crate::ip::{Ipv4Addr, Ipv4Prefix};
use crate::route::RouteMap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// OSPF settings of one interface.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct OspfIfaceConfig {
    /// Link cost (typically derived from bandwidth; explicit here).
    pub cost: u32,
    /// OSPF area. Only intra-area routing is modeled (single backbone in
    /// practice); areas still gate adjacency formation.
    pub area: u32,
    /// Passive interfaces advertise their prefix but form no adjacency.
    pub passive: bool,
}

/// One configured interface.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct IfaceConfig {
    /// Interface address; the prefix it advertises as connected.
    pub prefix: Ipv4Prefix,
    /// Interface host address (must lie within `prefix`).
    pub addr: Ipv4Addr,
    /// Inbound ACL name, if any.
    pub acl_in: Option<String>,
    /// Outbound ACL name, if any.
    pub acl_out: Option<String>,
    /// OSPF participation.
    pub ospf: Option<OspfIfaceConfig>,
}

impl IfaceConfig {
    /// A bare interface with an address, no ACLs, no OSPF.
    pub fn new(addr: Ipv4Addr, plen: u8) -> Self {
        IfaceConfig {
            prefix: Ipv4Prefix::new(addr, plen),
            addr,
            acl_in: None,
            acl_out: None,
            ospf: None,
        }
    }

    /// Enables OSPF with the given cost in area 0.
    pub fn with_ospf(mut self, cost: u32) -> Self {
        self.ospf = Some(OspfIfaceConfig {
            cost,
            area: 0,
            passive: false,
        });
        self
    }
}

/// Where a static route sends traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NextHop {
    /// Forward to a neighboring address (resolved via connected routes).
    Ip(Ipv4Addr),
    /// Discard (null route).
    Discard,
}

/// A configured static route.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StaticRoute {
    /// Destination prefix.
    pub prefix: Ipv4Prefix,
    /// Next hop.
    pub next_hop: NextHop,
    /// Administrative distance (default 1).
    pub admin_distance: u8,
}

/// One configured BGP neighbor (session endpoint).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BgpNeighbor {
    /// Peer address (an interface address of the neighboring device).
    pub peer: Ipv4Addr,
    /// Peer AS number; equal to the local AS for iBGP.
    pub remote_as: u32,
    /// Import route map name (applied to routes received from this peer).
    pub import_policy: Option<String>,
    /// Export route map name (applied to routes advertised to this peer).
    pub export_policy: Option<String>,
}

/// BGP process configuration of one device.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BgpConfig {
    /// Local AS number.
    pub asn: u32,
    /// Router id, used as the final best-path tie-breaker.
    pub router_id: u32,
    /// Configured neighbors.
    pub neighbors: Vec<BgpNeighbor>,
    /// Locally originated prefixes (network statements).
    pub networks: Vec<Ipv4Prefix>,
}

/// Full configuration of one device.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Interfaces by name.
    pub interfaces: BTreeMap<String, IfaceConfig>,
    /// Static routes.
    pub static_routes: Vec<StaticRoute>,
    /// BGP process, if running.
    pub bgp: Option<BgpConfig>,
    /// Route maps by name.
    pub route_maps: BTreeMap<String, RouteMap>,
    /// ACLs by name.
    pub acls: BTreeMap<String, Acl>,
}

impl DeviceConfig {
    /// Looks up the interface whose configured subnet contains `ip`.
    pub fn iface_for(&self, ip: Ipv4Addr) -> Option<(&String, &IfaceConfig)> {
        self.interfaces
            .iter()
            .find(|(_, ic)| ic.prefix.contains(ip))
    }

    /// Whether any interface carries this exact address.
    pub fn owns_addr(&self, ip: Ipv4Addr) -> bool {
        self.interfaces.values().any(|ic| ic.addr == ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::ip;

    #[test]
    fn iface_lookup_by_subnet() {
        let mut dc = DeviceConfig::default();
        dc.interfaces
            .insert("eth0".into(), IfaceConfig::new(ip("10.0.0.1"), 24));
        dc.interfaces
            .insert("eth1".into(), IfaceConfig::new(ip("10.0.1.1"), 24));
        let (name, _) = dc.iface_for(ip("10.0.1.200")).unwrap();
        assert_eq!(name, "eth1");
        assert!(dc.iface_for(ip("10.0.2.1")).is_none());
        assert!(dc.owns_addr(ip("10.0.0.1")));
        assert!(!dc.owns_addr(ip("10.0.0.2")));
    }

    #[test]
    fn ospf_builder() {
        let ic = IfaceConfig::new(ip("10.0.0.1"), 31).with_ospf(10);
        let o = ic.ospf.unwrap();
        assert_eq!(o.cost, 10);
        assert_eq!(o.area, 0);
        assert!(!o.passive);
    }
}
