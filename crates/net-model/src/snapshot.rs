//! Network snapshots: configurations + physical topology + environment.
//!
//! A [`Snapshot`] is the unit of analysis: everything needed to simulate the
//! control plane and compute the data plane. Change impact analysis compares
//! the behavior of one snapshot against the snapshot obtained by applying a
//! [`crate::change::ChangeSet`].

use crate::config::DeviceConfig;
use crate::ip::Ipv4Addr;
use crate::route::RouteAttrs;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One endpoint of a physical link.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Endpoint {
    /// Device name.
    pub device: String,
    /// Interface name on that device.
    pub iface: String,
}

impl Endpoint {
    /// Convenience constructor.
    pub fn new(device: &str, iface: &str) -> Self {
        Endpoint {
            device: device.to_string(),
            iface: iface.to_string(),
        }
    }
}

/// An undirected physical link between two interfaces. Canonical form keeps
/// the lexicographically smaller endpoint first so equality is orientation-
/// independent.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Link {
    /// First endpoint (canonically the smaller one).
    pub a: Endpoint,
    /// Second endpoint.
    pub b: Endpoint,
}

impl Link {
    /// Builds a link in canonical orientation.
    pub fn new(a: Endpoint, b: Endpoint) -> Self {
        if a <= b {
            Link { a, b }
        } else {
            Link { a: b, b: a }
        }
    }

    /// Whether the link touches the given device.
    pub fn touches(&self, device: &str) -> bool {
        self.a.device == device || self.b.device == device
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] -- {}[{}]",
            self.a.device, self.a.iface, self.b.device, self.b.iface
        )
    }
}

/// A BGP route announced into the network by an external (unmodeled) peer.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ExternalRoute {
    /// Device that hears the announcement.
    pub device: String,
    /// Configured neighbor address the announcement arrives on.
    pub peer: Ipv4Addr,
    /// Announced attributes (prefix, AS path as seen at the session, ...).
    pub attrs: RouteAttrs,
}

/// Runtime environment: which elements are failed, and what the outside
/// world announces.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Environment {
    /// Links administratively or physically down.
    pub down_links: BTreeSet<Link>,
    /// Devices that are down (all their links are implicitly down).
    pub down_devices: BTreeSet<String>,
    /// External BGP announcements.
    pub external_routes: Vec<ExternalRoute>,
}

/// A complete, self-contained network snapshot.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// Device configurations by name.
    pub devices: BTreeMap<String, DeviceConfig>,
    /// Physical links.
    pub links: Vec<Link>,
    /// Failure state and external announcements.
    pub environment: Environment,
}

/// A problem found by [`Snapshot::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidationError {
    /// A link references a device that has no configuration.
    UnknownDevice(String),
    /// A link references an interface missing from the device config.
    UnknownInterface(Endpoint),
    /// The two ends of a link are not in the same subnet.
    SubnetMismatch(Link),
    /// An interface ACL reference has no matching ACL definition.
    MissingAcl {
        /// Device with the dangling reference.
        device: String,
        /// Referenced ACL name.
        name: String,
    },
    /// A BGP neighbor policy reference has no matching route map.
    MissingRouteMap {
        /// Device with the dangling reference.
        device: String,
        /// Referenced route-map name.
        name: String,
    },
    /// A BGP neighbor address is not on any connected subnet of the device.
    UnresolvableNeighbor {
        /// Device whose neighbor cannot be resolved.
        device: String,
        /// The configured peer address.
        peer: Ipv4Addr,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UnknownDevice(d) => write!(f, "link references unknown device {d:?}"),
            ValidationError::UnknownInterface(e) => {
                write!(
                    f,
                    "link references unknown interface {}[{}]",
                    e.device, e.iface
                )
            }
            ValidationError::SubnetMismatch(l) => {
                write!(f, "link endpoints are not in one subnet: {l}")
            }
            ValidationError::MissingAcl { device, name } => {
                write!(f, "{device:?} references undefined ACL {name:?}")
            }
            ValidationError::MissingRouteMap { device, name } => {
                write!(f, "{device:?} references undefined route map {name:?}")
            }
            ValidationError::UnresolvableNeighbor { device, peer } => {
                write!(
                    f,
                    "{device:?} has BGP neighbor {peer} on no connected subnet"
                )
            }
        }
    }
}

impl std::error::Error for ValidationError {}

impl Snapshot {
    /// Links that are actually usable: both endpoints' devices up and the
    /// link itself not failed.
    pub fn up_links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter().filter(|l| {
            !self.environment.down_links.contains(l)
                && !self.environment.down_devices.contains(&l.a.device)
                && !self.environment.down_devices.contains(&l.b.device)
        })
    }

    /// Total number of configured devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Checks referential integrity of the snapshot; an empty result means
    /// the snapshot is well-formed. Simulators accept only valid snapshots.
    pub fn validate(&self) -> Vec<ValidationError> {
        let mut errors = Vec::new();
        for link in &self.links {
            let mut prefixes = Vec::new();
            for ep in [&link.a, &link.b] {
                match self.devices.get(&ep.device) {
                    None => errors.push(ValidationError::UnknownDevice(ep.device.clone())),
                    Some(dc) => match dc.interfaces.get(&ep.iface) {
                        None => errors.push(ValidationError::UnknownInterface(ep.clone())),
                        Some(ic) => prefixes.push(ic.prefix),
                    },
                }
            }
            if prefixes.len() == 2 && prefixes[0] != prefixes[1] {
                errors.push(ValidationError::SubnetMismatch(link.clone()));
            }
        }
        for (name, dc) in &self.devices {
            for ic in dc.interfaces.values() {
                for acl in [&ic.acl_in, &ic.acl_out].into_iter().flatten() {
                    if !dc.acls.contains_key(acl) {
                        errors.push(ValidationError::MissingAcl {
                            device: name.clone(),
                            name: acl.clone(),
                        });
                    }
                }
            }
            if let Some(bgp) = &dc.bgp {
                for n in &bgp.neighbors {
                    for pol in [&n.import_policy, &n.export_policy].into_iter().flatten() {
                        if !dc.route_maps.contains_key(pol) {
                            errors.push(ValidationError::MissingRouteMap {
                                device: name.clone(),
                                name: pol.clone(),
                            });
                        }
                    }
                    if dc.iface_for(n.peer).is_none() {
                        errors.push(ValidationError::UnresolvableNeighbor {
                            device: name.clone(),
                            peer: n.peer,
                        });
                    }
                }
            }
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BgpConfig, BgpNeighbor, IfaceConfig};
    use crate::ip::ip;

    fn two_router_snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        let mut r1 = DeviceConfig::default();
        r1.interfaces
            .insert("eth0".into(), IfaceConfig::new(ip("10.0.0.1"), 31));
        let mut r2 = DeviceConfig::default();
        r2.interfaces
            .insert("eth0".into(), IfaceConfig::new(ip("10.0.0.0"), 31));
        snap.devices.insert("r1".into(), r1);
        snap.devices.insert("r2".into(), r2);
        snap.links.push(Link::new(
            Endpoint::new("r1", "eth0"),
            Endpoint::new("r2", "eth0"),
        ));
        snap
    }

    #[test]
    fn canonical_link_orientation() {
        let l1 = Link::new(Endpoint::new("b", "x"), Endpoint::new("a", "y"));
        let l2 = Link::new(Endpoint::new("a", "y"), Endpoint::new("b", "x"));
        assert_eq!(l1, l2);
        assert_eq!(l1.a.device, "a");
        assert!(l1.touches("a") && l1.touches("b") && !l1.touches("c"));
    }

    #[test]
    fn valid_snapshot_has_no_errors() {
        assert!(two_router_snapshot().validate().is_empty());
    }

    #[test]
    fn up_links_respect_environment() {
        let mut snap = two_router_snapshot();
        assert_eq!(snap.up_links().count(), 1);
        snap.environment.down_links.insert(snap.links[0].clone());
        assert_eq!(snap.up_links().count(), 0);
        snap.environment.down_links.clear();
        snap.environment.down_devices.insert("r2".into());
        assert_eq!(snap.up_links().count(), 0);
    }

    #[test]
    fn validation_finds_dangling_references() {
        let mut snap = two_router_snapshot();
        // Unknown interface on a link.
        snap.links.push(Link::new(
            Endpoint::new("r1", "nope"),
            Endpoint::new("r2", "eth0"),
        ));
        // Missing ACL and route map, unresolvable neighbor.
        {
            let r1 = snap.devices.get_mut("r1").unwrap();
            r1.interfaces.get_mut("eth0").unwrap().acl_in = Some("ghost".into());
            r1.bgp = Some(BgpConfig {
                asn: 65001,
                router_id: 1,
                neighbors: vec![BgpNeighbor {
                    peer: ip("99.9.9.9"),
                    remote_as: 65002,
                    import_policy: Some("missing-rm".into()),
                    export_policy: None,
                }],
                networks: vec![],
            });
        }
        let errors = snap.validate();
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::UnknownInterface(_))));
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::MissingAcl { .. })));
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::MissingRouteMap { .. })));
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::UnresolvableNeighbor { .. })));
    }

    #[test]
    fn subnet_mismatch_detected() {
        let mut snap = two_router_snapshot();
        snap.devices
            .get_mut("r2")
            .unwrap()
            .interfaces
            .insert("eth0".into(), IfaceConfig::new(ip("10.9.9.1"), 24));
        assert!(snap
            .validate()
            .iter()
            .any(|e| matches!(e, ValidationError::SubnetMismatch(_))));
    }
}
