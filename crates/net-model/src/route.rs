//! Route attributes and BGP route-map policies.
//!
//! [`RouteAttrs`] is the vendor-neutral bundle of BGP path attributes that
//! policies match on and transform. [`RouteMap`]s are ordered clause lists
//! with first-match semantics and an implicit deny, mirroring the common
//! vendor behavior Batfish models.

use crate::ip::Ipv4Prefix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// BGP origin code, ordered by preference (IGP < EGP < Incomplete).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum Origin {
    /// Network statement / IGP origin.
    Igp,
    /// EGP origin (legacy).
    Egp,
    /// Redistributed / incomplete.
    Incomplete,
}

/// Vendor-neutral BGP path attributes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct RouteAttrs {
    /// Destination prefix.
    pub prefix: Ipv4Prefix,
    /// Local preference (higher wins). Default 100.
    pub local_pref: u32,
    /// AS path, nearest AS first.
    pub as_path: Vec<u32>,
    /// Multi-exit discriminator (lower wins).
    pub med: u32,
    /// Origin code.
    pub origin: u8,
    /// Community tags.
    pub communities: BTreeSet<u32>,
}

impl RouteAttrs {
    /// A locally originated route for `prefix` with default attributes.
    pub fn originated(prefix: Ipv4Prefix) -> Self {
        RouteAttrs {
            prefix,
            local_pref: 100,
            as_path: Vec::new(),
            med: 0,
            origin: 0,
            communities: BTreeSet::new(),
        }
    }

    /// AS-path length (the tie-breaking metric).
    pub fn as_path_len(&self) -> usize {
        self.as_path.len()
    }

    /// Whether the path already contains an AS (eBGP loop prevention).
    pub fn as_path_contains(&self, asn: u32) -> bool {
        self.as_path.contains(&asn)
    }

    /// Prepends an AS once (used when exporting over an eBGP session).
    pub fn prepend(&self, asn: u32) -> Self {
        let mut out = self.clone();
        out.as_path.insert(0, asn);
        out
    }
}

/// A single match condition in a route-map clause.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RmMatch {
    /// Prefix falls within `covering`, with its length inside `[ge, le]`.
    Prefix {
        /// Covering prefix.
        covering: Ipv4Prefix,
        /// Minimum prefix length (inclusive).
        ge: u8,
        /// Maximum prefix length (inclusive).
        le: u8,
    },
    /// Route carries this community tag.
    Community(u32),
    /// AS path contains this AS number.
    AsPathContains(u32),
}

impl RmMatch {
    /// Exact-prefix convenience constructor.
    pub fn exact_prefix(p: Ipv4Prefix) -> Self {
        RmMatch::Prefix {
            covering: p,
            ge: p.len(),
            le: p.len(),
        }
    }

    fn matches(&self, r: &RouteAttrs) -> bool {
        match self {
            RmMatch::Prefix { covering, ge, le } => {
                covering.covers(r.prefix) && r.prefix.len() >= *ge && r.prefix.len() <= *le
            }
            RmMatch::Community(c) => r.communities.contains(c),
            RmMatch::AsPathContains(asn) => r.as_path_contains(*asn),
        }
    }
}

/// A transformation applied by a permitting clause.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RmSet {
    /// Overwrite local preference.
    LocalPref(u32),
    /// Overwrite MED.
    Med(u32),
    /// Add a community tag.
    AddCommunity(u32),
    /// Remove a community tag.
    DeleteCommunity(u32),
    /// Prepend the given AS `count` times.
    AsPathPrepend {
        /// AS number to prepend.
        asn: u32,
        /// Number of copies.
        count: u8,
    },
}

impl RmSet {
    fn apply(&self, r: &mut RouteAttrs) {
        match self {
            RmSet::LocalPref(v) => r.local_pref = *v,
            RmSet::Med(v) => r.med = *v,
            RmSet::AddCommunity(c) => {
                r.communities.insert(*c);
            }
            RmSet::DeleteCommunity(c) => {
                r.communities.remove(c);
            }
            RmSet::AsPathPrepend { asn, count } => {
                for _ in 0..*count {
                    r.as_path.insert(0, *asn);
                }
            }
        }
    }
}

/// Permit (with transformations) or deny.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RmAction {
    /// Accept the route, applying the clause's set actions.
    Permit,
    /// Reject the route.
    Deny,
}

/// One route-map clause: all matches must hold (AND); an empty match list
/// matches everything.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RouteMapClause {
    /// Evaluation order (ascending).
    pub seq: u32,
    /// Conjunctive match conditions.
    pub matches: Vec<RmMatch>,
    /// Permit or deny on match.
    pub action: RmAction,
    /// Transformations applied on permit.
    pub sets: Vec<RmSet>,
}

/// An ordered route map with first-match semantics and implicit deny.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct RouteMap {
    /// Clauses; kept sorted by `seq`.
    pub clauses: Vec<RouteMapClause>,
}

impl RouteMap {
    /// A route map that permits everything unchanged.
    pub fn permit_all() -> Self {
        RouteMap {
            clauses: vec![RouteMapClause {
                seq: u32::MAX,
                matches: vec![],
                action: RmAction::Permit,
                sets: vec![],
            }],
        }
    }

    /// Adds a clause, keeping clauses sorted by sequence number.
    pub fn add(&mut self, clause: RouteMapClause) {
        let pos = self.clauses.partition_point(|c| c.seq <= clause.seq);
        self.clauses.insert(pos, clause);
    }

    /// Evaluates the map: `Some(transformed)` if permitted, `None` if denied
    /// (explicitly or by the implicit trailing deny).
    pub fn evaluate(&self, route: &RouteAttrs) -> Option<RouteAttrs> {
        for clause in &self.clauses {
            if clause.matches.iter().all(|m| m.matches(route)) {
                return match clause.action {
                    RmAction::Deny => None,
                    RmAction::Permit => {
                        let mut out = route.clone();
                        for s in &clause.sets {
                            s.apply(&mut out);
                        }
                        Some(out)
                    }
                };
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::pfx;

    fn route(p: &str) -> RouteAttrs {
        RouteAttrs::originated(pfx(p))
    }

    #[test]
    fn permit_all_is_identity() {
        let r = route("10.0.0.0/24");
        assert_eq!(RouteMap::permit_all().evaluate(&r), Some(r));
    }

    #[test]
    fn implicit_deny() {
        let mut rm = RouteMap::default();
        rm.add(RouteMapClause {
            seq: 10,
            matches: vec![RmMatch::exact_prefix(pfx("10.0.0.0/24"))],
            action: RmAction::Permit,
            sets: vec![],
        });
        assert!(rm.evaluate(&route("10.0.0.0/24")).is_some());
        assert!(rm.evaluate(&route("10.0.1.0/24")).is_none());
    }

    #[test]
    fn first_match_applies_sets() {
        let mut rm = RouteMap::default();
        rm.add(RouteMapClause {
            seq: 10,
            matches: vec![RmMatch::Prefix {
                covering: pfx("10.0.0.0/8"),
                ge: 16,
                le: 24,
            }],
            action: RmAction::Permit,
            sets: vec![RmSet::LocalPref(200), RmSet::AddCommunity(65001)],
        });
        rm.add(RouteMapClause {
            seq: 20,
            matches: vec![],
            action: RmAction::Permit,
            sets: vec![RmSet::LocalPref(50)],
        });
        let hit = rm.evaluate(&route("10.1.0.0/16")).unwrap();
        assert_eq!(hit.local_pref, 200);
        assert!(hit.communities.contains(&65001));
        // Too short for the ge bound: falls to the catch-all clause.
        let miss = rm.evaluate(&route("10.0.0.0/8")).unwrap();
        assert_eq!(miss.local_pref, 50);
    }

    #[test]
    fn community_and_aspath_matches() {
        let mut rm = RouteMap::default();
        rm.add(RouteMapClause {
            seq: 10,
            matches: vec![RmMatch::Community(777), RmMatch::AsPathContains(65000)],
            action: RmAction::Deny,
            sets: vec![],
        });
        rm.add(RouteMapClause {
            seq: 20,
            matches: vec![],
            action: RmAction::Permit,
            sets: vec![],
        });
        let mut r = route("1.0.0.0/8");
        r.communities.insert(777);
        r.as_path = vec![65000, 65001];
        assert!(rm.evaluate(&r).is_none());
        r.as_path = vec![65001]; // only one of the two conditions holds now
        assert!(rm.evaluate(&r).is_some());
    }

    #[test]
    fn prepend_and_delete_community() {
        let mut rm = RouteMap::default();
        rm.add(RouteMapClause {
            seq: 10,
            matches: vec![],
            action: RmAction::Permit,
            sets: vec![
                RmSet::AsPathPrepend {
                    asn: 65009,
                    count: 3,
                },
                RmSet::DeleteCommunity(5),
                RmSet::Med(42),
            ],
        });
        let mut r = route("1.0.0.0/8");
        r.communities.insert(5);
        let out = rm.evaluate(&r).unwrap();
        assert_eq!(out.as_path, vec![65009, 65009, 65009]);
        assert!(!out.communities.contains(&5));
        assert_eq!(out.med, 42);
    }

    #[test]
    fn route_attrs_helpers() {
        let r = route("10.0.0.0/24");
        assert_eq!(r.as_path_len(), 0);
        let r2 = r.prepend(65010);
        assert_eq!(r2.as_path, vec![65010]);
        assert!(r2.as_path_contains(65010));
        assert!(!r2.as_path_contains(1));
    }
}
