//! Device-shard partitioning of a snapshot.
//!
//! The differential pipeline's bring-up cost decomposes along the
//! network's device partition: per-device fact encoding, rule input
//! generation and baseline reachability are independent between devices
//! until the global routing fixpoint merges them. A [`ShardPlan`] is the
//! deterministic partition the sharded init pipeline fans out over —
//! every device lands in exactly one shard, and every global element
//! (link, failure, external route) is owned by exactly one shard (that
//! of its anchoring device), so the union of per-shard fact sets is a
//! permutation of the unsharded fact set.

use crate::snapshot::Snapshot;
use std::collections::BTreeMap;

/// A deterministic partition of a snapshot's devices into shards.
///
/// Construction balances shards by an estimate of per-device encoding
/// work (interfaces, routes, ACL entries, BGP sessions) rather than raw
/// device count, so fat edge devices don't pile into one worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Device names per shard; each inner list is sorted, lists are
    /// disjoint, and their union is the snapshot's device set.
    groups: Vec<Vec<String>>,
    /// Reverse index: device name → shard index.
    owner: BTreeMap<String, usize>,
}

/// Work estimate used to balance shards: one unit per device plus one
/// per interface, static route, ACL entry, BGP neighbor and route-map
/// clause — the elements the encoder walks during bring-up.
fn device_weight(dc: &crate::config::DeviceConfig) -> usize {
    1 + dc.interfaces.len()
        + dc.static_routes.len()
        + dc.acls.values().map(|a| a.entries.len()).sum::<usize>()
        + dc.bgp.as_ref().map_or(0, |b| b.neighbors.len())
        + dc.route_maps
            .values()
            .map(|rm| rm.clauses.len())
            .sum::<usize>()
}

impl ShardPlan {
    /// Partitions `snapshot` into at most `shards` balanced shards
    /// (clamped to `[1, device_count]`; an empty snapshot yields one
    /// empty shard). Deterministic: longest-processing-time greedy over
    /// devices sorted by descending weight, name-tiebroken.
    pub fn partition(snapshot: &Snapshot, shards: usize) -> ShardPlan {
        let n = shards.clamp(1, snapshot.devices.len().max(1));
        let mut devices: Vec<(&String, usize)> = snapshot
            .devices
            .iter()
            .map(|(name, dc)| (name, device_weight(dc)))
            .collect();
        devices.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let mut groups: Vec<Vec<String>> = vec![Vec::new(); n];
        let mut loads = vec![0usize; n];
        for (name, weight) in devices {
            let lightest = (0..n).min_by_key(|&i| (loads[i], i)).expect("n >= 1");
            loads[lightest] += weight;
            groups[lightest].push(name.clone());
        }
        for g in &mut groups {
            g.sort();
        }
        ShardPlan::from_groups(groups)
    }

    /// Builds a plan from explicit device groups (tests, property
    /// checks). No validation against a snapshot: a device missing from
    /// every group is simply unowned — [`ShardPlan::owner_of`] falls
    /// back to shard 0 for it, and the sharded fact encoder has shard 0
    /// adopt such devices so partial plans still cover the snapshot.
    pub fn from_groups(groups: Vec<Vec<String>>) -> ShardPlan {
        let groups = if groups.is_empty() {
            vec![Vec::new()]
        } else {
            groups
        };
        let mut owner = BTreeMap::new();
        for (i, g) in groups.iter().enumerate() {
            for d in g {
                owner.entry(d.clone()).or_insert(i);
            }
        }
        ShardPlan { groups, owner }
    }

    /// Number of shards (at least 1).
    pub fn shard_count(&self) -> usize {
        self.groups.len()
    }

    /// The device groups, by shard index.
    pub fn groups(&self) -> &[Vec<String>] {
        &self.groups
    }

    /// The shard owning `device`; unknown devices fall back to shard 0
    /// so ownership is total (validation rejects dangling references
    /// before any engine sees them).
    pub fn owner_of(&self, device: &str) -> usize {
        self.owner.get(device).copied().unwrap_or(0)
    }

    /// Whether some group explicitly claims `device` (false for the
    /// devices [`ShardPlan::owner_of`] covers only by fallback).
    pub fn owns(&self, device: &str) -> bool {
        self.owner.contains_key(device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;

    fn snap() -> Snapshot {
        let mut b = NetBuilder::new();
        for i in 0..7 {
            let r = format!("r{i}");
            b = b.router(&r).iface(&r, "lan", &format!("10.{i}.0.1/24"));
        }
        b.build()
    }

    #[test]
    fn partition_covers_every_device_exactly_once() {
        let s = snap();
        for n in [1, 2, 3, 7, 50] {
            let plan = ShardPlan::partition(&s, n);
            assert!(plan.shard_count() >= 1 && plan.shard_count() <= 7);
            let mut all: Vec<&String> = plan.groups().iter().flatten().collect();
            all.sort();
            let expected: Vec<&String> = s.devices.keys().collect();
            assert_eq!(all, expected, "partition into {n} must cover all devices");
            for g in plan.groups() {
                assert!(g.windows(2).all(|w| w[0] < w[1]), "groups stay sorted");
                for d in g {
                    assert_eq!(&plan.groups()[plan.owner_of(d)], g);
                }
            }
        }
    }

    #[test]
    fn partition_is_deterministic_and_balanced() {
        let s = snap();
        let a = ShardPlan::partition(&s, 3);
        let b = ShardPlan::partition(&s, 3);
        assert_eq!(a, b);
        let sizes: Vec<usize> = a.groups().iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 7);
        assert!(sizes.iter().all(|&n| (2..=3).contains(&n)), "{sizes:?}");
    }

    #[test]
    fn degenerate_plans_are_total() {
        let empty = ShardPlan::partition(&Snapshot::default(), 4);
        assert_eq!(empty.shard_count(), 1);
        assert_eq!(empty.owner_of("ghost"), 0);
        let explicit = ShardPlan::from_groups(vec![]);
        assert_eq!(explicit.shard_count(), 1);
    }
}
