//! IPv4 addresses and prefixes.
//!
//! Addresses are plain `u32`s in host byte order wrapped for type safety;
//! prefixes are `(address, length)` pairs kept in canonical (masked) form so
//! equality and hashing behave as expected.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4 address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most significant first.
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Error parsing an address or prefix from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIpError(pub String);

impl fmt::Display for ParseIpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 text: {}", self.0)
    }
}

impl std::error::Error for ParseIpError {}

impl FromStr for Ipv4Addr {
    type Err = ParseIpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(ParseIpError(s.to_string()));
        }
        let mut v = 0u32;
        for p in parts {
            let o: u8 = p.parse().map_err(|_| ParseIpError(s.to_string()))?;
            v = (v << 8) | o as u32;
        }
        Ok(Ipv4Addr(v))
    }
}

/// An IPv4 prefix in canonical form: all bits beyond the length are zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    addr: Ipv4Addr,
    len: u8,
}

impl Ipv4Prefix {
    /// Builds a prefix, masking the address to canonical form.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        Ipv4Prefix {
            addr: Ipv4Addr(addr.0 & Self::mask(len)),
            len,
        }
    }

    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Ipv4Prefix = Ipv4Prefix {
        addr: Ipv4Addr(0),
        len: 0,
    };

    /// A /32 host prefix.
    pub fn host(addr: Ipv4Addr) -> Self {
        Ipv4Prefix { addr, len: 32 }
    }

    /// The network address.
    pub fn addr(self) -> Ipv4Addr {
        self.addr
    }

    /// The prefix length.
    // Not a container: `len` is the CIDR mask length, so no `is_empty`.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default prefix.
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// The netmask for a given length.
    pub fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// First address covered (the network address).
    pub fn first(self) -> u32 {
        self.addr.0
    }

    /// Last address covered (the broadcast address).
    pub fn last(self) -> u32 {
        self.addr.0 | !Self::mask(self.len)
    }

    /// Whether the prefix covers the address.
    pub fn contains(self, ip: Ipv4Addr) -> bool {
        ip.0 & Self::mask(self.len) == self.addr.0
    }

    /// Whether this prefix covers every address of `other` (is a supernet
    /// of, or equal to, `other`).
    pub fn covers(self, other: Ipv4Prefix) -> bool {
        self.len <= other.len && self.contains(other.addr)
    }

    /// Whether the two prefixes share any address.
    pub fn overlaps(self, other: Ipv4Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The two halves of this prefix, or `None` for a /32.
    pub fn split(self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let left = Ipv4Prefix {
            addr: self.addr,
            len: self.len + 1,
        };
        let right = Ipv4Prefix {
            addr: Ipv4Addr(self.addr.0 | (1 << (31 - self.len))),
            len: self.len + 1,
        };
        Some((left, right))
    }

    /// The `i`-th host address inside the prefix (0-based from the network
    /// address), useful for assigning interface addresses in generators.
    pub fn nth_host(self, i: u32) -> Ipv4Addr {
        debug_assert!(self.first() + i <= self.last(), "host index out of range");
        Ipv4Addr(self.addr.0 + i)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Ipv4Prefix {
    type Err = ParseIpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ip, len) = s.split_once('/').ok_or_else(|| ParseIpError(s.into()))?;
        let addr: Ipv4Addr = ip.parse()?;
        let len: u8 = len.parse().map_err(|_| ParseIpError(s.into()))?;
        if len > 32 {
            return Err(ParseIpError(s.into()));
        }
        Ok(Ipv4Prefix::new(addr, len))
    }
}

/// Convenience constructor used pervasively in tests and generators.
///
/// # Panics
/// Panics on malformed text — intended for literals.
pub fn pfx(s: &str) -> Ipv4Prefix {
    s.parse()
        .unwrap_or_else(|_| panic!("bad prefix literal {s:?}"))
}

/// Convenience address constructor for literals.
///
/// # Panics
/// Panics on malformed text — intended for literals.
pub fn ip(s: &str) -> Ipv4Addr {
    s.parse()
        .unwrap_or_else(|_| panic!("bad address literal {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_roundtrip() {
        let a = ip("192.168.1.42");
        assert_eq!(a.octets(), [192, 168, 1, 42]);
        assert_eq!(a.to_string(), "192.168.1.42");
        assert_eq!(Ipv4Addr::new(192, 168, 1, 42), a);
    }

    #[test]
    fn bad_addresses_rejected() {
        assert!("1.2.3".parse::<Ipv4Addr>().is_err());
        assert!("1.2.3.256".parse::<Ipv4Addr>().is_err());
        assert!("a.b.c.d".parse::<Ipv4Addr>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn prefix_canonicalizes() {
        let p = Ipv4Prefix::new(ip("10.1.2.3"), 16);
        assert_eq!(p.to_string(), "10.1.0.0/16");
        assert_eq!(pfx("10.1.2.3/16"), pfx("10.1.0.0/16"));
    }

    #[test]
    fn contains_and_covers() {
        let p = pfx("10.1.0.0/16");
        assert!(p.contains(ip("10.1.255.255")));
        assert!(!p.contains(ip("10.2.0.0")));
        assert!(p.covers(pfx("10.1.2.0/24")));
        assert!(!p.covers(pfx("10.0.0.0/8")));
        assert!(p.covers(p));
        assert!(Ipv4Prefix::DEFAULT.covers(p));
    }

    #[test]
    fn overlap_is_symmetric_nesting() {
        let a = pfx("10.0.0.0/8");
        let b = pfx("10.5.0.0/16");
        let c = pfx("11.0.0.0/8");
        assert!(a.overlaps(b) && b.overlaps(a));
        assert!(!a.overlaps(c));
    }

    #[test]
    fn split_halves() {
        let (l, r) = pfx("10.0.0.0/8").split().unwrap();
        assert_eq!(l, pfx("10.0.0.0/9"));
        assert_eq!(r, pfx("10.128.0.0/9"));
        assert!(pfx("1.2.3.4/32").split().is_none());
    }

    #[test]
    fn first_last_and_hosts() {
        let p = pfx("10.0.0.0/30");
        assert_eq!(p.first(), ip("10.0.0.0").0);
        assert_eq!(p.last(), ip("10.0.0.3").0);
        assert_eq!(p.nth_host(1), ip("10.0.0.1"));
    }

    #[test]
    fn default_route() {
        assert!(Ipv4Prefix::DEFAULT.is_default());
        assert!(Ipv4Prefix::DEFAULT.contains(ip("255.255.255.255")));
    }
}
