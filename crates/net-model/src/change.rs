//! Change sets: the unit of "what happened to the network".
//!
//! A [`ChangeSet`] is an ordered list of primitive [`Change`]s covering the
//! usual operational taxonomy: link/device failures and recoveries, ACL
//! edits, route-map edits, static route edits, BGP origination changes and
//! external announcement churn. [`ChangeSet::apply`] produces the modified
//! snapshot; the differential engine instead translates the same changes
//! into input-relation deltas.

use crate::acl::AclEntry;
use crate::config::{NextHop, StaticRoute};
use crate::ip::{Ipv4Addr, Ipv4Prefix};
use crate::route::RouteMap;
use crate::snapshot::{ExternalRoute, Link, Snapshot};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One primitive configuration or environment change.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Change {
    /// Fail a link.
    LinkDown(Link),
    /// Recover a link.
    LinkUp(Link),
    /// Fail a device (all its links go down with it).
    DeviceDown(String),
    /// Recover a device.
    DeviceUp(String),
    /// Add an entry to a named ACL (creating the ACL if absent).
    AclEntryAdd {
        /// Device to edit.
        device: String,
        /// ACL name.
        acl: String,
        /// Entry to add.
        entry: AclEntry,
    },
    /// Remove an ACL entry by sequence number.
    AclEntryRemove {
        /// Device to edit.
        device: String,
        /// ACL name.
        acl: String,
        /// Sequence number to remove.
        seq: u32,
    },
    /// Bind or unbind an inbound ACL on an interface.
    SetAclIn {
        /// Device to edit.
        device: String,
        /// Interface name.
        iface: String,
        /// ACL name, or `None` to unbind.
        acl: Option<String>,
    },
    /// Bind or unbind an outbound ACL on an interface.
    SetAclOut {
        /// Device to edit.
        device: String,
        /// Interface name.
        iface: String,
        /// ACL name, or `None` to unbind.
        acl: Option<String>,
    },
    /// Replace (or create) a named route map.
    SetRouteMap {
        /// Device to edit.
        device: String,
        /// Route-map name.
        name: String,
        /// New contents.
        map: RouteMap,
    },
    /// Add a static route.
    StaticRouteAdd {
        /// Device to edit.
        device: String,
        /// Route to add.
        route: StaticRoute,
    },
    /// Remove a static route (matched on prefix + next hop).
    StaticRouteRemove {
        /// Device to edit.
        device: String,
        /// Destination prefix of the route to remove.
        prefix: Ipv4Prefix,
        /// Next hop of the route to remove.
        next_hop: NextHop,
    },
    /// Start originating a prefix in BGP (network statement).
    BgpNetworkAdd {
        /// Device to edit.
        device: String,
        /// Prefix to originate.
        prefix: Ipv4Prefix,
    },
    /// Stop originating a prefix in BGP.
    BgpNetworkRemove {
        /// Device to edit.
        device: String,
        /// Prefix to withdraw from origination.
        prefix: Ipv4Prefix,
    },
    /// An external peer announces a route.
    ExternalAnnounce(ExternalRoute),
    /// An external peer withdraws a previously announced route
    /// (matched on device + peer + prefix).
    ExternalWithdraw {
        /// Device that heard the announcement.
        device: String,
        /// Neighbor address.
        peer: Ipv4Addr,
        /// Announced prefix to withdraw.
        prefix: Ipv4Prefix,
    },
    /// Change the OSPF cost of an interface.
    SetOspfCost {
        /// Device to edit.
        device: String,
        /// Interface name.
        iface: String,
        /// New cost.
        cost: u32,
    },
}

impl fmt::Display for Change {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Change::LinkDown(l) => write!(f, "link down: {l}"),
            Change::LinkUp(l) => write!(f, "link up: {l}"),
            Change::DeviceDown(d) => write!(f, "device down: {d}"),
            Change::DeviceUp(d) => write!(f, "device up: {d}"),
            Change::AclEntryAdd { device, acl, entry } => {
                write!(f, "{device}: acl {acl} += seq {}", entry.seq)
            }
            Change::AclEntryRemove { device, acl, seq } => {
                write!(f, "{device}: acl {acl} -= seq {seq}")
            }
            Change::SetAclIn { device, iface, acl } => {
                write!(f, "{device}[{iface}]: acl-in = {acl:?}")
            }
            Change::SetAclOut { device, iface, acl } => {
                write!(f, "{device}[{iface}]: acl-out = {acl:?}")
            }
            Change::SetRouteMap { device, name, .. } => {
                write!(f, "{device}: route-map {name} replaced")
            }
            Change::StaticRouteAdd { device, route } => {
                write!(f, "{device}: static {} added", route.prefix)
            }
            Change::StaticRouteRemove { device, prefix, .. } => {
                write!(f, "{device}: static {prefix} removed")
            }
            Change::BgpNetworkAdd { device, prefix } => {
                write!(f, "{device}: bgp network {prefix} added")
            }
            Change::BgpNetworkRemove { device, prefix } => {
                write!(f, "{device}: bgp network {prefix} removed")
            }
            Change::ExternalAnnounce(e) => {
                write!(
                    f,
                    "{}: external announce {} via {}",
                    e.device, e.attrs.prefix, e.peer
                )
            }
            Change::ExternalWithdraw {
                device,
                peer,
                prefix,
            } => {
                write!(f, "{device}: external withdraw {prefix} via {peer}")
            }
            Change::SetOspfCost {
                device,
                iface,
                cost,
            } => {
                write!(f, "{device}[{iface}]: ospf cost = {cost}")
            }
        }
    }
}

/// Error applying a change to a snapshot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ApplyError {
    /// Referenced device does not exist.
    NoSuchDevice(String),
    /// Referenced interface does not exist on the device.
    NoSuchInterface {
        /// Device name.
        device: String,
        /// Interface name.
        iface: String,
    },
    /// Referenced link does not exist in the topology.
    NoSuchLink(Link),
    /// Element to remove was not present.
    NotPresent(String),
    /// Device has no BGP process configured.
    NoBgpProcess(String),
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::NoSuchDevice(d) => write!(f, "no such device {d:?}"),
            ApplyError::NoSuchInterface { device, iface } => {
                write!(f, "no such interface {device}[{iface}]")
            }
            ApplyError::NoSuchLink(l) => write!(f, "no such link {l}"),
            ApplyError::NotPresent(what) => write!(f, "not present: {what}"),
            ApplyError::NoBgpProcess(d) => write!(f, "device {d:?} runs no BGP"),
        }
    }
}

impl std::error::Error for ApplyError {}

/// An ordered list of changes applied atomically.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct ChangeSet {
    /// The changes, in application order.
    pub changes: Vec<Change>,
}

impl ChangeSet {
    /// A change set with a single change.
    pub fn single(change: Change) -> Self {
        ChangeSet {
            changes: vec![change],
        }
    }

    /// Builds a change set from a list.
    pub fn of(changes: Vec<Change>) -> Self {
        ChangeSet { changes }
    }

    /// Number of primitive changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Whether the change set is empty.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Applies all changes to a copy of the snapshot, returning the modified
    /// snapshot. Fails (without partial effects visible to the caller) if
    /// any change references a missing element.
    pub fn apply(&self, snapshot: &Snapshot) -> Result<Snapshot, ApplyError> {
        let mut snap = snapshot.clone();
        for change in &self.changes {
            apply_one(&mut snap, change)?;
        }
        Ok(snap)
    }
}

impl Change {
    /// Applies this change to the snapshot **in place**. On error the
    /// snapshot is unchanged (each change validates before mutating), but
    /// callers sequencing several changes who need all-or-nothing semantics
    /// across the set should work on a copy — see [`ChangeSet::apply`].
    /// Incremental engines use this to advance a mirror snapshot one change
    /// at a time without cloning the whole snapshot per change.
    pub fn apply_to(&self, snap: &mut Snapshot) -> Result<(), ApplyError> {
        apply_one(snap, self)
    }
}

fn device_mut<'a>(
    snap: &'a mut Snapshot,
    name: &str,
) -> Result<&'a mut crate::config::DeviceConfig, ApplyError> {
    snap.devices
        .get_mut(name)
        .ok_or_else(|| ApplyError::NoSuchDevice(name.to_string()))
}

fn apply_one(snap: &mut Snapshot, change: &Change) -> Result<(), ApplyError> {
    match change {
        Change::LinkDown(l) => {
            if !snap.links.contains(l) {
                return Err(ApplyError::NoSuchLink(l.clone()));
            }
            snap.environment.down_links.insert(l.clone());
        }
        Change::LinkUp(l) => {
            if !snap.links.contains(l) {
                return Err(ApplyError::NoSuchLink(l.clone()));
            }
            snap.environment.down_links.remove(l);
        }
        Change::DeviceDown(d) => {
            if !snap.devices.contains_key(d) {
                return Err(ApplyError::NoSuchDevice(d.clone()));
            }
            snap.environment.down_devices.insert(d.clone());
        }
        Change::DeviceUp(d) => {
            if !snap.devices.contains_key(d) {
                return Err(ApplyError::NoSuchDevice(d.clone()));
            }
            snap.environment.down_devices.remove(d);
        }
        Change::AclEntryAdd { device, acl, entry } => {
            let dc = device_mut(snap, device)?;
            dc.acls.entry(acl.clone()).or_default().add(entry.clone());
        }
        Change::AclEntryRemove { device, acl, seq } => {
            let dc = device_mut(snap, device)?;
            let a = dc
                .acls
                .get_mut(acl)
                .ok_or_else(|| ApplyError::NotPresent(format!("acl {acl}")))?;
            a.remove_seq(*seq)
                .ok_or_else(|| ApplyError::NotPresent(format!("acl {acl} seq {seq}")))?;
        }
        Change::SetAclIn { device, iface, acl } => {
            let dc = device_mut(snap, device)?;
            let ic = dc
                .interfaces
                .get_mut(iface)
                .ok_or_else(|| ApplyError::NoSuchInterface {
                    device: device.clone(),
                    iface: iface.clone(),
                })?;
            ic.acl_in = acl.clone();
        }
        Change::SetAclOut { device, iface, acl } => {
            let dc = device_mut(snap, device)?;
            let ic = dc
                .interfaces
                .get_mut(iface)
                .ok_or_else(|| ApplyError::NoSuchInterface {
                    device: device.clone(),
                    iface: iface.clone(),
                })?;
            ic.acl_out = acl.clone();
        }
        Change::SetRouteMap { device, name, map } => {
            let dc = device_mut(snap, device)?;
            dc.route_maps.insert(name.clone(), map.clone());
        }
        Change::StaticRouteAdd { device, route } => {
            let dc = device_mut(snap, device)?;
            dc.static_routes.push(route.clone());
        }
        Change::StaticRouteRemove {
            device,
            prefix,
            next_hop,
        } => {
            let dc = device_mut(snap, device)?;
            let pos = dc
                .static_routes
                .iter()
                .position(|r| r.prefix == *prefix && r.next_hop == *next_hop)
                .ok_or_else(|| ApplyError::NotPresent(format!("static {prefix}")))?;
            dc.static_routes.remove(pos);
        }
        Change::BgpNetworkAdd { device, prefix } => {
            let dc = device_mut(snap, device)?;
            let bgp = dc
                .bgp
                .as_mut()
                .ok_or_else(|| ApplyError::NoBgpProcess(device.clone()))?;
            if !bgp.networks.contains(prefix) {
                bgp.networks.push(*prefix);
            }
        }
        Change::BgpNetworkRemove { device, prefix } => {
            let dc = device_mut(snap, device)?;
            let bgp = dc
                .bgp
                .as_mut()
                .ok_or_else(|| ApplyError::NoBgpProcess(device.clone()))?;
            let pos = bgp
                .networks
                .iter()
                .position(|p| p == prefix)
                .ok_or_else(|| ApplyError::NotPresent(format!("bgp network {prefix}")))?;
            bgp.networks.remove(pos);
        }
        Change::ExternalAnnounce(e) => {
            if !snap.devices.contains_key(&e.device) {
                return Err(ApplyError::NoSuchDevice(e.device.clone()));
            }
            snap.environment.external_routes.push(e.clone());
        }
        Change::ExternalWithdraw {
            device,
            peer,
            prefix,
        } => {
            let pos = snap
                .environment
                .external_routes
                .iter()
                .position(|e| e.device == *device && e.peer == *peer && e.attrs.prefix == *prefix)
                .ok_or_else(|| ApplyError::NotPresent(format!("external {prefix}")))?;
            snap.environment.external_routes.remove(pos);
        }
        Change::SetOspfCost {
            device,
            iface,
            cost,
        } => {
            let dc = device_mut(snap, device)?;
            let ic = dc
                .interfaces
                .get_mut(iface)
                .ok_or_else(|| ApplyError::NoSuchInterface {
                    device: device.clone(),
                    iface: iface.clone(),
                })?;
            let ospf = ic
                .ospf
                .as_mut()
                .ok_or_else(|| ApplyError::NotPresent(format!("ospf on {device}[{iface}]")))?;
            ospf.cost = *cost;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::{Acl, AclEntry, Action, FlowMatch};
    use crate::config::{DeviceConfig, IfaceConfig};
    use crate::ip::{ip, pfx};
    use crate::snapshot::Endpoint;

    fn snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        let mut r1 = DeviceConfig::default();
        r1.interfaces.insert(
            "eth0".into(),
            IfaceConfig::new(ip("10.0.0.1"), 31).with_ospf(1),
        );
        r1.acls.insert("block".into(), Acl::default());
        let mut r2 = DeviceConfig::default();
        r2.interfaces
            .insert("eth0".into(), IfaceConfig::new(ip("10.0.0.0"), 31));
        snap.devices.insert("r1".into(), r1);
        snap.devices.insert("r2".into(), r2);
        snap.links.push(Link::new(
            Endpoint::new("r1", "eth0"),
            Endpoint::new("r2", "eth0"),
        ));
        snap
    }

    #[test]
    fn apply_does_not_mutate_original() {
        let snap = snapshot();
        let cs = ChangeSet::single(Change::LinkDown(snap.links[0].clone()));
        let out = cs.apply(&snap).unwrap();
        assert!(snap.environment.down_links.is_empty());
        assert_eq!(out.environment.down_links.len(), 1);
        assert_eq!(out.up_links().count(), 0);
    }

    #[test]
    fn link_down_up_roundtrip() {
        let snap = snapshot();
        let link = snap.links[0].clone();
        let cs = ChangeSet::of(vec![
            Change::LinkDown(link.clone()),
            Change::LinkUp(link.clone()),
        ]);
        let out = cs.apply(&snap).unwrap();
        assert_eq!(out, snap);
    }

    #[test]
    fn unknown_references_error() {
        let snap = snapshot();
        let bad_link = Link::new(Endpoint::new("x", "e"), Endpoint::new("y", "e"));
        assert!(matches!(
            ChangeSet::single(Change::LinkDown(bad_link)).apply(&snap),
            Err(ApplyError::NoSuchLink(_))
        ));
        assert!(matches!(
            ChangeSet::single(Change::DeviceDown("ghost".into())).apply(&snap),
            Err(ApplyError::NoSuchDevice(_))
        ));
        assert!(matches!(
            ChangeSet::single(Change::SetOspfCost {
                device: "r2".into(),
                iface: "eth0".into(),
                cost: 5
            })
            .apply(&snap),
            Err(ApplyError::NotPresent(_)) // r2's eth0 has no OSPF
        ));
        assert!(matches!(
            ChangeSet::single(Change::BgpNetworkAdd {
                device: "r1".into(),
                prefix: pfx("1.0.0.0/8")
            })
            .apply(&snap),
            Err(ApplyError::NoBgpProcess(_))
        ));
    }

    #[test]
    fn acl_edits() {
        let snap = snapshot();
        let entry = AclEntry {
            seq: 10,
            action: Action::Deny,
            matches: FlowMatch::dst(pfx("10.0.0.0/8")),
        };
        let out = ChangeSet::of(vec![
            Change::AclEntryAdd {
                device: "r1".into(),
                acl: "block".into(),
                entry: entry.clone(),
            },
            Change::SetAclIn {
                device: "r1".into(),
                iface: "eth0".into(),
                acl: Some("block".into()),
            },
        ])
        .apply(&snap)
        .unwrap();
        let r1 = &out.devices["r1"];
        assert_eq!(r1.acls["block"].entries.len(), 1);
        assert_eq!(r1.interfaces["eth0"].acl_in.as_deref(), Some("block"));
        // Removing a nonexistent seq errors.
        assert!(matches!(
            ChangeSet::single(Change::AclEntryRemove {
                device: "r1".into(),
                acl: "block".into(),
                seq: 99
            })
            .apply(&out),
            Err(ApplyError::NotPresent(_))
        ));
    }

    #[test]
    fn static_route_add_remove() {
        let snap = snapshot();
        let route = StaticRoute {
            prefix: pfx("0.0.0.0/0"),
            next_hop: NextHop::Ip(ip("10.0.0.0")),
            admin_distance: 1,
        };
        let with = ChangeSet::single(Change::StaticRouteAdd {
            device: "r1".into(),
            route: route.clone(),
        })
        .apply(&snap)
        .unwrap();
        assert_eq!(with.devices["r1"].static_routes.len(), 1);
        let without = ChangeSet::single(Change::StaticRouteRemove {
            device: "r1".into(),
            prefix: route.prefix,
            next_hop: route.next_hop,
        })
        .apply(&with)
        .unwrap();
        assert_eq!(without, snap);
    }

    #[test]
    fn ospf_cost_change() {
        let snap = snapshot();
        let out = ChangeSet::single(Change::SetOspfCost {
            device: "r1".into(),
            iface: "eth0".into(),
            cost: 77,
        })
        .apply(&snap)
        .unwrap();
        assert_eq!(
            out.devices["r1"].interfaces["eth0"]
                .ospf
                .as_ref()
                .unwrap()
                .cost,
            77
        );
    }

    #[test]
    fn changes_display_readably() {
        let snap = snapshot();
        let c = Change::LinkDown(snap.links[0].clone());
        assert!(c.to_string().contains("link down"));
    }
}
