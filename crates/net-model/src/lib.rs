//! # net-model — vendor-neutral network & configuration model
//!
//! The modeling substrate of the Differential Network Analysis
//! reproduction: IPv4 addressing, ACLs, BGP route maps, device
//! configurations (interfaces, static routes, OSPF, BGP), physical
//! topology, environment state (failures, external announcements), and the
//! change taxonomy that drives differential analysis.
//!
//! A [`Snapshot`] bundles everything a simulator needs; a [`ChangeSet`]
//! describes what happened. `ChangeSet::apply` yields the changed snapshot
//! (used by from-scratch baselines); the differential engine instead maps
//! the same changes onto input-relation deltas.
//!
//! ## Model scope (implemented / omitted)
//!
//! Implemented: IPv4 unicast; point-to-point links with subnet validation;
//! per-interface in/out ACLs over 5-tuples; static routes with recursive
//! next-hop resolution (via connected subnets); single-area-per-interface
//! OSPF with configurable costs and passive interfaces; eBGP/iBGP with the
//! standard 7-step decision process, import/export route maps, network
//! statements, and external announcements; link/device failures.
//!
//! Omitted (out of the reproduction's scope): IPv6, VRFs/VLANs, route
//! redistribution between IGPs, OSPF multi-area SPF (areas only gate
//! adjacencies), BGP confederations/route reflectors, multicast, and
//! vendor-specific configuration syntax (the model is the normalized form
//! a Batfish-like frontend would produce).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod builder;
pub mod change;
pub mod config;
pub mod ip;
pub mod route;
pub mod shard;
pub mod snapshot;

pub use acl::{Acl, AclEntry, Action, Flow, FlowMatch, PortRange};
pub use builder::NetBuilder;
pub use change::{ApplyError, Change, ChangeSet};
pub use config::{
    BgpConfig, BgpNeighbor, DeviceConfig, IfaceConfig, NextHop, OspfIfaceConfig, StaticRoute,
};
pub use ip::{ip, pfx, Ipv4Addr, Ipv4Prefix};
pub use route::{RmAction, RmMatch, RmSet, RouteAttrs, RouteMap, RouteMapClause};
pub use shard::ShardPlan;
pub use snapshot::{Endpoint, Environment, ExternalRoute, Link, Snapshot, ValidationError};
