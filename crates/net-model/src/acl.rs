//! Access control lists: ordered permit/deny rules over 5-tuple flows.

use crate::ip::{Ipv4Addr, Ipv4Prefix};
use serde::{Deserialize, Serialize};

/// Permit or deny.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Action {
    /// Allow matching traffic.
    Permit,
    /// Drop matching traffic.
    Deny,
}

/// An inclusive port range.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PortRange {
    /// Lowest matching port.
    pub lo: u16,
    /// Highest matching port (inclusive).
    pub hi: u16,
}

impl PortRange {
    /// The full port space.
    pub const ANY: PortRange = PortRange {
        lo: 0,
        hi: u16::MAX,
    };

    /// A single port.
    pub fn exactly(p: u16) -> Self {
        PortRange { lo: p, hi: p }
    }

    /// Whether the range matches the port.
    pub fn contains(self, p: u16) -> bool {
        self.lo <= p && p <= self.hi
    }
}

/// Header-field constraints of one ACL entry. Unset fields match anything.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FlowMatch {
    /// Source address constraint.
    pub src: Option<Ipv4Prefix>,
    /// Destination address constraint.
    pub dst: Option<Ipv4Prefix>,
    /// IP protocol (6 = TCP, 17 = UDP, ...).
    pub proto: Option<u8>,
    /// Source port constraint.
    pub src_ports: Option<PortRange>,
    /// Destination port constraint.
    pub dst_ports: Option<PortRange>,
}

impl FlowMatch {
    /// Matches every packet.
    pub fn any() -> Self {
        FlowMatch {
            src: None,
            dst: None,
            proto: None,
            src_ports: None,
            dst_ports: None,
        }
    }

    /// Matches a destination prefix only.
    pub fn dst(prefix: Ipv4Prefix) -> Self {
        FlowMatch {
            dst: Some(prefix),
            ..Self::any()
        }
    }

    /// Matches a source prefix only.
    pub fn src(prefix: Ipv4Prefix) -> Self {
        FlowMatch {
            src: Some(prefix),
            ..Self::any()
        }
    }

    /// Whether a concrete flow satisfies all constraints.
    pub fn matches(&self, flow: &Flow) -> bool {
        self.src.is_none_or(|p| p.contains(flow.src))
            && self.dst.is_none_or(|p| p.contains(flow.dst))
            && self.proto.is_none_or(|pr| pr == flow.proto)
            && self.src_ports.is_none_or(|r| r.contains(flow.src_port))
            && self.dst_ports.is_none_or(|r| r.contains(flow.dst_port))
    }
}

/// A concrete packet 5-tuple, used for point queries and tests.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Flow {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// IP protocol.
    pub proto: u8,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl Flow {
    /// A TCP flow to the given destination (other fields arbitrary-typical).
    pub fn tcp_to(dst: Ipv4Addr, dst_port: u16) -> Self {
        Flow {
            src: Ipv4Addr(0),
            dst,
            proto: 6,
            src_port: 40000,
            dst_port,
        }
    }
}

/// One sequenced ACL entry.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AclEntry {
    /// Evaluation order (ascending).
    pub seq: u32,
    /// Permit or deny on match.
    pub action: Action,
    /// Header constraints.
    pub matches: FlowMatch,
}

/// An ordered access list. Evaluation is first-match; a flow matching no
/// entry is denied (the conventional implicit deny).
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Acl {
    /// Entries; kept sorted by `seq`.
    pub entries: Vec<AclEntry>,
}

impl Acl {
    /// An ACL that permits everything.
    pub fn permit_all() -> Self {
        Acl {
            entries: vec![AclEntry {
                seq: u32::MAX,
                action: Action::Permit,
                matches: FlowMatch::any(),
            }],
        }
    }

    /// Adds an entry, keeping entries sorted by sequence number.
    pub fn add(&mut self, entry: AclEntry) {
        let pos = self.entries.partition_point(|e| e.seq <= entry.seq);
        self.entries.insert(pos, entry);
    }

    /// Removes the entry with the given sequence number, if present.
    pub fn remove_seq(&mut self, seq: u32) -> Option<AclEntry> {
        let pos = self.entries.iter().position(|e| e.seq == seq)?;
        Some(self.entries.remove(pos))
    }

    /// First-match evaluation; unmatched flows are implicitly denied.
    pub fn permits(&self, flow: &Flow) -> bool {
        for e in &self.entries {
            if e.matches.matches(flow) {
                return e.action == Action::Permit;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::{ip, pfx};

    fn entry(seq: u32, action: Action, m: FlowMatch) -> AclEntry {
        AclEntry {
            seq,
            action,
            matches: m,
        }
    }

    #[test]
    fn first_match_wins() {
        let mut acl = Acl::default();
        acl.add(entry(10, Action::Deny, FlowMatch::dst(pfx("10.0.0.0/8"))));
        acl.add(entry(20, Action::Permit, FlowMatch::any()));
        assert!(!acl.permits(&Flow::tcp_to(ip("10.1.1.1"), 80)));
        assert!(acl.permits(&Flow::tcp_to(ip("11.1.1.1"), 80)));
    }

    #[test]
    fn implicit_deny_when_no_match() {
        let mut acl = Acl::default();
        acl.add(entry(10, Action::Permit, FlowMatch::dst(pfx("10.0.0.0/8"))));
        assert!(!acl.permits(&Flow::tcp_to(ip("11.1.1.1"), 80)));
    }

    #[test]
    fn entries_stay_sorted_under_insertion() {
        let mut acl = Acl::default();
        acl.add(entry(30, Action::Permit, FlowMatch::any()));
        acl.add(entry(10, Action::Deny, FlowMatch::dst(pfx("10.0.0.0/8"))));
        acl.add(entry(
            20,
            Action::Permit,
            FlowMatch::dst(pfx("10.0.0.0/16")),
        ));
        let seqs: Vec<u32> = acl.entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![10, 20, 30]);
        // /16 is shadowed by the seq-10 deny of /8.
        assert!(!acl.permits(&Flow::tcp_to(ip("10.0.1.1"), 80)));
    }

    #[test]
    fn remove_seq_restores_behavior() {
        let mut acl = Acl::default();
        acl.add(entry(10, Action::Deny, FlowMatch::dst(pfx("10.0.0.0/8"))));
        acl.add(entry(20, Action::Permit, FlowMatch::any()));
        assert!(!acl.permits(&Flow::tcp_to(ip("10.1.1.1"), 80)));
        assert!(acl.remove_seq(10).is_some());
        assert!(acl.permits(&Flow::tcp_to(ip("10.1.1.1"), 80)));
        assert!(acl.remove_seq(99).is_none());
    }

    #[test]
    fn port_and_proto_constraints() {
        let m = FlowMatch {
            proto: Some(6),
            dst_ports: Some(PortRange { lo: 80, hi: 443 }),
            ..FlowMatch::any()
        };
        let mut acl = Acl::default();
        acl.add(entry(10, Action::Permit, m));
        assert!(acl.permits(&Flow::tcp_to(ip("1.1.1.1"), 80)));
        assert!(acl.permits(&Flow::tcp_to(ip("1.1.1.1"), 443)));
        assert!(!acl.permits(&Flow::tcp_to(ip("1.1.1.1"), 8080)));
        let udp = Flow {
            proto: 17,
            ..Flow::tcp_to(ip("1.1.1.1"), 80)
        };
        assert!(!acl.permits(&udp));
    }

    #[test]
    fn permit_all_permits() {
        assert!(Acl::permit_all().permits(&Flow::tcp_to(ip("8.8.8.8"), 53)));
    }
}
