//! Property tests: for arbitrary update sequences, the incrementally
//! maintained outputs must equal a from-scratch evaluation of the same
//! accumulated inputs. This is the engine's core soundness property.

use ddflow::{aggregates, Batch, GraphBuilder, Runtime, Value};
use proptest::prelude::*;

fn u(n: u32) -> Value {
    Value::U32(n)
}

/// A relational program exercising join, antijoin, reduce and distinct:
///   inputs:  "emp" (dept, name), "mgr" (dept, boss), "frozen" dept
///   managed  = emp ⋈ mgr                  -> (dept, (name, boss))
///   orphans  = emp ⊳ keys(mgr)            -> (dept, name)
///   active   = managed ⊳ frozen           -> antijoin on dept
///   sizes    = count emp per dept
///   names    = distinct of emp rows
fn relational_program() -> GraphBuilder {
    let mut g = GraphBuilder::new();
    let (_, emp) = g.input("emp");
    let (_, mgr) = g.input("mgr");
    let (_, frozen) = g.input("frozen");
    let managed = g.join(emp, mgr, |d, n, b| {
        Value::kv(d.clone(), Value::tuple(vec![n.clone(), b.clone()]))
    });
    let mgr_keys = g.map(mgr, |r| r.key().clone());
    let orphans = g.antijoin(emp, mgr_keys);
    let active = g.antijoin(managed, frozen);
    let sizes = g.reduce(emp, aggregates::count());
    let names = g.distinct(emp);
    g.output("managed", managed);
    g.output("orphans", orphans);
    g.output("active", active);
    g.output("sizes", sizes);
    g.output("names", names);
    g
}

/// The recursive program: single-source shortest paths (the OSPF pattern),
/// plus a reachability-derived unreachable-nodes relation (antijoin against
/// a recursive result).
fn recursive_program() -> GraphBuilder {
    let mut g = GraphBuilder::new();
    let (_, edges) = g.input("edge"); // (src, dst, cost)
    let (_, roots) = g.input("root"); // node
    let (_, nodes) = g.input("node"); // node universe
    let dist = g.iterate("sssp", |g, s| {
        let edges = g.enter(s, edges);
        let by_src = g.map(edges, |e| {
            Value::kv(
                e.field(0).clone(),
                Value::tuple(vec![e.field(1).clone(), e.field(2).clone()]),
            )
        });
        let roots = g.enter(s, roots);
        let seeds = g.map(roots, |n| Value::kv(n.clone(), Value::I64(0)));
        let var = g.variable(s, "dist", seeds);
        let step = g.join(var, by_src, |_, d, dc| {
            Value::kv(
                dc.field(0).clone(),
                Value::I64(d.as_i64() + dc.field(1).as_i64()),
            )
        });
        let cand = g.concat(&[seeds, step]);
        let next = g.reduce(cand, aggregates::min());
        g.connect(var, next);
        g.leave(s, next)
    });
    let reached = g.map(dist, |r| r.key().clone());
    let node_kv = g.map(nodes, |n| Value::kv(n.clone(), Value::Unit));
    let unreachable = g.antijoin(node_kv, reached);
    g.output("dist", dist);
    g.output("unreachable", unreachable);
    g
}

fn assert_outputs_match(
    build: impl Fn() -> GraphBuilder,
    rt: &Runtime,
    acc: &[(&str, Batch)],
    outputs: &[&str],
) {
    let mut scratch = Runtime::new(build().build());
    for (name, batch) in acc {
        let h = scratch.program().input(name).unwrap();
        scratch.update_batch(h, batch.clone());
    }
    scratch.commit().unwrap();
    for out in outputs {
        let oh = rt.program().output(out).unwrap();
        let sh = scratch.program().output(out).unwrap();
        assert_eq!(
            rt.output(oh).to_batch(),
            scratch.output(sh).to_batch(),
            "output {out:?} diverged from scratch evaluation"
        );
    }
}

/// One random update: which input, which row, insert or remove.
#[derive(Debug, Clone)]
enum RelOp {
    Emp(u32, u32, bool),
    Mgr(u32, u32, bool),
    Frozen(u32, bool),
}

fn rel_op() -> impl Strategy<Value = RelOp> {
    prop_oneof![
        (0u32..5, 0u32..6, any::<bool>()).prop_map(|(d, n, add)| RelOp::Emp(d, n, add)),
        (0u32..5, 0u32..4, any::<bool>()).prop_map(|(d, b, add)| RelOp::Mgr(d, b, add)),
        (0u32..5, any::<bool>()).prop_map(|(d, add)| RelOp::Frozen(d, add)),
    ]
}

// Cases and RNG seed pinned so CI replays the same cases every run; the
// vendored runner is fully deterministic and emits no regression files.
// Sweep fresh cases locally with `PROPTEST_RNG_SEED=<u64> cargo test`.
proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(96, 0xD9A_0003))]

    #[test]
    fn relational_incremental_equals_scratch(
        steps in prop::collection::vec(prop::collection::vec(rel_op(), 1..5), 1..12)
    ) {
        let build = relational_program;
        let mut rt = Runtime::new(build().build());
        let (ie, im, if_) = (
            rt.program().input("emp").unwrap(),
            rt.program().input("mgr").unwrap(),
            rt.program().input("frozen").unwrap(),
        );
        let mut acc_emp = Batch::new();
        let mut acc_mgr = Batch::new();
        let mut acc_frz = Batch::new();
        for epoch in steps {
            for op in epoch {
                match op {
                    RelOp::Emp(d, n, add) => {
                        let row = Value::kv(u(d), u(n));
                        let diff = if add { 1 } else { -1 };
                        rt.update(ie, row.clone(), diff);
                        acc_emp.push((row, diff));
                    }
                    RelOp::Mgr(d, b, add) => {
                        let row = Value::kv(u(d), u(100 + b));
                        let diff = if add { 1 } else { -1 };
                        rt.update(im, row.clone(), diff);
                        acc_mgr.push((row, diff));
                    }
                    RelOp::Frozen(d, add) => {
                        let diff = if add { 1 } else { -1 };
                        rt.update(if_, u(d), diff);
                        acc_frz.push((u(d), diff));
                    }
                }
            }
            rt.commit().unwrap();
            assert_outputs_match(
                build,
                &rt,
                &[
                    ("emp", acc_emp.clone()),
                    ("mgr", acc_mgr.clone()),
                    ("frozen", acc_frz.clone()),
                ],
                &["managed", "orphans", "active", "sizes", "names"],
            );
        }
    }

    #[test]
    fn recursive_incremental_equals_scratch(
        edge_ops in prop::collection::vec(
            prop::collection::vec((0u32..7, 0u32..7, 1i64..4, any::<bool>()), 1..4),
            1..10
        )
    ) {
        let build = recursive_program;
        let mut rt = Runtime::new(build().build());
        let ie = rt.program().input("edge").unwrap();
        let ir = rt.program().input("root").unwrap();
        let in_ = rt.program().input("node").unwrap();
        let mut acc_edge = Batch::new();
        let mut acc_node = Batch::new();
        // Fixed universe and root.
        rt.insert(ir, u(0));
        for n in 0..7 {
            rt.insert(in_, u(n));
            acc_node.push((u(n), 1));
        }
        rt.commit().unwrap();
        // Edge relation stays set-like: removals only retract present
        // edges. (Net-negative multiplicities make min-cost iteration
        // legitimately non-monotone; both engines would report divergence,
        // which is covered by a dedicated unit test instead.)
        let mut live: std::collections::HashMap<Value, isize> = Default::default();
        for epoch in edge_ops {
            for (a, b, w, add) in epoch {
                if a == b {
                    continue; // self-loops allowed in principle, skip for variety
                }
                let row = Value::tuple(vec![u(a), u(b), Value::I64(w)]);
                let count = live.entry(row.clone()).or_insert(0);
                let diff = if add {
                    1
                } else if *count > 0 {
                    -1
                } else {
                    continue;
                };
                *count += diff;
                rt.update(ie, row.clone(), diff);
                acc_edge.push((row, diff));
            }
            rt.commit().unwrap();
            assert_outputs_match(
                build,
                &rt,
                &[
                    ("edge", acc_edge.clone()),
                    ("root", vec![(u(0), 1)]),
                    ("node", acc_node.clone()),
                ],
                &["dist", "unreachable"],
            );
        }
    }
}
