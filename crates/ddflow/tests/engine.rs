//! End-to-end tests of the ddflow engine: every operator exercised
//! incrementally and checked against from-scratch re-evaluation.

use ddflow::{aggregates, Batch, Config, DdError, GraphBuilder, Runtime, Value};

fn u(n: u32) -> Value {
    Value::U32(n)
}

fn kv(k: Value, v: Value) -> Value {
    Value::kv(k, v)
}

fn edge(a: u32, b: u32) -> Value {
    Value::tuple(vec![u(a), u(b)])
}

fn wedge(a: u32, b: u32, w: i64) -> Value {
    Value::tuple(vec![u(a), u(b), Value::I64(w)])
}

/// Builds the reachability program used by several tests.
/// Inputs: "edge" (src, dst), "root" node. Output "reached": node values.
fn reach_program() -> GraphBuilder {
    let mut g = GraphBuilder::new();
    let (_, edges) = g.input("edge");
    let (_, roots) = g.input("root");
    let reached = g.iterate("reach", |g, s| {
        let edges = g.enter(s, edges);
        let by_src = g.map(edges, |e| kv(e.field(0).clone(), e.field(1).clone()));
        let roots = g.enter(s, roots);
        let seeds = g.map(roots, |n| kv(n.clone(), Value::Unit));
        let var = g.variable(s, "reached", seeds);
        let step = g.join(var, by_src, |_, _, dst| kv(dst.clone(), Value::Unit));
        let all = g.concat(&[seeds, step]);
        let next = g.distinct(all);
        g.connect(var, next);
        g.leave(s, next)
    });
    let nodes = g.map(reached, |r| r.key().clone());
    g.output("reached", nodes);
    g
}

/// Builds the single-source shortest-path program (Bellman-Ford pattern —
/// the same shape as OSPF SPF). Inputs: "edge" (src, dst, cost), "root".
/// Output "dist": (node, cost) pairs.
fn sssp_program() -> GraphBuilder {
    let mut g = GraphBuilder::new();
    let (_, edges) = g.input("edge");
    let (_, roots) = g.input("root");
    let dist = g.iterate("sssp", |g, s| {
        let edges = g.enter(s, edges);
        let by_src = g.map(edges, |e| {
            kv(
                e.field(0).clone(),
                Value::tuple(vec![e.field(1).clone(), e.field(2).clone()]),
            )
        });
        let roots = g.enter(s, roots);
        let seeds = g.map(roots, |n| kv(n.clone(), Value::I64(0)));
        let var = g.variable(s, "dist", seeds);
        let step = g.join(var, by_src, |_, d, dst_cost| {
            kv(
                dst_cost.field(0).clone(),
                Value::I64(d.as_i64() + dst_cost.field(1).as_i64()),
            )
        });
        let cand = g.concat(&[seeds, step]);
        let next = g.reduce(cand, aggregates::min());
        g.connect(var, next);
        g.leave(s, next)
    });
    g.output("dist", dist);
    g
}

/// Reference runner: feed all accumulated updates into a fresh runtime in a
/// single epoch and return the named output's canonical contents.
fn scratch_eval(build: impl Fn() -> GraphBuilder, inputs: &[(&str, Batch)], out: &str) -> Batch {
    let mut rt = Runtime::new(build().build());
    for (name, batch) in inputs {
        let h = rt.program().input(name).unwrap();
        rt.update_batch(h, batch.clone());
    }
    rt.commit().unwrap();
    let oh = rt.program().output(out).unwrap();
    rt.output(oh).to_batch()
}

#[test]
fn map_filter_pipeline_incremental() {
    let mut g = GraphBuilder::new();
    let (inp, nums) = g.input("nums");
    let doubled = g.map(nums, |v| Value::I64(v.as_i64() * 2));
    let big = g.filter(doubled, |v| v.as_i64() >= 10);
    let out = g.output("big", big);
    let mut rt = Runtime::new(g.build());
    for i in 1..=10 {
        rt.insert(inp, Value::I64(i));
    }
    rt.commit().unwrap();
    assert_eq!(rt.output(out).len(), 6); // 10,12,...,20
    rt.remove(inp, Value::I64(9));
    rt.commit().unwrap();
    assert_eq!(rt.output(out).len(), 5);
    assert_eq!(rt.output(out).count(&Value::I64(18)), 0);
}

#[test]
fn join_multiplicities_multiply() {
    let mut g = GraphBuilder::new();
    let (la, a) = g.input("a");
    let (lb, b) = g.input("b");
    let j = g.join(a, b, |k, x, y| {
        Value::tuple(vec![k.clone(), x.clone(), y.clone()])
    });
    let out = g.output("j", j);
    let mut rt = Runtime::new(g.build());
    rt.update(la, kv(u(1), Value::str("x")), 2);
    rt.update(lb, kv(u(1), Value::str("y")), 3);
    rt.commit().unwrap();
    let row = Value::tuple(vec![u(1), Value::str("x"), Value::str("y")]);
    assert_eq!(rt.output(out).count(&row), 6);
    // Retract one copy on the left: 1 × 3 remain.
    rt.update(la, kv(u(1), Value::str("x")), -1);
    rt.commit().unwrap();
    assert_eq!(rt.output(out).count(&row), 3);
}

#[test]
fn join_incremental_matches_scratch_under_churn() {
    let build = || {
        let mut g = GraphBuilder::new();
        let (_, a) = g.input("a");
        let (_, b) = g.input("b");
        let j = g.join(a, b, |k, x, y| {
            Value::tuple(vec![k.clone(), x.clone(), y.clone()])
        });
        g.output("j", j);
        g
    };
    let mut rt = Runtime::new(build().build());
    let (ia, ib) = (
        rt.program().input("a").unwrap(),
        rt.program().input("b").unwrap(),
    );
    let mut acc_a = Batch::new();
    let mut acc_b = Batch::new();
    let steps: Vec<(bool, u32, &str, isize)> = vec![
        (true, 1, "p", 1),
        (false, 1, "q", 1),
        (true, 2, "r", 1),
        (true, 1, "s", 2),
        (false, 1, "q", -1), // remove the only right match for key 1
        (false, 2, "t", 1),
        (true, 2, "r", -1),
        (false, 1, "u", 1),
    ];
    for (left, k, s, d) in steps {
        let row = kv(u(k), Value::str(s));
        if left {
            rt.update(ia, row.clone(), d);
            acc_a.push((row, d));
        } else {
            rt.update(ib, row.clone(), d);
            acc_b.push((row, d));
        }
        rt.commit().unwrap();
        let oh = rt.program().output("j").unwrap();
        let expected = scratch_eval(build, &[("a", acc_a.clone()), ("b", acc_b.clone())], "j");
        assert_eq!(rt.output(oh).to_batch(), expected);
    }
}

#[test]
fn antijoin_tracks_key_presence_flips() {
    let mut g = GraphBuilder::new();
    let (la, a) = g.input("a");
    let (lb, b) = g.input("b");
    let aj = g.antijoin(a, b);
    let out = g.output("aj", aj);
    let mut rt = Runtime::new(g.build());
    rt.insert(la, kv(u(1), Value::str("x")));
    rt.insert(la, kv(u(2), Value::str("y")));
    rt.commit().unwrap();
    assert_eq!(rt.output(out).len(), 2);
    // Key 1 appears on the right: row suppressed.
    rt.insert(lb, u(1));
    rt.commit().unwrap();
    assert_eq!(rt.output(out).len(), 1);
    assert!(rt.output(out).contains(&kv(u(2), Value::str("y"))));
    // Second copy of key 1, then remove one: still suppressed.
    rt.insert(lb, u(1));
    rt.commit().unwrap();
    rt.remove(lb, u(1));
    rt.commit().unwrap();
    assert_eq!(rt.output(out).len(), 1);
    // Remove the last copy: row reappears.
    rt.remove(lb, u(1));
    rt.commit().unwrap();
    assert_eq!(rt.output(out).len(), 2);
    // Left rows arriving while key present stay suppressed.
    rt.insert(lb, u(2));
    rt.insert(la, kv(u(2), Value::str("z")));
    rt.commit().unwrap();
    assert_eq!(rt.output(out).len(), 1);
}

#[test]
fn semijoin_does_not_multiply_by_right_count() {
    let mut g = GraphBuilder::new();
    let (la, a) = g.input("a");
    let (lb, b) = g.input("b");
    let sj = g.semijoin(a, b);
    let out = g.output("sj", sj);
    let mut rt = Runtime::new(g.build());
    rt.insert(la, kv(u(1), Value::str("x")));
    rt.update(lb, u(1), 5); // five copies of the key
    rt.commit().unwrap();
    assert_eq!(rt.output(out).count(&kv(u(1), Value::str("x"))), 1);
}

#[test]
fn distinct_and_negate_compose_into_set_difference() {
    // diff = distinct(a) ⊕ negate(distinct(b)) — support-level difference.
    let mut g = GraphBuilder::new();
    let (la, a) = g.input("a");
    let (lb, b) = g.input("b");
    let da = g.distinct(a);
    let db = g.distinct(b);
    let nb = g.negate(db);
    let d = g.concat(&[da, nb]);
    let out = g.output("diff", d);
    let mut rt = Runtime::new(g.build());
    rt.update(la, u(1), 3);
    rt.insert(la, u(2));
    rt.insert(lb, u(2));
    rt.insert(lb, u(3));
    rt.commit().unwrap();
    let z = rt.output(out);
    assert_eq!(z.count(&u(1)), 1); // only in a
    assert_eq!(z.count(&u(2)), 0); // in both
    assert_eq!(z.count(&u(3)), -1); // only in b
}

#[test]
fn reduce_count_and_min_update_incrementally() {
    let mut g = GraphBuilder::new();
    let (li, rows) = g.input("rows");
    let counts = g.reduce(rows, aggregates::count());
    let mins = g.reduce(rows, aggregates::min());
    let oc = g.output("counts", counts);
    let om = g.output("mins", mins);
    let mut rt = Runtime::new(g.build());
    rt.insert(li, kv(u(1), Value::I64(5)));
    rt.insert(li, kv(u(1), Value::I64(3)));
    rt.insert(li, kv(u(2), Value::I64(9)));
    rt.commit().unwrap();
    assert_eq!(rt.output(oc).count(&kv(u(1), Value::I64(2))), 1);
    assert_eq!(rt.output(om).count(&kv(u(1), Value::I64(3))), 1);
    // Remove the min of group 1: the next-best becomes the min, old retracts.
    rt.remove(li, kv(u(1), Value::I64(3)));
    rt.commit().unwrap();
    assert_eq!(rt.output(om).count(&kv(u(1), Value::I64(3))), 0);
    assert_eq!(rt.output(om).count(&kv(u(1), Value::I64(5))), 1);
    assert_eq!(rt.output(oc).count(&kv(u(1), Value::I64(1))), 1);
    // Empty the group entirely: all outputs retract.
    rt.remove(li, kv(u(1), Value::I64(5)));
    rt.commit().unwrap();
    assert_eq!(rt.output(om).to_batch().len(), 1); // only group 2 remains
    assert_eq!(rt.output(oc).count(&kv(u(2), Value::I64(1))), 1);
}

#[test]
fn reachability_grows_and_shrinks() {
    let g = reach_program();
    let mut rt = Runtime::new(g.build());
    let ie = rt.program().input("edge").unwrap();
    let ir = rt.program().input("root").unwrap();
    let out = rt.program().output("reached").unwrap();
    rt.insert(ir, u(0));
    for (a, b) in [(0, 1), (1, 2), (2, 3)] {
        rt.insert(ie, edge(a, b));
    }
    rt.commit().unwrap();
    assert_eq!(rt.output(out).len(), 4);
    // Extend the line: the fixpoint deepens beyond its previous depth.
    rt.insert(ie, edge(3, 4));
    rt.insert(ie, edge(4, 5));
    rt.commit().unwrap();
    assert_eq!(rt.output(out).len(), 6);
    // Cut the middle: everything downstream retracts.
    rt.remove(ie, edge(1, 2));
    rt.commit().unwrap();
    assert_eq!(rt.output(out).len(), 2);
    // Bridge it back differently through a new node.
    rt.insert(ie, edge(1, 7));
    rt.insert(ie, edge(7, 2));
    rt.commit().unwrap();
    assert_eq!(rt.output(out).len(), 7);
}

#[test]
fn reachability_on_cycles_terminates_and_retracts() {
    let g = reach_program();
    let mut rt = Runtime::new(g.build());
    let ie = rt.program().input("edge").unwrap();
    let ir = rt.program().input("root").unwrap();
    let out = rt.program().output("reached").unwrap();
    rt.insert(ir, u(0));
    for (a, b) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
        rt.insert(ie, edge(a, b));
    }
    rt.commit().unwrap();
    assert_eq!(rt.output(out).len(), 4);
    // Remove the entry into the cycle; the cycle must not self-sustain.
    rt.remove(ie, edge(0, 1));
    rt.commit().unwrap();
    assert_eq!(rt.output(out).len(), 1);
}

#[test]
fn sssp_incremental_improvement_and_withdrawal() {
    let g = sssp_program();
    let mut rt = Runtime::new(g.build());
    let ie = rt.program().input("edge").unwrap();
    let ir = rt.program().input("root").unwrap();
    let out = rt.program().output("dist").unwrap();
    rt.insert(ir, u(0));
    for (a, b, w) in [(0, 1, 10), (0, 2, 1), (2, 1, 2), (1, 3, 1)] {
        rt.insert(ie, wedge(a, b, w));
    }
    rt.commit().unwrap();
    // 0→2→1 = 3 beats direct 10.
    assert!(rt.output(out).contains(&kv(u(1), Value::I64(3))));
    assert!(rt.output(out).contains(&kv(u(3), Value::I64(4))));
    // Better shortcut appears: distances improve downstream.
    rt.insert(ie, wedge(0, 1, 1));
    rt.commit().unwrap();
    assert!(rt.output(out).contains(&kv(u(1), Value::I64(1))));
    assert!(rt.output(out).contains(&kv(u(3), Value::I64(2))));
    // Withdraw the shortcut: distances fall back to the old values.
    rt.remove(ie, wedge(0, 1, 1));
    rt.commit().unwrap();
    assert!(rt.output(out).contains(&kv(u(1), Value::I64(3))));
    assert!(rt.output(out).contains(&kv(u(3), Value::I64(4))));
    // Cut the only path to 3 entirely.
    rt.remove(ie, wedge(1, 3, 1));
    rt.commit().unwrap();
    assert_eq!(rt.output(out).count(&kv(u(3), Value::I64(4))), 0);
}

#[test]
fn sssp_on_cyclic_graph_with_deletion_matches_scratch() {
    let build = sssp_program;
    let mut rt = Runtime::new(build().build());
    let ie = rt.program().input("edge").unwrap();
    let ir = rt.program().input("root").unwrap();
    let mut acc_e = Batch::new();
    let acc_r = vec![(u(0), 1isize)];
    rt.insert(ir, u(0));
    // A ring with a chord; deleting the chord forces the long way round.
    for (a, b, w) in [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1), (0, 3, 1)] {
        rt.insert(ie, wedge(a, b, w));
        acc_e.push((wedge(a, b, w), 1));
    }
    rt.commit().unwrap();
    let oh = rt.program().output("dist").unwrap();
    assert!(rt.output(oh).contains(&kv(u(3), Value::I64(1))));
    rt.remove(ie, wedge(0, 3, 1));
    acc_e.push((wedge(0, 3, 1), -1));
    rt.commit().unwrap();
    assert!(rt.output(oh).contains(&kv(u(3), Value::I64(3))));
    let expected = scratch_eval(
        build,
        &[("edge", acc_e.clone()), ("root", acc_r.clone())],
        "dist",
    );
    assert_eq!(rt.output(oh).to_batch(), expected);
}

#[test]
fn divergent_scope_reports_error_instead_of_hanging() {
    let mut g = GraphBuilder::new();
    let (li, seed) = g.input("seed");
    let grown = g.iterate("counter", |g, s| {
        let seed = g.enter(s, seed);
        let seeds = g.map(seed, |v| kv(Value::Unit, v.clone()));
        let var = g.variable(s, "n", seeds);
        // Strictly increasing: never reaches a fixpoint.
        let next = g.map(var, |r| {
            kv(Value::Unit, Value::I64(r.payload().as_i64() + 1))
        });
        g.connect(var, next);
        g.leave(s, next)
    });
    g.output("n", grown);
    let mut rt = Runtime::with_config(g.build(), Config { max_iterations: 64 });
    rt.insert(li, Value::I64(0));
    let err = rt.commit().unwrap_err();
    assert_eq!(
        err,
        DdError::Divergence {
            scope: "counter".into(),
            iterations: 64
        }
    );
}

#[test]
fn two_scopes_chain_through_toplevel() {
    // Scope 1: reachability from roots. Scope 2: shortest hop counts over
    // only the reachable subgraph (edges semijoined with reachable nodes).
    let mut g = GraphBuilder::new();
    let (ie, edges) = g.input("edge");
    let (ir, roots) = g.input("root");
    let reached = g.iterate("reach", |g, s| {
        let edges = g.enter(s, edges);
        let by_src = g.map(edges, |e| kv(e.field(0).clone(), e.field(1).clone()));
        let roots = g.enter(s, roots);
        let seeds = g.map(roots, |n| kv(n.clone(), Value::Unit));
        let var = g.variable(s, "r", seeds);
        let step = g.join(var, by_src, |_, _, dst| kv(dst.clone(), Value::Unit));
        let all = g.concat(&[seeds, step]);
        let next = g.distinct(all);
        g.connect(var, next);
        g.leave(s, next)
    });
    let reach_nodes = g.map(reached, |r| r.key().clone());
    let edges_by_src = g.map(edges, |e| kv(e.field(0).clone(), e.field(1).clone()));
    let live_edges = g.semijoin(edges_by_src, reach_nodes);
    let hops = g.iterate("hops", |g, s| {
        let live = g.enter(s, live_edges);
        let roots = g.enter(s, roots);
        let seeds = g.map(roots, |n| kv(n.clone(), Value::I64(0)));
        let var = g.variable(s, "h", seeds);
        let step = g.join(var, live, |_, d, dst| {
            kv(dst.clone(), Value::I64(d.as_i64() + 1))
        });
        let cand = g.concat(&[seeds, step]);
        let next = g.reduce(cand, aggregates::min());
        g.connect(var, next);
        g.leave(s, next)
    });
    let out = g.output("hops", hops);
    let mut rt = Runtime::new(g.build());
    rt.insert(ir, u(0));
    for (a, b) in [(0, 1), (1, 2), (5, 6)] {
        rt.insert(ie, edge(a, b));
    }
    rt.commit().unwrap();
    assert_eq!(rt.output(out).len(), 3); // 0,1,2 reachable; 5→6 isolated
    assert!(rt.output(out).contains(&kv(u(2), Value::I64(2))));
    // Connect the island: both scopes update incrementally.
    rt.insert(ie, edge(2, 5));
    rt.commit().unwrap();
    assert_eq!(rt.output(out).len(), 5);
    assert!(rt.output(out).contains(&kv(u(6), Value::I64(4))));
}

#[test]
fn drain_returns_canonical_deltas_between_commits() {
    let g = reach_program();
    let mut rt = Runtime::new(g.build());
    let ie = rt.program().input("edge").unwrap();
    let ir = rt.program().input("root").unwrap();
    let out = rt.program().output("reached").unwrap();
    rt.insert(ir, u(0));
    rt.insert(ie, edge(0, 1));
    rt.commit().unwrap();
    let d1 = rt.drain(out);
    assert_eq!(d1, vec![(u(0), 1), (u(1), 1)]);
    rt.remove(ie, edge(0, 1));
    rt.commit().unwrap();
    let d2 = rt.drain(out);
    assert_eq!(d2, vec![(u(1), -1)]);
    // Nothing since last drain.
    assert!(rt.drain(out).is_empty());
}

#[test]
fn commit_stats_reflect_incrementality() {
    let g = reach_program();
    let mut rt = Runtime::new(g.build());
    let ie = rt.program().input("edge").unwrap();
    let ir = rt.program().input("root").unwrap();
    rt.insert(ir, u(0));
    for i in 0..50 {
        rt.insert(ie, edge(i, i + 1));
    }
    let full = rt.commit().unwrap();
    assert!(full.tuples_processed > 100);
    assert_eq!(full.scope_depths.len(), 1);
    assert!(full.scope_depths[0] >= 50);
    // A no-op commit processes nothing.
    let idle = rt.commit().unwrap();
    assert_eq!(idle.tuples_processed, 0);
    // A leaf-edge insertion processes far fewer tuples than the first load.
    rt.insert(ie, edge(50, 51));
    let small = rt.commit().unwrap();
    assert!(small.tuples_processed < full.tuples_processed / 5);
    assert!(small.outputs_changed >= 1);
    assert!(rt.state_tuples() > 0);
}

#[test]
fn empty_and_noop_commits_are_safe() {
    let g = reach_program();
    let mut rt = Runtime::new(g.build());
    let stats = rt.commit().unwrap();
    assert_eq!(stats.tuples_processed, 0);
    let ie = rt.program().input("edge").unwrap();
    // Insert and remove in the same epoch: consolidates to nothing.
    rt.insert(ie, edge(1, 2));
    rt.remove(ie, edge(1, 2));
    let stats = rt.commit().unwrap();
    assert_eq!(stats.tuples_processed, 0);
}

#[test]
fn negative_edge_multiplicity_divergence_is_detected() {
    // A net-negative edge makes min-cost iteration non-monotone: the
    // candidate relation can oscillate between iterations. The engine must
    // report divergence rather than hang (same contract as a BGP policy
    // dispute). Shape: root 0 with a real path 0->1 (cost 3) and a
    // *negative* shortcut 0->1 (cost 1) that keeps cancelling the min.
    let g = sssp_program();
    let mut rt = Runtime::with_config(
        g.build(),
        Config {
            max_iterations: 128,
        },
    );
    let ie = rt.program().input("edge").unwrap();
    let ir = rt.program().input("root").unwrap();
    rt.insert(ir, u(0));
    rt.insert(ie, wedge(0, 1, 3));
    rt.insert(ie, wedge(1, 0, 3));
    // Never-inserted edge retracted: multiplicity -1.
    rt.remove(ie, wedge(0, 1, 1));
    match rt.commit() {
        Err(DdError::Divergence { scope, .. }) => assert_eq!(scope, "sssp"),
        Ok(_) => {
            // Some negative configurations still converge; that's fine —
            // the property we guard is "never hangs", which reaching this
            // point demonstrates.
        }
    }
}
