//! Dataflow graph construction.
//!
//! A [`GraphBuilder`] assembles a directed graph of relational operators and
//! produces an immutable [`Program`] that a [`crate::runtime::Runtime`]
//! executes incrementally. Recursion (stratified fixpoints, e.g. shortest
//! paths or BGP best-path propagation) is expressed with *scopes*: a scope
//! holds a loop [`GraphBuilder::iterate`] variable whose collection evolves
//! across iterations until it stops changing.
//!
//! Rows entering keyed operators (join, antijoin, reduce) must be
//! `(key, payload)` 2-tuples built with [`Value::kv`]; antijoin's right input
//! carries bare key values.

use crate::value::Value;
use crate::zset::Diff;

use std::rc::Rc;

/// Function transforming one row into another.
pub type RowFn = Rc<dyn Fn(&Value) -> Value>;
/// Function expanding one row into any number of rows.
pub type RowsFn = Rc<dyn Fn(&Value) -> Vec<Value>>;
/// Row predicate.
pub type PredFn = Rc<dyn Fn(&Value) -> bool>;
/// Join output constructor: `(key, left payload, right payload) -> row`.
pub type JoinFn = Rc<dyn Fn(&Value, &Value, &Value) -> Value>;
/// Group aggregator: `(key, group) -> output rows`, where `group` holds the
/// distinct payloads of the key's group with their (positive) multiplicities,
/// sorted by payload. Must be deterministic.
pub type ReduceFn = Rc<dyn Fn(&Value, &[(Value, Diff)]) -> Vec<Value>>;

/// Identifies a node in the graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(pub(crate) usize);

/// Identifies a scope (recursive region).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ScopeId(pub(crate) usize);

/// A stream handle returned by builder methods; feeds other operators.
#[derive(Clone, Copy, Debug)]
pub struct Handle {
    pub(crate) node: NodeId,
    /// Scope the stream lives in (`None` = top level).
    pub(crate) scope: Option<ScopeId>,
}

/// Handle for feeding input updates into a [`crate::runtime::Runtime`].
#[derive(Clone, Copy, Debug)]
pub struct InputHandle(pub(crate) NodeId);

/// Handle for reading an output collection / draining output deltas.
#[derive(Clone, Copy, Debug)]
pub struct OutputHandle(pub(crate) NodeId);

pub(crate) enum OpKind {
    /// External input relation.
    Input {
        /// Kept for diagnostics (Debug output, error messages).
        #[allow(dead_code)]
        name: String,
    },
    Map(RowFn),
    FlatMap(RowsFn),
    Filter(PredFn),
    /// N-ary union (multiset addition).
    Concat,
    /// Multiplicity negation.
    Negate,
    /// Set semantics: multiplicity > 0 becomes exactly 1.
    Distinct,
    /// Binary equi-join on tuple keys. Inputs: `[left, right]`.
    Join {
        out: JoinFn,
    },
    /// Rows of `left` whose key is absent from `right`. Inputs: `[left, right]`.
    AntiJoin,
    /// Keyed group aggregation.
    Reduce {
        f: ReduceFn,
    },
    /// Brings an outer stream into a scope (iteration-invariant).
    Enter,
    /// Loop variable: collection at iteration 0 is its `initial` input;
    /// collection at iteration `i+1` is its feedback input at iteration `i`.
    Variable {
        name: String,
    },
    /// Extracts the fixpoint collection of an in-scope stream to the outer
    /// region (emits the delta of the collection "at iteration infinity").
    Leave,
    /// Internal arrangement inserted on feedback edges so the runtime can
    /// compare the body's collection against the loop variable's at the
    /// fixpoint boundary.
    Buffer,
    /// Named output sink: accumulates the collection and buffers deltas.
    Output {
        /// Kept for diagnostics (Debug output, error messages).
        #[allow(dead_code)]
        name: String,
    },
}

impl OpKind {
    /// Operator kind label, used in diagnostics and tests.
    #[allow(dead_code)]
    pub(crate) fn kind_name(&self) -> &'static str {
        match self {
            OpKind::Input { .. } => "input",
            OpKind::Map(_) => "map",
            OpKind::FlatMap(_) => "flat_map",
            OpKind::Filter(_) => "filter",
            OpKind::Concat => "concat",
            OpKind::Negate => "negate",
            OpKind::Distinct => "distinct",
            OpKind::Join { .. } => "join",
            OpKind::AntiJoin => "antijoin",
            OpKind::Reduce { .. } => "reduce",
            OpKind::Enter => "enter",
            OpKind::Variable { .. } => "variable",
            OpKind::Leave => "leave",
            OpKind::Buffer => "buffer",
            OpKind::Output { .. } => "output",
        }
    }
}

pub(crate) struct Node {
    pub kind: OpKind,
    /// Data inputs (excludes the feedback edge of a variable).
    pub inputs: Vec<NodeId>,
    pub scope: Option<ScopeId>,
    /// Filled in at build time: `(consumer, port)` pairs fed by this node.
    pub consumers: Vec<(NodeId, usize)>,
    /// For `Variable`: the body node wired as feedback, set by `connect`.
    pub feedback: Option<NodeId>,
    /// Iteration-varying? (depends on a loop variable). Top-level nodes and
    /// iteration-invariant in-scope nodes are `false`.
    pub varying: bool,
    /// Position in the global topological order (feedback edges excluded).
    pub topo: usize,
}

pub(crate) struct Scope {
    pub name: String,
    /// Members in topological order.
    pub members: Vec<NodeId>,
    pub variables: Vec<NodeId>,
}

/// One step of the epoch schedule: a top-level node, or a whole scope run
/// as an atomic unit.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Sched {
    Node(NodeId),
    Scope(ScopeId),
}

/// An immutable dataflow program, ready for execution.
pub struct Program {
    pub(crate) nodes: Vec<Node>,
    pub(crate) scopes: Vec<Scope>,
    /// Epoch schedule: contracted topological order where each scope is an
    /// atomic unit placed after all of its outer inputs and before all
    /// consumers of its leave outputs.
    pub(crate) schedule: Vec<Sched>,
    pub(crate) inputs: Vec<(String, NodeId)>,
    pub(crate) outputs: Vec<(String, NodeId)>,
}

impl Program {
    /// Number of operators in the program.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of recursive scopes.
    pub fn scope_count(&self) -> usize {
        self.scopes.len()
    }

    /// Looks up an input relation by name.
    pub fn input(&self, name: &str) -> Option<InputHandle> {
        self.inputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| InputHandle(id))
    }

    /// Looks up an output relation by name.
    pub fn output(&self, name: &str) -> Option<OutputHandle> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| OutputHandle(id))
    }
}

/// Builds dataflow programs. See the crate-level docs for a full example.
#[derive(Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    scopes: Vec<Scope>,
    inputs: Vec<(String, NodeId)>,
    outputs: Vec<(String, NodeId)>,
    current_scope: Option<ScopeId>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn add_node(&mut self, kind: OpKind, inputs: Vec<NodeId>, scope: Option<ScopeId>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            kind,
            inputs,
            scope,
            consumers: Vec::new(),
            feedback: None,
            varying: false,
            topo: 0,
        });
        if let Some(s) = scope {
            self.scopes[s.0].members.push(id);
        }
        id
    }

    fn check_same_region(&self, h: Handle, what: &str) {
        assert_eq!(
            h.scope, self.current_scope,
            "{what}: stream {:?} belongs to a different region; use enter()/leave() to cross scope boundaries",
            h.node
        );
    }

    fn handle(&self, node: NodeId) -> Handle {
        Handle {
            node,
            scope: self.current_scope,
        }
    }

    /// Declares an external input relation.
    ///
    /// # Panics
    /// Panics when called inside a scope or when the name is already taken.
    pub fn input(&mut self, name: &str) -> (InputHandle, Handle) {
        assert!(
            self.current_scope.is_none(),
            "inputs must be declared at the top level"
        );
        assert!(
            self.inputs.iter().all(|(n, _)| n != name),
            "duplicate input name {name:?}"
        );
        let id = self.add_node(
            OpKind::Input {
                name: name.to_string(),
            },
            vec![],
            None,
        );
        self.inputs.push((name.to_string(), id));
        (InputHandle(id), self.handle(id))
    }

    /// Applies a function to every row.
    pub fn map(&mut self, h: Handle, f: impl Fn(&Value) -> Value + 'static) -> Handle {
        self.check_same_region(h, "map");
        let id = self.add_node(OpKind::Map(Rc::new(f)), vec![h.node], self.current_scope);
        self.handle(id)
    }

    /// Expands every row into zero or more rows.
    pub fn flat_map(&mut self, h: Handle, f: impl Fn(&Value) -> Vec<Value> + 'static) -> Handle {
        self.check_same_region(h, "flat_map");
        let id = self.add_node(
            OpKind::FlatMap(Rc::new(f)),
            vec![h.node],
            self.current_scope,
        );
        self.handle(id)
    }

    /// Keeps rows satisfying the predicate.
    pub fn filter(&mut self, h: Handle, f: impl Fn(&Value) -> bool + 'static) -> Handle {
        self.check_same_region(h, "filter");
        let id = self.add_node(OpKind::Filter(Rc::new(f)), vec![h.node], self.current_scope);
        self.handle(id)
    }

    /// Multiset union of any number of streams.
    pub fn concat(&mut self, hs: &[Handle]) -> Handle {
        assert!(!hs.is_empty(), "concat needs at least one input");
        for h in hs {
            self.check_same_region(*h, "concat");
        }
        let id = self.add_node(
            OpKind::Concat,
            hs.iter().map(|h| h.node).collect(),
            self.current_scope,
        );
        self.handle(id)
    }

    /// Negates multiplicities (used to build differences: `a ⊕ negate(b)`).
    pub fn negate(&mut self, h: Handle) -> Handle {
        self.check_same_region(h, "negate");
        let id = self.add_node(OpKind::Negate, vec![h.node], self.current_scope);
        self.handle(id)
    }

    /// Converts to set semantics: any positive multiplicity becomes one.
    pub fn distinct(&mut self, h: Handle) -> Handle {
        self.check_same_region(h, "distinct");
        let id = self.add_node(OpKind::Distinct, vec![h.node], self.current_scope);
        self.handle(id)
    }

    /// Equi-joins two keyed streams. Both inputs must carry `(key, payload)`
    /// 2-tuples; `out(key, left_payload, right_payload)` builds output rows.
    pub fn join(
        &mut self,
        left: Handle,
        right: Handle,
        out: impl Fn(&Value, &Value, &Value) -> Value + 'static,
    ) -> Handle {
        self.check_same_region(left, "join(left)");
        self.check_same_region(right, "join(right)");
        let id = self.add_node(
            OpKind::Join { out: Rc::new(out) },
            vec![left.node, right.node],
            self.current_scope,
        );
        self.handle(id)
    }

    /// Keeps `(key, payload)` rows of `left` whose key is present (net
    /// multiplicity > 0) in `right`; `right` carries bare key values.
    /// Output rows are the left rows unchanged.
    pub fn semijoin(&mut self, left: Handle, right: Handle) -> Handle {
        self.check_same_region(left, "semijoin(left)");
        self.check_same_region(right, "semijoin(right)");
        // Implemented as join against (key, ()) with distinct on the right,
        // so right multiplicities don't multiply left rows.
        let right_kv = self.map(right, |k| Value::kv(k.clone(), Value::Unit));
        let right_set = self.distinct(right_kv);
        self.join(left, right_set, |k, l, _| Value::kv(k.clone(), l.clone()))
    }

    /// Keeps `(key, payload)` rows of `left` whose key is absent from
    /// `right` (`right` carries bare key values; presence = net count > 0).
    pub fn antijoin(&mut self, left: Handle, right: Handle) -> Handle {
        self.check_same_region(left, "antijoin(left)");
        self.check_same_region(right, "antijoin(right)");
        let id = self.add_node(
            OpKind::AntiJoin,
            vec![left.node, right.node],
            self.current_scope,
        );
        self.handle(id)
    }

    /// Groups `(key, payload)` rows by key and applies `f` to each group.
    /// `f` receives the sorted distinct payloads with positive
    /// multiplicities and returns the group's output rows.
    pub fn reduce(
        &mut self,
        h: Handle,
        f: impl Fn(&Value, &[(Value, Diff)]) -> Vec<Value> + 'static,
    ) -> Handle {
        self.check_same_region(h, "reduce");
        let id = self.add_node(
            OpKind::Reduce { f: Rc::new(f) },
            vec![h.node],
            self.current_scope,
        );
        self.handle(id)
    }

    /// Registers a named output sink on a top-level stream.
    pub fn output(&mut self, name: &str, h: Handle) -> OutputHandle {
        assert!(
            self.current_scope.is_none() && h.scope.is_none(),
            "outputs must be registered at the top level"
        );
        assert!(
            self.outputs.iter().all(|(n, _)| n != name),
            "duplicate output name {name:?}"
        );
        let id = self.add_node(
            OpKind::Output {
                name: name.to_string(),
            },
            vec![h.node],
            None,
        );
        self.outputs.push((name.to_string(), id));
        OutputHandle(id)
    }

    /// Builds a recursive scope. The closure receives the builder (now in
    /// scope mode) and a [`ScopeHandle`] for scope-specific operations; its
    /// return value (typically one or more [`Handle`]s produced by
    /// `ScopeHandle::leave`) is passed through.
    ///
    /// # Panics
    /// Panics on nested scopes (one level of recursion is supported; deeper
    /// nesting is not needed for stratified routing rules).
    pub fn iterate<R>(&mut self, name: &str, body: impl FnOnce(&mut Self, ScopeHandle) -> R) -> R {
        assert!(self.current_scope.is_none(), "scopes cannot nest");
        let sid = ScopeId(self.scopes.len());
        self.scopes.push(Scope {
            name: name.to_string(),
            members: Vec::new(),
            variables: Vec::new(),
        });
        self.current_scope = Some(sid);
        let r = body(self, ScopeHandle { id: sid });
        // Validate that every variable got a feedback connection.
        for &v in &self.scopes[sid.0].variables {
            assert!(
                self.nodes[v.0].feedback.is_some(),
                "variable {:?} in scope {name:?} was never connected",
                v
            );
        }
        self.current_scope = None;
        r
    }

    /// Brings an outer stream into the current scope (iteration-invariant).
    pub fn enter(&mut self, _s: ScopeHandle, outer: Handle) -> Handle {
        assert!(outer.scope.is_none(), "enter takes a top-level stream");
        let scope = self.current_scope.expect("enter outside scope");
        let id = self.add_node(OpKind::Enter, vec![outer.node], Some(scope));
        self.handle(id)
    }

    /// Declares a loop variable with the given initial collection (an
    /// in-scope stream, typically an entered base relation). Its collection
    /// at iteration `i+1` is whatever stream is later wired via
    /// [`GraphBuilder::connect`].
    pub fn variable(&mut self, _s: ScopeHandle, name: &str, initial: Handle) -> Handle {
        let scope = self.current_scope.expect("variable outside scope");
        self.check_same_region(initial, "variable(initial)");
        let id = self.add_node(
            OpKind::Variable {
                name: name.to_string(),
            },
            vec![initial.node],
            Some(scope),
        );
        self.scopes[scope.0].variables.push(id);
        self.handle(id)
    }

    /// Wires the feedback edge of a loop variable: the variable's collection
    /// at iteration `i+1` equals `body`'s collection at iteration `i`.
    pub fn connect(&mut self, variable: Handle, body: Handle) {
        self.check_same_region(variable, "connect(variable)");
        self.check_same_region(body, "connect(body)");
        assert!(
            matches!(self.nodes[variable.node.0].kind, OpKind::Variable { .. }),
            "connect target must be a variable"
        );
        assert!(
            self.nodes[variable.node.0].feedback.is_none(),
            "variable already connected"
        );
        // Arrange the body so the runtime can compare its collection with
        // the variable's at the fixpoint boundary.
        let buffer = self.add_node(OpKind::Buffer, vec![body.node], self.current_scope);
        self.nodes[variable.node.0].feedback = Some(buffer);
    }

    /// Extracts the fixpoint collection of an in-scope stream to the outer
    /// region.
    pub fn leave(&mut self, _s: ScopeHandle, inner: Handle) -> Handle {
        let scope = self.current_scope.expect("leave outside scope");
        assert_eq!(inner.scope, Some(scope), "leave takes an in-scope stream");
        let id = self.add_node(OpKind::Leave, vec![inner.node], Some(scope));
        Handle {
            node: id,
            scope: None,
        }
    }

    /// Finalizes the graph: computes consumer lists, topological order, and
    /// the iteration-varying classification.
    ///
    /// # Panics
    /// Panics if the graph contains a cycle outside variable feedback edges.
    pub fn build(mut self) -> Program {
        let n = self.nodes.len();
        // Consumer lists (data edges only; feedback handled separately).
        for i in 0..n {
            for (port, &src) in self.nodes[i].inputs.clone().iter().enumerate() {
                self.nodes[src.0].consumers.push((NodeId(i), port));
            }
        }
        // Iteration-varying: variables, plus anything reachable from one
        // through same-scope data edges.
        let mut varying = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if matches!(node.kind, OpKind::Variable { .. }) {
                varying[i] = true;
                stack.push(i);
            }
        }
        while let Some(i) = stack.pop() {
            for &(c, _) in &self.nodes[i].consumers {
                let cn = &self.nodes[c.0];
                // Leave nodes are in-scope and varying; their *outputs* go to
                // the outer region, where consumers are not varying.
                let stays_inside = cn.scope == self.nodes[i].scope;
                if stays_inside && !varying[c.0] {
                    varying[c.0] = true;
                    stack.push(c.0);
                }
            }
        }
        for (i, v) in varying.iter().enumerate() {
            self.nodes[i].varying = *v;
        }
        // Topological order over data edges (feedback excluded). Scope
        // members are created contiguously and scopes cannot nest, so a
        // plain topological sort keeps them contiguous enough for the
        // runtime, which drives scopes via their member lists anyway.
        let mut indeg: Vec<usize> = self.nodes.iter().map(|node| node.inputs.len()).collect();
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        ready.reverse();
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(NodeId(i));
            for &(c, _) in &self.nodes[i].consumers {
                indeg[c.0] -= 1;
                if indeg[c.0] == 0 {
                    ready.push(c.0);
                }
            }
        }
        assert_eq!(
            order.len(),
            n,
            "dataflow graph has a cycle outside variable feedback"
        );
        for (pos, id) in order.iter().enumerate() {
            self.nodes[id.0].topo = pos;
        }
        // Scope member lists in topological order.
        for scope in &mut self.scopes {
            scope.members.sort_by_key(|id| self.nodes[id.0].topo);
        }
        // Semantic validations that need the varying classification.
        for node in &self.nodes {
            if let OpKind::Variable { name } = &node.kind {
                let init = node.inputs[0];
                assert!(
                    !self.nodes[init.0].varying,
                    "variable {name:?}: initial collection must be iteration-invariant"
                );
                let fb = node.feedback.expect("validated earlier");
                assert_eq!(
                    self.nodes[fb.0].scope, node.scope,
                    "variable {name:?}: feedback must come from the same scope"
                );
            }
        }
        // Epoch schedule: topological order over the *contracted* graph
        // where each scope is a single vertex. This guarantees every scope
        // runs after all of its outer inputs have been processed and before
        // any consumer of its leave outputs.
        let nscopes = self.scopes.len();
        let vertex = |id: usize| -> usize {
            match self.nodes[id].scope {
                Some(s) => n + s.0,
                None => id,
            }
        };
        let nv = n + nscopes;
        let mut cindeg = vec![0usize; nv];
        let mut cedges: Vec<Vec<usize>> = vec![Vec::new(); nv];
        for (i, node) in self.nodes.iter().enumerate() {
            for &src in &node.inputs {
                let (u, v) = (vertex(src.0), vertex(i));
                if u != v {
                    cedges[u].push(v);
                    cindeg[v] += 1;
                }
            }
        }
        let mut ready: Vec<usize> = (0..nv)
            .filter(|&v| cindeg[v] == 0 && (v >= n || self.nodes[v].scope.is_none()))
            .collect();
        ready.sort_unstable_by(|a, b| b.cmp(a));
        let mut schedule = Vec::new();
        let mut emitted = 0usize;
        while let Some(v) = ready.pop() {
            emitted += 1;
            schedule.push(if v >= n {
                Sched::Scope(ScopeId(v - n))
            } else {
                Sched::Node(NodeId(v))
            });
            for &c in &cedges[v] {
                cindeg[c] -= 1;
                if cindeg[c] == 0 {
                    ready.push(c);
                }
            }
        }
        let expected = self.nodes.iter().filter(|nd| nd.scope.is_none()).count() + nscopes;
        assert_eq!(
            emitted, expected,
            "a scope's output feeds back into the same scope; route such \
             recursion through the scope's loop variable instead"
        );
        Program {
            nodes: self.nodes,
            scopes: self.scopes,
            schedule,
            inputs: self.inputs,
            outputs: self.outputs,
        }
    }
}

/// Token proving the builder is inside a scope; passed to scope operations.
#[derive(Clone, Copy)]
pub struct ScopeHandle {
    #[allow(dead_code)]
    pub(crate) id: ScopeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_linear_pipeline() {
        let mut g = GraphBuilder::new();
        let (_, edges) = g.input("edges");
        let mapped = g.map(edges, |v| v.clone());
        let filtered = g.filter(mapped, |_| true);
        g.output("out", filtered);
        let p = g.build();
        assert_eq!(p.node_count(), 4);
        assert!(p.input("edges").is_some());
        assert!(p.output("out").is_some());
        assert!(p.input("nope").is_none());
    }

    #[test]
    fn classifies_varying_nodes() {
        let mut g = GraphBuilder::new();
        let (_, base) = g.input("base");
        let (_, edges) = g.input("edges");
        let reached = g.iterate("reach", |g, s| {
            let base_in = g.enter(s, base);
            let edges_in = g.enter(s, edges);
            let var = g.variable(s, "v", base_in);
            let stepped = g.join(var, edges_in, |_, _, dst| {
                Value::kv(dst.clone(), Value::Unit)
            });
            let all = g.concat(&[base_in, stepped]);
            let next = g.distinct(all);
            g.connect(var, next);
            g.leave(s, next)
        });
        g.output("reached", reached);
        let p = g.build();
        // Enter nodes are invariant, variable/join/concat/distinct vary.
        let varying: Vec<_> = p
            .nodes
            .iter()
            .filter(|n| n.varying)
            .map(|n| n.kind.kind_name())
            .collect();
        assert!(varying.contains(&"variable"));
        assert!(varying.contains(&"join"));
        assert!(varying.contains(&"distinct"));
        assert!(varying.contains(&"leave"));
        let invariant: Vec<_> = p
            .nodes
            .iter()
            .filter(|n| n.scope.is_some() && !n.varying)
            .map(|n| n.kind.kind_name())
            .collect();
        assert_eq!(invariant, vec!["enter", "enter"]);
    }

    #[test]
    #[should_panic(expected = "never connected")]
    fn unconnected_variable_panics() {
        let mut g = GraphBuilder::new();
        let (_, base) = g.input("base");
        g.iterate("bad", |g, s| {
            let b = g.enter(s, base);
            let _v = g.variable(s, "v", b);
        });
    }

    #[test]
    #[should_panic(expected = "different region")]
    fn cross_region_edge_panics() {
        let mut g = GraphBuilder::new();
        let (_, base) = g.input("base");
        g.iterate("bad", |g, _s| {
            // `base` was not entered — using it inside the scope must fail.
            g.map(base, |v| v.clone());
        });
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let mut g = GraphBuilder::new();
        let (_, a) = g.input("a");
        let (_, b) = g.input("b");
        let j = g.join(a, b, |k, _, _| k.clone());
        let m = g.map(j, |v| v.clone());
        g.output("o", m);
        let p = g.build();
        let pos: Vec<usize> = p.nodes.iter().map(|n| n.topo).collect();
        // join after both inputs, map after join, output after map.
        assert!(pos[2] > pos[0] && pos[2] > pos[1]);
        assert!(pos[3] > pos[2]);
        assert!(pos[4] > pos[3]);
    }
}
