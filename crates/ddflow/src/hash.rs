//! A fast, non-cryptographic hasher for the engine's internal maps.
//!
//! The operator state maps (`Index`, `ZSet`, reduce groups) are probed once
//! or twice per `(row, diff)` pair on the commit hot path, and the default
//! SipHash hasher — designed to resist hash-flooding from untrusted input —
//! costs more than the probe itself for the short structured [`Value`] keys
//! used here. Engine state is keyed by rows the program itself derives, not
//! by attacker-controlled input, so a multiply-xor hasher (the same family
//! rustc uses internally) is safe and substantially faster.
//!
//! [`Value`]: crate::value::Value

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher: each 8-byte word is folded in with a rotate, an
/// xor, and a multiply by a random-odd constant. Not DoS-resistant — only
/// for maps keyed by engine-derived values.
#[derive(Default)]
pub struct FastHasher {
    hash: u64,
}

const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// A `HashMap` using [`FastHasher`] — the engine's internal map type.
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn equal_values_hash_equal() {
        use crate::value::Value;
        let build = BuildHasherDefault::<FastHasher>::default();
        let a = Value::tuple(vec![Value::str("dev0"), Value::U32(7)]);
        let b = Value::tuple(vec![Value::str("dev0"), Value::U32(7)]);
        assert_eq!(build.hash_one(&a), build.hash_one(&b));
    }

    #[test]
    fn distinct_values_spread() {
        let build = BuildHasherDefault::<FastHasher>::default();
        let hashes: std::collections::HashSet<u64> =
            (0..1000u32).map(|n| build.hash_one(n)).collect();
        assert!(hashes.len() > 990, "poor spread: {}", hashes.len());
    }

    #[test]
    fn fastmap_roundtrip() {
        let mut m: FastMap<u32, u32> = FastMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&21), Some(&42));
        assert_eq!(m.len(), 100);
    }
}
