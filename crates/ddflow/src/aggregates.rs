//! Ready-made aggregator constructors for [`GraphBuilder::reduce`].
//!
//! Each constructor returns a closure suitable for `reduce`: it receives the
//! group key and the group's sorted distinct payloads with positive
//! multiplicities, and returns the group's output rows. All aggregators here
//! emit `(key, aggregate)` rows so downstream operators can keep joining on
//! the same key.
//!
//! [`GraphBuilder::reduce`]: crate::graph::GraphBuilder::reduce

use crate::value::Value;
use crate::zset::Diff;
use std::cmp::Ordering;

/// Output rows of a reduce aggregator.
pub type ReduceOut = Vec<Value>;

/// Emits `(key, min_payload)`.
pub fn min() -> impl Fn(&Value, &[(Value, Diff)]) -> ReduceOut {
    |key, group| vec![Value::kv(key.clone(), group[0].0.clone())]
}

/// Emits `(key, max_payload)`.
pub fn max() -> impl Fn(&Value, &[(Value, Diff)]) -> ReduceOut {
    |key, group| vec![Value::kv(key.clone(), group[group.len() - 1].0.clone())]
}

/// Emits `(key, count)` where count sums multiplicities.
pub fn count() -> impl Fn(&Value, &[(Value, Diff)]) -> ReduceOut {
    |key, group| {
        let total: Diff = group.iter().map(|(_, d)| *d).sum();
        vec![Value::kv(key.clone(), Value::I64(total as i64))]
    }
}

/// Emits `(key, sum)` over `I64` payloads, respecting multiplicities.
pub fn sum_i64() -> impl Fn(&Value, &[(Value, Diff)]) -> ReduceOut {
    |key, group| {
        let total: i64 = group.iter().map(|(v, d)| v.as_i64() * (*d as i64)).sum();
        vec![Value::kv(key.clone(), Value::I64(total))]
    }
}

/// Emits `(key, best_payload)` where "best" minimizes the given comparison.
/// Ties are broken by payload order, keeping output deterministic — exactly
/// what protocol decision processes (e.g. BGP) need.
pub fn best_by(
    cmp: impl Fn(&Value, &Value) -> Ordering + 'static,
) -> impl Fn(&Value, &[(Value, Diff)]) -> ReduceOut {
    move |key, group| {
        let best = group
            .iter()
            .map(|(v, _)| v)
            .min_by(|a, b| cmp(a, b).then_with(|| a.cmp(b)))
            .expect("reduce groups are never empty");
        vec![Value::kv(key.clone(), best.clone())]
    }
}

/// Emits `(key, payload)` for every payload that minimizes the comparison —
/// the multi-winner variant of [`best_by`], e.g. ECMP next-hop sets.
pub fn all_best_by(
    cmp: impl Fn(&Value, &Value) -> Ordering + 'static,
) -> impl Fn(&Value, &[(Value, Diff)]) -> ReduceOut {
    move |key, group| {
        let best = group
            .iter()
            .map(|(v, _)| v)
            .min_by(|a, b| cmp(a, b).then_with(|| a.cmp(b)))
            .expect("reduce groups are never empty");
        group
            .iter()
            .filter(|(v, _)| cmp(v, best) == Ordering::Equal)
            .map(|(v, _)| Value::kv(key.clone(), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(vals: &[(i64, Diff)]) -> Vec<(Value, Diff)> {
        vals.iter().map(|&(v, d)| (Value::I64(v), d)).collect()
    }

    #[test]
    fn min_max_pick_extremes() {
        let g = group(&[(2, 1), (5, 3), (9, 1)]);
        let k = Value::U32(1);
        assert_eq!(min()(&k, &g), vec![Value::kv(k.clone(), Value::I64(2))]);
        assert_eq!(max()(&k, &g), vec![Value::kv(k.clone(), Value::I64(9))]);
    }

    #[test]
    fn count_sums_multiplicities() {
        let g = group(&[(2, 2), (5, 3)]);
        let k = Value::U32(1);
        assert_eq!(count()(&k, &g), vec![Value::kv(k.clone(), Value::I64(5))]);
    }

    #[test]
    fn sum_respects_multiplicities() {
        let g = group(&[(2, 2), (5, 3)]);
        let k = Value::U32(1);
        assert_eq!(
            sum_i64()(&k, &g),
            vec![Value::kv(k.clone(), Value::I64(19))]
        );
    }

    #[test]
    fn best_by_custom_order_with_deterministic_ties() {
        // Prefer larger values; tie on |v| broken by natural order.
        let g = group(&[(-7, 1), (3, 1), (7, 1)]);
        let k = Value::U32(1);
        let f = best_by(|a, b| b.as_i64().abs().cmp(&a.as_i64().abs()));
        assert_eq!(f(&k, &g), vec![Value::kv(k.clone(), Value::I64(-7))]);
    }

    #[test]
    fn all_best_by_returns_every_winner() {
        let g = group(&[(-7, 1), (3, 1), (7, 1)]);
        let k = Value::U32(1);
        let f = all_best_by(|a, b| b.as_i64().abs().cmp(&a.as_i64().abs()));
        assert_eq!(
            f(&k, &g),
            vec![
                Value::kv(k.clone(), Value::I64(-7)),
                Value::kv(k.clone(), Value::I64(7)),
            ]
        );
    }
}
