//! Incremental execution of dataflow [`Program`]s.
//!
//! # Execution model
//!
//! Inputs are updated between commits; [`Runtime::commit`] propagates the
//! accumulated deltas through the graph in one *epoch*. Every operator keeps
//! just enough state (indexes, group contents, counts) to translate input
//! deltas into output deltas without recomputing from scratch.
//!
//! ## Scopes (recursion)
//!
//! Inside a scope, collections are functions of the *iteration number*: the
//! loop variable's collection at iteration `i+1` equals the feedback body's
//! collection at iteration `i`. The runtime materializes operator state per
//! iteration (*slots*), in lockstep across all iteration-varying operators of
//! a scope, up to the scope's current fixpoint depth `D`.
//!
//! The two differential dimensions are represented as:
//!
//! * **epoch deltas** — changes to an existing slot's collection relative to
//!   the previous epoch, processed by the classic incremental operator
//!   algebra per slot;
//! * **iteration deltas** — when the fixpoint needs to deepen, slot `D+1` is
//!   initialized as a *copy of slot `D`'s current state* for every stateful
//!   operator, so the new column is differential relative to the previous
//!   iteration; the loop variable then receives exactly
//!   `body[D] − variable[D]`, the iteration-dimension difference.
//!
//! The fixpoint test is value-based: the scope stops deepening when the
//! feedback body's collection equals the loop variable's at the deepest
//! slot. Changes that cancel at iteration `j` stop cascading at `j`; slots
//! beyond the fixpoint depth are never materialized.
//!
//! ## Error handling
//!
//! A scope that fails to quiesce within [`Config::max_iterations`] reports
//! [`DdError::Divergence`] (e.g. an oscillating BGP policy dispute). After a
//! divergence the runtime's internal state is unspecified; rebuild it.

use crate::graph::{InputHandle, NodeId, OpKind, OutputHandle, Program, ReduceFn, Sched, ScopeId};
use crate::hash::FastMap;
use crate::value::Value;
use crate::zset::{consolidate, Batch, Diff, ZSet};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Error returned by [`Runtime::commit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdError {
    /// A recursive scope failed to reach a fixpoint within the configured
    /// iteration bound.
    Divergence {
        /// Name of the scope that failed to converge.
        scope: String,
        /// The iteration bound that was exceeded.
        iterations: u32,
    },
}

impl std::fmt::Display for DdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DdError::Divergence { scope, iterations } => write!(
                f,
                "scope {scope:?} did not reach a fixpoint within {iterations} iterations"
            ),
        }
    }
}

impl std::error::Error for DdError {}

/// Per-commit statistics, used by benchmarks and for observability.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Total `(row, diff)` pairs processed by operators this epoch.
    pub tuples_processed: usize,
    /// Fixpoint depth (deepest materialized iteration), per scope.
    pub scope_depths: Vec<u32>,
    /// Number of output relations that changed this epoch.
    pub outputs_changed: usize,
    /// Scheduled operators skipped because no input port received a batch
    /// this epoch (dirty-node scheduling; includes every member of a scope
    /// that was skipped wholesale).
    pub nodes_skipped: usize,
}

/// Runtime configuration knobs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Bound on fixpoint iterations per scope; exceeding it reports
    /// [`DdError::Divergence`] instead of looping forever.
    pub max_iterations: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_iterations: 10_000,
        }
    }
}

/// One keyed index side of a join/antijoin: `key -> payload -> multiplicity`.
#[derive(Clone, Default)]
struct Index {
    map: FastMap<Value, FastMap<Value, Diff>>,
    tuples: usize,
}

impl Index {
    fn update(&mut self, key: &Value, payload: &Value, diff: Diff) {
        if diff == 0 {
            return;
        }
        // Hot path first: both maps are probed with borrowed keys, and the
        // `Value`s are cloned only when a genuinely new entry is inserted.
        // (Zero-count entries are removed eagerly, so every resident entry
        // is nonzero and the tuple count follows insert/remove directly.)
        let Some(inner) = self.map.get_mut(key) else {
            let mut inner = FastMap::default();
            inner.insert(payload.clone(), diff);
            self.map.insert(key.clone(), inner);
            self.tuples += 1;
            return;
        };
        match inner.get_mut(payload) {
            Some(entry) => {
                *entry += diff;
                if *entry == 0 {
                    inner.remove(payload);
                    self.tuples -= 1;
                    if inner.is_empty() {
                        self.map.remove(key);
                    }
                }
            }
            None => {
                inner.insert(payload.clone(), diff);
                self.tuples += 1;
            }
        }
    }

    fn get(&self, key: &Value) -> Option<&FastMap<Value, Diff>> {
        self.map.get(key)
    }

    /// Net multiplicity summed over all payloads of a key (key-presence
    /// semantics for antijoin right sides).
    fn key_count(&self, key: &Value) -> Diff {
        self.map.get(key).map(|m| m.values().sum()).unwrap_or(0)
    }
}

/// Reduce operator state: group contents plus the previous output per key.
#[derive(Clone, Default)]
struct ReduceState {
    groups: FastMap<Value, BTreeMap<Value, Diff>>,
    out_cache: FastMap<Value, Batch>,
}

/// One iteration slot of some stateful operator.
#[derive(Clone, Default)]
struct Slot<T: Clone + Default> {
    state: T,
    /// Epoch log, maintained only for Leave arrangements: the deltas applied
    /// this epoch, used to read off the fixpoint delta at epoch end.
    log: Batch,
}

/// Join/antijoin side state: a shared single slot for iteration-invariant
/// sides, lockstep per-iteration slots for varying sides.
#[derive(Clone)]
struct SideState {
    varying: bool,
    slots: Vec<Slot<Index>>,
}

impl SideState {
    fn new(varying: bool) -> Self {
        let slots = if varying {
            Vec::new()
        } else {
            vec![Slot::default()]
        };
        SideState { varying, slots }
    }

    fn at(&self, slot: usize) -> &Index {
        let i = if self.varying { slot } else { 0 };
        &self.slots[i].state
    }

    fn at_mut(&mut self, slot: usize) -> &mut Index {
        let i = if self.varying { slot } else { 0 };
        &mut self.slots[i].state
    }
}

enum NodeState {
    Stateless,
    Distinct(Vec<Slot<ZSet>>),
    Join {
        left: SideState,
        right: SideState,
    },
    AntiJoin {
        left: SideState,
        right: SideState,
    },
    Reduce(Vec<Slot<ReduceState>>),
    /// ZSet arrangements: loop variables, feedback buffers, leave nodes.
    Arrange(Vec<Slot<ZSet>>),
    Output {
        current: ZSet,
        drained: Batch,
    },
    Input,
}

/// Per-scope bookkeeping.
#[derive(Default)]
struct ScopeRt {
    /// Materialized fixpoint depth; `None` until the scope first runs.
    depth: Option<u32>,
    /// Slots with pending work this epoch.
    pending_slots: BTreeSet<u32>,
    /// Whether this epoch's deltas reached the deepest slot (forces a
    /// boundary fixpoint check).
    top_touched: bool,
    /// Depth at the start of the current epoch (for leave-delta extraction).
    epoch_start_depth: u32,
    /// Leave nodes with dirty epoch logs `(node, slot)`.
    dirty_logs: Vec<(NodeId, u32)>,
}

/// Executes a [`Program`] incrementally. See the module docs for the model.
pub struct Runtime {
    program: Program,
    states: Vec<NodeState>,
    /// pending[node][port]: slot -> batch.
    pending: Vec<Vec<BTreeMap<u32, Batch>>>,
    input_buffer: FastMap<usize, Batch>,
    scope_rt: Vec<ScopeRt>,
    /// Feedback routing: buffer node -> variables it feeds.
    feedback_of: FastMap<usize, Vec<NodeId>>,
    config: Config,
    tuples_processed: usize,
    outputs_changed: usize,
    nodes_skipped: usize,
}

impl Runtime {
    /// Creates a runtime with default configuration.
    pub fn new(program: Program) -> Self {
        Self::with_config(program, Config::default())
    }

    /// Creates a runtime with the given configuration.
    pub fn with_config(program: Program, config: Config) -> Self {
        let n = program.nodes.len();
        let mut states = Vec::with_capacity(n);
        let mut pending = Vec::with_capacity(n);
        for node in &program.nodes {
            let nports = node.inputs.len().max(1) + 1; // +1 feedback port
            pending.push(vec![BTreeMap::new(); nports]);
            let varying = node.varying;
            fn slots<T: Clone + Default>(varying: bool) -> Vec<Slot<T>> {
                if varying {
                    Vec::new()
                } else {
                    vec![Slot::default()]
                }
            }
            let state = match &node.kind {
                OpKind::Input { .. } => NodeState::Input,
                OpKind::Output { .. } => NodeState::Output {
                    current: ZSet::new(),
                    drained: Batch::new(),
                },
                OpKind::Distinct => NodeState::Distinct(slots(varying)),
                OpKind::Join { .. } | OpKind::AntiJoin => {
                    // A side is per-iteration only when the producing stream
                    // varies *and* this node lives inside the scope (a leave
                    // node's output is a plain top-level stream even though
                    // the leave node itself is iteration-varying).
                    let lv = node.scope.is_some() && program.nodes[node.inputs[0].0].varying;
                    let rv = node.scope.is_some() && program.nodes[node.inputs[1].0].varying;
                    if matches!(node.kind, OpKind::Join { .. }) {
                        NodeState::Join {
                            left: SideState::new(lv),
                            right: SideState::new(rv),
                        }
                    } else {
                        NodeState::AntiJoin {
                            left: SideState::new(lv),
                            right: SideState::new(rv),
                        }
                    }
                }
                OpKind::Reduce { .. } => NodeState::Reduce(slots(varying)),
                OpKind::Leave | OpKind::Variable { .. } | OpKind::Buffer => {
                    NodeState::Arrange(slots(varying))
                }
                _ => NodeState::Stateless,
            };
            states.push(state);
        }
        let mut feedback_of: FastMap<usize, Vec<NodeId>> = FastMap::default();
        for (i, node) in program.nodes.iter().enumerate() {
            if let Some(buf) = node.feedback {
                feedback_of.entry(buf.0).or_default().push(NodeId(i));
            }
        }
        let scope_rt = (0..program.scopes.len())
            .map(|_| ScopeRt::default())
            .collect();
        Runtime {
            states,
            pending,
            input_buffer: FastMap::default(),
            scope_rt,
            feedback_of,
            config,
            tuples_processed: 0,
            outputs_changed: 0,
            nodes_skipped: 0,
            program,
        }
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Buffers an update to an input relation (takes effect at next commit).
    pub fn update(&mut self, input: InputHandle, row: Value, diff: Diff) {
        if diff != 0 {
            self.input_buffer
                .entry(input.0 .0)
                .or_default()
                .push((row, diff));
        }
    }

    /// Buffers an insertion (multiplicity +1).
    pub fn insert(&mut self, input: InputHandle, row: Value) {
        self.update(input, row, 1);
    }

    /// Buffers a removal (multiplicity -1).
    pub fn remove(&mut self, input: InputHandle, row: Value) {
        self.update(input, row, -1);
    }

    /// Buffers a whole batch of updates.
    pub fn update_batch(&mut self, input: InputHandle, batch: Batch) {
        let buf = self.input_buffer.entry(input.0 .0).or_default();
        buf.extend(batch.into_iter().filter(|(_, d)| *d != 0));
    }

    /// Current accumulated collection of an output relation.
    pub fn output(&self, out: OutputHandle) -> &ZSet {
        match &self.states[out.0 .0] {
            NodeState::Output { current, .. } => current,
            _ => unreachable!("handle does not refer to an output node"),
        }
    }

    /// Drains the deltas an output accumulated since the previous drain,
    /// consolidated into canonical form. Outputs that are never drained
    /// accumulate their delta history; drain (or read via
    /// [`Runtime::output`]) according to need.
    pub fn drain(&mut self, out: OutputHandle) -> Batch {
        match &mut self.states[out.0 .0] {
            NodeState::Output { drained, .. } => {
                let mut b = std::mem::take(drained);
                consolidate(&mut b);
                b
            }
            _ => unreachable!("handle does not refer to an output node"),
        }
    }

    /// Total tuples held in operator state (indexes, groups, arrangements) —
    /// the engine's working set, reported by the memory experiments.
    pub fn state_tuples(&self) -> usize {
        let mut total = 0;
        for state in &self.states {
            match state {
                NodeState::Distinct(s) | NodeState::Arrange(s) => {
                    total += s.iter().map(|sl| sl.state.len()).sum::<usize>();
                }
                NodeState::Join { left, right } | NodeState::AntiJoin { left, right } => {
                    total += left.slots.iter().map(|sl| sl.state.tuples).sum::<usize>();
                    total += right.slots.iter().map(|sl| sl.state.tuples).sum::<usize>();
                }
                NodeState::Reduce(s) => {
                    for sl in s {
                        total += sl.state.groups.values().map(|g| g.len()).sum::<usize>();
                        total += sl.state.out_cache.values().map(|b| b.len()).sum::<usize>();
                    }
                }
                NodeState::Output { current, .. } => total += current.len(),
                _ => {}
            }
        }
        total
    }

    /// Commits all buffered input updates as one epoch, propagating deltas
    /// through the graph. Returns per-epoch statistics.
    pub fn commit(&mut self) -> Result<CommitStats, DdError> {
        self.tuples_processed = 0;
        self.outputs_changed = 0;
        self.nodes_skipped = 0;
        let buffered: Vec<(usize, Batch)> = self.input_buffer.drain().collect();
        for (node, mut batch) in buffered {
            consolidate(&mut batch);
            if !batch.is_empty() {
                self.pending[node][0].entry(0).or_default().extend(batch);
            }
        }
        let mut depths = vec![0u32; self.program.scopes.len()];
        // The schedule is walked in place (`Sched` is `Copy`) rather than
        // cloned per commit. Dirty-node scheduling: the walk itself is an
        // O(ports) emptiness probe per operator; only operators whose input
        // ports actually received batches run, everything else is counted
        // as skipped. A whole scope is skipped in one probe when none of
        // its members has pending work — an idle `run_scope` would be a
        // pure no-op (no deltas, no fixpoint movement), so skipping it is
        // observationally identical and saves three member walks.
        for i in 0..self.program.schedule.len() {
            match self.program.schedule[i] {
                Sched::Node(id) => {
                    if self.has_pending(id, 0) {
                        self.process_toplevel(id);
                    } else {
                        self.nodes_skipped += 1;
                    }
                }
                Sched::Scope(sid) => {
                    if self.scope_has_work(sid) {
                        depths[sid.0] = self.run_scope(sid)?;
                    } else {
                        depths[sid.0] = self.scope_rt[sid.0].depth.unwrap_or(0);
                        self.nodes_skipped += self.program.scopes[sid.0].members.len();
                    }
                }
            }
        }
        Ok(CommitStats {
            tuples_processed: self.tuples_processed,
            scope_depths: depths,
            outputs_changed: self.outputs_changed,
            nodes_skipped: self.nodes_skipped,
        })
    }

    /// Whether any member of the scope has pending batches at any slot (or
    /// the scope itself has slots queued for the epoch loop).
    fn scope_has_work(&self, sid: ScopeId) -> bool {
        !self.scope_rt[sid.0].pending_slots.is_empty()
            || self.program.scopes[sid.0]
                .members
                .iter()
                .any(|m| self.pending[m.0].iter().any(|s| !s.is_empty()))
    }

    fn take_pending(&mut self, node: NodeId, slot: u32) -> Vec<(usize, Batch)> {
        let mut out = Vec::new();
        for (port, slots) in self.pending[node.0].iter_mut().enumerate() {
            if let Some(b) = slots.remove(&slot) {
                if !b.is_empty() {
                    out.push((port, b));
                }
            }
        }
        out
    }

    fn has_pending(&self, node: NodeId, slot: u32) -> bool {
        self.pending[node.0].iter().any(|s| s.contains_key(&slot))
    }

    fn process_toplevel(&mut self, id: NodeId) {
        if !self.has_pending(id, 0) {
            return;
        }
        let ports = self.take_pending(id, 0);
        let out = self.apply_node(id, 0, ports, false);
        if !out.is_empty() {
            self.deliver_toplevel(id, out);
        }
    }

    /// Delivers a node's output batch to its consumers at slot 0 (used for
    /// top-level streams and for leave outputs heading to the outer region).
    fn deliver_toplevel(&mut self, from: NodeId, batch: Batch) {
        // Split borrow: `program` is read-only while `pending` is written,
        // so the consumer list needs no per-delivery clone. The last
        // consumer takes the batch by value — with a single consumer (the
        // common case) delivery into an empty pending slot is a move.
        let Runtime {
            program, pending, ..
        } = self;
        let Some((&(lc, lport), rest)) = program.nodes[from.0].consumers.split_last() else {
            return;
        };
        for &(c, port) in rest {
            pending[c.0][port]
                .entry(0)
                .or_default()
                .extend(batch.iter().cloned());
        }
        let last = pending[lc.0][lport].entry(0).or_default();
        if last.is_empty() {
            *last = batch;
        } else {
            last.extend(batch);
        }
    }

    /// Materializes the next iteration slot for every iteration-varying
    /// stateful member of a scope, as a copy of its current deepest slot
    /// (empty for the very first slot). Keeping all members in lockstep is
    /// what lets per-slot deltas use the classic incremental algebra.
    fn deepen_scope(&mut self, sid: ScopeId) {
        let Runtime {
            program,
            states,
            scope_rt,
            ..
        } = self;
        let first = scope_rt[sid.0].depth.is_none();
        // LOAD-BEARING CLONES below: slot `D+1` must start as a *copy* of
        // slot `D`'s current state — that is the iteration-delta semantics
        // itself (the new column is differential relative to the previous
        // iteration), not an artifact of the borrow structure. They run
        // only when the fixpoint deepens, never on the per-epoch hot path.
        for &m in &program.scopes[sid.0].members {
            if !program.nodes[m.0].varying {
                continue;
            }
            match &mut states[m.0] {
                NodeState::Distinct(slots) | NodeState::Arrange(slots) => {
                    let fresh = if first {
                        Slot::default()
                    } else {
                        Slot {
                            state: slots.last().expect("lockstep slots").state.clone(),
                            log: Batch::new(),
                        }
                    };
                    slots.push(fresh);
                }
                NodeState::Reduce(slots) => {
                    let fresh = if first {
                        Slot::default()
                    } else {
                        Slot {
                            state: slots.last().expect("lockstep slots").state.clone(),
                            log: Batch::new(),
                        }
                    };
                    slots.push(fresh);
                }
                NodeState::Join { left, right } | NodeState::AntiJoin { left, right } => {
                    for side in [left, right] {
                        if !side.varying {
                            continue;
                        }
                        let fresh = if first {
                            Slot::default()
                        } else {
                            Slot {
                                state: side.slots.last().expect("lockstep slots").state.clone(),
                                log: Batch::new(),
                            }
                        };
                        side.slots.push(fresh);
                    }
                }
                _ => {}
            }
        }
        let rt = &mut scope_rt[sid.0];
        rt.depth = Some(match rt.depth {
            None => 0,
            Some(d) => d + 1,
        });
    }

    /// `i`th member of a scope (indexed accessor so scope loops need not
    /// clone the member list while `self` is otherwise borrowed mutably).
    fn member(&self, sid: ScopeId, i: usize) -> NodeId {
        self.program.scopes[sid.0].members[i]
    }

    fn member_count(&self, sid: ScopeId) -> usize {
        self.program.scopes[sid.0].members.len()
    }

    /// Runs one scope for the current epoch. Returns the fixpoint depth.
    fn run_scope(&mut self, sid: ScopeId) -> Result<u32, DdError> {
        self.scope_rt[sid.0].epoch_start_depth = self.scope_rt[sid.0].depth.unwrap_or(0);
        // ---- Phase A: iteration-invariant members, in topo order. ----
        // Invariant-side deltas destined for varying operators are absorbed
        // into shared state once and broadcast into every materialized slot.
        let mut broadcasts: Vec<(NodeId, usize, Rc<Batch>)> = Vec::new();
        for mi in 0..self.member_count(sid) {
            let m = self.member(sid, mi);
            if self.program.nodes[m.0].varying || !self.has_pending(m, 0) {
                continue;
            }
            let ports = self.take_pending(m, 0);
            let out = self.apply_node(m, 0, ports, false);
            if !out.is_empty() {
                self.deliver_invariant(sid, m, out, &mut broadcasts);
            }
        }
        if self.scope_rt[sid.0].depth.is_none()
            && (!broadcasts.is_empty() || !self.scope_rt[sid.0].pending_slots.is_empty())
        {
            // First-ever run: materialize iteration 0.
            self.deepen_scope(sid);
        }
        if let Some(depth) = self.scope_rt[sid.0].depth {
            for slot in 0..=depth {
                for (node, port, payload) in &broadcasts {
                    self.pending[node.0][*port]
                        .entry(slot)
                        .or_default()
                        .extend(payload.iter().cloned());
                }
                if !broadcasts.is_empty() {
                    self.scope_rt[sid.0].pending_slots.insert(slot);
                }
            }
        }
        // ---- Phase B: slot loop + boundary fixpoint checks. ----
        self.scope_rt[sid.0].top_touched = false;
        loop {
            let Some(&slot) = self.scope_rt[sid.0].pending_slots.iter().next() else {
                // No pending work. If the deepest slot changed this epoch,
                // check whether the fixpoint moved; deepen if it did.
                if !self.scope_rt[sid.0].top_touched {
                    break;
                }
                self.scope_rt[sid.0].top_touched = false;
                let depth = self.scope_rt[sid.0].depth.expect("scope ran");
                let mut moved: Vec<(NodeId, Batch)> = Vec::new();
                for vi in 0..self.program.scopes[sid.0].variables.len() {
                    let v = self.program.scopes[sid.0].variables[vi];
                    let buf = self.program.nodes[v.0].feedback.expect("validated");
                    let delta = {
                        let (NodeState::Arrange(vs), NodeState::Arrange(bs)) =
                            (&self.states[v.0], &self.states[buf.0])
                        else {
                            unreachable!("variable/buffer must be arrangements")
                        };
                        vs[depth as usize].state.diff_to(&bs[depth as usize].state)
                    };
                    if !delta.is_empty() {
                        moved.push((v, delta));
                    }
                }
                if moved.is_empty() {
                    break;
                }
                if depth + 1 > self.config.max_iterations {
                    self.clear_epoch_state(sid);
                    return Err(DdError::Divergence {
                        scope: self.program.scopes[sid.0].name.clone(),
                        iterations: self.config.max_iterations,
                    });
                }
                self.deepen_scope(sid);
                let new_depth = depth + 1;
                for (v, delta) in moved {
                    let fb_port = self.pending[v.0].len() - 1;
                    self.pending[v.0][fb_port]
                        .entry(new_depth)
                        .or_default()
                        .extend(delta);
                }
                self.scope_rt[sid.0].pending_slots.insert(new_depth);
                continue;
            };
            self.scope_rt[sid.0].pending_slots.remove(&slot);
            let depth = self.scope_rt[sid.0].depth.expect("scope ran");
            debug_assert!(slot <= depth, "pending beyond materialized depth");
            if slot == depth {
                self.scope_rt[sid.0].top_touched = true;
            }
            for mi in 0..self.member_count(sid) {
                let m = self.member(sid, mi);
                if !self.program.nodes[m.0].varying || !self.has_pending(m, slot) {
                    continue;
                }
                let ports = self.take_pending(m, slot);
                let out = self.apply_node(m, slot, ports, true);
                if !out.is_empty() {
                    self.deliver_varying(sid, m, slot, out);
                }
            }
            // Same-slot deliveries during the pass re-inserted this slot;
            // they were all handled (consumers come later in topo order).
            self.scope_rt[sid.0].pending_slots.remove(&slot);
        }
        // ---- Phase C: emit leave deltas, clear epoch bookkeeping. ----
        for mi in 0..self.member_count(sid) {
            let m = self.member(sid, mi);
            if !matches!(self.program.nodes[m.0].kind, OpKind::Leave)
                || !self.program.nodes[m.0].varying
            {
                continue;
            }
            // The fixpoint delta is the sum of this epoch's logs over the
            // slots from the epoch-start depth up to the final depth (fresh
            // slots were initialized from their predecessor's current state,
            // so the logs chain).
            let delta = match &self.states[m.0] {
                NodeState::Arrange(slots) => {
                    let mut d = Batch::new();
                    let start = self.scope_rt[sid.0]
                        .epoch_start_depth
                        .min(slots.len().saturating_sub(1) as u32);
                    for sl in &slots[start as usize..] {
                        d.extend(sl.log.iter().cloned());
                    }
                    consolidate(&mut d);
                    d
                }
                _ => unreachable!("leave node must be an arrangement"),
            };
            if !delta.is_empty() {
                self.deliver_toplevel(m, delta);
            }
        }
        self.clear_epoch_state(sid);
        Ok(self.scope_rt[sid.0].depth.unwrap_or(0))
    }

    fn clear_epoch_state(&mut self, sid: ScopeId) {
        let rt = &mut self.scope_rt[sid.0];
        rt.pending_slots.clear();
        rt.top_touched = false;
        let dirty = std::mem::take(&mut rt.dirty_logs);
        for (node, slot) in dirty {
            if let NodeState::Arrange(s) = &mut self.states[node.0] {
                if let Some(sl) = s.get_mut(slot as usize) {
                    sl.log.clear();
                }
            }
        }
    }

    /// Delivers an invariant in-scope node's output: plain pending for
    /// invariant consumers, slot-0 pending for loop-variable initial values,
    /// absorbed + broadcast for varying consumers.
    fn deliver_invariant(
        &mut self,
        sid: ScopeId,
        from: NodeId,
        batch: Batch,
        broadcasts: &mut Vec<(NodeId, usize, Rc<Batch>)>,
    ) {
        let Runtime {
            program,
            states,
            pending,
            scope_rt,
            tuples_processed,
            ..
        } = self;
        // Shared buffer: pass-through broadcasts (join sides, stateless
        // varying consumers) alias the producer's batch instead of cloning
        // its rows once per consumer.
        let batch = Rc::new(batch);
        for &(c, port) in &program.nodes[from.0].consumers {
            let cnode = &program.nodes[c.0];
            if cnode.scope != Some(sid) || !cnode.varying {
                // Outside the scope (an invariant leave's output heading to
                // the outer region) or an invariant consumer: plain pending.
                pending[c.0][port]
                    .entry(0)
                    .or_default()
                    .extend(batch.iter().cloned());
            } else if matches!(cnode.kind, OpKind::Variable { .. }) && port == 0 {
                // Loop-variable initial values apply at iteration 0 only.
                pending[c.0][0]
                    .entry(0)
                    .or_default()
                    .extend(batch.iter().cloned());
                scope_rt[sid.0].pending_slots.insert(0);
            } else {
                *tuples_processed += batch.len();
                match absorb_invariant_side(&mut states[c.0], port, &batch) {
                    // Pass-through: broadcast the shared original batch.
                    None => broadcasts.push((c, port, Rc::clone(&batch))),
                    Some(flips) if !flips.is_empty() => broadcasts.push((c, port, Rc::new(flips))),
                    Some(_) => {}
                }
            }
        }
    }

    /// Delivers a varying in-scope node's output at a slot, including
    /// feedback pass-through to loop variables at the next slot.
    fn deliver_varying(&mut self, sid: ScopeId, from: NodeId, slot: u32, batch: Batch) {
        let Runtime {
            program,
            pending,
            scope_rt,
            feedback_of,
            ..
        } = self;
        for &(c, port) in &program.nodes[from.0].consumers {
            let cnode = &program.nodes[c.0];
            if cnode.scope != Some(sid) {
                continue; // leave outputs are emitted in phase C
            }
            debug_assert!(cnode.varying, "varying stream cannot feed invariant node");
            pending[c.0][port]
                .entry(slot)
                .or_default()
                .extend(batch.iter().cloned());
            scope_rt[sid.0].pending_slots.insert(slot);
        }
        // Feedback pass-through: the variable's slot i+1 mirrors the buffered
        // body's slot i, so epoch deltas forward directly — but only within
        // the materialized depth; the boundary check handles deepening.
        if let Some(vars) = feedback_of.get(&from.0) {
            let depth = scope_rt[sid.0].depth.expect("scope ran");
            if slot < depth {
                for var in vars {
                    let fb_port = pending[var.0].len() - 1;
                    pending[var.0][fb_port]
                        .entry(slot + 1)
                        .or_default()
                        .extend(batch.iter().cloned());
                    scope_rt[sid.0].pending_slots.insert(slot + 1);
                }
            }
        }
    }

    /// Processes one node at one slot given its drained port batches,
    /// returning the (consolidated) output delta.
    fn apply_node(
        &mut self,
        id: NodeId,
        slot: u32,
        mut ports: Vec<(usize, Batch)>,
        varying: bool,
    ) -> Batch {
        // Split borrow: the operator kind is matched in place (`program` is
        // never mutated after construction) while `states` is written, so
        // no per-application `KindRef` snapshot of the Rc'd closures.
        let Runtime {
            program,
            states,
            scope_rt,
            tuples_processed,
            outputs_changed,
            ..
        } = self;
        for (_, b) in &ports {
            *tuples_processed += b.len();
        }
        let slot_idx = if varying { slot as usize } else { 0 };
        let kind = &program.nodes[id.0].kind;
        let mut out = Batch::new();
        let mut log_dirty = false;
        let mut output_changed = false;
        match kind {
            OpKind::Input { .. } | OpKind::Enter | OpKind::Concat => {
                for (_, b) in ports {
                    out.extend(b);
                }
            }
            OpKind::Map(f) => {
                for (_, b) in ports {
                    for (row, diff) in b {
                        out.push((f(&row), diff));
                    }
                }
            }
            OpKind::FlatMap(f) => {
                for (_, b) in ports {
                    for (row, diff) in b {
                        for produced in f(&row) {
                            out.push((produced, diff));
                        }
                    }
                }
            }
            OpKind::Filter(p) => {
                for (_, b) in ports {
                    for (row, diff) in b {
                        if p(&row) {
                            out.push((row, diff));
                        }
                    }
                }
            }
            OpKind::Negate => {
                for (_, b) in ports {
                    for (row, diff) in b {
                        out.push((row, -diff));
                    }
                }
            }
            OpKind::Leave | OpKind::Variable { .. } | OpKind::Buffer => {
                let is_leave = matches!(kind, OpKind::Leave);
                if is_leave && !varying {
                    // Invariant leave: pure pass-through to the outer region.
                    for (_, b) in ports {
                        out.extend(b);
                    }
                } else {
                    let NodeState::Arrange(slots) = &mut states[id.0] else {
                        unreachable!()
                    };
                    let sl = &mut slots[slot_idx];
                    for (_, b) in ports {
                        for (row, diff) in b {
                            sl.state.update_ref(&row, diff);
                            if is_leave {
                                sl.log.push((row, diff));
                            } else {
                                // Variables/buffers forward their deltas;
                                // leaves emit in phase C instead.
                                out.push((row, diff));
                            }
                        }
                    }
                    log_dirty = is_leave;
                }
            }
            OpKind::Distinct => {
                let NodeState::Distinct(slots) = &mut states[id.0] else {
                    unreachable!()
                };
                let sl = &mut slots[slot_idx];
                for (_, b) in ports {
                    for (row, diff) in b {
                        // One probe, no clone: `update_ref` returns the
                        // post-update multiplicity and the pre-update count
                        // is recovered arithmetically.
                        let after = sl.state.update_ref(&row, diff);
                        let before = after - diff;
                        match (before > 0, after > 0) {
                            (false, true) => out.push((row, 1)),
                            (true, false) => out.push((row, -1)),
                            _ => {}
                        }
                    }
                }
            }
            OpKind::Join { out: outf } => {
                let NodeState::Join { left, right } = &mut states[id.0] else {
                    unreachable!()
                };
                // Port order: when exactly the left side is invariant its
                // payload must be processed first (against the right side's
                // pre-slot state); otherwise right first. See DESIGN.md.
                let left_first = !left.varying && right.varying;
                ports.sort_by_key(|(p, _)| if left_first { *p } else { 1 - *p });
                for (port, b) in ports {
                    let (this_is_left, this_varying) = if port == 0 {
                        (true, left.varying)
                    } else {
                        (false, right.varying)
                    };
                    {
                        let other = if this_is_left { &*right } else { &*left };
                        let oidx = other.at(slot_idx);
                        for (row, diff) in &b {
                            if let Some(matches) = oidx.get(row.key()) {
                                for (opayload, ocount) in matches {
                                    let produced = if this_is_left {
                                        outf(row.key(), row.payload(), opayload)
                                    } else {
                                        outf(row.key(), opayload, row.payload())
                                    };
                                    out.push((produced, diff * ocount));
                                }
                            }
                        }
                    }
                    // Varying sides update per-slot state here; sides of an
                    // *invariant node* update their shared slot here too.
                    // (Invariant sides of varying nodes were updated once in
                    // `absorb_invariant_side`.)
                    if this_varying || !varying {
                        let side = if this_is_left {
                            &mut *left
                        } else {
                            &mut *right
                        };
                        let idx = side.at_mut(slot_idx);
                        for (row, diff) in &b {
                            idx.update(row.key(), row.payload(), *diff);
                        }
                    }
                }
            }
            OpKind::AntiJoin => {
                let NodeState::AntiJoin { left, right } = &mut states[id.0] else {
                    unreachable!()
                };
                let left_first = !left.varying && right.varying;
                ports.sort_by_key(|(p, _)| if left_first { *p } else { 1 - *p });
                for (port, b) in ports {
                    if port == 1 {
                        if right.varying || !varying {
                            // Raw deltas: compute flips against this slot.
                            let mut flips = Batch::new();
                            {
                                let idx = right.at_mut(slot_idx);
                                for (row, diff) in &b {
                                    let before = idx.key_count(row);
                                    idx.update(row, &Value::Unit, *diff);
                                    let after = idx.key_count(row);
                                    match (before > 0, after > 0) {
                                        (false, true) => flips.push((row.clone(), 1)),
                                        (true, false) => flips.push((row.clone(), -1)),
                                        _ => {}
                                    }
                                }
                            }
                            emit_antijoin_flips(&flips, left.at(slot_idx), &mut out);
                        } else {
                            // Pre-computed flips broadcast from phase A.
                            emit_antijoin_flips(&b, left.at(slot_idx), &mut out);
                        }
                    } else {
                        {
                            let ridx = right.at(slot_idx);
                            for (row, diff) in &b {
                                if ridx.key_count(row.key()) <= 0 {
                                    out.push((row.clone(), *diff));
                                }
                            }
                        }
                        if left.varying || !varying {
                            let idx = left.at_mut(slot_idx);
                            for (row, diff) in &b {
                                idx.update(row.key(), row.payload(), *diff);
                            }
                        }
                    }
                }
            }
            OpKind::Reduce { f } => {
                let NodeState::Reduce(slots) = &mut states[id.0] else {
                    unreachable!()
                };
                let sl = &mut slots[slot_idx];
                let mut dirty_keys: BTreeSet<Value> = BTreeSet::new();
                for (_, b) in ports {
                    for (row, diff) in b {
                        apply_group_update(&mut sl.state.groups, row.key(), row.payload(), diff);
                        dirty_keys.insert(row.key().clone());
                    }
                }
                for key in dirty_keys {
                    let new_out = evaluate_reduce(f, &sl.state.groups, &key);
                    let old_out = sl.state.out_cache.remove(&key).unwrap_or_default();
                    for (row, diff) in &new_out {
                        out.push((row.clone(), *diff));
                    }
                    for (row, diff) in &old_out {
                        out.push((row.clone(), -diff));
                    }
                    if !new_out.is_empty() {
                        sl.state.out_cache.insert(key, new_out);
                    }
                }
            }
            OpKind::Output { .. } => {
                let NodeState::Output { current, drained } = &mut states[id.0] else {
                    unreachable!()
                };
                for (_, b) in ports {
                    if !b.is_empty() {
                        output_changed = true;
                    }
                    current.apply(&b);
                    drained.extend(b);
                }
            }
        }
        if log_dirty {
            if let Some(sid) = program.nodes[id.0].scope {
                scope_rt[sid.0].dirty_logs.push((id, slot));
            }
        }
        if output_changed {
            *outputs_changed += 1;
        }
        // Consolidation keeps net-zero batches from circulating forever in
        // feedback loops and canonicalizes all inter-operator traffic.
        consolidate(&mut out);
        out
    }
}

/// Applies an invariant-side delta to the shared state of a varying
/// consumer (once per epoch, not per slot) and returns the payload to
/// broadcast to every materialized slot: `None` when the original batch
/// passes through verbatim (joins, stateless consumers — the caller then
/// broadcasts the shared buffer instead of cloning its rows, the fix for
/// the old per-consumer `batch.clone()`), `Some(flips)` with key presence
/// flips for antijoin right sides.
fn absorb_invariant_side(state: &mut NodeState, port: usize, batch: &Batch) -> Option<Batch> {
    match state {
        NodeState::Join { left, right } => {
            let side = if port == 0 { left } else { right };
            debug_assert!(!side.varying);
            let index = &mut side.slots[0].state;
            for (row, diff) in batch {
                index.update(row.key(), row.payload(), *diff);
            }
            None
        }
        NodeState::AntiJoin { left, right } => {
            if port == 0 {
                debug_assert!(!left.varying);
                let index = &mut left.slots[0].state;
                for (row, diff) in batch {
                    index.update(row.key(), row.payload(), *diff);
                }
                None
            } else {
                debug_assert!(!right.varying);
                let index = &mut right.slots[0].state;
                let mut flips = Batch::new();
                for (row, diff) in batch {
                    let before = index.key_count(row);
                    index.update(row, &Value::Unit, *diff);
                    let after = index.key_count(row);
                    match (before > 0, after > 0) {
                        (false, true) => flips.push((row.clone(), 1)),
                        (true, false) => flips.push((row.clone(), -1)),
                        _ => {}
                    }
                }
                Some(flips)
            }
        }
        // Stateless varying consumers (concat etc.): broadcast raw rows.
        _ => None,
    }
}

fn emit_antijoin_flips(flips: &Batch, left: &Index, out: &mut Batch) {
    for (key, dir) in flips {
        if let Some(rows) = left.get(key) {
            for (payload, count) in rows {
                // Key appeared (+1): suppress left rows; vanished (-1): emit.
                out.push((Value::kv(key.clone(), payload.clone()), -dir * count));
            }
        }
    }
}

fn apply_group_update(
    groups: &mut FastMap<Value, BTreeMap<Value, Diff>>,
    key: &Value,
    payload: &Value,
    diff: Diff,
) {
    if diff == 0 {
        return;
    }
    // Same borrowed-probe discipline as `Index::update`: clone the key and
    // payload only when a new entry is actually created.
    let Some(group) = groups.get_mut(key) else {
        let mut group = BTreeMap::new();
        group.insert(payload.clone(), diff);
        groups.insert(key.clone(), group);
        return;
    };
    match group.get_mut(payload) {
        Some(entry) => {
            *entry += diff;
            if *entry == 0 {
                group.remove(payload);
                if group.is_empty() {
                    groups.remove(key);
                }
            }
        }
        None => {
            group.insert(payload.clone(), diff);
        }
    }
}

fn evaluate_reduce(
    f: &ReduceFn,
    groups: &FastMap<Value, BTreeMap<Value, Diff>>,
    key: &Value,
) -> Batch {
    match groups.get(key) {
        None => Batch::new(),
        Some(group) => {
            let entries: Vec<(Value, Diff)> = group
                .iter()
                .filter(|(_, d)| **d > 0)
                .map(|(v, d)| (v.clone(), *d))
                .collect();
            if entries.is_empty() {
                return Batch::new();
            }
            let mut out: Batch = f(key, &entries).into_iter().map(|v| (v, 1)).collect();
            consolidate(&mut out);
            out
        }
    }
}
