//! # ddflow — a Z-set differential dataflow engine
//!
//! `ddflow` is the incremental-computation substrate of this repository's
//! reproduction of *Differential Network Analysis* (NSDI 2022): a from-
//! scratch replacement for the DDlog / differential-dataflow runtime the
//! original system builds on.
//!
//! Collections are Z-sets (multisets with signed multiplicities); programs
//! are dataflow graphs of relational operators (map, filter, join, antijoin,
//! reduce, distinct, union) plus *scopes* for stratified recursion (shortest
//! paths, BGP best-path propagation). After building a [`Program`], drive it
//! with a [`Runtime`]: feed input deltas, [`Runtime::commit`] an epoch, and
//! read output deltas — the engine maintains all derived relations
//! incrementally.
//!
//! ## Example: incremental graph reachability
//!
//! ```
//! use ddflow::{GraphBuilder, Runtime, Value};
//!
//! let mut g = GraphBuilder::new();
//! let (edge_in, edges) = g.input("edge");       // rows: (src, dst)
//! let (root_in, roots) = g.input("root");       // rows: node
//! let reached = g.iterate("reach", |g, s| {
//!     // edges keyed by source; roots as (node, ()) seeds.
//!     let edges = g.enter(s, edges);
//!     let edges_by_src = g.map(edges, |e| {
//!         Value::kv(e.field(0).clone(), e.field(1).clone())
//!     });
//!     let roots = g.enter(s, roots);
//!     let seeds = g.map(roots, |n| Value::kv(n.clone(), Value::Unit));
//!     let var = g.variable(s, "reached", seeds);
//!     let step = g.join(var, edges_by_src, |_, _, dst| {
//!         Value::kv(dst.clone(), Value::Unit)
//!     });
//!     let all = g.concat(&[seeds, step]);
//!     let next = g.distinct(all);
//!     g.connect(var, next);
//!     g.leave(s, next)
//! });
//! let nodes = g.map(reached, |kv| kv.key().clone());
//! let out = g.output("reached", nodes);
//!
//! let mut rt = Runtime::new(g.build());
//! rt.insert(root_in, Value::U32(0));
//! rt.insert(edge_in, Value::tuple(vec![Value::U32(0), Value::U32(1)]));
//! rt.insert(edge_in, Value::tuple(vec![Value::U32(1), Value::U32(2)]));
//! rt.commit().unwrap();
//! assert_eq!(rt.output(out).len(), 3);
//!
//! // Remove the only path to node 2 — incremental retraction.
//! rt.remove(edge_in, Value::tuple(vec![Value::U32(1), Value::U32(2)]));
//! rt.commit().unwrap();
//! assert_eq!(rt.output(out).len(), 2);
//! ```
//!
//! ## Design notes
//!
//! * Rows are dynamically typed ([`Value`]), mirroring DDlog's `DDValue`;
//!   this keeps the graph monomorphic and the engine simple and robust.
//! * Recursion materializes per-iteration operator state ("slots"), so a
//!   change cascades only through the iterations it actually affects. The
//!   loop-variable's collection at iteration `i+1` is the feedback body's
//!   collection at iteration `i`; the scope quiesces when deltas stop.
//! * Non-convergent recursion (e.g. BGP policy disputes) is detected via an
//!   iteration bound and reported as [`DdError::Divergence`] rather than
//!   hanging.
//! * The engine is single-threaded by design: the workloads it serves here
//!   are driven epoch-by-epoch and the surrounding system parallelizes
//!   across analyses instead (see the Tokio guide's advice on CPU-bound
//!   work).
//!
//! ## What is implemented / omitted
//!
//! Implemented: incremental map/flat_map/filter/concat/negate/distinct,
//! equi-join, semijoin, antijoin, keyed reduce with arbitrary deterministic
//! aggregators, one level of stratified recursion, divergence detection,
//! canonical (sorted, consolidated) output deltas, working-set accounting.
//!
//! Omitted (not needed by the paper's rules): multi-level nested scopes,
//! multi-worker data parallelism, persistent storage of traces, and
//! non-monotonic aggregates *inside* unstratified recursion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregates;
mod graph;
pub mod hash;
mod runtime;
mod value;
mod zset;

pub use graph::{GraphBuilder, Handle, InputHandle, OutputHandle, Program, ScopeHandle};
pub use hash::{FastHasher, FastMap};
pub use runtime::{CommitStats, Config, DdError, Runtime};
pub use value::Value;
pub use zset::{consolidate, Batch, Diff, ZSet};
