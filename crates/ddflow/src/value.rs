//! Dynamically-typed row values.
//!
//! The engine moves rows of type [`Value`] between operators, mirroring
//! DDlog's `DDValue`. A dynamic representation keeps the dataflow graph
//! monomorphic (nodes are plain structs, edges carry one batch type), which
//! in turn keeps the runtime simple and robust — the same trade-off DDlog
//! makes. Tuples and lists are `Arc`-backed so cloning a row is cheap.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A dynamically-typed value flowing through the dataflow graph.
///
/// `Value` is totally ordered (across variants, by variant rank first) so it
/// can serve as a key in ordered containers and so consolidated batches have
/// a canonical order, which makes runs reproducible.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// The unit value; useful as a "presence only" payload.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 32-bit unsigned integer (IPv4 addresses, router ids, small ids).
    U32(u32),
    /// A 64-bit unsigned integer (packed composite ids, counters).
    U64(u64),
    /// A 64-bit signed integer (metrics, costs, preference values).
    I64(i64),
    /// An interned string (device names, policy names).
    Str(Arc<str>),
    /// A fixed-arity tuple. Keyed operators expect 2-tuples `(key, payload)`.
    Tuple(Arc<[Value]>),
    /// A variable-length list (e.g. BGP AS paths).
    List(Arc<[Value]>),
}

impl Value {
    /// Builds a tuple value from a vector of fields.
    pub fn tuple(fields: Vec<Value>) -> Value {
        Value::Tuple(fields.into())
    }

    /// Builds a 2-tuple `(key, payload)` — the shape keyed operators expect.
    pub fn kv(key: Value, payload: Value) -> Value {
        Value::Tuple(Arc::from(vec![key, payload]))
    }

    /// Builds a list value from a vector of elements.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(items.into())
    }

    /// Builds a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Returns the fields of a tuple, or `None` for other variants.
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the elements of a list, or `None` for other variants.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the `i`-th field of a tuple.
    ///
    /// # Panics
    /// Panics if the value is not a tuple or the index is out of bounds;
    /// rule authors use this on rows whose shape they constructed.
    pub fn field(&self, i: usize) -> &Value {
        match self {
            Value::Tuple(t) => &t[i],
            other => panic!("Value::field({i}) on non-tuple {other:?}"),
        }
    }

    /// Returns the key of a `(key, payload)` 2-tuple.
    pub fn key(&self) -> &Value {
        self.field(0)
    }

    /// Returns the payload of a `(key, payload)` 2-tuple.
    pub fn payload(&self) -> &Value {
        self.field(1)
    }

    /// Returns the inner `bool`, panicking on other variants.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("Value::as_bool on {other:?}"),
        }
    }

    /// Returns the inner `u32`, panicking on other variants.
    pub fn as_u32(&self) -> u32 {
        match self {
            Value::U32(v) => *v,
            other => panic!("Value::as_u32 on {other:?}"),
        }
    }

    /// Returns the inner `u64`, panicking on other variants.
    pub fn as_u64(&self) -> u64 {
        match self {
            Value::U64(v) => *v,
            other => panic!("Value::as_u64 on {other:?}"),
        }
    }

    /// Returns the inner `i64`, panicking on other variants.
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::I64(v) => *v,
            other => panic!("Value::as_i64 on {other:?}"),
        }
    }

    /// Returns the inner string, panicking on other variants.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("Value::as_str on {other:?}"),
        }
    }

    /// Variant rank used to order values of different variants.
    fn rank(&self) -> u8 {
        match self {
            Value::Unit => 0,
            Value::Bool(_) => 1,
            Value::U32(_) => 2,
            Value::U64(_) => 3,
            Value::I64(_) => 4,
            Value::Str(_) => 5,
            Value::Tuple(_) => 6,
            Value::List(_) => 7,
        }
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Unit, Unit) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (U32(a), U32(b)) => a.cmp(b),
            (U64(a), U64(b)) => a.cmp(b),
            (I64(a), I64(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Tuple(a), Tuple(b)) => a.cmp(b),
            (List(a), List(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U32(v) => write!(f, "{v}u32"),
            Value::U64(v) => write!(f, "{v}u64"),
            Value::I64(v) => write!(f, "{v}i64"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Tuple(t) => {
                write!(f, "(")?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, ")")
            }
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U32(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_accessors() {
        let v = Value::kv(Value::U32(7), Value::str("x"));
        assert_eq!(v.key().as_u32(), 7);
        assert_eq!(v.payload().as_str(), "x");
        assert_eq!(v.as_tuple().unwrap().len(), 2);
    }

    #[test]
    fn ordering_is_total_and_cross_variant() {
        let mut vs = [
            Value::str("b"),
            Value::U32(3),
            Value::Unit,
            Value::Bool(true),
            Value::tuple(vec![Value::U32(1)]),
            Value::U32(1),
            Value::list(vec![Value::Unit]),
            Value::I64(-5),
        ];
        vs.sort();
        // Variant rank first: Unit < Bool < U32 < I64 < Str < Tuple < List.
        assert_eq!(vs[0], Value::Unit);
        assert_eq!(vs[1], Value::Bool(true));
        assert_eq!(vs[2], Value::U32(1));
        assert_eq!(vs[3], Value::U32(3));
        assert_eq!(vs[4], Value::I64(-5));
        assert_eq!(vs[5], Value::str("b"));
        assert!(matches!(vs[6], Value::Tuple(_)));
        assert!(matches!(vs[7], Value::List(_)));
    }

    #[test]
    fn tuples_compare_lexicographically() {
        let a = Value::tuple(vec![Value::U32(1), Value::U32(9)]);
        let b = Value::tuple(vec![Value::U32(2), Value::U32(0)]);
        assert!(a < b);
    }

    #[test]
    fn clone_is_cheap_shallow() {
        let t = Value::tuple(vec![Value::str("a"); 8]);
        let u = t.clone();
        assert_eq!(t, u);
        if let (Value::Tuple(a), Value::Tuple(b)) = (&t, &u) {
            assert!(Arc::ptr_eq(a, b));
        } else {
            unreachable!()
        }
    }

    #[test]
    fn debug_format_is_readable() {
        let v = Value::kv(Value::U32(1), Value::list(vec![Value::Bool(false)]));
        assert_eq!(format!("{v:?}"), "(1u32, [false])");
    }

    #[test]
    #[should_panic(expected = "non-tuple")]
    fn field_on_non_tuple_panics() {
        Value::U32(1).field(0);
    }
}
