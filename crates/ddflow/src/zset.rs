//! Z-sets: multisets with signed integer multiplicities.
//!
//! A collection at any point in time is a Z-set: a map from rows to signed
//! counts. Changes are *batches* of `(row, diff)` pairs. All incremental
//! operators are linear (or piecewise linear) functions over Z-sets, which is
//! what makes differential computation compositional.

use crate::hash::FastMap;
use crate::value::Value;

/// Signed multiplicity of a row.
pub type Diff = isize;

/// An unconsolidated change batch: rows with signed multiplicities, possibly
/// containing duplicates and zero-sum pairs.
pub type Batch = Vec<(Value, Diff)>;

/// Sorts a batch and merges duplicate rows, dropping rows whose net
/// multiplicity is zero. The result is canonical: equal Z-sets consolidate to
/// equal batches, which makes engine output deterministic and comparable.
pub fn consolidate(batch: &mut Batch) {
    if batch.is_empty() {
        return;
    }
    // Unstable sort: no merge-buffer allocation, and equal rows are merged
    // by summing diffs (commutative) so the relative order of equal
    // elements cannot affect the canonical result.
    batch.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut write = 0usize;
    let mut read = 0usize;
    while read < batch.len() {
        let mut diff = batch[read].1;
        let mut next = read + 1;
        while next < batch.len() && batch[next].0 == batch[read].0 {
            diff += batch[next].1;
            next += 1;
        }
        if diff != 0 {
            batch.swap(write, read);
            batch[write].1 = diff;
            write += 1;
        }
        read = next;
    }
    batch.truncate(write);
}

/// A materialized Z-set: the accumulated collection of some stream.
///
/// Rows with zero net multiplicity are removed eagerly, so `len` counts rows
/// actually present (positively or negatively).
#[derive(Clone, Default)]
pub struct ZSet {
    rows: FastMap<Value, Diff>,
}

impl ZSet {
    /// Creates an empty Z-set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a single `(row, diff)` update. Returns the new multiplicity.
    pub fn update(&mut self, row: Value, diff: Diff) -> Diff {
        if diff == 0 {
            return self.count(&row);
        }
        match self.rows.get_mut(&row) {
            Some(c) => {
                *c += diff;
                let now = *c;
                if now == 0 {
                    self.rows.remove(&row);
                }
                now
            }
            None => {
                self.rows.insert(row, diff);
                diff
            }
        }
    }

    /// Like [`ZSet::update`], but borrows the row and clones it only when a
    /// fresh entry is actually inserted — the hot path (updating a row that
    /// is already present, or cancelling it out) allocates nothing.
    pub fn update_ref(&mut self, row: &Value, diff: Diff) -> Diff {
        if diff == 0 {
            return self.count(row);
        }
        match self.rows.get_mut(row) {
            Some(c) => {
                *c += diff;
                let now = *c;
                if now == 0 {
                    self.rows.remove(row);
                }
                now
            }
            None => {
                self.rows.insert(row.clone(), diff);
                diff
            }
        }
    }

    /// Applies a batch of updates, removing rows whose count reaches zero.
    pub fn apply(&mut self, batch: &Batch) {
        for (row, diff) in batch {
            if *diff == 0 {
                continue;
            }
            match self.rows.get_mut(row) {
                Some(c) => {
                    *c += diff;
                    if *c == 0 {
                        self.rows.remove(row);
                    }
                }
                None => {
                    self.rows.insert(row.clone(), *diff);
                }
            }
        }
    }

    /// Multiplicity of a row (zero if absent).
    pub fn count(&self, row: &Value) -> Diff {
        self.rows.get(row).copied().unwrap_or(0)
    }

    /// Whether the row is present with positive multiplicity.
    pub fn contains(&self, row: &Value) -> bool {
        self.count(row) > 0
    }

    /// Number of distinct rows with nonzero multiplicity.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the Z-set is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over `(row, multiplicity)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, Diff)> {
        self.rows.iter().map(|(v, d)| (v, *d))
    }

    /// Returns the contents as a canonical (sorted, consolidated) batch.
    pub fn to_batch(&self) -> Batch {
        let mut out: Batch = self.rows.iter().map(|(v, d)| (v.clone(), *d)).collect();
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Computes `other - self` as a canonical batch (the delta that would
    /// turn `self` into `other`).
    pub fn diff_to(&self, other: &ZSet) -> Batch {
        let mut out = Batch::new();
        for (row, d) in other.iter() {
            let here = self.count(row);
            if d != here {
                out.push((row.clone(), d - here));
            }
        }
        for (row, d) in self.iter() {
            if other.count(row) == 0 && d != 0 {
                out.push((row.clone(), -d));
            }
        }
        consolidate(&mut out);
        out
    }
}

impl std::fmt::Debug for ZSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map()
            .entries(self.to_batch().iter().map(|(v, d)| (v.clone(), *d)))
            .finish()
    }
}

impl FromIterator<(Value, Diff)> for ZSet {
    fn from_iter<T: IntoIterator<Item = (Value, Diff)>>(iter: T) -> Self {
        let mut z = ZSet::new();
        let batch: Batch = iter.into_iter().collect();
        z.apply(&batch);
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> Value {
        Value::U32(n)
    }

    #[test]
    fn consolidate_merges_and_drops_zeros() {
        let mut b = vec![(v(2), 1), (v(1), 3), (v(2), -1), (v(1), -1), (v(3), 0)];
        consolidate(&mut b);
        assert_eq!(b, vec![(v(1), 2)]);
    }

    #[test]
    fn consolidate_empty_and_singleton() {
        let mut b: Batch = vec![];
        consolidate(&mut b);
        assert!(b.is_empty());
        let mut b = vec![(v(1), 5)];
        consolidate(&mut b);
        assert_eq!(b, vec![(v(1), 5)]);
    }

    #[test]
    fn consolidate_is_idempotent() {
        let mut b = vec![(v(3), 1), (v(1), 2), (v(3), 2)];
        consolidate(&mut b);
        let once = b.clone();
        consolidate(&mut b);
        assert_eq!(b, once);
    }

    #[test]
    fn zset_apply_removes_zero_rows() {
        let mut z = ZSet::new();
        z.apply(&vec![(v(1), 2), (v(2), 1)]);
        assert_eq!(z.count(&v(1)), 2);
        z.apply(&vec![(v(1), -2)]);
        assert_eq!(z.count(&v(1)), 0);
        assert_eq!(z.len(), 1);
        assert!(z.contains(&v(2)));
    }

    #[test]
    fn zset_supports_negative_counts() {
        let mut z = ZSet::new();
        z.apply(&vec![(v(9), -3)]);
        assert_eq!(z.count(&v(9)), -3);
        assert!(!z.contains(&v(9)));
    }

    #[test]
    fn diff_to_produces_exact_delta() {
        let a: ZSet = vec![(v(1), 1), (v(2), 2), (v(3), 1)].into_iter().collect();
        let b: ZSet = vec![(v(2), 1), (v(3), 1), (v(4), 5)].into_iter().collect();
        let delta = a.diff_to(&b);
        let mut a2 = a.clone();
        a2.apply(&delta);
        assert_eq!(a2.to_batch(), b.to_batch());
        // And the delta is canonical.
        let mut d2 = delta.clone();
        consolidate(&mut d2);
        assert_eq!(delta, d2);
    }

    #[test]
    fn to_batch_is_sorted() {
        let z: ZSet = vec![(v(5), 1), (v(1), 1), (v(3), 1)].into_iter().collect();
        let b = z.to_batch();
        assert!(b.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
