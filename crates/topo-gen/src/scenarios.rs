//! Change-scenario generators: the operational change taxonomy the
//! evaluation sweeps (link/device failures, policy edits, ACL edits,
//! origination churn, static edits), generated against an evolving
//! snapshot so every change is valid when applied.

use net_model::acl::{AclEntry, Action, FlowMatch};
use net_model::route::{RmAction, RmSet, RouteMapClause};
use net_model::{pfx, Change, ChangeSet, Ipv4Prefix, NextHop, RouteMap, Snapshot, StaticRoute};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The change taxonomy of the evaluation (DESIGN.md E3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ScenarioKind {
    /// Fail a currently-up link.
    LinkFailure,
    /// Recover a currently-down link.
    LinkRecovery,
    /// Fail a currently-up device.
    DeviceFailure,
    /// Recover a currently-down device.
    DeviceRecovery,
    /// Change the OSPF cost of a live OSPF interface.
    OspfCostChange,
    /// Insert a deny entry into an ACL and bind it inbound.
    AclInsert,
    /// Remove a previously inserted ACL entry.
    AclRemove,
    /// Rewrite a bound import route map to set a new local preference.
    LocalPrefChange,
    /// Withdraw an originated BGP prefix.
    PrefixWithdraw,
    /// (Re-)announce an originated BGP prefix.
    PrefixAnnounce,
    /// Add a static route toward a random adjacent next hop.
    StaticAdd,
    /// Remove a previously added static route.
    StaticRemove,
}

/// All scenario kinds, in a stable order (for tables).
pub const ALL_SCENARIOS: &[ScenarioKind] = &[
    ScenarioKind::LinkFailure,
    ScenarioKind::LinkRecovery,
    ScenarioKind::DeviceFailure,
    ScenarioKind::DeviceRecovery,
    ScenarioKind::OspfCostChange,
    ScenarioKind::AclInsert,
    ScenarioKind::AclRemove,
    ScenarioKind::LocalPrefChange,
    ScenarioKind::PrefixWithdraw,
    ScenarioKind::PrefixAnnounce,
    ScenarioKind::StaticAdd,
    ScenarioKind::StaticRemove,
];

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ScenarioKind::LinkFailure => "link-failure",
            ScenarioKind::LinkRecovery => "link-recovery",
            ScenarioKind::DeviceFailure => "device-failure",
            ScenarioKind::DeviceRecovery => "device-recovery",
            ScenarioKind::OspfCostChange => "ospf-cost-change",
            ScenarioKind::AclInsert => "acl-insert",
            ScenarioKind::AclRemove => "acl-remove",
            ScenarioKind::LocalPrefChange => "local-pref-change",
            ScenarioKind::PrefixWithdraw => "prefix-withdraw",
            ScenarioKind::PrefixAnnounce => "prefix-announce",
            ScenarioKind::StaticAdd => "static-add",
            ScenarioKind::StaticRemove => "static-remove",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for ScenarioKind {
    type Err = String;

    /// Parses the hyphenated name [`ScenarioKind`] displays as (CLI
    /// `--scenarios` lists, trace epoch labels).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ALL_SCENARIOS
            .iter()
            .find(|k| k.to_string() == s)
            .copied()
            .ok_or_else(|| format!("unknown scenario kind {s:?}"))
    }
}

/// Seeded generator of valid change scenarios.
pub struct ScenarioGen {
    rng: StdRng,
    acl_seq: u32,
}

impl ScenarioGen {
    /// Creates a generator with a fixed seed (reproducible sequences).
    pub fn new(seed: u64) -> Self {
        ScenarioGen {
            rng: StdRng::seed_from_u64(seed),
            acl_seq: 100,
        }
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.rng.gen_range(0..items.len())])
        }
    }

    /// Generates one change set of the given kind against `snap`, or `None`
    /// if the snapshot offers no opportunity (e.g. no link is down to
    /// recover).
    pub fn generate(&mut self, snap: &Snapshot, kind: ScenarioKind) -> Option<ChangeSet> {
        let change = match kind {
            ScenarioKind::LinkFailure => {
                let up: Vec<_> = snap.up_links().cloned().collect();
                Change::LinkDown(self.pick(&up)?.clone())
            }
            ScenarioKind::LinkRecovery => {
                let down: Vec<_> = snap.environment.down_links.iter().cloned().collect();
                Change::LinkUp(self.pick(&down)?.clone())
            }
            ScenarioKind::DeviceFailure => {
                let up: Vec<String> = snap
                    .devices
                    .keys()
                    .filter(|d| !snap.environment.down_devices.contains(*d))
                    .cloned()
                    .collect();
                Change::DeviceDown(self.pick(&up)?.clone())
            }
            ScenarioKind::DeviceRecovery => {
                let down: Vec<String> = snap.environment.down_devices.iter().cloned().collect();
                Change::DeviceUp(self.pick(&down)?.clone())
            }
            ScenarioKind::OspfCostChange => {
                let candidates: Vec<(String, String, u32)> = snap
                    .devices
                    .iter()
                    .flat_map(|(d, dc)| {
                        dc.interfaces.iter().filter_map(move |(i, ic)| {
                            ic.ospf.as_ref().map(|o| (d.clone(), i.clone(), o.cost))
                        })
                    })
                    .collect();
                let (device, iface, old) = self.pick(&candidates)?.clone();
                let mut cost = self.rng.gen_range(1..=20);
                if cost == old {
                    cost = old % 20 + 1;
                }
                Change::SetOspfCost {
                    device,
                    iface,
                    cost,
                }
            }
            ScenarioKind::AclInsert => {
                let devices: Vec<String> = snap.devices.keys().cloned().collect();
                let device = self.pick(&devices)?.clone();
                let dc = &snap.devices[&device];
                let iface = self
                    .pick(&dc.interfaces.keys().cloned().collect::<Vec<_>>())?
                    .clone();
                self.acl_seq += 1;
                let seq = self.acl_seq;
                let blocked = pfx(&format!(
                    "172.{}.{}.0/24",
                    16 + self.rng.gen_range(0..16),
                    self.rng.gen_range(0..8)
                ));
                let mut changes = vec![Change::AclEntryAdd {
                    device: device.clone(),
                    acl: "gen".into(),
                    entry: AclEntry {
                        seq,
                        action: Action::Deny,
                        matches: FlowMatch::dst(blocked),
                    },
                }];
                // Bind the ACL (with a trailing permit) the first time.
                if dc.interfaces[&iface].acl_in.is_none() {
                    changes.push(Change::AclEntryAdd {
                        device: device.clone(),
                        acl: "gen".into(),
                        entry: AclEntry {
                            seq: u32::MAX,
                            action: Action::Permit,
                            matches: FlowMatch::any(),
                        },
                    });
                    changes.push(Change::SetAclIn {
                        device,
                        iface,
                        acl: Some("gen".into()),
                    });
                }
                return Some(ChangeSet::of(changes));
            }
            ScenarioKind::AclRemove => {
                let candidates: Vec<(String, u32)> = snap
                    .devices
                    .iter()
                    .filter_map(|(d, dc)| {
                        dc.acls.get("gen").and_then(|a| {
                            a.entries
                                .iter()
                                .find(|e| e.seq != u32::MAX)
                                .map(|e| (d.clone(), e.seq))
                        })
                    })
                    .collect();
                let (device, seq) = self.pick(&candidates)?.clone();
                Change::AclEntryRemove {
                    device,
                    acl: "gen".into(),
                    seq,
                }
            }
            ScenarioKind::LocalPrefChange => {
                let candidates: Vec<(String, String)> = snap
                    .devices
                    .iter()
                    .flat_map(|(d, dc)| {
                        dc.bgp.iter().flat_map(move |b| {
                            b.neighbors.iter().filter_map(move |n| {
                                n.import_policy.clone().map(|p| (d.clone(), p))
                            })
                        })
                    })
                    .collect();
                let (device, name) = self.pick(&candidates)?.clone();
                let lp = self.rng.gen_range(50..300);
                let mut rm = RouteMap::default();
                rm.add(RouteMapClause {
                    seq: 10,
                    matches: vec![],
                    action: RmAction::Permit,
                    sets: vec![RmSet::LocalPref(lp)],
                });
                Change::SetRouteMap {
                    device,
                    name,
                    map: rm,
                }
            }
            ScenarioKind::PrefixWithdraw => {
                let candidates: Vec<(String, Ipv4Prefix)> = snap
                    .devices
                    .iter()
                    .flat_map(|(d, dc)| {
                        dc.bgp
                            .iter()
                            .flat_map(move |b| b.networks.iter().map(move |p| (d.clone(), *p)))
                    })
                    .collect();
                let (device, prefix) = self.pick(&candidates)?.clone();
                Change::BgpNetworkRemove { device, prefix }
            }
            ScenarioKind::PrefixAnnounce => {
                // Re-announce a connected prefix not currently originated.
                let candidates: Vec<(String, Ipv4Prefix)> = snap
                    .devices
                    .iter()
                    .filter_map(|(d, dc)| {
                        let bgp = dc.bgp.as_ref()?;
                        dc.interfaces
                            .values()
                            .map(|ic| ic.prefix)
                            .find(|p| !bgp.networks.contains(p))
                            .map(|p| (d.clone(), p))
                    })
                    .collect();
                let (device, prefix) = self.pick(&candidates)?.clone();
                Change::BgpNetworkAdd { device, prefix }
            }
            ScenarioKind::StaticAdd => {
                // Point a fresh prefix at a random adjacent address.
                let adjacencies: Vec<(String, net_model::Ipv4Addr)> = snap
                    .up_links()
                    .flat_map(|l| {
                        let a_addr = snap.devices[&l.a.device].interfaces[&l.a.iface].addr;
                        let b_addr = snap.devices[&l.b.device].interfaces[&l.b.iface].addr;
                        [(l.a.device.clone(), b_addr), (l.b.device.clone(), a_addr)]
                    })
                    .collect();
                let (device, nh) = self.pick(&adjacencies)?.clone();
                let prefix = pfx(&format!("192.168.{}.0/24", self.rng.gen_range(0..=255)));
                Change::StaticRouteAdd {
                    device,
                    route: StaticRoute {
                        prefix,
                        next_hop: NextHop::Ip(nh),
                        admin_distance: 1,
                    },
                }
            }
            ScenarioKind::StaticRemove => {
                let candidates: Vec<(String, Ipv4Prefix, NextHop)> = snap
                    .devices
                    .iter()
                    .flat_map(|(d, dc)| {
                        dc.static_routes
                            .iter()
                            .map(move |r| (d.clone(), r.prefix, r.next_hop))
                    })
                    .collect();
                let (device, prefix, next_hop) = self.pick(&candidates)?.clone();
                Change::StaticRouteRemove {
                    device,
                    prefix,
                    next_hop,
                }
            }
        };
        Some(ChangeSet::single(change))
    }

    /// Generates a serially valid sequence of `n` change sets, drawing
    /// kinds uniformly from `kinds` and evolving a private snapshot copy so
    /// every change applies cleanly. Falls back to other kinds when the
    /// requested one has no opportunity.
    pub fn sequence(
        &mut self,
        snap: &Snapshot,
        kinds: &[ScenarioKind],
        n: usize,
    ) -> Vec<ChangeSet> {
        self.labeled_sequence(snap, kinds, n)
            .into_iter()
            .map(|(_, cs)| cs)
            .collect()
    }

    /// Like [`ScenarioGen::sequence`], but records which scenario kind
    /// produced each change set — the shape trace recorders (`dna dump
    /// --trace`, `harness --record`) persist as per-epoch labels so a
    /// replayed stream stays attributable to its scenario.
    pub fn labeled_sequence(
        &mut self,
        snap: &Snapshot,
        kinds: &[ScenarioKind],
        n: usize,
    ) -> Vec<(ScenarioKind, ChangeSet)> {
        let mut cur = snap.clone();
        let mut out = Vec::with_capacity(n);
        'outer: for _ in 0..n {
            for _attempt in 0..kinds.len() * 4 {
                let kind = kinds[self.rng.gen_range(0..kinds.len())];
                if let Some(cs) = self.generate(&cur, kind) {
                    match cs.apply(&cur) {
                        Ok(next) => {
                            cur = next;
                            out.push((kind, cs));
                            continue 'outer;
                        }
                        Err(_) => continue,
                    }
                }
            }
            break; // no kind has opportunities left
        }
        out
    }

    /// A single change set containing `size` primitive changes of one kind
    /// (for the change-size sweep, E1). Changes are generated serially so
    /// the batch applies cleanly.
    pub fn batch(&mut self, snap: &Snapshot, kind: ScenarioKind, size: usize) -> ChangeSet {
        let mut cur = snap.clone();
        let mut changes = Vec::new();
        for _ in 0..size {
            let Some(cs) = self.generate(&cur, kind) else {
                break;
            };
            if let Ok(next) = cs.apply(&cur) {
                cur = next;
                changes.extend(cs.changes);
            }
        }
        ChangeSet::of(changes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::{fat_tree, Routing};

    #[test]
    fn generates_valid_sequences_on_a_fat_tree() {
        let ft = fat_tree(4, Routing::Ebgp);
        let mut g = ScenarioGen::new(7);
        let seq = g.sequence(&ft.snapshot, ALL_SCENARIOS, 40);
        assert!(seq.len() >= 30, "most kinds should have opportunities");
        // Serial application must succeed end to end.
        let mut cur = ft.snapshot.clone();
        for cs in &seq {
            cur = cs.apply(&cur).expect("valid change");
        }
    }

    #[test]
    fn sequences_are_reproducible() {
        let ft = fat_tree(4, Routing::Ospf);
        let a = ScenarioGen::new(9).sequence(&ft.snapshot, ALL_SCENARIOS, 20);
        let b = ScenarioGen::new(9).sequence(&ft.snapshot, ALL_SCENARIOS, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn recovery_requires_prior_failure() {
        let ft = fat_tree(4, Routing::Ospf);
        let mut g = ScenarioGen::new(1);
        assert!(g
            .generate(&ft.snapshot, ScenarioKind::LinkRecovery)
            .is_none());
        let failure = g.generate(&ft.snapshot, ScenarioKind::LinkFailure).unwrap();
        let after = failure.apply(&ft.snapshot).unwrap();
        assert!(g.generate(&after, ScenarioKind::LinkRecovery).is_some());
    }

    #[test]
    fn batch_size_controls_primitive_count() {
        let ft = fat_tree(6, Routing::Ebgp);
        let mut g = ScenarioGen::new(3);
        let b = g.batch(&ft.snapshot, ScenarioKind::LinkFailure, 16);
        assert_eq!(b.len(), 16);
        assert!(b.apply(&ft.snapshot).is_ok());
    }

    #[test]
    fn labeled_sequence_matches_sequence() {
        let ft = fat_tree(4, Routing::Ebgp);
        let labeled = ScenarioGen::new(21).labeled_sequence(&ft.snapshot, ALL_SCENARIOS, 15);
        let plain = ScenarioGen::new(21).sequence(&ft.snapshot, ALL_SCENARIOS, 15);
        assert_eq!(
            labeled.iter().map(|(_, cs)| cs.clone()).collect::<Vec<_>>(),
            plain
        );
        // Labels name the kind that produced each step.
        for (kind, cs) in &labeled {
            assert!(!cs.is_empty());
            assert!(ALL_SCENARIOS.contains(kind));
        }
    }

    #[test]
    fn scenario_kinds_parse_from_display_names() {
        for &kind in ALL_SCENARIOS {
            let parsed: ScenarioKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("not-a-kind".parse::<ScenarioKind>().is_err());
    }

    #[test]
    fn acl_insert_binds_then_only_adds() {
        let ft = fat_tree(4, Routing::Ospf);
        let mut g = ScenarioGen::new(11);
        let first = g.generate(&ft.snapshot, ScenarioKind::AclInsert).unwrap();
        // First insert on a device carries the bind (3 primitives).
        assert_eq!(first.len(), 3);
        let after = first.apply(&ft.snapshot).unwrap();
        // Remove finds the inserted entry.
        assert!(g.generate(&after, ScenarioKind::AclRemove).is_some());
    }
}
