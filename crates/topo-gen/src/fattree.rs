//! k-ary fat-tree generator (the data-center workload of the evaluation).
//!
//! Standard 3-tier Clos: `(k/2)²` core switches, `k` pods of `k/2`
//! aggregation and `k/2` edge switches; every edge switch owns a server
//! subnet. Routing is either eBGP in the RFC 7938 style (one ASN for the
//! core tier, one per pod for aggregation, one per edge switch) or
//! single-area OSPF with unit costs. Server subnets are originated by their
//! edge switch (network statement / passive interface).

use net_model::{pfx, Ipv4Prefix, NetBuilder, RouteMap, Snapshot};

/// Routing flavor for generated fabrics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Routing {
    /// Per-tier/per-device ASNs, eBGP on every link (RFC 7938).
    Ebgp,
    /// Single-area OSPF, unit link costs, passive server subnets.
    Ospf,
}

/// Names and metadata of a generated fat-tree.
pub struct FatTree {
    /// The snapshot.
    pub snapshot: Snapshot,
    /// Arity; must be even.
    pub k: u32,
    /// Core switch names.
    pub cores: Vec<String>,
    /// Aggregation switch names, grouped by pod.
    pub aggs: Vec<Vec<String>>,
    /// Edge switch names, grouped by pod.
    pub edges: Vec<Vec<String>>,
    /// `(edge switch, server prefix)` pairs.
    pub server_subnets: Vec<(String, Ipv4Prefix)>,
}

impl FatTree {
    /// Total switch count: `(k/2)² + k²`.
    pub fn device_count(&self) -> usize {
        self.cores.len()
            + self.aggs.iter().map(Vec::len).sum::<usize>()
            + self.edges.iter().map(Vec::len).sum::<usize>()
    }
}

/// Allocates sequential point-to-point /31 subnets out of 10.0.0.0/8.
pub(crate) struct P2pAlloc {
    next: u32,
}

impl P2pAlloc {
    pub(crate) fn new() -> Self {
        // 10.0.0.0 base.
        P2pAlloc { next: 10 << 24 }
    }

    /// Returns the two endpoint addresses `(lo, hi)` of a fresh /31.
    pub(crate) fn next_pair(&mut self) -> (net_model::Ipv4Addr, net_model::Ipv4Addr) {
        let base = self.next;
        self.next += 2;
        (net_model::Ipv4Addr(base), net_model::Ipv4Addr(base + 1))
    }
}

/// Builds a `k`-ary fat-tree.
///
/// # Panics
/// Panics unless `k` is even, `4 ≤ k ≤ 32`.
pub fn fat_tree(k: u32, routing: Routing) -> FatTree {
    assert!(
        (4..=32).contains(&k) && k.is_multiple_of(2),
        "k must be even in [4, 32]"
    );
    let half = k / 2;
    let mut b = NetBuilder::new();
    let mut alloc = P2pAlloc::new();

    let cores: Vec<String> = (0..half * half).map(|i| format!("core{i}")).collect();
    let aggs: Vec<Vec<String>> = (0..k)
        .map(|p| (0..half).map(|i| format!("agg{p}_{i}")).collect())
        .collect();
    let edges: Vec<Vec<String>> = (0..k)
        .map(|p| (0..half).map(|i| format!("edge{p}_{i}")).collect())
        .collect();

    for c in &cores {
        b = b.router(c);
    }
    for pod in &aggs {
        for a in pod {
            b = b.router(a);
        }
    }
    for pod in &edges {
        for e in pod {
            b = b.router(e);
        }
    }

    // Router ids and (for eBGP) ASNs.
    let rid = |tier: u32, a: u32, c: u32| (tier << 16) | (a << 8) | c;
    if routing == Routing::Ebgp {
        for (i, c) in cores.iter().enumerate() {
            b = b.bgp(c, 65000, rid(1, 0, i as u32));
        }
        for (p, pod) in aggs.iter().enumerate() {
            for (i, a) in pod.iter().enumerate() {
                b = b.bgp(a, 65100 + p as u32, rid(2, p as u32, i as u32));
            }
        }
        for (p, pod) in edges.iter().enumerate() {
            for (i, e) in pod.iter().enumerate() {
                b = b.bgp(
                    e,
                    65300 + (p as u32) * half + i as u32,
                    rid(3, p as u32, i as u32),
                );
            }
        }
    }

    // Server subnets on edge switches.
    let mut server_subnets = Vec::new();
    for (p, pod) in edges.iter().enumerate() {
        for (i, e) in pod.iter().enumerate() {
            let prefix = pfx(&format!("172.{}.{}.0/24", 16 + p, i));
            let addr = prefix.nth_host(1);
            b = b.iface(e, "servers", &format!("{addr}/24"));
            match routing {
                Routing::Ebgp => {
                    b = b.network(e, prefix);
                }
                Routing::Ospf => {
                    b = b.ospf_passive(e, "servers", 1);
                }
            }
            server_subnets.push((e.clone(), prefix));
        }
    }

    // Helper adding a /31 link with per-side interfaces, plus routing.
    let mut wire = |mut b: NetBuilder,
                    d1: &str,
                    i1: String,
                    d2: &str,
                    i2: String,
                    asn1: Option<u32>,
                    asn2: Option<u32>|
     -> NetBuilder {
        let (lo, hi) = alloc.next_pair();
        b = b.iface(d1, &i1, &format!("{lo}/31"));
        b = b.iface(d2, &i2, &format!("{hi}/31"));
        b = b.link(d1, &i1, d2, &i2);
        match routing {
            Routing::Ospf => {
                b = b.ospf(d1, &i1, 1).ospf(d2, &i2, 1);
            }
            Routing::Ebgp => {
                let (a1, a2) = (asn1.unwrap(), asn2.unwrap());
                // Every session gets its own import route map (permit-all
                // initially) so policy-edit scenarios have a target.
                let (rm1, rm2) = (format!("imp_{i1}"), format!("imp_{i2}"));
                b = b
                    .route_map(d1, &rm1, RouteMap::permit_all())
                    .route_map(d2, &rm2, RouteMap::permit_all())
                    .neighbor(d1, &hi.to_string(), a2, Some(&rm1), None)
                    .neighbor(d2, &lo.to_string(), a1, Some(&rm2), None);
            }
        }
        b
    };

    // Edge <-> aggregation (full mesh within a pod).
    for p in 0..k as usize {
        for (ei, e) in edges[p].iter().enumerate() {
            for (ai, a) in aggs[p].iter().enumerate() {
                let easn = (65300 + (p as u32) * half + ei as u32, 65100 + p as u32);
                b = wire(
                    b,
                    e,
                    format!("up{ai}"),
                    a,
                    format!("down{ei}"),
                    Some(easn.0),
                    Some(easn.1),
                );
            }
        }
    }
    // Aggregation <-> core: agg i in each pod connects to cores
    // [i*half, (i+1)*half).
    for (p, pod_aggs) in aggs.iter().enumerate() {
        for (ai, a) in pod_aggs.iter().enumerate() {
            for ci in 0..half as usize {
                let core = &cores[ai * half as usize + ci];
                b = wire(
                    b,
                    a,
                    format!("up{ci}"),
                    core,
                    format!("down{p}"),
                    Some(65100 + p as u32),
                    Some(65000),
                );
            }
        }
    }

    FatTree {
        snapshot: b.build(),
        k,
        cores,
        aggs,
        edges,
        server_subnets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k4_structure() {
        let ft = fat_tree(4, Routing::Ebgp);
        assert_eq!(ft.cores.len(), 4);
        assert_eq!(ft.aggs.iter().map(Vec::len).sum::<usize>(), 8);
        assert_eq!(ft.edges.iter().map(Vec::len).sum::<usize>(), 8);
        assert_eq!(ft.device_count(), 20);
        // k^3/4 host-facing subnets... here one per edge switch.
        assert_eq!(ft.server_subnets.len(), 8);
        // Links: edges*half (intra-pod) + k*half*half (agg-core) = 16 + 16.
        assert_eq!(ft.snapshot.links.len(), 32);
        assert!(
            ft.snapshot.validate().is_empty(),
            "{:?}",
            ft.snapshot.validate()
        );
    }

    #[test]
    fn k6_validates_both_routings() {
        for routing in [Routing::Ebgp, Routing::Ospf] {
            let ft = fat_tree(6, routing);
            assert_eq!(ft.device_count(), 9 + 36);
            assert!(ft.snapshot.validate().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_rejected() {
        fat_tree(5, Routing::Ospf);
    }

    #[test]
    fn ebgp_sessions_are_reciprocal() {
        let ft = fat_tree(4, Routing::Ebgp);
        // Every neighbor statement has a reciprocal statement at the peer.
        let snap = &ft.snapshot;
        for (dev, dc) in &snap.devices {
            let Some(bgp) = &dc.bgp else { continue };
            for n in &bgp.neighbors {
                let peer = snap
                    .devices
                    .iter()
                    .find(|(_, pc)| pc.interfaces.values().any(|ic| ic.addr == n.peer))
                    .unwrap_or_else(|| panic!("{dev}: neighbor {} unresolvable", n.peer));
                let pbgp = peer.1.bgp.as_ref().expect("peer runs bgp");
                assert_eq!(pbgp.asn, n.remote_as, "asn mismatch at {dev}");
                assert!(
                    pbgp.neighbors
                        .iter()
                        .any(|pn| dc.interfaces.values().any(|ic| ic.addr == pn.peer)),
                    "no reciprocal statement for {dev} at {}",
                    peer.0
                );
            }
        }
    }
}
