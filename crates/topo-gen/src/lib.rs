//! # topo-gen — seeded topology, configuration and scenario generators
//!
//! Replaces the original evaluation's proprietary configurations (see
//! DESIGN.md §5): reproducible fat-tree fabrics (eBGP or OSPF), WAN-style
//! backbones (ring/line/random mesh with heterogeneous OSPF costs), and
//! generators for the operational change taxonomy (failures, policy edits,
//! ACL edits, origination churn).
//!
//! Everything is seeded: the same inputs produce byte-identical snapshots
//! and change sequences, making every experiment reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fattree;
pub mod scenarios;
pub mod wan;

pub use fattree::{fat_tree, FatTree, Routing};
pub use scenarios::{ScenarioGen, ScenarioKind, ALL_SCENARIOS};
pub use wan::{wan, Wan, WanShape};
