//! WAN-like topology generators: ring, line, and random mesh (seeded).
//!
//! These model ISP/enterprise backbones running single-area OSPF with
//! heterogeneous link costs; every router owns a passive LAN subnet, so
//! every router pair has end-to-end traffic to reason about.

use crate::fattree::P2pAlloc;
use net_model::{pfx, Ipv4Prefix, NetBuilder, Snapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated WAN.
pub struct Wan {
    /// The snapshot.
    pub snapshot: Snapshot,
    /// Router names (`r0..`).
    pub routers: Vec<String>,
    /// `(router, LAN prefix)` pairs.
    pub lans: Vec<(String, Ipv4Prefix)>,
}

/// Shape of the generated backbone graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WanShape {
    /// A simple cycle.
    Ring,
    /// A path graph (useful for worst-case propagation depth).
    Line,
    /// Ring plus `extra` random chords with seeded placement.
    Mesh {
        /// Number of random chords added on top of the ring.
        extra: usize,
    },
}

/// Generates a WAN of `n` routers with the given shape. Link costs are
/// drawn uniformly from `1..=max_cost` using the seeded RNG, so topologies
/// are reproducible.
///
/// # Panics
/// Panics if `n < 2` or `n > 512`.
pub fn wan(n: usize, shape: WanShape, max_cost: u32, seed: u64) -> Wan {
    assert!((2..=512).contains(&n), "n must be in [2, 512]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetBuilder::new();
    let mut alloc = P2pAlloc::new();
    let routers: Vec<String> = (0..n).map(|i| format!("r{i}")).collect();
    for r in &routers {
        b = b.router(r);
    }
    // LANs: 172.x.y.0/24, passive OSPF.
    let mut lans = Vec::new();
    for (i, r) in routers.iter().enumerate() {
        let prefix = pfx(&format!("172.{}.{}.0/24", 16 + i / 256, i % 256));
        b = b.iface(r, "lan", &format!("{}/24", prefix.nth_host(1)));
        b = b.ospf_passive(r, "lan", 1);
        lans.push((r.clone(), prefix));
    }
    let mut iface_counter = vec![0usize; n];
    let mut edges: Vec<(usize, usize)> = Vec::new();
    match shape {
        WanShape::Line => {
            for i in 0..n - 1 {
                edges.push((i, i + 1));
            }
        }
        WanShape::Ring => {
            for i in 0..n {
                edges.push((i, (i + 1) % n));
            }
            if n == 2 {
                edges.pop(); // avoid the duplicate 0-1 edge
            }
        }
        WanShape::Mesh { extra } => {
            for i in 0..n {
                edges.push((i, (i + 1) % n));
            }
            if n == 2 {
                edges.pop();
            }
            let mut attempts = 0;
            let mut added = 0;
            while added < extra && attempts < extra * 20 {
                attempts += 1;
                let a = rng.gen_range(0..n);
                let c = rng.gen_range(0..n);
                if a == c {
                    continue;
                }
                let key = (a.min(c), a.max(c));
                if edges.contains(&key) {
                    continue;
                }
                edges.push(key);
                added += 1;
            }
        }
    }
    for (i, j) in edges {
        let (lo, hi) = alloc.next_pair();
        let ii = format!("p2p{}", iface_counter[i]);
        let ij = format!("p2p{}", iface_counter[j]);
        iface_counter[i] += 1;
        iface_counter[j] += 1;
        let cost_i = rng.gen_range(1..=max_cost);
        let cost_j = rng.gen_range(1..=max_cost);
        b = b
            .iface(&routers[i], &ii, &format!("{lo}/31"))
            .iface(&routers[j], &ij, &format!("{hi}/31"))
            .link(&routers[i], &ii, &routers[j], &ij)
            .ospf(&routers[i], &ii, cost_i)
            .ospf(&routers[j], &ij, cost_j);
    }
    Wan {
        snapshot: b.build(),
        routers,
        lans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_and_line_shapes() {
        let ring = wan(8, WanShape::Ring, 5, 1);
        assert_eq!(ring.snapshot.links.len(), 8);
        assert!(ring.snapshot.validate().is_empty());
        let line = wan(8, WanShape::Line, 5, 1);
        assert_eq!(line.snapshot.links.len(), 7);
        assert!(line.snapshot.validate().is_empty());
    }

    #[test]
    fn mesh_adds_chords_deterministically() {
        let a = wan(16, WanShape::Mesh { extra: 10 }, 10, 42);
        let b = wan(16, WanShape::Mesh { extra: 10 }, 10, 42);
        assert_eq!(a.snapshot, b.snapshot, "same seed, same snapshot");
        let c = wan(16, WanShape::Mesh { extra: 10 }, 10, 43);
        assert_ne!(a.snapshot, c.snapshot, "different seed, different mesh");
        assert!(a.snapshot.links.len() >= 16 + 5, "chords added");
        assert!(a.snapshot.validate().is_empty());
    }

    #[test]
    fn two_router_edge_case() {
        let w = wan(2, WanShape::Ring, 3, 7);
        assert_eq!(w.snapshot.links.len(), 1);
        assert!(w.snapshot.validate().is_empty());
    }

    #[test]
    fn every_router_has_a_lan() {
        let w = wan(12, WanShape::Mesh { extra: 4 }, 8, 5);
        assert_eq!(w.lans.len(), 12);
        let prefixes: std::collections::BTreeSet<_> = w.lans.iter().map(|(_, p)| *p).collect();
        assert_eq!(prefixes.len(), 12, "LAN prefixes are unique");
    }
}
