//! Prints every experiment of the evaluation (DESIGN.md §7).
//!
//! Usage: `cargo run --release -p dna-bench --bin harness
//! [e1|e2|...|e14|serve|shard|resume|overhead|accounting|epoch-path|all|record]
//! [--record <dir>] [--quick] [--out <file>]` (`serve` is an alias
//! for the E9 service experiment, `shard` for E10, `resume` for E11,
//! `overhead` for E12, `accounting` for E13, `epoch-path` for E14).
//!
//! `epoch-path` (E14) measures the differential epoch hot path over
//! the E5 k=6 scenario mix and writes the `BENCH_epoch_path.json`
//! perf-trajectory artifact (default `--out`; `--quick` drops the
//! repetitions for CI smoke). It is *not* part of `all` because it
//! rewrites that checked-in artifact. An existing artifact's
//! `current` block becomes the new `baseline`, so running it before
//! and after an optimization records the speedup on the same box.
//!
//! With `--record <dir>`, the standard benchmark workloads (snapshot +
//! all-scenario change trace per topology) are additionally written as
//! `dna-io` artifacts under `<dir>`, replayable offline with
//! `dna diff` / `dna replay --verify`. The pseudo-experiment `record`
//! does only that (default directory: `recorded/`).

use dna_bench as b;
use topo_gen::{fat_tree, wan, Routing, WanShape};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut record_dir: Option<std::path::PathBuf> = None;
    let mut which: Option<String> = None;
    let mut quick = false;
    let mut out: Option<std::path::PathBuf> = None;
    let mut probe_reps: Option<usize> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--record" {
            let dir = it
                .next()
                .unwrap_or_else(|| panic!("--record needs a directory"));
            record_dir = Some(dir.into());
        } else if a == "--quick" {
            quick = true;
        } else if a == "--out" {
            let f = it.next().unwrap_or_else(|| panic!("--out needs a file"));
            out = Some(f.into());
        } else if which.is_none() {
            which = Some(a);
        } else if which.as_deref() == Some("epoch-path-probe") && probe_reps.is_none() {
            probe_reps = a.parse().ok();
        } else {
            panic!("unexpected argument {a:?}");
        }
    }
    let which = which.unwrap_or_else(|| "all".into());
    if which == "record" && record_dir.is_none() {
        record_dir = Some("recorded".into());
    }
    let all = which == "all";
    if all || which == "e1" {
        b::e1_change_size(6, &[1, 2, 4, 8, 16, 32, 64]);
    }
    if all || which == "e2" {
        b::e2_scalability(&[4, 6, 8]);
    }
    if all || which == "e3" {
        let ft = fat_tree(6, Routing::Ebgp);
        b::e3_scenarios(&ft.snapshot, "k=6 eBGP fat-tree", 3);
        let w = wan(40, WanShape::Mesh { extra: 20 }, 8, 99);
        b::e3_scenarios(&w.snapshot, "WAN-40 OSPF mesh", 3);
    }
    if all || which == "e4" {
        b::e4_dp_throughput(40, 200);
    }
    if all || which == "e5" {
        let ft = fat_tree(6, Routing::Ebgp);
        b::e5_breakdown(&ft.snapshot, "k=6 eBGP fat-tree");
    }
    if all || which == "e6" {
        b::e6_memory(&[4, 6, 8]);
    }
    if all || which == "e7" {
        b::e7_locality(6);
    }
    if all || which == "e8" {
        let (checks, mismatches) = b::e8_equivalence(&[11, 12, 13, 14], 8);
        assert_eq!(mismatches, 0, "analyzers diverged");
        let _ = checks;
    }
    if all || which == "e9" || which == "serve" {
        b::e9_service(6, &[4, 16, 64], 64);
    }
    if all || which == "e10" || which == "shard" {
        b::e10_sharded_init(&[4, 6, 8, 10], &[1, 2, 4]);
    }
    if all || which == "e11" || which == "resume" {
        b::e11_resume(&[4, 6, 8, 10], 24);
    }
    // The child arm of E12: run one ingest probe and print only the
    // rate (the parent re-execs this harness with DNA_OBS_DISABLED=1).
    if which == "e12-probe" {
        println!("e12-probe eps {}", b::e12_probe(6, 64));
        return;
    }
    if all || which == "e12" || which == "overhead" {
        b::e12_obs_overhead(6, 64, 3);
    }
    // The child arm of E14 (`epoch-path`): print one machine line per
    // scenario (parent re-execs with DNA_OBS_DISABLED=1, the same
    // latched-kill-switch pattern as E12/E13).
    if which == "epoch-path-probe" {
        let reps = probe_reps.unwrap_or(5);
        for (name, t, cp, dp) in b::epoch_path_rows(6, reps) {
            println!("epoch-path-probe row {t} {cp} {dp} {name}");
        }
        return;
    }
    // Deliberately NOT part of `all`: E14 rewrites the checked-in
    // BENCH_epoch_path.json perf-trajectory artifact (current ->
    // baseline), which only an explicit run should do.
    if which == "e14" || which == "epoch-path" {
        let reps = if quick { 2 } else { 5 };
        let out = out.unwrap_or_else(|| "BENCH_epoch_path.json".into());
        b::e14_epoch_path(6, reps, &out);
    }
    // The child arm of E13, same re-exec pattern as E12.
    if which == "e13-probe" {
        println!("e13-probe eps {}", b::e13_probe(6, 64));
        return;
    }
    if all || which == "e13" || which == "accounting" {
        b::e13_accounting_overhead(6, 64, 3);
    }
    if let Some(dir) = record_dir {
        let files = b::record_workloads(&dir, 24).expect("record workloads");
        println!("\n== recorded workloads ({}) ==", dir.display());
        for f in files {
            println!("  {}", f.display());
        }
    }
}
