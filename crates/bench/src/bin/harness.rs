//! Prints every experiment of the evaluation (DESIGN.md §7).
//!
//! Usage: `cargo run --release -p dna-bench --bin harness [e1|e2|...|e8|all]`

use dna_bench as b;
use topo_gen::{fat_tree, wan, Routing, WanShape};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let all = which == "all";
    if all || which == "e1" {
        b::e1_change_size(6, &[1, 2, 4, 8, 16, 32, 64]);
    }
    if all || which == "e2" {
        b::e2_scalability(&[4, 6, 8]);
    }
    if all || which == "e3" {
        let ft = fat_tree(6, Routing::Ebgp);
        b::e3_scenarios(&ft.snapshot, "k=6 eBGP fat-tree", 3);
        let w = wan(40, WanShape::Mesh { extra: 20 }, 8, 99);
        b::e3_scenarios(&w.snapshot, "WAN-40 OSPF mesh", 3);
    }
    if all || which == "e4" {
        b::e4_dp_throughput(40, 200);
    }
    if all || which == "e5" {
        let ft = fat_tree(6, Routing::Ebgp);
        b::e5_breakdown(&ft.snapshot, "k=6 eBGP fat-tree");
    }
    if all || which == "e6" {
        b::e6_memory(&[4, 6, 8]);
    }
    if all || which == "e7" {
        b::e7_locality(6);
    }
    if all || which == "e8" {
        let (checks, mismatches) = b::e8_equivalence(&[11, 12, 13, 14], 8);
        assert_eq!(mismatches, 0, "analyzers diverged");
        let _ = checks;
    }
}
