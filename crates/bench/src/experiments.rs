//! Experiment implementations E1..E8 (see DESIGN.md §7).
//!
//! Each function runs one experiment and prints the table/series the
//! evaluation reports; all return machine-readable rows too so the
//! Criterion benches and tests can reuse them. Workload sizes are chosen
//! to finish in seconds-to-minutes on a laptop while preserving the
//! *shape* of the published results (who wins, by what factor, where the
//! crossover falls).

use dna_core::{DiffEngine, ReplayMode, ReplaySession, ScratchDiffer};
use net_model::{ChangeSet, Snapshot};
use std::time::{Duration, Instant};
use topo_gen::{fat_tree, wan, Routing, ScenarioGen, ScenarioKind, WanShape, ALL_SCENARIOS};

/// Milliseconds with two decimals.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// One measured comparison row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (x-axis value or scenario name).
    pub label: String,
    /// Differential latency.
    pub diff: Duration,
    /// From-scratch latency.
    pub scratch: Duration,
    /// Auxiliary counter (experiment-specific).
    pub aux: u64,
}

impl Row {
    /// scratch / differential.
    pub fn speedup(&self) -> f64 {
        self.scratch.as_secs_f64() / self.diff.as_secs_f64().max(1e-9)
    }
}

fn print_rows(title: &str, xlabel: &str, aux_label: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "{:<24} {:>14} {:>14} {:>9} {:>12}",
        xlabel, "differential", "from-scratch", "speedup", aux_label
    );
    for r in rows {
        println!(
            "{:<24} {:>12.2}ms {:>12.2}ms {:>8.1}x {:>12}",
            r.label,
            ms(r.diff),
            ms(r.scratch),
            r.speedup(),
            r.aux
        );
    }
}

/// Applies one change set to fresh engines over `snap`, returning the pair
/// of latencies (differential, scratch) and the diff's flow count.
fn measure_once(snap: &Snapshot, cs: &ChangeSet) -> (Duration, Duration, usize) {
    let mut eng = DiffEngine::new(snap.clone()).expect("engine");
    let (d1, t_diff) = time(|| eng.apply(cs).expect("diff apply"));
    let mut scr = ScratchDiffer::new(snap.clone()).expect("scratch");
    let (d2, t_scr) = time(|| scr.apply(cs).expect("scratch apply"));
    assert_eq!(d1.fib, d2.fib, "analyzers disagree");
    (t_diff, t_scr, d1.flows.len())
}

/// E1 — end-to-end latency vs change size (batched policy/ACL edits on a
/// k=8 eBGP fat-tree).
pub fn e1_change_size(k: u32, sizes: &[usize]) -> Vec<Row> {
    let ft = fat_tree(k, Routing::Ebgp);
    let mut rows = Vec::new();
    for &size in sizes {
        let mut gen = ScenarioGen::new(1000 + size as u64);
        let cs = gen.batch(&ft.snapshot, ScenarioKind::LocalPrefChange, size);
        let (diff, scratch, flows) = measure_once(&ft.snapshot, &cs);
        rows.push(Row {
            label: format!("{} changes", cs.len()),
            diff,
            scratch,
            aux: flows as u64,
        });
    }
    print_rows(
        &format!("E1: latency vs change size (k={k} fat-tree, local-pref batches)"),
        "batch size",
        "flow diffs",
        &rows,
    );
    rows
}

/// E2 — scalability with network size (single link failure on fat-trees).
pub fn e2_scalability(ks: &[u32]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &k in ks {
        let ft = fat_tree(k, Routing::Ebgp);
        let link = ft
            .snapshot
            .links
            .iter()
            .find(|l| l.touches("core0"))
            .unwrap()
            .clone();
        let cs = ChangeSet::single(net_model::Change::LinkDown(link));
        let (diff, scratch, flows) = measure_once(&ft.snapshot, &cs);
        rows.push(Row {
            label: format!("k={k} ({} devices)", ft.device_count()),
            diff,
            scratch,
            aux: flows as u64,
        });
    }
    print_rows(
        "E2: scalability with network size (single core-link failure)",
        "fabric",
        "flow diffs",
        &rows,
    );
    rows
}

/// E3 — latency and speedup per change scenario.
pub fn e3_scenarios(snap: &Snapshot, name: &str, samples: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for &kind in ALL_SCENARIOS {
        let mut gen = ScenarioGen::new(7_000 + kind as u64);
        let mut best: Option<Row> = None;
        let mut cur = snap.clone();
        for _ in 0..samples {
            let Some(cs) = gen.generate(&cur, kind) else {
                continue;
            };
            let (diff, scratch, flows) = measure_once(&cur, &cs);
            let row = Row {
                label: kind.to_string(),
                diff,
                scratch,
                aux: flows as u64,
            };
            // Keep the median-ish representative: the slowest differential
            // sample (conservative for the incremental side).
            if best.as_ref().is_none_or(|b| row.diff > b.diff) {
                best = Some(row);
            }
            // Evolve so recovery scenarios have opportunities.
            cur = cs.apply(&cur).unwrap();
        }
        if let Some(row) = best {
            rows.push(row);
        }
    }
    print_rows(
        &format!("E3: per-scenario latency ({name}; worst of {samples} samples)"),
        "scenario",
        "flow diffs",
        &rows,
    );
    rows
}

/// E4 — data-plane update throughput: single FIB rule churn, incremental
/// vs full recomputation of all classes.
pub fn e4_dp_throughput(n_routers: usize, updates: usize) -> (f64, f64) {
    use control_plane::reference;
    use data_plane::{DataPlane, DpUpdate};
    let w = wan(
        n_routers,
        WanShape::Mesh {
            extra: n_routers / 2,
        },
        8,
        4242,
    );
    let sim = reference::simulate(&w.snapshot).expect("wan converges");
    let fib: Vec<_> = sim.fib.iter().cloned().collect();
    let mut dp = DataPlane::new(&w.snapshot);
    dp.apply(&DpUpdate {
        fib: fib.iter().cloned().map(|e| (e, 1)).collect(),
        filters: vec![],
    });
    // Churn: remove and re-add individual FIB entries round-robin.
    let t0 = Instant::now();
    for i in 0..updates {
        let e = fib[i % fib.len()].clone();
        dp.apply(&DpUpdate {
            fib: vec![(e.clone(), -1)],
            filters: vec![],
        });
        dp.apply(&DpUpdate {
            fib: vec![(e, 1)],
            filters: vec![],
        });
    }
    let incr = t0.elapsed();
    let inc_rate = (2 * updates) as f64 / incr.as_secs_f64();
    // Baseline: full recomputation per update.
    let scratch_updates = updates.min(20);
    let t1 = Instant::now();
    for _ in 0..scratch_updates {
        dp.recompute_all();
    }
    let scr = t1.elapsed();
    let scr_rate = scratch_updates as f64 / scr.as_secs_f64();
    println!("\n== E4: data-plane update throughput (WAN-{n_routers}, single-rule churn) ==");
    println!("incremental: {inc_rate:>10.0} updates/s");
    println!("recompute:   {scr_rate:>10.0} updates/s");
    println!("ratio:       {:>10.1}x", inc_rate / scr_rate.max(1e-9));
    (inc_rate, scr_rate)
}

/// E5 — stage breakdown: control-plane vs data-plane share per scenario.
pub fn e5_breakdown(snap: &Snapshot, name: &str) -> Vec<(String, f64, f64)> {
    println!("\n== E5: stage breakdown ({name}) ==");
    println!(
        "{:<24} {:>10} {:>10} {:>8}",
        "scenario", "cp", "dp", "cp share"
    );
    let mut out = Vec::new();
    for &kind in ALL_SCENARIOS {
        let mut gen = ScenarioGen::new(9_000 + kind as u64);
        let Some(cs) = gen.generate(snap, kind) else {
            continue;
        };
        let mut eng = DiffEngine::new(snap.clone()).expect("engine");
        let d = eng.apply(&cs).expect("apply");
        let (cp, dp) = (ms(d.stats.cp_time), ms(d.stats.dp_time));
        println!(
            "{:<24} {:>8.2}ms {:>8.2}ms {:>7.0}%",
            kind.to_string(),
            cp,
            dp,
            100.0 * cp / (cp + dp).max(1e-9)
        );
        out.push((kind.to_string(), cp, dp));
    }
    out
}

/// E6 — working-set size vs network size.
pub fn e6_memory(ks: &[u32]) -> Vec<(u32, usize, usize, usize, usize)> {
    println!("\n== E6: state cost vs network size ==");
    println!(
        "{:<8} {:>9} {:>14} {:>10} {:>12} {:>12}",
        "fabric", "devices", "engine tuples", "classes", "pset nodes", "fib entries"
    );
    let mut out = Vec::new();
    for &k in ks {
        let ft = fat_tree(k, Routing::Ebgp);
        let eng = DiffEngine::new(ft.snapshot.clone()).expect("engine");
        let (tuples, atoms, psets) = eng.state_size();
        println!(
            "k={:<6} {:>9} {:>14} {:>10} {:>12} {:>12}",
            k,
            ft.device_count(),
            tuples,
            atoms,
            psets,
            eng.fib().len()
        );
        out.push((k, ft.device_count(), tuples, atoms, psets));
    }
    out
}

/// E7 — affected classes vs change locality (edge vs agg vs core failure).
pub fn e7_locality(k: u32) -> Vec<(String, usize, usize)> {
    let ft = fat_tree(k, Routing::Ebgp);
    println!("\n== E7: blast radius vs change locality (k={k} fat-tree) ==");
    println!(
        "{:<28} {:>12} {:>14}",
        "failed element", "flow diffs", "dirty classes"
    );
    let mut out = Vec::new();
    let picks: Vec<(String, net_model::Change)> = vec![
        (
            "edge-agg link".into(),
            net_model::Change::LinkDown(
                ft.snapshot
                    .links
                    .iter()
                    .find(|l| l.touches("edge0_0") && l.touches("agg0_0"))
                    .unwrap()
                    .clone(),
            ),
        ),
        (
            "agg-core link".into(),
            net_model::Change::LinkDown(
                ft.snapshot
                    .links
                    .iter()
                    .find(|l| l.touches("agg0_0") && l.touches("core0"))
                    .unwrap()
                    .clone(),
            ),
        ),
        (
            "edge switch".into(),
            net_model::Change::DeviceDown("edge0_0".into()),
        ),
        (
            "core switch".into(),
            net_model::Change::DeviceDown("core0".into()),
        ),
    ];
    for (label, change) in picks {
        let mut eng = DiffEngine::new(ft.snapshot.clone()).expect("engine");
        let d = eng.apply(&ChangeSet::single(change)).expect("apply");
        println!(
            "{:<28} {:>12} {:>14}",
            label,
            d.flows.len(),
            d.stats.dirty_classes
        );
        out.push((label, d.flows.len(), d.stats.dirty_classes));
    }
    out
}

/// Persists the standard benchmark topologies (the two E3 fabrics) as
/// replayable `dna-io` artifacts: for each, a snapshot file plus an
/// all-scenario change trace of `epochs` labeled epochs, generated with
/// fixed seeds so the files are reproducible (the change sets are *not*
/// the ones E3 measures — E3 reseeds per scenario kind). Returns the
/// files written, so callers (the harness `--record` flag, tests) can
/// list or replay them — e.g.
/// `dna replay <name>.snap.dna <name>.trace.dna --verify`.
pub fn record_workloads(
    dir: &std::path::Path,
    epochs: usize,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    use dna_io::{write_snapshot, write_trace, Trace};
    std::fs::create_dir_all(dir)?;
    let workloads: Vec<(&str, Snapshot, u64)> = vec![
        (
            "fattree_k6_ebgp",
            fat_tree(6, Routing::Ebgp).snapshot,
            7_000,
        ),
        (
            "wan40_mesh",
            wan(40, WanShape::Mesh { extra: 20 }, 8, 99).snapshot,
            99,
        ),
    ];
    let mut written = Vec::new();
    for (name, snap, seed) in workloads {
        let snap_path = dir.join(format!("{name}.snap.dna"));
        std::fs::write(&snap_path, write_snapshot(&snap))?;
        written.push(snap_path);
        let mut gen = ScenarioGen::new(seed);
        let labeled = gen.labeled_sequence(&snap, ALL_SCENARIOS, epochs);
        let trace =
            Trace::from_labeled(labeled.into_iter().map(|(kind, cs)| (kind.to_string(), cs)));
        let trace_path = dir.join(format!("{name}.trace.dna"));
        std::fs::write(&trace_path, write_trace(&trace))?;
        written.push(trace_path);
    }
    Ok(written)
}

/// One depth row of the E9 service experiment.
#[derive(Debug, Clone)]
pub struct ServiceRow {
    /// Retention depth (epochs of history kept).
    pub retain: usize,
    /// Sustained ingest rate, epochs per second.
    pub ingest_eps: f64,
    /// Mean differential epoch latency during ingest.
    pub epoch_mean: Duration,
    /// Mean / p95 reachability-query latency.
    pub reach: (Duration, Duration),
    /// Mean / p95 blast-radius-query latency (window = full depth).
    pub blast: (Duration, Duration),
    /// Mean / p95 report-range-query latency (whole retained window).
    pub report: (Duration, Duration),
}

/// Mean/p95 via the same stats pass the criterion benches report with,
/// so E9's columns are directly comparable to `cargo bench` output.
fn mean_p95(samples: &[Duration]) -> (Duration, Duration) {
    match criterion::stats(samples) {
        Some(s) => (s.mean, s.p95),
        None => (Duration::ZERO, Duration::ZERO),
    }
}

/// E9 — service query latency and sustained ingest throughput vs
/// epoch-history depth: one `dna-serve` session per retention depth
/// ingests the same `epochs`-epoch all-scenario trace on a k-fat-tree,
/// answering an interleaved reachability + blast + report query mix
/// after every epoch. Ingest runs the differential engine only (the E1
/// path); queries never re-simulate — their cost is what this table
/// isolates as history depth grows.
pub fn e9_service(k: u32, retains: &[usize], epochs: usize) -> Vec<ServiceRow> {
    use dna_io::{QueryKind, Response, TraceEpoch};
    use dna_serve::{Session, SessionConfig};
    let ft = fat_tree(k, Routing::Ebgp);
    let mut gen = ScenarioGen::new(9_900);
    let labeled = gen.labeled_sequence(&ft.snapshot, ALL_SCENARIOS, epochs);
    let trace: Vec<TraceEpoch> = labeled
        .into_iter()
        .map(|(kind, changes)| TraceEpoch {
            label: Some(kind.to_string()),
            changes,
        })
        .collect();
    // A fixed endpoint pair keeps the reachability query comparable
    // across depths (edge pods exist for every k ≥ 4).
    let (src, dst) = ("edge0_0".to_string(), "edge1_1".to_string());
    let mut rows = Vec::new();
    for &retain in retains {
        let mut session = Session::open(
            "e9",
            ft.snapshot.clone(),
            SessionConfig {
                retain,
                ..Default::default()
            },
        )
        .expect("session opens");
        let mut ingest = Duration::ZERO;
        let (mut reach_s, mut blast_s, mut report_s) = (Vec::new(), Vec::new(), Vec::new());
        for ep in &trace {
            let t = Instant::now();
            session.ingest(ep).expect("epoch applies");
            ingest += t.elapsed();
            let reach_q = QueryKind::ReachPair {
                src: src.clone(),
                dst: dst.clone(),
            };
            let blast_q = QueryKind::Blast { last: retain };
            let from = session.epochs().saturating_sub(retain);
            let report_q = QueryKind::Report {
                from,
                to: session.epochs(),
            };
            for (q, samples) in [
                (&reach_q, &mut reach_s),
                (&blast_q, &mut blast_s),
                (&report_q, &mut report_s),
            ] {
                let t = Instant::now();
                let r = session.answer(q);
                samples.push(t.elapsed());
                assert!(!matches!(r, Response::Error(_)), "query failed: {r:?}");
            }
        }
        rows.push(ServiceRow {
            retain,
            ingest_eps: trace.len() as f64 / ingest.as_secs_f64().max(1e-9),
            epoch_mean: ingest / trace.len().max(1) as u32,
            reach: mean_p95(&reach_s),
            blast: mean_p95(&blast_s),
            report: mean_p95(&report_s),
        });
    }
    println!(
        "\n== E9: service ingest + query latency vs history depth (k={k} fat-tree, {} epochs) ==",
        trace.len()
    );
    println!(
        "{:<8} {:>12} {:>12} {:>20} {:>20} {:>20}",
        "depth", "ingest", "epoch mean", "reach mean/p95", "blast mean/p95", "report mean/p95"
    );
    for r in &rows {
        println!(
            "{:<8} {:>8.1}ep/s {:>10.2}ms {:>9.1}/{:>7.1}us {:>9.1}/{:>7.1}us {:>9.1}/{:>7.1}us",
            r.retain,
            r.ingest_eps,
            ms(r.epoch_mean),
            r.reach.0.as_secs_f64() * 1e6,
            r.reach.1.as_secs_f64() * 1e6,
            r.blast.0.as_secs_f64() * 1e6,
            r.blast.1.as_secs_f64() * 1e6,
            r.report.0.as_secs_f64() * 1e6,
            r.report.1.as_secs_f64() * 1e6,
        );
    }
    rows
}

/// E8 — equivalence: differential vs scratch over random change
/// sequences; returns (checks, mismatches). Mismatches must be zero.
pub fn e8_equivalence(seeds: &[u64], steps: usize) -> (usize, usize) {
    let mut checks = 0;
    let mut mismatches = 0;
    for &seed in seeds {
        let snap = if seed % 2 == 0 {
            fat_tree(4, Routing::Ebgp).snapshot
        } else {
            wan(10, WanShape::Mesh { extra: 4 }, 6, seed).snapshot
        };
        let mut eng = DiffEngine::new(snap.clone()).expect("engine");
        let mut scr = ScratchDiffer::new(snap.clone()).expect("scratch");
        let mut gen = ScenarioGen::new(seed);
        for cs in gen.sequence(&snap, ALL_SCENARIOS, steps) {
            let d1 = eng.apply(&cs).expect("diff");
            let d2 = scr.apply(&cs).expect("scratch");
            checks += 1;
            if d1.fib != d2.fib || d1.rib != d2.rib {
                mismatches += 1;
            }
        }
    }
    println!("\n== E8: equivalence vs from-scratch baseline ==");
    println!("change-sets checked: {checks}; mismatches: {mismatches} (expected 0)");
    (checks, mismatches)
}

/// One E10 row: `(k, device count, [(shards, init wall-clock)])`.
pub type ShardInitRow = (u32, usize, Vec<(usize, Duration)>);

/// E10 — sharded engine bring-up: `DiffEngine` initial-load wall-clock
/// vs shard count, on growing fat-trees. The E2 follow-up: initial load
/// dominates k≥8 setup, and the sharded pipeline is the parallel
/// answer. Single-shot per cell (bring-up is seconds-scale at the top
/// end); rows are `(k, devices, [(shards, init time)])`.
pub fn e10_sharded_init(ks: &[u32], shard_counts: &[usize]) -> Vec<ShardInitRow> {
    let mut rows = Vec::new();
    for &k in ks {
        let ft = fat_tree(k, Routing::Ebgp);
        let mut cells = Vec::new();
        for &shards in shard_counts {
            let snap = ft.snapshot.clone();
            let (engine, t) = time(|| DiffEngine::with_shards(snap, shards).expect("bring-up"));
            // Keep the engine alive through the measurement, then let
            // the classes sanity-check the build did real work.
            assert!(engine.class_count() > 0);
            cells.push((shards, t));
        }
        rows.push((k, ft.device_count(), cells));
    }
    println!("\n== E10: sharded engine bring-up (DiffEngine init wall-clock) ==");
    print!("{:<18}", "fabric");
    for &s in shard_counts {
        print!(" | shards={s:<3}");
    }
    println!(" | speedup (max shards)");
    for (k, devices, cells) in &rows {
        print!("{:<18}", format!("k={k} ({devices} dev)"));
        for (_, t) in cells {
            print!(" | {:>8.2} ms", ms(*t));
        }
        let base = cells.first().map(|(_, t)| *t).unwrap_or_default();
        let last = cells.last().map(|(_, t)| *t).unwrap_or_default();
        println!(" | {:.2}x", ms(base) / ms(last).max(f64::MIN_POSITIVE));
    }
    rows
}

/// One E11 row: `(k, devices, epochs, resume time, full bring-up +
/// replay time)`.
pub type ResumeRow = (u32, usize, usize, Duration, Duration);

/// E11 — checkpoint resume vs full recovery: wall-clock of
/// `ReplaySession::resume` (one engine bring-up on the checkpointed
/// snapshot) against the alternative a crash otherwise forces — fresh
/// bring-up on the *base* snapshot plus a re-replay of every applied
/// epoch. The gap is the durability win `dna serve --resume` buys: it
/// grows with the epoch count (resume cost is epoch-independent) and
/// is what makes long-lived sessions restartable in O(bring-up).
pub fn e11_resume(ks: &[u32], epochs: usize) -> Vec<ResumeRow> {
    let mut rows = Vec::new();
    for &k in ks {
        let ft = fat_tree(k, Routing::Ebgp);
        let mut gen = ScenarioGen::new(0xE11 + k as u64);
        let stream: Vec<ChangeSet> = gen
            .labeled_sequence(
                &ft.snapshot,
                &[ScenarioKind::LinkFailure, ScenarioKind::LinkRecovery],
                epochs,
            )
            .into_iter()
            .map(|(_, cs)| cs)
            .collect();
        // The session whose crash we simulate (untimed).
        let mut live =
            ReplaySession::new(ft.snapshot.clone(), ReplayMode::Differential).expect("bring-up");
        for cs in &stream {
            live.step(cs).expect("epoch applies");
        }
        let ckpt = live.checkpoint();
        drop(live);
        // Recovery path A: resume from the checkpoint.
        let (resumed, t_resume) = time(|| {
            ReplaySession::resume(ckpt.clone(), ReplayMode::Differential, 1).expect("resume")
        });
        assert_eq!(resumed.epochs_replayed(), stream.len());
        // Recovery path B: what a crash costs without one — full
        // bring-up on the base snapshot plus re-replaying the stream.
        let (replayed, t_full) = time(|| {
            let mut s = ReplaySession::new(ft.snapshot.clone(), ReplayMode::Differential)
                .expect("bring-up");
            for cs in &stream {
                s.step(cs).expect("epoch applies");
            }
            s
        });
        assert_eq!(replayed.epochs_replayed(), stream.len());
        rows.push((k, ft.device_count(), stream.len(), t_resume, t_full));
    }
    println!("\n== E11: checkpoint resume vs full bring-up + replay ==");
    println!(
        "{:<18} | {:>7} | {:>12} | {:>16} | {:>7}",
        "fabric", "epochs", "resume", "bring-up+replay", "speedup"
    );
    for (k, devices, n, t_resume, t_full) in &rows {
        println!(
            "{:<18} | {:>7} | {:>9.2} ms | {:>13.2} ms | {:>6.2}x",
            format!("k={k} ({devices} dev)"),
            n,
            ms(*t_resume),
            ms(*t_full),
            ms(*t_full) / ms(*t_resume).max(f64::MIN_POSITIVE)
        );
    }
    rows
}

/// One timed arm of E12: the E9 ingest loop alone (differential
/// engine, `dna-serve` session, view publish included) — the paper's
/// hot path, with whatever telemetry state the process was born with
/// (`DNA_OBS_DISABLED` is read once at first registry touch, which is
/// why the disabled arm must run in a child process). Returns
/// sustained epochs per second.
pub fn e12_probe(k: u32, epochs: usize) -> f64 {
    use dna_io::TraceEpoch;
    use dna_serve::{Session, SessionConfig};
    let ft = fat_tree(k, Routing::Ebgp);
    let mut gen = ScenarioGen::new(9_900);
    let trace: Vec<TraceEpoch> = gen
        .labeled_sequence(&ft.snapshot, ALL_SCENARIOS, epochs)
        .into_iter()
        .map(|(kind, changes)| TraceEpoch {
            label: Some(kind.to_string()),
            changes,
        })
        .collect();
    let mut session = Session::open(
        "e12",
        ft.snapshot.clone(),
        SessionConfig {
            retain: 64,
            ..Default::default()
        },
    )
    .expect("session opens");
    let t = Instant::now();
    for ep in &trace {
        session.ingest(ep).expect("epoch applies");
    }
    trace.len() as f64 / t.elapsed().as_secs_f64().max(1e-9)
}

/// E12 — instrumentation overhead on the ingest hot path: the E9
/// ingest loop with telemetry on (this process) vs off (a re-exec of
/// this harness with `DNA_OBS_DISABLED=1`, because the kill switch is
/// latched at first registry touch). Each arm runs `runs` times and
/// the best (highest-throughput) sample is compared — best-of cuts
/// scheduler noise, which on a small box easily exceeds the effect
/// being measured. Returns `(enabled eps, disabled eps)`.
pub fn e12_obs_overhead(k: u32, epochs: usize, runs: usize) -> (f64, f64) {
    assert!(
        dna_obs::global().enabled(),
        "E12 must start with telemetry enabled (unset DNA_OBS_DISABLED)"
    );
    let exe = std::env::current_exe().expect("own executable path");
    let child_eps = || -> f64 {
        let out = std::process::Command::new(&exe)
            .arg("e12-probe")
            .env("DNA_OBS_DISABLED", "1")
            .output()
            .expect("disabled-arm child runs");
        assert!(out.status.success(), "disabled-arm child failed");
        let text = String::from_utf8_lossy(&out.stdout);
        text.lines()
            .find_map(|l| l.strip_prefix("e12-probe eps "))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("unparseable probe output: {text:?}"))
    };
    let enabled = (0..runs)
        .map(|_| e12_probe(k, epochs))
        .fold(0.0f64, f64::max);
    let disabled = (0..runs).map(|_| child_eps()).fold(0.0f64, f64::max);
    let overhead = (disabled - enabled) / disabled.max(f64::MIN_POSITIVE) * 100.0;
    println!("\n== E12: telemetry overhead on the E9 ingest path (k={k}, {epochs} epochs, best of {runs}) ==");
    println!(
        "{:<22} | {:>12} | {:>12} | {:>9}",
        "arm", "ingest eps", "epoch mean", "overhead"
    );
    for (arm, eps) in [("telemetry on", enabled), ("DNA_OBS_DISABLED=1", disabled)] {
        println!(
            "{:<22} | {:>12.1} | {:>9.3} ms | {:>9}",
            arm,
            eps,
            1_000.0 / eps.max(f64::MIN_POSITIVE),
            if arm.starts_with("telemetry") {
                format!("{overhead:>+.2}%")
            } else {
                "—".into()
            }
        );
    }
    (enabled, disabled)
}

/// One timed arm of E13: the E12 ingest loop with the **accounting
/// plane** fully engaged — per-epoch session-accounting gauge updates
/// and heartbeats, one span-wrapped query per epoch through the
/// `query_latency_us` histogram and the slow-query ring (per-query is
/// the production rate), and a history-ring sample every 16 epochs
/// (~50 ms here — still hundreds of times tighter than the production
/// 15 s tick, so the measured cost is a stress-test upper bound). Like
/// E12, the disabled arm must run in a child process
/// (`DNA_OBS_DISABLED` latches at first registry touch). Returns
/// sustained epochs per second.
pub fn e13_probe(k: u32, epochs: usize) -> f64 {
    use dna_io::{QueryKind, TraceEpoch};
    use dna_serve::{Session, SessionConfig};
    let ft = fat_tree(k, Routing::Ebgp);
    let mut gen = ScenarioGen::new(9_913);
    let trace: Vec<TraceEpoch> = gen
        .labeled_sequence(&ft.snapshot, ALL_SCENARIOS, epochs)
        .into_iter()
        .map(|(kind, changes)| TraceEpoch {
            label: Some(kind.to_string()),
            changes,
        })
        .collect();
    let mut session = Session::open(
        "e13",
        ft.snapshot.clone(),
        SessionConfig {
            retain: 64,
            ..Default::default()
        },
    )
    .expect("session opens");
    let acct = dna_obs::SessionAccounting::register(dna_obs::global(), "e13");
    let query_latency = dna_obs::global().histogram_for("query_latency_us", "bench");
    let blast = QueryKind::Blast { last: 8 };
    let t = Instant::now();
    for (i, ep) in trace.iter().enumerate() {
        acct.beat();
        session.ingest(ep).expect("epoch applies");
        // The per-query span path, exactly as a transport drives it.
        let q = Instant::now();
        let _ = session.answer(&blast);
        let elapsed = q.elapsed();
        query_latency.observe(elapsed);
        dna_obs::query_spans().record(dna_obs::QuerySpan {
            transport: "pipe",
            session: Some("e13".into()),
            kind: "blast",
            total_ns: elapsed.as_nanos() as u64,
        });
        // A full registry sample into the history ring.
        if i % 16 == 0 {
            dna_obs::history().record(dna_obs::uptime_ms(), &dna_obs::global().snapshot(None));
        }
    }
    let eps = trace.len() as f64 / t.elapsed().as_secs_f64().max(1e-9);
    acct.retire(dna_obs::global());
    eps
}

/// E13 — accounting-plane overhead on the ingest+query hot path: the
/// E13 probe with telemetry on (this process) vs off (a re-exec with
/// `DNA_OBS_DISABLED=1`). Best-of-`runs` per arm, exactly like E12.
/// Returns `(enabled eps, disabled eps)`.
pub fn e13_accounting_overhead(k: u32, epochs: usize, runs: usize) -> (f64, f64) {
    assert!(
        dna_obs::global().enabled(),
        "E13 must start with telemetry enabled (unset DNA_OBS_DISABLED)"
    );
    let exe = std::env::current_exe().expect("own executable path");
    let child_eps = || -> f64 {
        let out = std::process::Command::new(&exe)
            .arg("e13-probe")
            .env("DNA_OBS_DISABLED", "1")
            .output()
            .expect("disabled-arm child runs");
        assert!(out.status.success(), "disabled-arm child failed");
        let text = String::from_utf8_lossy(&out.stdout);
        text.lines()
            .find_map(|l| l.strip_prefix("e13-probe eps "))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("unparseable probe output: {text:?}"))
    };
    let enabled = (0..runs)
        .map(|_| e13_probe(k, epochs))
        .fold(0.0f64, f64::max);
    let disabled = (0..runs).map(|_| child_eps()).fold(0.0f64, f64::max);
    let overhead = (disabled - enabled) / disabled.max(f64::MIN_POSITIVE) * 100.0;
    println!("\n== E13: accounting-plane overhead (span-wrapped query per epoch + history sample per 16, k={k}, {epochs} epochs, best of {runs}) ==");
    println!(
        "{:<22} | {:>12} | {:>12} | {:>9}",
        "arm", "ingest eps", "epoch mean", "overhead"
    );
    for (arm, eps) in [("accounting on", enabled), ("DNA_OBS_DISABLED=1", disabled)] {
        println!(
            "{:<22} | {:>12.1} | {:>9.3} ms | {:>9}",
            arm,
            eps,
            1_000.0 / eps.max(f64::MIN_POSITIVE),
            if arm.starts_with("accounting") {
                format!("{overhead:>+.2}%")
            } else {
                "—".into()
            }
        );
    }
    (enabled, disabled)
}

/// One measured arm of E14 (`harness epoch-path`): per-scenario
/// differential epoch latency over the **E5 scenario mix** (same k=6
/// fat-tree, same `9_000 + kind` seeds, so rows line up with the E5
/// stage breakdown). A fresh `DiffEngine` is built per repetition and
/// only the `apply` is timed; best-of-`reps` cuts scheduler noise,
/// which on a single-vCPU box easily exceeds the effect under test.
/// Returns `(scenario, total_ms, cp_ms, dp_ms)` rows.
pub fn epoch_path_rows(k: u32, reps: usize) -> Vec<(String, f64, f64, f64)> {
    let ft = fat_tree(k, Routing::Ebgp);
    let mut rows = Vec::new();
    for &kind in ALL_SCENARIOS {
        let mut gen = ScenarioGen::new(9_000 + kind as u64);
        let Some(cs) = gen.generate(&ft.snapshot, kind) else {
            continue;
        };
        let mut best: Option<(f64, f64, f64)> = None;
        for _ in 0..reps.max(1) {
            let mut eng = DiffEngine::new(ft.snapshot.clone()).expect("engine");
            let (d, wall) = time(|| eng.apply(&cs).expect("apply"));
            let row = (ms(wall), ms(d.stats.cp_time), ms(d.stats.dp_time));
            if best.is_none_or(|b: (f64, f64, f64)| row.0 < b.0) {
                best = Some(row);
            }
        }
        let (t, cp, dp) = best.expect("at least one rep");
        rows.push((kind.to_string(), t, cp, dp));
    }
    rows
}

/// Renders one E14 measurement block as a JSON object (hand-written —
/// the artifact format is small and the repo vendors no JSON crate).
fn epoch_path_block(
    rows: &[(String, f64, f64, f64)],
    disabled_rows: &[(String, f64, f64, f64)],
) -> String {
    let mean = |rs: &[(String, f64, f64, f64)]| {
        rs.iter().map(|r| r.1).sum::<f64>() / (rs.len() as f64).max(1.0)
    };
    let mut s = String::from("{");
    // The obs-disabled child arm is the canonical number (telemetry
    // parity: both arms are recorded so the delta stays observable).
    s.push_str(&format!("\"mean_ms\": {:.4}, ", mean(disabled_rows)));
    s.push_str(&format!("\"telemetry_on_mean_ms\": {:.4}, ", mean(rows)));
    s.push_str(&format!(
        "\"obs_disabled_mean_ms\": {:.4}, ",
        mean(disabled_rows)
    ));
    s.push_str("\"scenarios\": [");
    for (i, (name, t, cp, dp)) in disabled_rows.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"name\": \"{name}\", \"total_ms\": {t:.4}, \"cp_ms\": {cp:.4}, \"dp_ms\": {dp:.4}}}"
        ));
    }
    s.push_str("]}");
    s
}

/// Extracts the balanced-brace object following `"<key>":` from a JSON
/// text, if present and non-null. Good enough for the artifact this
/// harness itself writes; not a general JSON parser.
fn json_object_field(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    if !rest.starts_with('{') {
        return None;
    }
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(rest[..=i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn json_f64_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// E14 — the machine-readable perf trajectory of the differential
/// epoch hot path. Measures the E5 k=6 scenario mix in two arms
/// (telemetry on in-process, `DNA_OBS_DISABLED=1` in a re-exec'd child
/// — the kill switch latches at first registry touch) and writes
/// `BENCH_epoch_path.json`. If the artifact already exists, its
/// `current` block is carried over as `baseline`, so re-running after
/// an optimization lands records before/after on the same box and the
/// headline `speedup_vs_baseline` ratio. Returns
/// `(current mean ms, speedup vs baseline if any)`.
pub fn e14_epoch_path(k: u32, reps: usize, out: &std::path::Path) -> (f64, Option<f64>) {
    assert!(
        dna_obs::global().enabled(),
        "E14 must start with telemetry enabled (unset DNA_OBS_DISABLED)"
    );
    let exe = std::env::current_exe().expect("own executable path");
    let child_rows = || -> Vec<(String, f64, f64, f64)> {
        let outp = std::process::Command::new(&exe)
            .arg("epoch-path-probe")
            .arg(reps.to_string())
            .env("DNA_OBS_DISABLED", "1")
            .output()
            .expect("disabled-arm child runs");
        assert!(outp.status.success(), "disabled-arm child failed");
        let text = String::from_utf8_lossy(&outp.stdout);
        let rows: Vec<_> = text
            .lines()
            .filter_map(|l| l.strip_prefix("epoch-path-probe row "))
            .filter_map(|l| {
                let mut it = l.splitn(4, ' ');
                let t: f64 = it.next()?.parse().ok()?;
                let cp: f64 = it.next()?.parse().ok()?;
                let dp: f64 = it.next()?.parse().ok()?;
                Some((it.next()?.to_string(), t, cp, dp))
            })
            .collect();
        assert!(!rows.is_empty(), "unparseable probe output: {text:?}");
        rows
    };
    let on_rows = epoch_path_rows(k, reps);
    let off_rows = child_rows();
    let mean =
        |rs: &[(String, f64, f64, f64)]| rs.iter().map(|r| r.1).sum::<f64>() / rs.len() as f64;
    let cur_mean = mean(&off_rows);
    // Perf trajectory: a pre-existing artifact's `current` becomes the
    // new `baseline` (the before arm of a before/after pair).
    let baseline = std::fs::read_to_string(out)
        .ok()
        .and_then(|t| json_object_field(&t, "current"));
    let base_mean = baseline
        .as_deref()
        .and_then(|b| json_f64_field(b, "mean_ms"));
    let speedup = base_mean.map(|b| b / cur_mean.max(f64::MIN_POSITIVE));
    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"epoch-path\",\n");
    json.push_str(&format!(
        "  \"workload\": \"E5 scenario mix, k={k} eBGP fat-tree, seeds 9000+kind, best-of-{reps} fresh-engine apply\",\n"
    ));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!(
        "  \"baseline\": {},\n",
        baseline.as_deref().unwrap_or("null")
    ));
    json.push_str(&format!(
        "  \"current\": {},\n",
        epoch_path_block(&on_rows, &off_rows)
    ));
    json.push_str(&format!(
        "  \"speedup_vs_baseline\": {}\n",
        speedup.map_or("null".into(), |s| format!("{s:.4}"))
    ));
    json.push_str("}\n");
    std::fs::write(out, &json).expect("write BENCH artifact");
    println!(
        "\n== E14: epoch-path latency (E5 mix, k={k}, best of {reps}, DNA_OBS_DISABLED arm) =="
    );
    println!(
        "{:<24} {:>10} {:>10} {:>10}",
        "scenario", "total", "cp", "dp"
    );
    for (name, t, cp, dp) in &off_rows {
        println!("{name:<24} {t:>8.2}ms {cp:>8.2}ms {dp:>8.2}ms");
    }
    println!(
        "mean: {cur_mean:.3} ms (telemetry-on arm {:.3} ms)",
        mean(&on_rows)
    );
    match (base_mean, speedup) {
        (Some(b), Some(s)) => println!("baseline mean: {b:.3} ms -> speedup {s:.2}x"),
        _ => println!("no baseline in {} (first recording)", out.display()),
    }
    (cur_mean, speedup)
}
