//! # dna-bench — benchmark harness for the evaluation
//!
//! Regenerates every table and figure of the (reconstructed) evaluation —
//! see DESIGN.md §7 for the experiment inventory E1..E8 and EXPERIMENTS.md
//! for recorded results. The `harness` binary prints each experiment's
//! rows; `benches/experiments.rs` wraps the latency-critical comparisons
//! in Criterion for statistically robust numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

pub use experiments::*;
