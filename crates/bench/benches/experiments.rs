//! Criterion wrappers around the latency-critical comparisons: change
//! application latency (differential vs from-scratch) across change kinds
//! and fabric sizes, plus data-plane single-rule updates. Tables/figures
//! that are about counters rather than latency (E6..E8) live in the
//! harness binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dna_core::{DiffEngine, ScratchDiffer};
use net_model::ChangeSet;
use std::time::Duration;
use topo_gen::{fat_tree, Routing, ScenarioGen, ScenarioKind};

/// E1/E2/E3 core comparison: one link failure on fat-trees of two sizes.
fn bench_link_failure(c: &mut Criterion) {
    let mut group = c.benchmark_group("link_failure");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    group.warm_up_time(Duration::from_secs(1));
    for k in [4, 6] {
        let ft = fat_tree(k, Routing::Ebgp);
        let link = ft
            .snapshot
            .links
            .iter()
            .find(|l| l.touches("core0"))
            .unwrap()
            .clone();
        let cs = ChangeSet::single(net_model::Change::LinkDown(link));
        group.bench_with_input(BenchmarkId::new("differential", k), &k, |bch, _| {
            bch.iter_batched(
                || DiffEngine::new(ft.snapshot.clone()).unwrap(),
                |mut eng| eng.apply(&cs).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("scratch", k), &k, |bch, _| {
            bch.iter_batched(
                || ScratchDiffer::new(ft.snapshot.clone()).unwrap(),
                |mut scr| scr.apply(&cs).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// E3-style: policy edit latency.
fn bench_policy_edit(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_edit");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    group.warm_up_time(Duration::from_secs(1));
    let ft = fat_tree(6, Routing::Ebgp);
    let mut gen = ScenarioGen::new(42);
    let cs = gen
        .generate(&ft.snapshot, ScenarioKind::LocalPrefChange)
        .unwrap();
    group.bench_function("differential", |bch| {
        bch.iter_batched(
            || DiffEngine::new(ft.snapshot.clone()).unwrap(),
            |mut eng| eng.apply(&cs).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("scratch", |bch| {
        bch.iter_batched(
            || ScratchDiffer::new(ft.snapshot.clone()).unwrap(),
            |mut scr| scr.apply(&cs).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// E4: single FIB rule update on a loaded data plane.
fn bench_dp_rule_update(c: &mut Criterion) {
    use control_plane::reference;
    use data_plane::{DataPlane, DpUpdate};
    use topo_gen::{wan, WanShape};
    let w = wan(40, WanShape::Mesh { extra: 20 }, 8, 7);
    let sim = reference::simulate(&w.snapshot).unwrap();
    let fib: Vec<_> = sim.fib.iter().cloned().collect();
    let mut dp = DataPlane::new(&w.snapshot);
    dp.apply(&DpUpdate {
        fib: fib.iter().cloned().map(|e| (e, 1)).collect(),
        filters: vec![],
    });
    let entry = fib[0].clone();
    let mut group = c.benchmark_group("dp_rule_update");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(5));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("incremental", |bch| {
        bch.iter(|| {
            dp.apply(&DpUpdate {
                fib: vec![(entry.clone(), -1)],
                filters: vec![],
            });
            dp.apply(&DpUpdate {
                fib: vec![(entry.clone(), 1)],
                filters: vec![],
            });
        })
    });
    group.bench_function("recompute_all", |bch| bch.iter(|| dp.recompute_all()));
    group.finish();
}

criterion_group!(
    benches,
    bench_link_failure,
    bench_policy_edit,
    bench_dp_rule_update
);
criterion_main!(benches);
