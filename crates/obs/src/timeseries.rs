//! Metrics history: a bounded ring of periodic registry snapshots.
//!
//! A `metrics` scrape is a point in time; the operator questions that
//! matter ("what changed in the last five minutes", "which session is
//! eating the box") need *history*. This module applies the system's
//! own standing-view idea to its telemetry: a fixed-capacity ring of
//! [`Sample`]s — timestamped copies of every counter and gauge —
//! recorded on the serve layer's metrics tick, scraped as the
//! `history` artifact, with **rate derivation at scrape time**
//! (Δcounter/Δt between samples, never stored).
//!
//! Histograms are deliberately not sampled: a sample is meant to be
//! small enough to record every few seconds forever, and the rates an
//! operator derives from history are counter deltas. The live
//! histogram summary is always one `metrics` query away.

use crate::{MetricsSnapshot, SeriesValue};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Samples retained by the process-global history ring. At the default
/// 15 s cadence this is over an hour of history in a few hundred KB.
pub const DEFAULT_HISTORY_CAPACITY: usize = 256;

/// One timestamped copy of the registry's counters and gauges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Sample {
    /// Milliseconds since process start (see [`crate::uptime_ms`]) —
    /// a monotone time base, so Δt between samples is always sane.
    pub t_ms: u64,
    /// All counters at sample time, (name, session)-sorted.
    pub counters: Vec<SeriesValue>,
    /// All gauges at sample time, (name, session)-sorted.
    pub gauges: Vec<SeriesValue>,
}

/// One derived rate: a counter's Δvalue/Δt between two samples.
#[derive(Debug, Clone, PartialEq)]
pub struct RateRow {
    /// Counter name.
    pub name: String,
    /// Session label, when the series is per-session.
    pub session: Option<String>,
    /// Increments per second across the derivation window.
    pub per_second: f64,
}

/// A bounded, thread-safe ring of registry [`Sample`]s. Same locking
/// story as the span rings: one mutex, touched once per tick (seconds
/// apart), never on a per-epoch or per-query path.
pub struct TimeSeries {
    enabled: bool,
    ring: Mutex<SampleRing>,
}

struct SampleRing {
    samples: VecDeque<Sample>,
    capacity: usize,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl TimeSeries {
    /// An enabled ring retaining the freshest `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        TimeSeries {
            enabled: true,
            ring: Mutex::new(SampleRing {
                samples: VecDeque::new(),
                capacity: capacity.max(1),
            }),
        }
    }

    /// A ring that drops everything (the `DNA_OBS_DISABLED` form).
    pub fn disabled() -> Self {
        let mut ts = Self::new(1);
        ts.enabled = false;
        ts
    }

    /// Whether this ring keeps anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one sample of a registry scrape at `t_ms`, evicting the
    /// oldest beyond capacity. Samples must be recorded in time order;
    /// a sample older than the freshest retained one is dropped (the
    /// wire grammar promises non-decreasing timestamps).
    pub fn record(&self, t_ms: u64, snap: &MetricsSnapshot) {
        if !self.enabled {
            return;
        }
        let mut ring = lock(&self.ring);
        if ring.samples.back().is_some_and(|s| s.t_ms > t_ms) {
            return;
        }
        if ring.samples.len() == ring.capacity {
            ring.samples.pop_front();
        }
        ring.samples.push_back(Sample {
            t_ms,
            counters: snap.counters.clone(),
            gauges: snap.gauges.clone(),
        });
    }

    /// The retained samples, oldest first, optionally filtered to one
    /// session's series (process-wide series are always kept, exactly
    /// like a scoped `metrics` scrape) and truncated to the freshest
    /// `last` samples.
    pub fn snapshot(&self, session: Option<&str>, last: Option<usize>) -> Vec<Sample> {
        let ring = lock(&self.ring);
        let keep = |s: &SeriesValue| match (session, &s.session) {
            (None, _) | (_, None) => true,
            (Some(want), Some(have)) => want == have,
        };
        let mut samples: Vec<Sample> = ring
            .samples
            .iter()
            .map(|s| Sample {
                t_ms: s.t_ms,
                counters: s.counters.iter().filter(|r| keep(r)).cloned().collect(),
                gauges: s.gauges.iter().filter(|r| keep(r)).cloned().collect(),
            })
            .collect();
        if let Some(n) = last {
            let skip = samples.len().saturating_sub(n);
            samples.drain(..skip);
        }
        samples
    }

    /// Retained sample count.
    pub fn len(&self) -> usize {
        lock(&self.ring).samples.len()
    }

    /// Whether the ring holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Derives per-second counter rates between the first and last of
/// `samples` (Δcounter/Δt). Fewer than two samples — or a zero-width
/// window — derive nothing. Series absent from the first sample are
/// treated as starting at zero (they were registered mid-window);
/// counters are monotone, so deltas never go negative.
pub fn rates(samples: &[Sample]) -> Vec<RateRow> {
    let (Some(first), Some(last)) = (samples.first(), samples.last()) else {
        return Vec::new();
    };
    let dt_ms = last.t_ms.saturating_sub(first.t_ms);
    if dt_ms == 0 {
        return Vec::new();
    }
    let base: std::collections::BTreeMap<(&str, Option<&str>), u64> = first
        .counters
        .iter()
        .map(|r| ((r.name.as_str(), r.session.as_deref()), r.value))
        .collect();
    last.counters
        .iter()
        .map(|r| {
            let before = base
                .get(&(r.name.as_str(), r.session.as_deref()))
                .copied()
                .unwrap_or(0);
            RateRow {
                name: r.name.clone(),
                session: r.session.clone(),
                per_second: r.value.saturating_sub(before) as f64 * 1_000.0 / dt_ms as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_at(reg: &Registry, ts: &TimeSeries, t_ms: u64) {
        ts.record(t_ms, &reg.snapshot(None));
    }

    #[test]
    fn ring_bounds_and_orders_samples() {
        let reg = Registry::new();
        let ts = TimeSeries::new(3);
        reg.counter("c").inc();
        for t in [10, 20, 30, 40] {
            sample_at(&reg, &ts, t);
        }
        let samples = ts.snapshot(None, None);
        assert_eq!(
            samples.iter().map(|s| s.t_ms).collect::<Vec<_>>(),
            vec![20, 30, 40],
            "oldest samples evict first"
        );
        // Out-of-order records are dropped, keeping timestamps
        // non-decreasing on the wire.
        sample_at(&reg, &ts, 5);
        assert_eq!(ts.snapshot(None, None).last().unwrap().t_ms, 40);
        let last = ts.snapshot(None, Some(2));
        assert_eq!(
            last.iter().map(|s| s.t_ms).collect::<Vec<_>>(),
            vec![30, 40]
        );
    }

    #[test]
    fn scoped_snapshot_keeps_globals_and_the_named_session() {
        let reg = Registry::new();
        let ts = TimeSeries::new(8);
        reg.counter("global_c").add(5);
        reg.counter_for("epochs_applied", "a").add(3);
        reg.counter_for("epochs_applied", "b").add(7);
        reg.gauge_for("depth", "a").set(2);
        sample_at(&reg, &ts, 100);
        let scoped = ts.snapshot(Some("a"), None);
        assert_eq!(scoped.len(), 1);
        let names: Vec<(&str, Option<&str>)> = scoped[0]
            .counters
            .iter()
            .map(|r| (r.name.as_str(), r.session.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![("epochs_applied", Some("a")), ("global_c", None)]
        );
        assert_eq!(scoped[0].gauges.len(), 1);
    }

    #[test]
    fn rates_derive_from_window_ends() {
        let reg = Registry::new();
        let ts = TimeSeries::new(8);
        let c = reg.counter_for("epochs_applied", "s");
        sample_at(&reg, &ts, 0);
        c.add(10);
        sample_at(&reg, &ts, 1_000);
        c.add(30);
        sample_at(&reg, &ts, 2_000);
        let derived = rates(&ts.snapshot(None, None));
        assert_eq!(derived.len(), 1);
        assert_eq!(derived[0].name, "epochs_applied");
        assert_eq!(derived[0].session.as_deref(), Some("s"));
        assert!((derived[0].per_second - 20.0).abs() < 1e-9, "40 over 2s");
        // A series born mid-window rates from zero.
        reg.counter("late").add(4);
        sample_at(&reg, &ts, 4_000);
        let derived = rates(&ts.snapshot(None, None));
        let late = derived.iter().find(|r| r.name == "late").unwrap();
        assert!((late.per_second - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rates_need_two_samples_and_time() {
        assert!(rates(&[]).is_empty());
        let reg = Registry::new();
        let ts = TimeSeries::new(4);
        reg.counter("c").inc();
        sample_at(&reg, &ts, 50);
        assert!(rates(&ts.snapshot(None, None)).is_empty(), "one sample");
        sample_at(&reg, &ts, 50);
        assert!(
            rates(&ts.snapshot(None, None)).is_empty(),
            "zero-width window"
        );
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let reg = Registry::new();
        let ts = TimeSeries::disabled();
        reg.counter("c").inc();
        ts.record(10, &reg.snapshot(None));
        assert!(ts.snapshot(None, None).is_empty());
        assert!(ts.is_empty());
    }
}
