//! The operator log: one place every `dna serve` stderr line goes
//! through, with a process-wide verbosity level.
//!
//! Two levels only, matching the CLI's `--quiet` contract:
//!
//! * [`announce`] — always printed, `--quiet` or not. For lines that
//!   are part of the operator contract: the TCP announce line (with
//!   `--listen <host>:0` it is the only way anyone learns the port),
//!   failures, and explicitly requested output such as
//!   `--metrics-interval` dumps.
//! * [`info`] — suppressed by `--quiet`. Session load/resume notices,
//!   the exit summary, follow-progress lines, slow-epoch reports.

use std::sync::atomic::{AtomicBool, Ordering};

static QUIET: AtomicBool = AtomicBool::new(false);

/// Sets the process-wide verbosity: `true` suppresses [`info`] lines.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::SeqCst);
}

/// Whether [`info`] lines are currently suppressed.
pub fn quiet() -> bool {
    QUIET.load(Ordering::SeqCst)
}

/// Prints an operator line to stderr unconditionally.
pub fn announce(msg: &str) {
    eprintln!("{msg}");
}

/// Prints an operator line to stderr unless the process is quiet.
pub fn info(msg: &str) {
    if !quiet() {
        eprintln!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_flag_round_trips() {
        // The default is verbose; setting and clearing both stick.
        // (Output itself goes to the real stderr — the announce/info
        // split is pinned at the binary level in crates/cli tests.)
        assert!(!quiet());
        set_quiet(true);
        assert!(quiet());
        set_quiet(false);
        assert!(!quiet());
    }
}
