//! # dna-obs — the telemetry substrate of the reproduction
//!
//! Every long-running plane of the system (router ingest, session
//! engine threads, view publish/withdraw, the TCP front door,
//! checkpoint writes, the standing-query subscription plane) records
//! into one lock-cheap [`Registry`] of atomic counters, gauges and
//! fixed-bucket latency histograms, and every applied epoch leaves a
//! parse → control-plane → data-plane → view-publish span in a
//! bounded [`SpanRecorder`] ring. On top of the registry sit the
//! per-session accounting bundle ([`SessionAccounting`]: queue depth,
//! lag, heartbeat, failure and memory gauges — what the `health`
//! classification reads), a per-query span ring with slow-query
//! logging, and a fixed-capacity [`TimeSeries`] history of periodic
//! registry samples from which [`rates`] derives Δcounter/Δt at read
//! time. The serve layer exposes all of it as the `metrics` /
//! `spans` / `history` / `health` `dna-io` artifacts
//! (`dna query metrics|trace|history|health`); this crate owns only
//! the recording side and stays dependency-free so any crate may
//! instrument itself.
//!
//! Design rules:
//!
//! * **Lock-cheap hot path.** Registration (name → series lookup)
//!   takes a mutex once per handle; recording on a held handle is a
//!   handful of atomic adds. Callers on per-epoch paths keep handles.
//! * **Monotone counters.** [`Counter`] only moves up; [`Gauge`] may
//!   be set or adjusted. A scrape may be stale but never torn: a
//!   histogram snapshot always satisfies `count >= Σ bucket counts`
//!   (writers bump `count` *before* the bucket, readers read buckets
//!   *before* `count`).
//! * **Kill switch.** `DNA_OBS_DISABLED=1` in the environment turns
//!   the process-global registry and recorder into no-ops at first
//!   use — the lever the E12 overhead experiment measures against.
//!
//! The process-global entry points are [`global()`] and [`spans()`];
//! tests that need isolation build their own [`Registry`] /
//! [`SpanRecorder`] instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
mod span;
pub mod timeseries;

pub use span::{EpochSpan, QuerySpan, QuerySpanRecorder, SpanRecorder, DEFAULT_SPAN_CAPACITY};
pub use timeseries::{rates, RateRow, Sample, TimeSeries, DEFAULT_HISTORY_CAPACITY};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Upper bounds (microseconds) of the histogram's finite buckets; one
/// overflow bucket catches everything above the last bound. Spanning
/// 50µs..1s covers every latency this system records, from a view
/// publish to a cold sharded bring-up epoch.
pub const BUCKET_BOUNDS_US: [u64; 14] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

/// Buckets per histogram: the finite bounds plus the overflow bucket.
pub const BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1;

/// A series key: metric name plus an optional session label, so one
/// name (`epochs_applied`) fans out per session while process-wide
/// series (`tcp_connections`) stay unlabeled.
type Key = (String, Option<String>);

struct CounterInner {
    value: AtomicU64,
    enabled: bool,
}

/// A monotonically non-decreasing series handle. Cheap to clone; all
/// clones share the same cell.
#[derive(Clone)]
pub struct Counter(Arc<CounterInner>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        if self.0.enabled {
            self.0.value.fetch_add(n, Ordering::SeqCst);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::SeqCst)
    }
}

/// A point-in-time series handle: may move in either direction.
#[derive(Clone)]
pub struct Gauge(Arc<CounterInner>);

impl Gauge {
    /// Sets the gauge to an absolute value.
    pub fn set(&self, v: u64) {
        if self.0.enabled {
            self.0.value.store(v, Ordering::SeqCst);
        }
    }

    /// Adjusts the gauge upward.
    pub fn add(&self, n: u64) {
        if self.0.enabled {
            self.0.value.fetch_add(n, Ordering::SeqCst);
        }
    }

    /// Adjusts the gauge downward (saturating at zero).
    pub fn sub(&self, n: u64) {
        if self.0.enabled {
            let _ = self
                .0
                .value
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                    Some(v.saturating_sub(n))
                });
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::SeqCst)
    }
}

struct HistogramInner {
    count: AtomicU64,
    sum_ns: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    enabled: bool,
}

/// A fixed-bucket latency histogram handle. Observation order (count
/// before bucket) and snapshot order (buckets before count) together
/// guarantee `count >= Σ buckets` in every concurrent scrape.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one latency observation.
    pub fn observe(&self, d: Duration) {
        self.observe_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one latency observation in nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        if !self.0.enabled {
            return;
        }
        // Count first, bucket second: a reader that sees the bucket
        // increment is guaranteed to see the count increment too.
        self.0.count.fetch_add(1, Ordering::SeqCst);
        self.0.sum_ns.fetch_add(ns, Ordering::SeqCst);
        let us = ns / 1_000;
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKETS - 1);
        self.0.buckets[idx].fetch_add(1, Ordering::SeqCst);
    }

    /// A consistent point-in-time copy (buckets read before count, so
    /// the `count >= Σ buckets` invariant holds under concurrency).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, b) in buckets.iter_mut().zip(self.0.buckets.iter()) {
            *slot = b.load(Ordering::SeqCst);
        }
        let sum_ns = self.0.sum_ns.load(Ordering::SeqCst);
        let count = self.0.count.load(Ordering::SeqCst);
        HistogramSnapshot {
            count,
            sum_ns,
            buckets,
        }
    }
}

/// A scraped histogram: total count, total latency, per-bucket counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded (≥ the sum of `buckets` in any scrape).
    pub count: u64,
    /// Sum of all observed latencies, nanoseconds.
    pub sum_ns: u64,
    /// Per-bucket counts: one per [`BUCKET_BOUNDS_US`] entry plus the
    /// trailing overflow bucket.
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// The bucket-resolution `q`-quantile in microseconds (`q` in
    /// 0..=1): the upper bound of the bucket holding the rank-`q`
    /// observation, saturating at the last finite bound for overflow.
    /// Zero when the histogram is empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return BUCKET_BOUNDS_US
                    .get(i)
                    .copied()
                    .unwrap_or(BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]);
            }
        }
        BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]
    }
}

/// One scraped counter or gauge value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesValue {
    /// Metric name.
    pub name: String,
    /// Session label, when the series is per-session.
    pub session: Option<String>,
    /// The value at scrape time.
    pub value: u64,
}

/// One scraped histogram with its identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramValue {
    /// Metric name.
    pub name: String,
    /// Session label, when the series is per-session.
    pub session: Option<String>,
    /// The scraped contents.
    pub snapshot: HistogramSnapshot,
}

/// A full registry scrape, every section sorted by (name, session) so
/// serializations downstream are canonical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<SeriesValue>,
    /// All gauges.
    pub gauges: Vec<SeriesValue>,
    /// All histograms.
    pub histograms: Vec<HistogramValue>,
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<Key, Counter>,
    gauges: BTreeMap<Key, Gauge>,
    histograms: BTreeMap<Key, Histogram>,
}

/// The metrics registry: get-or-create series handles by name (and
/// optional session label), scrape them all as one sorted snapshot.
pub struct Registry {
    enabled: bool,
    inner: Mutex<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Recovers the guarded value whether or not another thread panicked
/// while holding the lock — registry state is atomics all the way
/// down, so there is no torn invariant to protect.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        Registry {
            enabled: true,
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    /// A registry whose handles are all no-ops (the `DNA_OBS_DISABLED`
    /// form of the process-global registry).
    pub fn disabled() -> Self {
        Registry {
            enabled: false,
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    /// Whether this registry records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The process-wide counter named `name` (get-or-create).
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_key(name, None)
    }

    /// The per-session counter `name{session}` (get-or-create).
    pub fn counter_for(&self, name: &str, session: &str) -> Counter {
        self.counter_key(name, Some(session))
    }

    fn counter_key(&self, name: &str, session: Option<&str>) -> Counter {
        let enabled = self.enabled;
        lock(&self.inner)
            .counters
            .entry((name.to_string(), session.map(str::to_string)))
            .or_insert_with(|| {
                Counter(Arc::new(CounterInner {
                    value: AtomicU64::new(0),
                    enabled,
                }))
            })
            .clone()
    }

    /// The process-wide gauge named `name` (get-or-create).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_key(name, None)
    }

    /// The per-session gauge `name{session}` (get-or-create).
    pub fn gauge_for(&self, name: &str, session: &str) -> Gauge {
        self.gauge_key(name, Some(session))
    }

    fn gauge_key(&self, name: &str, session: Option<&str>) -> Gauge {
        let enabled = self.enabled;
        lock(&self.inner)
            .gauges
            .entry((name.to_string(), session.map(str::to_string)))
            .or_insert_with(|| {
                Gauge(Arc::new(CounterInner {
                    value: AtomicU64::new(0),
                    enabled,
                }))
            })
            .clone()
    }

    /// The process-wide histogram named `name` (get-or-create).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_key(name, None)
    }

    /// The per-session histogram `name{session}` (get-or-create).
    pub fn histogram_for(&self, name: &str, session: &str) -> Histogram {
        self.histogram_key(name, Some(session))
    }

    fn histogram_key(&self, name: &str, session: Option<&str>) -> Histogram {
        let enabled = self.enabled;
        lock(&self.inner)
            .histograms
            .entry((name.to_string(), session.map(str::to_string)))
            .or_insert_with(|| {
                Histogram(Arc::new(HistogramInner {
                    count: AtomicU64::new(0),
                    sum_ns: AtomicU64::new(0),
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                    enabled,
                }))
            })
            .clone()
    }

    /// Removes one series (counter, gauge and/or histogram under this
    /// key) from the registry, so future scrapes no longer list it.
    /// Handles already held keep working against the detached cells —
    /// removal is a scrape-visibility operation, never a data race.
    pub fn remove(&self, name: &str, session: Option<&str>) {
        let key: Key = (name.to_string(), session.map(str::to_string));
        let mut inner = lock(&self.inner);
        inner.counters.remove(&key);
        inner.gauges.remove(&key);
        inner.histograms.remove(&key);
    }

    /// Scrapes every registered series, optionally keeping only the
    /// series labeled with `session` (unlabeled process-wide series
    /// are always kept — a session-scoped scrape still wants them).
    pub fn snapshot(&self, session: Option<&str>) -> MetricsSnapshot {
        let keep = |k: &Key| match (session, &k.1) {
            (None, _) | (_, None) => true,
            (Some(want), Some(have)) => want == have,
        };
        let inner = lock(&self.inner);
        let series = |map: &BTreeMap<Key, Counter>| -> Vec<SeriesValue> {
            map.iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, c)| SeriesValue {
                    name: k.0.clone(),
                    session: k.1.clone(),
                    value: c.get(),
                })
                .collect()
        };
        let counters = series(&inner.counters);
        let gauges = inner
            .gauges
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(k, g)| SeriesValue {
                name: k.0.clone(),
                session: k.1.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = inner
            .histograms
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(k, h)| HistogramValue {
                name: k.0.clone(),
                session: k.1.clone(),
                snapshot: h.snapshot(),
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Per-session resource accounting: the gauge/histogram handles that
/// describe what one session *is costing the box right now*, resolved
/// once and shared by every plane that moves them (the router stamps
/// queue depth and wait, the engine thread beats the heartbeat, the
/// session layer maintains the byte gauges). Unlike the work counters
/// (`epochs_applied`, ...), which are a session's permanent record,
/// accounting series describe a live engine — so they are **torn down
/// with it**: [`SessionAccounting::retire`] removes them from scrapes
/// when the session's engine thread exits.
pub struct SessionAccounting {
    session: String,
    /// Ingest-queue depth: artifacts routed to the session's engine
    /// thread and not yet picked up (`ingest_queue_depth`).
    pub queue_depth: Gauge,
    /// Router→engine queue wait per command (`ingest_queue_wait_us`).
    pub queue_wait: Histogram,
    /// Change epochs enqueued but not yet applied (`epochs_behind`).
    pub epochs_behind: Gauge,
    /// Last engine-loop heartbeat, in [`uptime_ms`] time
    /// (`engine_heartbeat_ms`).
    pub heartbeat_ms: Gauge,
    /// 1 while the session is fenced off after an engine panic
    /// (`session_failed`).
    pub failed: Gauge,
    /// Canonical bytes of retained epoch history (`history_bytes`).
    pub history_bytes: Gauge,
    /// Estimated bytes of the last published query view (`view_bytes`).
    pub view_bytes: Gauge,
}

/// The accounting series names, in one place so registration and
/// teardown can never drift apart.
const ACCOUNTING_SERIES: [&str; 7] = [
    "ingest_queue_depth",
    "ingest_queue_wait_us",
    "epochs_behind",
    "engine_heartbeat_ms",
    "session_failed",
    "history_bytes",
    "view_bytes",
];

impl SessionAccounting {
    /// Resolves (get-or-create) the accounting series for `session` in
    /// `registry`. Multiple registrations for the same session share
    /// the same cells.
    pub fn register(registry: &Registry, session: &str) -> Self {
        SessionAccounting {
            session: session.to_string(),
            queue_depth: registry.gauge_for("ingest_queue_depth", session),
            queue_wait: registry.histogram_for("ingest_queue_wait_us", session),
            epochs_behind: registry.gauge_for("epochs_behind", session),
            heartbeat_ms: registry.gauge_for("engine_heartbeat_ms", session),
            failed: registry.gauge_for("session_failed", session),
            history_bytes: registry.gauge_for("history_bytes", session),
            view_bytes: registry.gauge_for("view_bytes", session),
        }
    }

    /// The session these series are labeled with.
    pub fn session(&self) -> &str {
        &self.session
    }

    /// Beats the heartbeat: records "the engine loop was here" at the
    /// current process uptime.
    pub fn beat(&self) {
        self.heartbeat_ms.set(uptime_ms());
    }

    /// Removes this session's accounting series from `registry`
    /// scrapes (the work counters stay — they are the session's
    /// record, not its live cost). Call when the engine thread exits.
    pub fn retire(&self, registry: &Registry) {
        for name in ACCOUNTING_SERIES {
            registry.remove(name, Some(&self.session));
        }
    }
}

/// Milliseconds since the process-wide monotonic epoch (first call
/// wins — every caller shares one [`std::time::Instant`] base). The
/// time base for heartbeats and history samples: wall-clock-free, so
/// Δt arithmetic never sees clock steps.
pub fn uptime_ms() -> u64 {
    static START: OnceLock<std::time::Instant> = OnceLock::new();
    START
        .get_or_init(std::time::Instant::now)
        .elapsed()
        .as_millis()
        .min(u64::MAX as u128) as u64
}

/// Whether the `DNA_OBS_DISABLED` kill switch is set (checked once).
pub fn obs_disabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    *DISABLED
        .get_or_init(|| std::env::var("DNA_OBS_DISABLED").is_ok_and(|v| !v.is_empty() && v != "0"))
}

/// The process-global registry every subsystem records into. No-op
/// when `DNA_OBS_DISABLED` is set in the environment.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        if obs_disabled() {
            Registry::disabled()
        } else {
            Registry::new()
        }
    })
}

/// The process-global epoch span recorder (the `dna query trace`
/// backing store). No-op under `DNA_OBS_DISABLED`. Its slow-epoch
/// threshold starts from `DNA_OBS_SLOW_EPOCH_MS` when set.
pub fn spans() -> &'static SpanRecorder {
    static GLOBAL: OnceLock<SpanRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let rec = if obs_disabled() {
            SpanRecorder::disabled()
        } else {
            SpanRecorder::new(DEFAULT_SPAN_CAPACITY)
        };
        if let Ok(ms) = std::env::var("DNA_OBS_SLOW_EPOCH_MS") {
            if let Ok(ms) = ms.parse::<u64>() {
                rec.set_slow_threshold_ns(ms.saturating_mul(1_000_000));
            }
        }
        rec
    })
}

/// The process-global query span recorder (the slow-query log's
/// backing store). No-op under `DNA_OBS_DISABLED`. Its slow-query
/// threshold starts from `DNA_OBS_SLOW_QUERY_US` when set.
pub fn query_spans() -> &'static QuerySpanRecorder {
    static GLOBAL: OnceLock<QuerySpanRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let rec = if obs_disabled() {
            QuerySpanRecorder::disabled()
        } else {
            QuerySpanRecorder::new(DEFAULT_SPAN_CAPACITY)
        };
        if let Ok(us) = std::env::var("DNA_OBS_SLOW_QUERY_US") {
            if let Ok(us) = us.parse::<u64>() {
                rec.set_slow_threshold_ns(us.saturating_mul(1_000));
            }
        }
        rec
    })
}

/// The process-global metrics history ring (the `dna query history`
/// backing store). No-op under `DNA_OBS_DISABLED`. The serve layer's
/// metrics tick records into it; everyone else only reads.
pub fn history() -> &'static TimeSeries {
    static GLOBAL: OnceLock<TimeSeries> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        if obs_disabled() {
            TimeSeries::disabled()
        } else {
            TimeSeries::new(DEFAULT_HISTORY_CAPACITY)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_and_move() {
        let r = Registry::new();
        let c = r.counter_for("epochs_applied", "s1");
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // The same key returns the same cell.
        assert_eq!(r.counter_for("epochs_applied", "s1").get(), 3);
        let g = r.gauge("depth");
        g.set(10);
        g.sub(3);
        g.add(1);
        assert_eq!(g.get(), 8);
        g.sub(100);
        assert_eq!(g.get(), 0, "gauges saturate at zero");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let r = Registry::new();
        let h = r.histogram("lat");
        for us in [10, 60, 60, 300, 2_000_000] {
            h.observe(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
        assert_eq!(s.buckets[0], 1, "10us lands in the 50us bucket");
        assert_eq!(s.buckets[1], 2, "60us lands in the 100us bucket");
        assert_eq!(s.buckets[BUCKETS - 1], 1, "2s overflows");
        assert_eq!(s.sum_ns, (10 + 60 + 60 + 300 + 2_000_000) * 1_000);
        assert_eq!(s.quantile_us(0.5), 100);
        assert_eq!(s.quantile_us(0.99), 1_000_000, "overflow saturates");
        assert_eq!(HistogramSnapshot::default_empty().quantile_us(0.5), 0);
    }

    impl HistogramSnapshot {
        fn default_empty() -> Self {
            HistogramSnapshot {
                count: 0,
                sum_ns: 0,
                buckets: [0; BUCKETS],
            }
        }
    }

    #[test]
    fn snapshot_is_sorted_and_filterable() {
        let r = Registry::new();
        r.counter_for("z", "b").inc();
        r.counter_for("a", "b").inc();
        r.counter("a").add(5);
        r.counter_for("a", "a").inc();
        let all = r.snapshot(None);
        let keys: Vec<(&str, Option<&str>)> = all
            .counters
            .iter()
            .map(|s| (s.name.as_str(), s.session.as_deref()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("a", None),
                ("a", Some("a")),
                ("a", Some("b")),
                ("z", Some("b"))
            ]
        );
        let only_b = r.snapshot(Some("b"));
        let keys: Vec<(&str, Option<&str>)> = only_b
            .counters
            .iter()
            .map(|s| (s.name.as_str(), s.session.as_deref()))
            .collect();
        // Process-wide series survive a session-scoped scrape.
        assert_eq!(keys, vec![("a", None), ("a", Some("b")), ("z", Some("b"))]);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::disabled();
        let c = r.counter("n");
        c.add(5);
        let h = r.histogram("h");
        h.observe(Duration::from_millis(1));
        let g = r.gauge("g");
        g.set(9);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        // The series still exist (scrapes stay shape-stable).
        assert_eq!(r.snapshot(None).counters.len(), 1);
    }

    /// The torn-scrape invariant, hammered in-process: concurrent
    /// observers never let a snapshot's bucket total exceed its count.
    #[test]
    fn histogram_scrapes_are_never_torn() {
        let r = Registry::new();
        let h = r.histogram("race");
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        h.observe_ns((w * 1_000 + i) * 997);
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        let s = h.snapshot();
                        let total: u64 = s.buckets.iter().sum();
                        assert!(
                            s.count >= total,
                            "torn scrape: count {} < bucket total {total}",
                            s.count
                        );
                    }
                })
            })
            .collect();
        for t in writers.into_iter().chain(readers) {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 8_000);
    }

    #[test]
    fn removed_series_leave_scrapes_but_handles_survive() {
        let r = Registry::new();
        let c = r.counter_for("keep", "s");
        let g = r.gauge_for("drop", "s");
        g.set(7);
        r.remove("drop", Some("s"));
        let snap = r.snapshot(None);
        assert!(snap.gauges.is_empty(), "removed gauge no longer scraped");
        assert_eq!(snap.counters.len(), 1, "other series untouched");
        // The detached handle still works without panicking.
        g.set(9);
        assert_eq!(g.get(), 9);
        c.inc();
        assert_eq!(r.counter_for("keep", "s").get(), 1);
    }

    #[test]
    fn session_accounting_registers_and_retires_as_a_unit() {
        let r = Registry::new();
        let acct = SessionAccounting::register(&r, "sess");
        acct.queue_depth.set(3);
        acct.queue_wait.observe(Duration::from_micros(40));
        acct.epochs_behind.set(2);
        acct.beat();
        acct.failed.set(1);
        acct.history_bytes.set(1024);
        acct.view_bytes.set(2048);
        // The session's permanent record lives alongside.
        r.counter_for("epochs_applied", "sess").add(5);
        let snap = r.snapshot(Some("sess"));
        assert_eq!(snap.gauges.len(), 6, "six accounting gauges");
        assert_eq!(snap.histograms.len(), 1, "the queue-wait histogram");
        // Registration is shared: a second handle sees the same cells.
        assert_eq!(SessionAccounting::register(&r, "sess").queue_depth.get(), 3);
        acct.retire(&r);
        let snap = r.snapshot(None);
        assert!(snap.gauges.is_empty(), "accounting gauges retired");
        assert!(snap.histograms.is_empty(), "queue-wait histogram retired");
        assert_eq!(snap.counters.len(), 1, "work counters survive teardown");
    }

    #[test]
    fn uptime_is_monotone() {
        let a = uptime_ms();
        let b = uptime_ms();
        assert!(b >= a);
    }
}
