//! Epoch-lifecycle tracing: a bounded ring of per-epoch stage spans.
//!
//! Every applied epoch leaves one [`EpochSpan`] — where its wall-clock
//! went, stage by stage: artifact parse, control-plane commit,
//! data-plane delta, view publish — in a fixed-capacity ring, the
//! generalized successor of `dna-core`'s `EpochStats` window. The serve
//! layer serializes the ring as the `spans` artifact (`dna query
//! trace`); epochs slower than a configurable threshold are also
//! reported to the operator log the moment they happen.

use crate::log;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Spans retained by the process-global recorder.
pub const DEFAULT_SPAN_CAPACITY: usize = 512;

/// One applied epoch's lifecycle: identity plus per-stage wall-clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSpan {
    /// Owning session.
    pub session: String,
    /// Absolute 0-based epoch index within the session.
    pub epoch: u64,
    /// The trace epoch's scenario label, when it carried one.
    pub label: Option<String>,
    /// Artifact parse time attributed to this epoch (amortized evenly
    /// over the epochs of a multi-epoch trace artifact).
    pub parse_ns: u64,
    /// Control-plane commit stage.
    pub cp_ns: u64,
    /// Data-plane delta stage.
    pub dp_ns: u64,
    /// View publish (zero when no view slot is attached).
    pub publish_ns: u64,
    /// End-to-end apply wall-clock (parse + engine + publish + session
    /// bookkeeping).
    pub total_ns: u64,
    /// Primitive changes in the epoch.
    pub changes: u64,
    /// Flow-level diffs the epoch reported.
    pub flows: u64,
}

/// A bounded, thread-safe ring of [`EpochSpan`]s with a slow-epoch
/// alarm. One mutex around a `VecDeque`: recording happens once per
/// epoch (milliseconds apart), never on a per-packet path.
pub struct SpanRecorder {
    enabled: bool,
    slow_threshold_ns: AtomicU64,
    ring: Mutex<Ring>,
}

struct Ring {
    spans: VecDeque<EpochSpan>,
    capacity: usize,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl SpanRecorder {
    /// An enabled recorder retaining the freshest `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        SpanRecorder {
            enabled: true,
            slow_threshold_ns: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                spans: VecDeque::new(),
                capacity: capacity.max(1),
            }),
        }
    }

    /// A recorder that drops everything (the `DNA_OBS_DISABLED` form).
    pub fn disabled() -> Self {
        let mut rec = Self::new(1);
        rec.enabled = false;
        rec
    }

    /// Whether this recorder keeps anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Sets the slow-epoch alarm: spans whose `total_ns` meets or
    /// exceeds the threshold are reported to the operator log as they
    /// are recorded. Zero (the default) disables the alarm.
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        self.slow_threshold_ns.store(ns, Ordering::SeqCst);
    }

    /// The current slow-epoch threshold (0 = disabled).
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::SeqCst)
    }

    /// Records one epoch span, evicting the oldest beyond capacity.
    pub fn record(&self, span: EpochSpan) {
        if !self.enabled {
            return;
        }
        let threshold = self.slow_threshold_ns();
        if threshold > 0 && span.total_ns >= threshold {
            // Session and label are both in the line: with several
            // sessions ingesting concurrently, "epoch 12 was slow" is
            // useless without knowing whose epoch 12 — and of what.
            let label = match &span.label {
                Some(l) => format!(" label {l:?}"),
                None => String::new(),
            };
            log::info(&format!(
                "dna obs: slow epoch {} in session {:?}{label}: total {:.2?} (parse {:.2?} cp {:.2?} dp {:.2?} publish {:.2?})",
                span.epoch,
                span.session,
                std::time::Duration::from_nanos(span.total_ns),
                std::time::Duration::from_nanos(span.parse_ns),
                std::time::Duration::from_nanos(span.cp_ns),
                std::time::Duration::from_nanos(span.dp_ns),
                std::time::Duration::from_nanos(span.publish_ns),
            ));
        }
        let mut ring = lock(&self.ring);
        if ring.spans.len() == ring.capacity {
            ring.spans.pop_front();
        }
        ring.spans.push_back(span);
    }

    /// The retained spans, oldest first, optionally filtered to one
    /// session and truncated to the freshest `last`.
    pub fn snapshot(&self, session: Option<&str>, last: Option<usize>) -> Vec<EpochSpan> {
        let ring = lock(&self.ring);
        let mut spans: Vec<EpochSpan> = ring
            .spans
            .iter()
            .filter(|s| session.is_none_or(|want| s.session == want))
            .cloned()
            .collect();
        if let Some(n) = last {
            let skip = spans.len().saturating_sub(n);
            spans.drain(..skip);
        }
        spans
    }
}

/// One answered query's lifecycle: where it was answered, for whom,
/// and how long the answer took — the query-plane twin of
/// [`EpochSpan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpan {
    /// Answer path: `"tcp"` (published-view fast path), `"broker"`
    /// (engine thread) or `"pipe"` (single-stream loop).
    pub transport: &'static str,
    /// Target session, when the query named (or resolved to) one.
    pub session: Option<String>,
    /// Query command keyword (`reach`, `blast`, `metrics`, ...).
    pub kind: &'static str,
    /// End-to-end answer wall-clock.
    pub total_ns: u64,
}

/// A bounded, thread-safe ring of [`QuerySpan`]s with a slow-query
/// alarm — the backing store of the slow-query log. Same shape and
/// locking story as [`SpanRecorder`]: one mutex, touched once per
/// answered query.
pub struct QuerySpanRecorder {
    enabled: bool,
    slow_threshold_ns: AtomicU64,
    ring: Mutex<QueryRing>,
}

struct QueryRing {
    spans: VecDeque<QuerySpan>,
    capacity: usize,
}

impl QuerySpanRecorder {
    /// An enabled recorder retaining the freshest `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        QuerySpanRecorder {
            enabled: true,
            slow_threshold_ns: AtomicU64::new(0),
            ring: Mutex::new(QueryRing {
                spans: VecDeque::new(),
                capacity: capacity.max(1),
            }),
        }
    }

    /// A recorder that drops everything (the `DNA_OBS_DISABLED` form).
    pub fn disabled() -> Self {
        let mut rec = Self::new(1);
        rec.enabled = false;
        rec
    }

    /// Whether this recorder keeps anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Sets the slow-query alarm: spans whose `total_ns` meets or
    /// exceeds the threshold are reported to the operator log as they
    /// are recorded. Zero (the default) disables the alarm.
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        self.slow_threshold_ns.store(ns, Ordering::SeqCst);
    }

    /// The current slow-query threshold (0 = disabled).
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::SeqCst)
    }

    /// Records one query span, evicting the oldest beyond capacity.
    pub fn record(&self, span: QuerySpan) {
        if !self.enabled {
            return;
        }
        let threshold = self.slow_threshold_ns();
        if threshold > 0 && span.total_ns >= threshold {
            log::info(&format!(
                "dna obs: slow query {} in session {:?} via {}: {:.2?}",
                span.kind,
                span.session,
                span.transport,
                std::time::Duration::from_nanos(span.total_ns),
            ));
        }
        let mut ring = lock(&self.ring);
        if ring.spans.len() == ring.capacity {
            ring.spans.pop_front();
        }
        ring.spans.push_back(span);
    }

    /// The retained spans, oldest first, optionally filtered to one
    /// session and truncated to the freshest `last`.
    pub fn snapshot(&self, session: Option<&str>, last: Option<usize>) -> Vec<QuerySpan> {
        let ring = lock(&self.ring);
        let mut spans: Vec<QuerySpan> = ring
            .spans
            .iter()
            .filter(|s| session.is_none_or(|want| s.session.as_deref() == Some(want)))
            .cloned()
            .collect();
        if let Some(n) = last {
            let skip = spans.len().saturating_sub(n);
            spans.drain(..skip);
        }
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(session: &str, epoch: u64, total_ns: u64) -> EpochSpan {
        EpochSpan {
            session: session.to_string(),
            epoch,
            label: None,
            parse_ns: 1,
            cp_ns: 2,
            dp_ns: 3,
            publish_ns: 4,
            total_ns,
            changes: 1,
            flows: 0,
        }
    }

    #[test]
    fn ring_bounds_and_filters() {
        let rec = SpanRecorder::new(3);
        for i in 0..5 {
            rec.record(span(if i % 2 == 0 { "a" } else { "b" }, i, 10));
        }
        let all = rec.snapshot(None, None);
        assert_eq!(
            all.iter().map(|s| s.epoch).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest spans evict first"
        );
        let a = rec.snapshot(Some("a"), None);
        assert_eq!(a.iter().map(|s| s.epoch).collect::<Vec<_>>(), vec![2, 4]);
        let last = rec.snapshot(None, Some(2));
        assert_eq!(last.iter().map(|s| s.epoch).collect::<Vec<_>>(), vec![3, 4]);
        assert!(rec.snapshot(Some("missing"), None).is_empty());
    }

    #[test]
    fn disabled_recorder_drops_spans() {
        let rec = SpanRecorder::disabled();
        rec.record(span("a", 0, 10));
        assert!(rec.snapshot(None, None).is_empty());
    }

    #[test]
    fn slow_threshold_round_trips() {
        let rec = SpanRecorder::new(4);
        assert_eq!(rec.slow_threshold_ns(), 0);
        rec.set_slow_threshold_ns(5);
        assert_eq!(rec.slow_threshold_ns(), 5);
        // Recording a slow span must not panic or drop the span.
        rec.record(span("a", 0, 10));
        assert_eq!(rec.snapshot(None, None).len(), 1);
    }

    fn qspan(transport: &'static str, session: Option<&str>, total_ns: u64) -> QuerySpan {
        QuerySpan {
            transport,
            session: session.map(str::to_string),
            kind: "reach",
            total_ns,
        }
    }

    #[test]
    fn query_ring_bounds_and_filters() {
        let rec = QuerySpanRecorder::new(3);
        rec.record(qspan("pipe", Some("a"), 10));
        rec.record(qspan("tcp", Some("b"), 20));
        rec.record(qspan("tcp", Some("a"), 30));
        rec.record(qspan("broker", None, 40));
        let all = rec.snapshot(None, None);
        assert_eq!(
            all.iter().map(|s| s.total_ns).collect::<Vec<_>>(),
            vec![20, 30, 40],
            "oldest spans evict first"
        );
        let a = rec.snapshot(Some("a"), None);
        assert_eq!(a.iter().map(|s| s.total_ns).collect::<Vec<_>>(), vec![30]);
        let last = rec.snapshot(None, Some(1));
        assert_eq!(last[0].transport, "broker");
    }

    #[test]
    fn disabled_query_recorder_drops_spans() {
        let rec = QuerySpanRecorder::disabled();
        rec.record(qspan("tcp", None, 10));
        assert!(rec.snapshot(None, None).is_empty());
    }

    #[test]
    fn slow_query_threshold_logs_without_dropping() {
        let rec = QuerySpanRecorder::new(4);
        rec.set_slow_threshold_ns(5);
        rec.record(qspan("tcp", Some("s"), 10));
        assert_eq!(rec.snapshot(None, None).len(), 1);
    }
}
