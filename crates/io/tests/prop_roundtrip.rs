//! Round-trip and robustness properties of the wire format.
//!
//! 1. **Lossless round-trips.** For proptest-generated `Snapshot`s,
//!    `ChangeSet` traces and reports — including quoting-hostile names,
//!    every change variant and every optional field — `parse(write(x))`
//!    equals `x`, and a second trip is byte-identical (the serializer is
//!    canonical over its own output).
//! 2. **Totality on bad input.** Truncations, random line/character
//!    mutations, wrong versions and wrong artifact kinds all produce
//!    typed [`IoError`]s; parsing never panics.

use dna_core::FlowDiff;
use dna_io::{
    parse_checkpoint, parse_report, parse_snapshot, parse_trace, write_checkpoint, write_report,
    write_snapshot, write_trace, Checkpoint, CheckpointConfig, CheckpointSource, CheckpointTotals,
    EpochDiff, IoError, Report, Trace, TraceEpoch,
};
use net_model::acl::{Acl, AclEntry, Action, FlowMatch, PortRange};
use net_model::route::{RmAction, RmMatch, RmSet, RouteMapClause};
use net_model::{
    BgpConfig, BgpNeighbor, Change, ChangeSet, DeviceConfig, Endpoint, Environment, ExternalRoute,
    Flow, IfaceConfig, Ipv4Addr, Ipv4Prefix, Link, NextHop, OspfIfaceConfig, RouteAttrs, RouteMap,
    Snapshot, StaticRoute,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

// ---- value strategies -------------------------------------------------

/// Names drawn from a pool that exercises quoting: spaces, quotes,
/// backslashes, newlines, tabs, control and non-ASCII characters.
fn name() -> impl Strategy<Value = String> {
    const POOL: &[&str] = &[
        "r",
        "core",
        "agg edge",
        "q\"uote",
        "back\\slash",
        "new\nline",
        "tab\there",
        "uni—✓",
        "bell\u{7}",
        "",
    ];
    (0usize..POOL.len(), 0u32..3).prop_map(|(i, n)| format!("{}{}", POOL[i], n))
}

fn addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr)
}

fn prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Ipv4Prefix::new(Ipv4Addr(a), l))
}

fn port_range() -> impl Strategy<Value = PortRange> {
    (any::<u16>(), any::<u16>()).prop_map(|(a, b)| PortRange {
        lo: a.min(b),
        hi: a.max(b),
    })
}

fn flow_match() -> impl Strategy<Value = FlowMatch> {
    (
        prop::option::of(prefix()),
        prop::option::of(prefix()),
        prop::option::of(any::<u8>()),
        prop::option::of(port_range()),
        prop::option::of(port_range()),
    )
        .prop_map(|(src, dst, proto, src_ports, dst_ports)| FlowMatch {
            src,
            dst,
            proto,
            src_ports,
            dst_ports,
        })
}

fn acl_entry() -> impl Strategy<Value = AclEntry> {
    (any::<u32>(), any::<bool>(), flow_match()).prop_map(|(seq, permit, matches)| AclEntry {
        seq,
        action: if permit { Action::Permit } else { Action::Deny },
        matches,
    })
}

fn acl() -> impl Strategy<Value = Acl> {
    prop::collection::vec(acl_entry(), 0..4).prop_map(|entries| Acl { entries })
}

fn route_attrs() -> impl Strategy<Value = RouteAttrs> {
    (
        prefix(),
        any::<u32>(),
        prop::collection::vec(any::<u32>(), 0..4),
        any::<u32>(),
        any::<u8>(),
        prop::collection::vec(any::<u32>(), 0..4),
    )
        .prop_map(
            |(prefix, local_pref, as_path, med, origin, comms)| RouteAttrs {
                prefix,
                local_pref,
                as_path,
                med,
                origin,
                communities: comms.into_iter().collect(),
            },
        )
}

fn rm_match() -> impl Strategy<Value = RmMatch> {
    prop_oneof![
        (prefix(), 0u8..=32, 0u8..=32).prop_map(|(covering, ge, le)| RmMatch::Prefix {
            covering,
            ge,
            le
        }),
        any::<u32>().prop_map(RmMatch::Community),
        any::<u32>().prop_map(RmMatch::AsPathContains),
    ]
}

fn rm_set() -> impl Strategy<Value = RmSet> {
    prop_oneof![
        any::<u32>().prop_map(RmSet::LocalPref),
        any::<u32>().prop_map(RmSet::Med),
        any::<u32>().prop_map(RmSet::AddCommunity),
        any::<u32>().prop_map(RmSet::DeleteCommunity),
        (any::<u32>(), any::<u8>()).prop_map(|(asn, count)| RmSet::AsPathPrepend { asn, count }),
    ]
}

fn route_map() -> impl Strategy<Value = RouteMap> {
    prop::collection::vec(
        (
            any::<u32>(),
            prop::collection::vec(rm_match(), 0..3),
            any::<bool>(),
            prop::collection::vec(rm_set(), 0..3),
        ),
        0..3,
    )
    .prop_map(|clauses| RouteMap {
        clauses: clauses
            .into_iter()
            .map(|(seq, matches, permit, sets)| RouteMapClause {
                seq,
                matches,
                action: if permit {
                    RmAction::Permit
                } else {
                    RmAction::Deny
                },
                sets,
            })
            .collect(),
    })
}

fn next_hop() -> impl Strategy<Value = NextHop> {
    prop_oneof![addr().prop_map(NextHop::Ip), Just(NextHop::Discard)]
}

fn static_route() -> impl Strategy<Value = StaticRoute> {
    (prefix(), next_hop(), any::<u8>()).prop_map(|(prefix, next_hop, admin_distance)| StaticRoute {
        prefix,
        next_hop,
        admin_distance,
    })
}

fn iface() -> impl Strategy<Value = IfaceConfig> {
    (
        prefix(),
        addr(),
        prop::option::of(name()),
        prop::option::of(name()),
        prop::option::of((any::<u32>(), any::<u32>(), any::<bool>())),
    )
        .prop_map(|(prefix, addr, acl_in, acl_out, ospf)| IfaceConfig {
            prefix,
            addr,
            acl_in,
            acl_out,
            ospf: ospf.map(|(cost, area, passive)| OspfIfaceConfig {
                cost,
                area,
                passive,
            }),
        })
}

fn bgp() -> impl Strategy<Value = BgpConfig> {
    (
        any::<u32>(),
        any::<u32>(),
        prop::collection::vec(
            (
                addr(),
                any::<u32>(),
                prop::option::of(name()),
                prop::option::of(name()),
            ),
            0..3,
        ),
        prop::collection::vec(prefix(), 0..3),
    )
        .prop_map(|(asn, router_id, neighbors, networks)| BgpConfig {
            asn,
            router_id,
            neighbors: neighbors
                .into_iter()
                .map(
                    |(peer, remote_as, import_policy, export_policy)| BgpNeighbor {
                        peer,
                        remote_as,
                        import_policy,
                        export_policy,
                    },
                )
                .collect(),
            networks,
        })
}

fn device_config() -> impl Strategy<Value = DeviceConfig> {
    (
        prop::collection::vec((name(), iface()), 0..3),
        prop::collection::vec(static_route(), 0..3),
        prop::option::of(bgp()),
        prop::collection::vec((name(), route_map()), 0..3),
        prop::collection::vec((name(), acl()), 0..2),
    )
        .prop_map(|(ifaces, static_routes, bgp, rms, acls)| DeviceConfig {
            interfaces: ifaces.into_iter().collect::<BTreeMap<_, _>>(),
            static_routes,
            bgp,
            route_maps: rms.into_iter().collect(),
            acls: acls.into_iter().collect(),
        })
}

fn link() -> impl Strategy<Value = Link> {
    (name(), name(), name(), name())
        .prop_map(|(ad, ai, bd, bi)| Link::new(Endpoint::new(&ad, &ai), Endpoint::new(&bd, &bi)))
}

fn external_route() -> impl Strategy<Value = ExternalRoute> {
    (name(), addr(), route_attrs()).prop_map(|(device, peer, attrs)| ExternalRoute {
        device,
        peer,
        attrs,
    })
}

fn snapshot() -> impl Strategy<Value = Snapshot> {
    (
        prop::collection::vec((name(), device_config()), 0..4),
        prop::collection::vec(link(), 0..5),
        prop::collection::vec(link(), 0..3),
        prop::collection::vec(name(), 0..3),
        prop::collection::vec(external_route(), 0..3),
    )
        .prop_map(
            |(devices, links, down_links, down_devices, external)| Snapshot {
                devices: devices.into_iter().collect(),
                links,
                environment: Environment {
                    down_links: down_links.into_iter().collect(),
                    down_devices: down_devices.into_iter().collect(),
                    external_routes: external,
                },
            },
        )
}

fn change() -> BoxedStrategy<Change> {
    prop_oneof![
        link().prop_map(Change::LinkDown),
        link().prop_map(Change::LinkUp),
        name().prop_map(Change::DeviceDown),
        name().prop_map(Change::DeviceUp),
        (name(), name(), acl_entry()).prop_map(|(device, acl, entry)| Change::AclEntryAdd {
            device,
            acl,
            entry
        }),
        (name(), name(), any::<u32>()).prop_map(|(device, acl, seq)| Change::AclEntryRemove {
            device,
            acl,
            seq
        }),
        (name(), name(), prop::option::of(name()))
            .prop_map(|(device, iface, acl)| Change::SetAclIn { device, iface, acl }),
        (name(), name(), prop::option::of(name()))
            .prop_map(|(device, iface, acl)| Change::SetAclOut { device, iface, acl }),
        (name(), name(), route_map()).prop_map(|(device, name, map)| Change::SetRouteMap {
            device,
            name,
            map
        }),
        (name(), static_route())
            .prop_map(|(device, route)| Change::StaticRouteAdd { device, route }),
        (name(), prefix(), next_hop()).prop_map(|(device, prefix, next_hop)| {
            Change::StaticRouteRemove {
                device,
                prefix,
                next_hop,
            }
        }),
        (name(), prefix()).prop_map(|(device, prefix)| Change::BgpNetworkAdd { device, prefix }),
        (name(), prefix()).prop_map(|(device, prefix)| Change::BgpNetworkRemove { device, prefix }),
        external_route().prop_map(Change::ExternalAnnounce),
        (name(), addr(), prefix()).prop_map(|(device, peer, prefix)| Change::ExternalWithdraw {
            device,
            peer,
            prefix
        }),
        (name(), name(), any::<u32>()).prop_map(|(device, iface, cost)| Change::SetOspfCost {
            device,
            iface,
            cost
        }),
    ]
    .boxed()
}

fn trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(
        (
            prop::option::of(name()),
            prop::collection::vec(change(), 0..5),
        ),
        0..4,
    )
    .prop_map(|epochs| Trace {
        epochs: epochs
            .into_iter()
            .map(|(label, changes)| TraceEpoch {
                label,
                changes: ChangeSet::of(changes),
            })
            .collect(),
    })
}

fn outcome() -> impl Strategy<Value = data_plane::Outcome> {
    use data_plane::Outcome;
    prop_oneof![
        name().prop_map(Outcome::Delivered),
        name().prop_map(Outcome::External),
        name().prop_map(Outcome::Blackhole),
        name().prop_map(Outcome::Filtered),
        Just(Outcome::Loop),
    ]
}

fn flow_diff() -> impl Strategy<Value = FlowDiff> {
    (
        name(),
        prop::collection::vec(name(), 0..3),
        (addr(), addr(), any::<u8>(), any::<u16>(), any::<u16>()),
        prop::collection::vec(outcome(), 0..3),
        prop::collection::vec(outcome(), 0..3),
    )
        .prop_map(
            |(src, headers, (fs, fd, proto, sp, dp), before, after)| FlowDiff {
                src,
                headers,
                example: Flow {
                    src: fs,
                    dst: fd,
                    proto,
                    src_port: sp,
                    dst_port: dp,
                },
                before: before.into_iter().collect(),
                after: after.into_iter().collect(),
            },
        )
}

fn report() -> impl Strategy<Value = Report> {
    use control_plane::{FibAction, FibEntry, NextDevice, Proto, RibEntry};
    let fib_action = prop_oneof![
        name().prop_map(|iface| FibAction::Deliver { iface }),
        (name(), name()).prop_map(|(iface, d)| FibAction::Forward {
            iface,
            next: NextDevice::Device(d)
        }),
        name().prop_map(|iface| FibAction::Forward {
            iface,
            next: NextDevice::External
        }),
        Just(FibAction::Drop),
    ];
    let proto = prop_oneof![
        Just(Proto::Connected),
        Just(Proto::Static),
        Just(Proto::BgpExternal),
        Just(Proto::Ospf),
        Just(Proto::BgpInternal),
    ];
    let weight = prop_oneof![Just(-2isize), Just(-1), Just(1), Just(2)];
    let fib_entry =
        (name(), prefix(), fib_action.clone()).prop_map(|(device, prefix, action)| FibEntry {
            device,
            prefix,
            action,
        });
    let rib_entry = (name(), prefix(), proto, any::<u64>(), fib_action).prop_map(
        |(device, prefix, proto, metric, action)| RibEntry {
            device,
            prefix,
            proto,
            metric,
            action,
        },
    );
    prop::collection::vec(
        (
            prop::option::of(name()),
            prop::collection::vec((rib_entry, weight.clone()), 0..3),
            prop::collection::vec((fib_entry, weight), 0..3),
            prop::collection::vec(flow_diff(), 0..3),
        ),
        0..3,
    )
    .prop_map(|epochs| Report {
        epochs: epochs
            .into_iter()
            .map(|(label, rib, fib, flows)| EpochDiff {
                label,
                rib,
                fib,
                flows,
            })
            .collect(),
    })
}

/// Checkpoints compose the other sub-grammars: an embedded (or
/// referenced) snapshot, a report-shaped history under strictly
/// increasing absolute indices below the applied-epoch count, and the
/// counter lines.
fn checkpoint() -> impl Strategy<Value = Checkpoint> {
    let config = (
        1u64..1000,
        prop::option::of(1u64..100_000),
        any::<bool>(),
        1u64..8,
    )
        .prop_map(|(retain, retain_bytes, verify, shards)| CheckpointConfig {
            retain,
            retain_bytes,
            verify,
            shards,
        });
    let totals = prop::collection::vec(any::<u32>(), 7..=7).prop_map(|v| CheckpointTotals {
        changes: v[0] as u64,
        rib: v[1] as u64,
        fib: v[2] as u64,
        flows: v[3] as u64,
        cp_ns: v[4] as u64,
        dp_ns: v[5] as u64,
        total_ns: v[6] as u64,
    });
    let source = prop_oneof![
        snapshot().prop_map(CheckpointSource::Inline),
        name().prop_map(CheckpointSource::Ref),
    ];
    (
        name(),
        config,
        totals,
        source,
        report(),
        prop::collection::vec(1usize..40, 4..=4),
        0u64..5,
        any::<u8>(),
    )
        .prop_map(
            |(session, config, totals, source, report, gaps, slack, mismatches)| {
                let mut index = 0usize;
                let history: Vec<(usize, EpochDiff)> = report
                    .epochs
                    .into_iter()
                    .zip(gaps)
                    .map(|(ep, gap)| {
                        index += gap;
                        (index, ep)
                    })
                    .collect();
                let epochs = history.last().map_or(0, |(i, _)| *i as u64 + 1) + slack;
                Checkpoint {
                    session,
                    config,
                    epochs,
                    mismatches: mismatches as u64,
                    totals,
                    source,
                    history,
                }
            },
        )
}

// ---- properties -------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(96, 0xD9A_1001))]

    #[test]
    fn snapshot_round_trips(snap in snapshot()) {
        let text = write_snapshot(&snap);
        let back = parse_snapshot(&text).expect("generated snapshot parses");
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(write_snapshot(&back), text);
    }

    #[test]
    fn trace_round_trips(t in trace()) {
        let text = write_trace(&t);
        let back = parse_trace(&text).expect("generated trace parses");
        prop_assert_eq!(&back, &t);
        prop_assert_eq!(write_trace(&back), text);
    }

    #[test]
    fn report_round_trips(r in report()) {
        let text = write_report(&r);
        let back = parse_report(&text).expect("generated report parses");
        prop_assert_eq!(&back, &r);
        prop_assert_eq!(write_report(&back), text);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(64, 0xD9A_1002))]

    /// Any strict line-prefix of a serialized artifact is rejected with a
    /// typed error (truncation can never be mistaken for success), and
    /// parsing it never panics.
    #[test]
    fn truncations_yield_typed_errors(snap in snapshot(), cut in 0u32..10_000) {
        let text = write_snapshot(&snap);
        let lines: Vec<&str> = text.lines().collect();
        let keep = (cut as usize) % lines.len().max(1);
        let truncated = lines[..keep].join("\n");
        match parse_snapshot(&truncated) {
            Ok(_) => prop_assert!(false, "strict prefix must not parse"),
            Err(IoError::Truncated { .. }) | Err(IoError::BadHeader(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error kind: {e:?}"),
        }
    }

    /// Mutating one character anywhere in a serialized trace either still
    /// parses (the mutation hit something benign, e.g. inside a quoted
    /// string) or fails with a typed error — never a panic.
    #[test]
    fn char_mutations_never_panic(t in trace(), pos in any::<u32>(), repl in 1u8..128) {
        let mut bytes = write_trace(&t).into_bytes();
        if !bytes.is_empty() {
            let idx = (pos as usize) % bytes.len();
            bytes[idx] = repl;
            // Skip the (rare) mutations that break UTF-8 inside a
            // multi-byte name character; everything else must parse or
            // fail with a typed error, never panic.
            if let Ok(mutated) = String::from_utf8(bytes) {
                let _ = parse_trace(&mutated);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(48, 0xD9A_1005))]

    /// Checkpoint round-trips, mirroring the PR-2/PR-3 coverage for the
    /// other artifact kinds: `parse(write(x)) == x` (inline snapshots,
    /// ref snapshots, arbitrary histories) and the serializer is
    /// canonical over its own output.
    #[test]
    fn checkpoint_round_trips(ck in checkpoint()) {
        let text = write_checkpoint(&ck);
        let back = parse_checkpoint(&text).expect("generated checkpoint parses");
        prop_assert_eq!(&back, &ck);
        prop_assert_eq!(write_checkpoint(&back), text);
    }

    /// Any strict line-prefix of a serialized checkpoint is rejected
    /// with a typed error — a server must never resume from a torn
    /// file (the atomic write makes one unlikely; the parser makes it
    /// harmless).
    #[test]
    fn checkpoint_truncations_yield_typed_errors(ck in checkpoint(), cut in 0u32..10_000) {
        let text = write_checkpoint(&ck);
        let lines: Vec<&str> = text.lines().collect();
        let keep = (cut as usize) % lines.len().max(1);
        let truncated = lines[..keep].join("\n");
        match parse_checkpoint(&truncated) {
            Ok(_) => prop_assert!(false, "strict prefix must not parse"),
            Err(IoError::Truncated { .. }) | Err(IoError::BadHeader(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error kind: {e:?}"),
        }
    }

    /// Mutating one character anywhere in a serialized checkpoint
    /// either still parses (a benign hit inside a quoted string) or
    /// fails with a typed error — never a panic.
    #[test]
    fn checkpoint_mutations_never_panic(ck in checkpoint(), pos in any::<u32>(), repl in 1u8..128) {
        let mut bytes = write_checkpoint(&ck).into_bytes();
        if !bytes.is_empty() {
            let idx = (pos as usize) % bytes.len();
            bytes[idx] = repl;
            if let Ok(mutated) = String::from_utf8(bytes) {
                let _ = parse_checkpoint(&mutated);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(48, 0xD9A_1006))]

    /// Counter-restore hardening: every generated checkpoint's checked
    /// conversions ([`Checkpoint::resume_counters`]) succeed and agree
    /// with the wire counters, and a corrupted applied-epoch counter —
    /// dropped to the newest history index, in value space or mutated in
    /// the serialized text — surfaces as a typed error instead of being
    /// silently accepted into session state.
    #[test]
    fn checkpoint_counter_corruption_is_typed(ck in checkpoint()) {
        let rc = ck.resume_counters().expect("generated counters convert");
        prop_assert_eq!(rc.epochs as u64, ck.epochs);
        prop_assert_eq!(rc.changes as u64, ck.totals.changes);
        prop_assert_eq!(rc.rib as u64, ck.totals.rib);
        prop_assert_eq!(rc.fib as u64, ck.totals.fib);
        prop_assert_eq!(rc.flows as u64, ck.totals.flows);
        prop_assert_eq!(rc.retain as u64, ck.config.retain.max(1));
        prop_assert_eq!(rc.retain_bytes.map(|b| b as u64), ck.config.retain_bytes);
        if let Some(&(last, _)) = ck.history.last() {
            // Value-space corruption: the applied-epoch counter at (not
            // above) the newest history index violates the invariant.
            let mut bad = ck.clone();
            bad.epochs = last as u64;
            prop_assert!(
                matches!(bad.resume_counters(), Err(IoError::Invalid { .. })),
                "corrupt epochs counter must be a typed error"
            );
            // The same corruption in the serialized text is caught at
            // parse time.
            let text = write_checkpoint(&ck);
            let mutated: String = text
                .lines()
                .map(|l| {
                    if l.starts_with("applied epochs ") {
                        format!("applied epochs {last} mismatches {}\n", ck.mismatches)
                    } else {
                        format!("{l}\n")
                    }
                })
                .collect();
            prop_assert!(
                matches!(parse_checkpoint(&mutated), Err(IoError::Parse { .. })),
                "corrupt epochs line must be a typed parse error"
            );
        }
    }
}
