//! Round-trip and robustness properties of the service protocol's
//! `query` / `response` wire records, mirroring the coverage
//! `prop_roundtrip.rs` gives snapshots, traces and reports:
//!
//! 1. **Lossless round-trips** — `parse(write(x)) == x` and a second
//!    trip is byte-identical, for arbitrary queries and responses,
//!    including quoting-hostile session/device names, empty outcome
//!    sets, and report payloads carrying arbitrary epoch diffs at
//!    arbitrary (increasing) absolute indices.
//! 2. **Totality on bad input** — truncations and random character
//!    mutations produce typed [`IoError`]s, never panics.

use dna_core::FlowDiff;
use dna_io::{
    parse_metrics, parse_notify, parse_query, parse_response, parse_spans, write_metrics,
    write_notify, write_query, write_response, write_spans, EpochDiff, HistogramRow, IoError,
    MetricsReport, Notify, NotifyEvent, Query, QueryKind, Response, SeriesRow, ServiceStats,
    SessionInfo, SpanReport, SpanRow, SubscriptionSpec,
};
use net_model::{Flow, Ipv4Addr};
use proptest::prelude::*;

/// Names drawn from a pool that exercises quoting: spaces, quotes,
/// backslashes, newlines, tabs, control and non-ASCII characters.
fn name() -> impl Strategy<Value = String> {
    const POOL: &[&str] = &[
        "r",
        "core",
        "agg edge",
        "q\"uote",
        "back\\slash",
        "new\nline",
        "tab\there",
        "uni—✓",
        "bell\u{7}",
        "",
    ];
    (0usize..POOL.len(), 0u32..3).prop_map(|(i, n)| format!("{}{}", POOL[i], n))
}

fn flow() -> impl Strategy<Value = Flow> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u8>(),
        any::<u16>(),
        any::<u16>(),
    )
        .prop_map(|(s, d, proto, sp, dp)| Flow {
            src: Ipv4Addr(s),
            dst: Ipv4Addr(d),
            proto,
            src_port: sp,
            dst_port: dp,
        })
}

fn subscription_spec() -> impl Strategy<Value = SubscriptionSpec> {
    prop_oneof![
        (name(), flow()).prop_map(|(src, flow)| SubscriptionSpec::Reach { src, flow }),
        (name(), name()).prop_map(|(src, dst)| SubscriptionSpec::ReachPair { src, dst }),
        name().prop_map(|device| SubscriptionSpec::Blast { device }),
        (name(), name()).prop_map(|(src, dst)| SubscriptionSpec::NeverReach { src, dst }),
        (name(), flow()).prop_map(|(src, flow)| SubscriptionSpec::NoBlackhole { src, flow }),
    ]
}

fn query_kind() -> impl Strategy<Value = QueryKind> {
    prop_oneof![
        (name(), flow()).prop_map(|(src, flow)| QueryKind::Reach { src, flow }),
        (name(), name()).prop_map(|(src, dst)| QueryKind::ReachPair { src, dst }),
        any::<usize>().prop_map(|last| QueryKind::Blast { last }),
        (any::<usize>(), any::<usize>()).prop_map(|(from, to)| QueryKind::Report { from, to }),
        Just(QueryKind::Stats),
        Just(QueryKind::Sessions),
        Just(QueryKind::Checkpoint),
        Just(QueryKind::Metrics),
        prop::option::of(any::<usize>()).prop_map(|last| QueryKind::TraceSpans { last }),
        Just(QueryKind::Health),
        prop::option::of(any::<usize>()).prop_map(|last| QueryKind::History { last }),
        subscription_spec().prop_map(QueryKind::Subscribe),
        any::<u64>().prop_map(|id| QueryKind::Unsubscribe { id }),
        any::<u64>().prop_map(|id| QueryKind::Notifications { id }),
    ]
}

fn query() -> impl Strategy<Value = Query> {
    (prop::option::of(name()), query_kind()).prop_map(|(session, kind)| Query { session, kind })
}

fn outcome() -> impl Strategy<Value = data_plane::Outcome> {
    use data_plane::Outcome;
    prop_oneof![
        name().prop_map(Outcome::Delivered),
        name().prop_map(Outcome::External),
        name().prop_map(Outcome::Blackhole),
        name().prop_map(Outcome::Filtered),
        Just(Outcome::Loop),
    ]
}

fn flow_diff() -> impl Strategy<Value = FlowDiff> {
    (
        name(),
        prop::collection::vec(name(), 0..3),
        flow(),
        prop::collection::vec(outcome(), 0..3),
        prop::collection::vec(outcome(), 0..3),
    )
        .prop_map(|(src, headers, example, before, after)| FlowDiff {
            src,
            headers,
            example,
            before: before.into_iter().collect(),
            after: after.into_iter().collect(),
        })
}

fn epoch_diff() -> impl Strategy<Value = EpochDiff> {
    use control_plane::{FibAction, FibEntry, NextDevice, Proto, RibEntry};
    let prefix =
        (any::<u32>(), 0u8..=32).prop_map(|(a, l)| net_model::Ipv4Prefix::new(Ipv4Addr(a), l));
    let fib_action = prop_oneof![
        name().prop_map(|iface| FibAction::Deliver { iface }),
        (name(), name()).prop_map(|(iface, d)| FibAction::Forward {
            iface,
            next: NextDevice::Device(d)
        }),
        name().prop_map(|iface| FibAction::Forward {
            iface,
            next: NextDevice::External
        }),
        Just(FibAction::Drop),
    ];
    let proto = prop_oneof![
        Just(Proto::Connected),
        Just(Proto::Static),
        Just(Proto::BgpExternal),
        Just(Proto::Ospf),
        Just(Proto::BgpInternal),
    ];
    let weight = prop_oneof![Just(-2isize), Just(-1), Just(1), Just(2)];
    let fib_entry =
        (name(), prefix.clone(), fib_action.clone()).prop_map(|(device, prefix, action)| {
            FibEntry {
                device,
                prefix,
                action,
            }
        });
    let rib_entry = (name(), prefix, proto, any::<u64>(), fib_action).prop_map(
        |(device, prefix, proto, metric, action)| RibEntry {
            device,
            prefix,
            proto,
            metric,
            action,
        },
    );
    (
        prop::option::of(name()),
        prop::collection::vec((rib_entry, weight.clone()), 0..3),
        prop::collection::vec((fib_entry, weight), 0..3),
        prop::collection::vec(flow_diff(), 0..3),
    )
        .prop_map(|(label, rib, fib, flows)| EpochDiff {
            label,
            rib,
            fib,
            flows,
        })
}

/// Strictly increasing absolute indices for a report payload.
fn indexed_epochs() -> impl Strategy<Value = Vec<(usize, EpochDiff)>> {
    prop::collection::vec((1usize..1000, epoch_diff()), 0..3).prop_map(|gaps| {
        let mut index = 0usize;
        gaps.into_iter()
            .map(|(gap, ep)| {
                index += gap;
                (index, ep)
            })
            .collect()
    })
}

fn session_infos() -> impl Strategy<Value = Vec<SessionInfo>> {
    prop::collection::vec(
        (
            name(),
            any::<u64>(),
            any::<u64>(),
            any::<bool>(),
            any::<bool>(),
        ),
        0..4,
    )
    .prop_map(|rows| {
        // Canonical payloads are name-sorted and duplicate-free.
        let m: std::collections::BTreeMap<String, (u64, u64, bool, bool)> = rows
            .into_iter()
            .map(|(name, epochs, devices, verify, failed)| {
                (name, (epochs, devices, verify, failed))
            })
            .collect();
        m.into_iter()
            .map(|(name, (epochs, devices, verify, failed))| SessionInfo {
                name,
                epochs,
                devices,
                verify,
                failed,
            })
            .collect()
    })
}

fn response() -> impl Strategy<Value = Response> {
    prop_oneof![
        name().prop_map(Response::Error),
        (name(), any::<u64>(), any::<u64>()).prop_map(|(session, devices, links)| {
            Response::Loaded {
                session,
                devices,
                links,
            }
        }),
        (name(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(session, epochs, flows, total)| Response::Ingested {
                session,
                epochs,
                flows,
                total,
            }
        ),
        prop::collection::vec(outcome(), 0..4).prop_map(|o| Response::Reach {
            outcomes: o.into_iter().collect(),
        }),
        (
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec((name(), any::<u64>()), 0..4)
        )
            .prop_map(|(epochs, flows, devices)| Response::Blast {
                epochs,
                flows,
                devices: devices
                    .into_iter()
                    .collect::<std::collections::BTreeMap<_, _>>()
                    .into_iter()
                    .collect(),
            }),
        indexed_epochs().prop_map(|epochs| Response::Report { epochs }),
        (
            name(),
            prop::collection::vec(any::<u64>(), 12..=12usize),
            any::<bool>()
        )
            .prop_map(|(session, v, _)| {
                Response::Stats(ServiceStats {
                    session,
                    epochs: v[0],
                    retained: v[1],
                    retained_from: v[2],
                    devices: v[3],
                    links: v[4],
                    classes: v[5],
                    tuples: v[6],
                    flows: v[7],
                    mismatches: v[8],
                    cp_us: v[9],
                    dp_us: v[10],
                    total_us: v[11],
                })
            }),
        session_infos().prop_map(Response::Sessions),
        (name(), any::<u64>(), any::<u64>()).prop_map(|(session, epochs, bytes)| {
            Response::Checkpointed {
                session,
                epochs,
                bytes,
            }
        }),
    ]
}

/// Canonical series rows: `(name, scope)`-sorted and duplicate-free,
/// which is exactly how the registry's BTreeMap emits them.
fn series_rows() -> impl Strategy<Value = Vec<SeriesRow>> {
    prop::collection::vec((name(), prop::option::of(name()), any::<u64>()), 0..4).prop_map(|rows| {
        let m: std::collections::BTreeMap<(String, Option<String>), u64> = rows
            .into_iter()
            .map(|(name, session, value)| ((name, session), value))
            .collect();
        m.into_iter()
            .map(|((name, session), value)| SeriesRow {
                name,
                session,
                value,
            })
            .collect()
    })
}

/// Canonical bucket blocks: strictly-increasing bounds built from gap
/// accumulation, optionally closed by the overflow (`inf`) bucket.
fn buckets() -> impl Strategy<Value = Vec<(Option<u64>, u64)>> {
    (
        prop::collection::vec((1u64..10_000, any::<u64>()), 0..5),
        prop::option::of(any::<u64>()),
    )
        .prop_map(|(gaps, overflow)| {
            let mut bound = 0u64;
            let mut out: Vec<(Option<u64>, u64)> = gaps
                .into_iter()
                .map(|(gap, n)| {
                    bound += gap;
                    (Some(bound), n)
                })
                .collect();
            if let Some(n) = overflow {
                out.push((None, n));
            }
            out
        })
}

fn histogram_rows() -> impl Strategy<Value = Vec<HistogramRow>> {
    prop::collection::vec(
        (
            name(),
            prop::option::of(name()),
            prop::collection::vec(any::<u64>(), 5..=5usize),
            buckets(),
        ),
        0..3,
    )
    .prop_map(|rows| {
        let m: std::collections::BTreeMap<(String, Option<String>), (Vec<u64>, _)> = rows
            .into_iter()
            .map(|(name, session, v, b)| ((name, session), (v, b)))
            .collect();
        m.into_iter()
            .map(|((name, session), (v, buckets))| HistogramRow {
                name,
                session,
                count: v[0],
                sum_ns: v[1],
                p50_us: v[2],
                p95_us: v[3],
                p99_us: v[4],
                buckets,
            })
            .collect()
    })
}

fn metrics() -> impl Strategy<Value = MetricsReport> {
    (series_rows(), series_rows(), histogram_rows()).prop_map(|(counters, gauges, histograms)| {
        MetricsReport {
            counters,
            gauges,
            histograms,
        }
    })
}

fn spans() -> impl Strategy<Value = SpanReport> {
    prop::collection::vec(
        (
            name(),
            prop::collection::vec(any::<u64>(), 8..=8usize),
            prop::option::of(name()),
        ),
        0..4,
    )
    .prop_map(|rows| SpanReport {
        spans: rows
            .into_iter()
            .map(|(session, v, label)| SpanRow {
                session,
                epoch: v[0],
                parse_ns: v[1],
                cp_ns: v[2],
                dp_ns: v[3],
                publish_ns: v[4],
                total_ns: v[5],
                changes: v[6],
                flows: v[7],
                label,
            })
            .collect(),
    })
}

fn notify_event() -> impl Strategy<Value = NotifyEvent> {
    let outcomes = prop::collection::vec(outcome(), 0..4)
        .prop_map(|o| o.into_iter().collect::<std::collections::BTreeSet<_>>());
    prop_oneof![
        (any::<u64>(), outcomes.clone())
            .prop_map(|(epoch, outcomes)| NotifyEvent::Reach { epoch, outcomes }),
        (any::<u64>(), any::<u64>()).prop_map(|(epoch, flows)| NotifyEvent::Blast { epoch, flows }),
        (any::<u64>(), any::<bool>(), outcomes).prop_map(|(epoch, holds, outcomes)| {
            NotifyEvent::Invariant {
                epoch,
                holds,
                outcomes,
            }
        }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(epoch, dropped)| NotifyEvent::Resync { epoch, dropped }),
    ]
}

fn notify() -> impl Strategy<Value = Notify> {
    (
        any::<u64>(),
        name(),
        prop::collection::vec(notify_event(), 0..5),
    )
        .prop_map(|(subscription, session, events)| Notify {
            subscription,
            session,
            events,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(96, 0xD9A_1003))]

    #[test]
    fn queries_round_trip(q in query()) {
        let text = write_query(&q);
        let back = parse_query(&text).expect("generated query parses");
        prop_assert_eq!(&back, &q);
        prop_assert_eq!(write_query(&back), text);
    }

    #[test]
    fn responses_round_trip(r in response()) {
        let text = write_response(&r);
        let back = parse_response(&text).expect("generated response parses");
        prop_assert_eq!(&back, &r);
        prop_assert_eq!(write_response(&back), text);
    }

    #[test]
    fn metrics_round_trip(m in metrics()) {
        let text = write_metrics(&m);
        let back = parse_metrics(&text).expect("generated scrape parses");
        prop_assert_eq!(&back, &m);
        prop_assert_eq!(write_metrics(&back), text);
    }

    #[test]
    fn spans_round_trip(r in spans()) {
        let text = write_spans(&r);
        let back = parse_spans(&text).expect("generated span dump parses");
        prop_assert_eq!(&back, &r);
        prop_assert_eq!(write_spans(&back), text);
    }

    #[test]
    fn notifies_round_trip(n in notify()) {
        let text = write_notify(&n);
        let back = parse_notify(&text).expect("generated notify parses");
        prop_assert_eq!(&back, &n);
        prop_assert_eq!(write_notify(&back), text);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(64, 0xD9A_1004))]

    /// Any strict line-prefix of a serialized response is rejected with
    /// a typed error — a truncated reply can never be mistaken for a
    /// complete one — and parsing never panics.
    #[test]
    fn response_truncations_yield_typed_errors(r in response(), cut in 0u32..10_000) {
        let text = write_response(&r);
        let lines: Vec<&str> = text.lines().collect();
        let keep = (cut as usize) % lines.len().max(1);
        let truncated = lines[..keep].join("\n");
        match parse_response(&truncated) {
            Ok(_) => prop_assert!(false, "strict prefix must not parse"),
            Err(IoError::Truncated { .. }) | Err(IoError::BadHeader(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error kind: {e:?}"),
        }
    }

    /// Same for queries.
    #[test]
    fn query_truncations_yield_typed_errors(q in query(), cut in 0u32..10_000) {
        let text = write_query(&q);
        let lines: Vec<&str> = text.lines().collect();
        let keep = (cut as usize) % lines.len().max(1);
        let truncated = lines[..keep].join("\n");
        match parse_query(&truncated) {
            Ok(_) => prop_assert!(false, "strict prefix must not parse"),
            Err(IoError::Truncated { .. }) | Err(IoError::BadHeader(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error kind: {e:?}"),
        }
    }

    /// And for notify deliveries.
    #[test]
    fn notify_truncations_yield_typed_errors(n in notify(), cut in 0u32..10_000) {
        let text = write_notify(&n);
        let lines: Vec<&str> = text.lines().collect();
        let keep = (cut as usize) % lines.len().max(1);
        let truncated = lines[..keep].join("\n");
        match parse_notify(&truncated) {
            Ok(_) => prop_assert!(false, "strict prefix must not parse"),
            Err(IoError::Truncated { .. }) | Err(IoError::BadHeader(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error kind: {e:?}"),
        }
    }

    /// And for the telemetry artifacts.
    #[test]
    fn telemetry_truncations_yield_typed_errors(
        m in metrics(),
        s in spans(),
        cut in 0u32..10_000,
    ) {
        for text in [write_metrics(&m), write_spans(&s)] {
            let lines: Vec<&str> = text.lines().collect();
            let keep = (cut as usize) % lines.len().max(1);
            let truncated = lines[..keep].join("\n");
            for result in [
                parse_metrics(&truncated).map(|_| ()),
                parse_spans(&truncated).map(|_| ()),
            ] {
                match result {
                    Ok(_) => prop_assert!(false, "strict prefix must not parse"),
                    Err(IoError::Truncated { .. })
                    | Err(IoError::BadHeader(_))
                    | Err(IoError::WrongArtifact { .. }) => {}
                    Err(e) => prop_assert!(false, "unexpected error kind: {e:?}"),
                }
            }
        }
    }

    /// Mutating one character anywhere in a serialized query or response
    /// either still parses (the mutation hit something benign, e.g.
    /// inside a quoted string) or fails with a typed error — never a
    /// panic.
    #[test]
    fn char_mutations_never_panic(
        q in query(),
        r in response(),
        m in metrics(),
        s in spans(),
        n in notify(),
        pos in any::<u32>(),
        repl in 1u8..128,
    ) {
        for text in [
            write_query(&q),
            write_response(&r),
            write_metrics(&m),
            write_spans(&s),
            write_notify(&n),
        ] {
            let mut bytes = text.into_bytes();
            if bytes.is_empty() {
                continue;
            }
            let idx = (pos as usize) % bytes.len();
            bytes[idx] = repl;
            // Skip the (rare) mutations that break UTF-8 inside a
            // multi-byte character; everything else must parse or fail
            // with a typed error, never panic.
            if let Ok(mutated) = String::from_utf8(bytes) {
                let _ = parse_query(&mutated);
                let _ = parse_response(&mutated);
                let _ = parse_metrics(&mutated);
                let _ = parse_spans(&mutated);
                let _ = parse_notify(&mutated);
            }
        }
    }
}
