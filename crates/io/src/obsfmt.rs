//! The telemetry artifacts: `metrics` (a scrape of the serve-side
//! registry — counters, gauges and latency histograms) and `spans` (a
//! dump of the epoch-lifecycle span ring).
//!
//! Both are replies to query-v3 telemetry commands (`metrics` /
//! `trace`): the server answers those queries with one of these
//! artifacts instead of a `response`, which is why introducing them
//! required no `response` bump — old readers fail closed on the unknown
//! kind token (`BadHeader`) rather than misparse (see FORMAT.md
//! "Versioning").
//!
//! Like every other kind, the encodings are canonical: series rows are
//! sorted by `(name, scope)` with the process-global scope before any
//! session scope, histogram buckets are bound-ascending with the
//! overflow bucket last, and parsers reject violations rather than
//! resort. Span rows keep recording (ring) order — chronological, not
//! sorted. Round-trips are exact and malformed input surfaces as typed
//! [`IoError`]s, never panics.

use crate::codec::{parse_header, W};
use crate::error::{perr, IoError};
use crate::lex::{quote, Cursor, Lines};
use crate::Artifact;

/// One counter or gauge sample: a named series, process-global or
/// labeled with the owning session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesRow {
    /// Metric name.
    pub name: String,
    /// Owning session; `None` for process-global series.
    pub session: Option<String>,
    /// Current value. Counters are monotonic; gauges move both ways.
    pub value: u64,
}

/// One latency histogram sample: fixed microsecond buckets plus
/// precomputed summary statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramRow {
    /// Metric name.
    pub name: String,
    /// Owning session; `None` for process-global series.
    pub session: Option<String>,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations, nanoseconds.
    pub sum_ns: u64,
    /// Median upper-bound estimate, microseconds.
    pub p50_us: u64,
    /// 95th-percentile upper-bound estimate, microseconds.
    pub p95_us: u64,
    /// 99th-percentile upper-bound estimate, microseconds.
    pub p99_us: u64,
    /// Non-cumulative bucket counts as `(upper bound in us, count)`;
    /// `None` is the overflow (+inf) bucket, always last when present.
    /// Because a scrape races concurrent writers, `count` may exceed the
    /// bucket total (never the reverse): writers bump `count` before the
    /// bucket and readers sample buckets before `count`.
    pub buckets: Vec<(Option<u64>, u64)>,
}

/// A full scrape (the `metrics` artifact).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsReport {
    /// Monotonic counters, `(name, scope)`-sorted.
    pub counters: Vec<SeriesRow>,
    /// Gauges, `(name, scope)`-sorted.
    pub gauges: Vec<SeriesRow>,
    /// Latency histograms, `(name, scope)`-sorted.
    pub histograms: Vec<HistogramRow>,
}

/// One epoch's lifecycle timings (a row of the `spans` artifact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRow {
    /// Owning session.
    pub session: String,
    /// Absolute 0-based epoch index within the session.
    pub epoch: u64,
    /// Artifact parse time attributed to this epoch, nanoseconds.
    pub parse_ns: u64,
    /// Control-plane commit stage, nanoseconds.
    pub cp_ns: u64,
    /// Data-plane delta stage, nanoseconds.
    pub dp_ns: u64,
    /// View publish stage, nanoseconds.
    pub publish_ns: u64,
    /// End-to-end apply wall-clock, nanoseconds.
    pub total_ns: u64,
    /// Primitive changes in the epoch.
    pub changes: u64,
    /// Flow-level diffs the epoch reported.
    pub flows: u64,
    /// The trace epoch's scenario label, when it carried one (written as
    /// a trailing marker only when present, keeping unlabeled rows
    /// byte-stable).
    pub label: Option<String>,
}

/// A span-ring dump (the `spans` artifact), oldest span first.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanReport {
    /// Retained spans in recording order.
    pub spans: Vec<SpanRow>,
}

// ---- write ------------------------------------------------------------

fn scope_token(session: &Option<String>) -> String {
    match session {
        None => "global".into(),
        Some(s) => format!("session {}", quote(s)),
    }
}

/// Serializes a metrics scrape.
pub fn write_metrics(m: &MetricsReport) -> String {
    let mut w = W::new(Artifact::Metrics);
    for r in &m.counters {
        w.line(
            1,
            &format!(
                "counter {} {} {}",
                quote(&r.name),
                scope_token(&r.session),
                r.value
            ),
        );
    }
    for r in &m.gauges {
        w.line(
            1,
            &format!(
                "gauge {} {} {}",
                quote(&r.name),
                scope_token(&r.session),
                r.value
            ),
        );
    }
    for h in &m.histograms {
        w.line(
            1,
            &format!(
                "histogram {} {} count {} sum-ns {} p50-us {} p95-us {} p99-us {}",
                quote(&h.name),
                scope_token(&h.session),
                h.count,
                h.sum_ns,
                h.p50_us,
                h.p95_us,
                h.p99_us
            ),
        );
        for (bound, n) in &h.buckets {
            match bound {
                Some(us) => w.line(2, &format!("bucket {us} {n}")),
                None => w.line(2, &format!("bucket inf {n}")),
            }
        }
        w.line(2, "end-histogram");
    }
    w.finish()
}

/// Serializes a span-ring dump.
pub fn write_spans(r: &SpanReport) -> String {
    let mut w = W::new(Artifact::Spans);
    for s in &r.spans {
        let label = match &s.label {
            Some(l) => format!(" label {}", quote(l)),
            None => String::new(),
        };
        w.line(
            1,
            &format!(
                "span {} session {} parse-ns {} cp-ns {} dp-ns {} publish-ns {} \
                 total-ns {} changes {} flows {}{}",
                s.epoch,
                quote(&s.session),
                s.parse_ns,
                s.cp_ns,
                s.dp_ns,
                s.publish_ns,
                s.total_ns,
                s.changes,
                s.flows,
                label
            ),
        );
    }
    w.finish()
}

// ---- parse ------------------------------------------------------------

/// The canonical sort key of a series row: global scope first, then
/// session scopes name-ascending.
fn series_key(name: &str, session: &Option<String>) -> (String, Option<String>) {
    (name.to_string(), session.clone())
}

/// Parses `<qname> global|session [<qsession>]` and returns the pair.
fn parse_scope(c: &mut Cursor) -> Result<(String, Option<String>), IoError> {
    let name = c.string("metric name")?;
    let session = match c.word("global|session")?.as_str() {
        "global" => None,
        "session" => Some(c.string("session name")?),
        other => {
            return Err(perr(
                c.line,
                format!("expected global or session, found {other:?}"),
            ))
        }
    };
    Ok((name, session))
}

/// Enforces the canonical strictly-increasing row order.
fn check_sorted(
    c: &Cursor,
    prev: &mut Option<(String, Option<String>)>,
    key: (String, Option<String>),
    what: &str,
) -> Result<(), IoError> {
    if let Some(p) = prev {
        if *p >= key {
            return Err(perr(
                c.line,
                format!("{what} rows must be (name, scope)-sorted"),
            ));
        }
    }
    *prev = Some(key);
    Ok(())
}

/// Parses a metrics artifact (requires the `end` sentinel).
pub fn parse_metrics(text: &str) -> Result<MetricsReport, IoError> {
    let mut lines = parse_header(text, Artifact::Metrics)?;
    let mut m = MetricsReport::default();
    let (mut pc, mut pg, mut ph) = (None, None, None);
    while let Some(mut c) = lines.next_cursor()? {
        let kw = c.word("keyword")?;
        match kw.as_str() {
            "end" => {
                c.finish()?;
                if let Some(c) = lines.next_cursor()? {
                    return Err(perr(c.line, "content after end sentinel"));
                }
                return Ok(m);
            }
            "counter" | "gauge" => {
                let (name, session) = parse_scope(&mut c)?;
                let value = c.parse("value")?;
                let key = series_key(&name, &session);
                let row = SeriesRow {
                    name,
                    session,
                    value,
                };
                if kw == "counter" {
                    check_sorted(&c, &mut pc, key, "counter")?;
                    m.counters.push(row);
                } else {
                    check_sorted(&c, &mut pg, key, "gauge")?;
                    m.gauges.push(row);
                }
                c.finish()?;
            }
            "histogram" => {
                let (name, session) = parse_scope(&mut c)?;
                check_sorted(&c, &mut ph, series_key(&name, &session), "histogram")?;
                c.expect("count")?;
                let count = c.parse("observation count")?;
                c.expect("sum-ns")?;
                let sum_ns = c.parse("sum nanoseconds")?;
                c.expect("p50-us")?;
                let p50_us = c.parse("p50 microseconds")?;
                c.expect("p95-us")?;
                let p95_us = c.parse("p95 microseconds")?;
                c.expect("p99-us")?;
                let p99_us = c.parse("p99 microseconds")?;
                c.finish()?;
                let buckets = parse_buckets(&mut lines)?;
                m.histograms.push(HistogramRow {
                    name,
                    session,
                    count,
                    sum_ns,
                    p50_us,
                    p95_us,
                    p99_us,
                    buckets,
                });
            }
            other => return Err(perr(c.line, format!("unknown metrics keyword {other:?}"))),
        }
    }
    Err(IoError::Truncated {
        expected: "end sentinel of the metrics artifact".into(),
    })
}

/// Parses the bucket block of one histogram, through `end-histogram`.
fn parse_buckets(lines: &mut Lines<'_>) -> Result<Vec<(Option<u64>, u64)>, IoError> {
    let mut buckets: Vec<(Option<u64>, u64)> = Vec::new();
    loop {
        let Some(mut c) = lines.next_cursor()? else {
            return Err(IoError::Truncated {
                expected: "end-histogram terminator".into(),
            });
        };
        let kw = c.word("keyword")?;
        if kw == "end-histogram" {
            c.finish()?;
            return Ok(buckets);
        }
        if kw != "bucket" {
            return Err(perr(
                c.line,
                format!("expected bucket lines or end-histogram, found {kw:?}"),
            ));
        }
        let tok = c.word("bucket bound")?;
        let bound = if tok == "inf" {
            None
        } else {
            Some(
                tok.parse::<u64>()
                    .map_err(|_| perr(c.line, format!("bad bucket bound {tok:?}")))?,
            )
        };
        let n = c.parse("bucket count")?;
        let line = c.line;
        c.finish()?;
        match (buckets.last(), bound) {
            // The overflow bucket closes the block.
            (Some((None, _)), _) => {
                return Err(perr(line, "bucket after the overflow (inf) bucket"))
            }
            (Some((Some(prev), _)), Some(b)) if b <= *prev => {
                return Err(perr(line, "bucket bounds must be strictly increasing"))
            }
            _ => {}
        }
        buckets.push((bound, n));
    }
}

/// Parses a spans artifact (requires the `end` sentinel).
pub fn parse_spans(text: &str) -> Result<SpanReport, IoError> {
    let mut lines = parse_header(text, Artifact::Spans)?;
    let mut r = SpanReport::default();
    while let Some(mut c) = lines.next_cursor()? {
        let kw = c.word("keyword")?;
        match kw.as_str() {
            "end" => {
                c.finish()?;
                if let Some(c) = lines.next_cursor()? {
                    return Err(perr(c.line, "content after end sentinel"));
                }
                return Ok(r);
            }
            "span" => {
                let epoch = c.parse("epoch index")?;
                c.expect("session")?;
                let session = c.string("session name")?;
                c.expect("parse-ns")?;
                let parse_ns = c.parse("parse nanoseconds")?;
                c.expect("cp-ns")?;
                let cp_ns = c.parse("cp nanoseconds")?;
                c.expect("dp-ns")?;
                let dp_ns = c.parse("dp nanoseconds")?;
                c.expect("publish-ns")?;
                let publish_ns = c.parse("publish nanoseconds")?;
                c.expect("total-ns")?;
                let total_ns = c.parse("total nanoseconds")?;
                c.expect("changes")?;
                let changes = c.parse("change count")?;
                c.expect("flows")?;
                let flows = c.parse("flow count")?;
                // Optional trailing label, written only when present.
                let label = if c.at_end() {
                    None
                } else {
                    c.expect("label")?;
                    Some(c.string("epoch label")?)
                };
                c.finish()?;
                r.spans.push(SpanRow {
                    session,
                    epoch,
                    parse_ns,
                    cp_ns,
                    dp_ns,
                    publish_ns,
                    total_ns,
                    changes,
                    flows,
                    label,
                });
            }
            other => return Err(perr(c.line, format!("unknown spans keyword {other:?}"))),
        }
    }
    Err(IoError::Truncated {
        expected: "end sentinel of the spans artifact".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> MetricsReport {
        MetricsReport {
            counters: vec![
                SeriesRow {
                    name: "epochs_applied".into(),
                    session: Some("a".into()),
                    value: 12,
                },
                SeriesRow {
                    name: "tcp_connections".into(),
                    session: None,
                    value: 3,
                },
            ],
            gauges: vec![SeriesRow {
                name: "view_served".into(),
                session: Some("scenario a".into()),
                value: 7,
            }],
            histograms: vec![HistogramRow {
                name: "epoch_apply_us".into(),
                session: Some("a".into()),
                count: 5,
                sum_ns: 9_000_000,
                p50_us: 1_000,
                p95_us: 2_500,
                p99_us: 2_500,
                buckets: vec![(Some(1_000), 3), (Some(2_500), 2), (None, 0)],
            }],
        }
    }

    fn sample_spans() -> SpanReport {
        SpanReport {
            spans: vec![
                SpanRow {
                    session: "a".into(),
                    epoch: 0,
                    parse_ns: 100,
                    cp_ns: 2_000,
                    dp_ns: 900,
                    publish_ns: 40,
                    total_ns: 3_100,
                    changes: 2,
                    flows: 1,
                    label: Some("link-failure".into()),
                },
                SpanRow {
                    session: "scenario b".into(),
                    epoch: 7,
                    parse_ns: 0,
                    cp_ns: 1,
                    dp_ns: 2,
                    publish_ns: 0,
                    total_ns: 3,
                    changes: 0,
                    flows: 0,
                    label: None,
                },
            ],
        }
    }

    #[test]
    fn metrics_round_trip() {
        for m in [MetricsReport::default(), sample_metrics()] {
            let text = write_metrics(&m);
            let back = parse_metrics(&text).expect("parses");
            assert_eq!(back, m);
            assert_eq!(write_metrics(&back), text, "canonical");
        }
    }

    #[test]
    fn spans_round_trip() {
        for r in [SpanReport::default(), sample_spans()] {
            let text = write_spans(&r);
            let back = parse_spans(&text).expect("parses");
            assert_eq!(back, r);
            assert_eq!(write_spans(&back), text, "canonical");
        }
    }

    #[test]
    fn global_scope_sorts_before_sessions() {
        // The same name at global and session scope is legal and ordered
        // global-first (None < Some in the registry's BTreeMap key).
        let m = MetricsReport {
            counters: vec![
                SeriesRow {
                    name: "queries_answered".into(),
                    session: None,
                    value: 9,
                },
                SeriesRow {
                    name: "queries_answered".into(),
                    session: Some("a".into()),
                    value: 4,
                },
            ],
            ..Default::default()
        };
        let text = write_metrics(&m);
        assert_eq!(parse_metrics(&text).unwrap(), m);
    }

    #[test]
    fn malformed_metrics_are_typed_errors() {
        assert!(matches!(
            parse_metrics("dna-io v1 metrics\n"),
            Err(IoError::Truncated { .. })
        ));
        assert!(matches!(
            parse_metrics("dna-io v1 metrics\n  frobnicate\nend\n"),
            Err(IoError::Parse { line: 2, .. })
        ));
        // Unsorted series rows are rejected (the encoding is canonical).
        let unsorted =
            "dna-io v1 metrics\n  counter \"b\" global 1\n  counter \"a\" global 1\nend\n";
        assert!(matches!(
            parse_metrics(unsorted),
            Err(IoError::Parse { line: 3, .. })
        ));
        // A session row before the global row of the same name is unsorted.
        let scope_unsorted =
            "dna-io v1 metrics\n  counter \"a\" session \"s\" 1\n  counter \"a\" global 1\nend\n";
        assert!(matches!(
            parse_metrics(scope_unsorted),
            Err(IoError::Parse { line: 3, .. })
        ));
        // A histogram must be closed before the artifact ends.
        let open = "dna-io v1 metrics\n  histogram \"h\" global count 0 sum-ns 0 p50-us 0 p95-us 0 p99-us 0\nend\n";
        assert!(matches!(
            parse_metrics(open),
            Err(IoError::Parse { line: 3, .. })
        ));
        // Bucket bounds must increase; nothing follows the inf bucket.
        let bad_bounds = "dna-io v1 metrics\n  histogram \"h\" global count 0 sum-ns 0 p50-us 0 p95-us 0 p99-us 0\n    bucket 100 0\n    bucket 50 0\n    end-histogram\nend\n";
        assert!(matches!(
            parse_metrics(bad_bounds),
            Err(IoError::Parse { line: 4, .. })
        ));
        let after_inf = "dna-io v1 metrics\n  histogram \"h\" global count 0 sum-ns 0 p50-us 0 p95-us 0 p99-us 0\n    bucket inf 0\n    bucket 50 0\n    end-histogram\nend\n";
        assert!(matches!(
            parse_metrics(after_inf),
            Err(IoError::Parse { line: 4, .. })
        ));
        // Wrong version / kind fail closed.
        assert!(matches!(
            parse_metrics("dna-io v2 metrics\nend\n"),
            Err(IoError::UnsupportedVersion(2))
        ));
        assert!(matches!(
            parse_metrics("dna-io v1 spans\nend\n"),
            Err(IoError::WrongArtifact { .. })
        ));
    }

    #[test]
    fn malformed_spans_are_typed_errors() {
        assert!(matches!(
            parse_spans("dna-io v1 spans\n"),
            Err(IoError::Truncated { .. })
        ));
        assert!(matches!(
            parse_spans("dna-io v1 spans\n  frobnicate\nend\n"),
            Err(IoError::Parse { line: 2, .. })
        ));
        // Junk after the flows field must be the label marker or nothing.
        let junk = "dna-io v1 spans\n  span 0 session \"a\" parse-ns 0 cp-ns 0 dp-ns 0 publish-ns 0 total-ns 0 changes 0 flows 0 wedged\nend\n";
        assert!(matches!(
            parse_spans(junk),
            Err(IoError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_spans("dna-io v3 response\nend\n"),
            Err(IoError::WrongArtifact { .. })
        ));
    }
}
