//! The telemetry artifacts: `metrics` (a scrape of the serve-side
//! registry — counters, gauges and latency histograms), `spans` (a dump
//! of the epoch-lifecycle span ring), `history` (timestamped samples of
//! the registry's counters and gauges from the history ring) and
//! `health` (an ok/degraded/failed classification of the server and
//! each session).
//!
//! All four are replies to telemetry query commands (`metrics` /
//! `trace` at query v3, `history` / `health` at v4): the server answers
//! those queries with one of these artifacts instead of a `response`,
//! which is why introducing them required no `response` bump — old
//! readers fail closed on the unknown kind token (`BadHeader`) rather
//! than misparse (see FORMAT.md "Versioning").
//!
//! Like every other kind, the encodings are canonical: series rows are
//! sorted by `(name, scope)` with the process-global scope before any
//! session scope, histogram buckets are bound-ascending with the
//! overflow bucket last, and parsers reject violations rather than
//! resort. Span rows keep recording (ring) order — chronological, not
//! sorted. Round-trips are exact and malformed input surfaces as typed
//! [`IoError`]s, never panics.

use crate::codec::{parse_header, W};
use crate::error::{perr, IoError};
use crate::lex::{quote, Cursor, Lines};
use crate::Artifact;

/// One counter or gauge sample: a named series, process-global or
/// labeled with the owning session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesRow {
    /// Metric name.
    pub name: String,
    /// Owning session; `None` for process-global series.
    pub session: Option<String>,
    /// Current value. Counters are monotonic; gauges move both ways.
    pub value: u64,
}

/// One latency histogram sample: fixed microsecond buckets plus
/// precomputed summary statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramRow {
    /// Metric name.
    pub name: String,
    /// Owning session; `None` for process-global series.
    pub session: Option<String>,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations, nanoseconds.
    pub sum_ns: u64,
    /// Median upper-bound estimate, microseconds.
    pub p50_us: u64,
    /// 95th-percentile upper-bound estimate, microseconds.
    pub p95_us: u64,
    /// 99th-percentile upper-bound estimate, microseconds.
    pub p99_us: u64,
    /// Non-cumulative bucket counts as `(upper bound in us, count)`;
    /// `None` is the overflow (+inf) bucket, always last when present.
    /// Because a scrape races concurrent writers, `count` may exceed the
    /// bucket total (never the reverse): writers bump `count` before the
    /// bucket and readers sample buckets before `count`.
    pub buckets: Vec<(Option<u64>, u64)>,
}

/// A full scrape (the `metrics` artifact).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsReport {
    /// Monotonic counters, `(name, scope)`-sorted.
    pub counters: Vec<SeriesRow>,
    /// Gauges, `(name, scope)`-sorted.
    pub gauges: Vec<SeriesRow>,
    /// Latency histograms, `(name, scope)`-sorted.
    pub histograms: Vec<HistogramRow>,
}

/// One epoch's lifecycle timings (a row of the `spans` artifact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRow {
    /// Owning session.
    pub session: String,
    /// Absolute 0-based epoch index within the session.
    pub epoch: u64,
    /// Artifact parse time attributed to this epoch, nanoseconds.
    pub parse_ns: u64,
    /// Control-plane commit stage, nanoseconds.
    pub cp_ns: u64,
    /// Data-plane delta stage, nanoseconds.
    pub dp_ns: u64,
    /// View publish stage, nanoseconds.
    pub publish_ns: u64,
    /// End-to-end apply wall-clock, nanoseconds.
    pub total_ns: u64,
    /// Primitive changes in the epoch.
    pub changes: u64,
    /// Flow-level diffs the epoch reported.
    pub flows: u64,
    /// The trace epoch's scenario label, when it carried one (written as
    /// a trailing marker only when present, keeping unlabeled rows
    /// byte-stable).
    pub label: Option<String>,
}

/// A span-ring dump (the `spans` artifact), oldest span first.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanReport {
    /// Retained spans in recording order.
    pub spans: Vec<SpanRow>,
}

/// One timestamped registry sample of the `history` artifact.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistorySample {
    /// Milliseconds since server start (a monotone time base).
    pub t_ms: u64,
    /// Counters at sample time, `(name, scope)`-sorted.
    pub counters: Vec<SeriesRow>,
    /// Gauges at sample time, `(name, scope)`-sorted.
    pub gauges: Vec<SeriesRow>,
}

/// A history-ring dump (the `history` artifact), oldest sample first
/// with non-decreasing timestamps.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistoryReport {
    /// Retained samples in recording order.
    pub samples: Vec<HistorySample>,
}

/// The health classification of the server or one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// Operating normally.
    Ok,
    /// Alive but impaired (stale heartbeat, deep ingest queue, growing
    /// epoch lag).
    Degraded,
    /// The session's engine thread died (panic fence); it stays listed
    /// but answers every request with an error until reloaded.
    Failed,
}

impl HealthStatus {
    fn token(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Failed => "failed",
        }
    }
}

/// One session's row of the `health` artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionHealth {
    /// Session name.
    pub name: String,
    /// The classification.
    pub status: HealthStatus,
    /// A stable bare-token reason (`stale-heartbeat`, `queue-depth`,
    /// `epochs-behind`, `panic`), present exactly when the status is
    /// not [`HealthStatus::Ok`]. Tokens carry no numbers so a given
    /// registry state always renders byte-identically.
    pub reason: Option<String>,
}

/// A health classification (the `health` artifact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// The server-level rollup: degraded when any session is degraded;
    /// failed sessions alone do *not* degrade the server (the panic
    /// fence isolating a session is the design working, not failing).
    pub server: HealthStatus,
    /// Per-session rows, name-sorted.
    pub sessions: Vec<SessionHealth>,
}

impl Default for HealthReport {
    fn default() -> Self {
        HealthReport {
            server: HealthStatus::Ok,
            sessions: Vec::new(),
        }
    }
}

// ---- write ------------------------------------------------------------

fn scope_token(session: &Option<String>) -> String {
    match session {
        None => "global".into(),
        Some(s) => format!("session {}", quote(s)),
    }
}

/// Serializes a metrics scrape.
pub fn write_metrics(m: &MetricsReport) -> String {
    let mut w = W::new(Artifact::Metrics);
    write_series(&mut w, 1, &m.counters, &m.gauges);
    for h in &m.histograms {
        w.line(
            1,
            &format!(
                "histogram {} {} count {} sum-ns {} p50-us {} p95-us {} p99-us {}",
                quote(&h.name),
                scope_token(&h.session),
                h.count,
                h.sum_ns,
                h.p50_us,
                h.p95_us,
                h.p99_us
            ),
        );
        for (bound, n) in &h.buckets {
            match bound {
                Some(us) => w.line(2, &format!("bucket {us} {n}")),
                None => w.line(2, &format!("bucket inf {n}")),
            }
        }
        w.line(2, "end-histogram");
    }
    w.finish()
}

/// Serializes a span-ring dump.
pub fn write_spans(r: &SpanReport) -> String {
    let mut w = W::new(Artifact::Spans);
    for s in &r.spans {
        let label = match &s.label {
            Some(l) => format!(" label {}", quote(l)),
            None => String::new(),
        };
        w.line(
            1,
            &format!(
                "span {} session {} parse-ns {} cp-ns {} dp-ns {} publish-ns {} \
                 total-ns {} changes {} flows {}{}",
                s.epoch,
                quote(&s.session),
                s.parse_ns,
                s.cp_ns,
                s.dp_ns,
                s.publish_ns,
                s.total_ns,
                s.changes,
                s.flows,
                label
            ),
        );
    }
    w.finish()
}

/// Writes counter and gauge rows at `depth` (shared by the metrics and
/// history serializers).
fn write_series(w: &mut W, depth: usize, counters: &[SeriesRow], gauges: &[SeriesRow]) {
    for r in counters {
        w.line(
            depth,
            &format!(
                "counter {} {} {}",
                quote(&r.name),
                scope_token(&r.session),
                r.value
            ),
        );
    }
    for r in gauges {
        w.line(
            depth,
            &format!(
                "gauge {} {} {}",
                quote(&r.name),
                scope_token(&r.session),
                r.value
            ),
        );
    }
}

/// Serializes a history-ring dump.
pub fn write_history(h: &HistoryReport) -> String {
    let mut w = W::new(Artifact::History);
    for s in &h.samples {
        w.line(1, &format!("sample {}", s.t_ms));
        write_series(&mut w, 2, &s.counters, &s.gauges);
        w.line(2, "end-sample");
    }
    w.finish()
}

/// Serializes a health classification.
pub fn write_health(h: &HealthReport) -> String {
    let mut w = W::new(Artifact::Health);
    w.line(1, &format!("server {}", h.server.token()));
    for s in &h.sessions {
        let reason = match &s.reason {
            Some(r) => format!(" reason {r}"),
            None => String::new(),
        };
        w.line(
            1,
            &format!("session {} {}{}", quote(&s.name), s.status.token(), reason),
        );
    }
    w.finish()
}

// ---- parse ------------------------------------------------------------

/// The canonical sort key of a series row: global scope first, then
/// session scopes name-ascending.
fn series_key(name: &str, session: &Option<String>) -> (String, Option<String>) {
    (name.to_string(), session.clone())
}

/// Parses `<qname> global|session [<qsession>]` and returns the pair.
fn parse_scope(c: &mut Cursor) -> Result<(String, Option<String>), IoError> {
    let name = c.string("metric name")?;
    let session = match c.word("global|session")?.as_str() {
        "global" => None,
        "session" => Some(c.string("session name")?),
        other => {
            return Err(perr(
                c.line,
                format!("expected global or session, found {other:?}"),
            ))
        }
    };
    Ok((name, session))
}

/// Enforces the canonical strictly-increasing row order.
fn check_sorted(
    c: &Cursor,
    prev: &mut Option<(String, Option<String>)>,
    key: (String, Option<String>),
    what: &str,
) -> Result<(), IoError> {
    if let Some(p) = prev {
        if *p >= key {
            return Err(perr(
                c.line,
                format!("{what} rows must be (name, scope)-sorted"),
            ));
        }
    }
    *prev = Some(key);
    Ok(())
}

/// Parses a metrics artifact (requires the `end` sentinel).
pub fn parse_metrics(text: &str) -> Result<MetricsReport, IoError> {
    let mut lines = parse_header(text, Artifact::Metrics)?;
    let mut m = MetricsReport::default();
    let (mut pc, mut pg, mut ph) = (None, None, None);
    while let Some(mut c) = lines.next_cursor()? {
        let kw = c.word("keyword")?;
        match kw.as_str() {
            "end" => {
                c.finish()?;
                if let Some(c) = lines.next_cursor()? {
                    return Err(perr(c.line, "content after end sentinel"));
                }
                return Ok(m);
            }
            "counter" | "gauge" => {
                let (name, session) = parse_scope(&mut c)?;
                let value = c.parse("value")?;
                let key = series_key(&name, &session);
                let row = SeriesRow {
                    name,
                    session,
                    value,
                };
                if kw == "counter" {
                    check_sorted(&c, &mut pc, key, "counter")?;
                    m.counters.push(row);
                } else {
                    check_sorted(&c, &mut pg, key, "gauge")?;
                    m.gauges.push(row);
                }
                c.finish()?;
            }
            "histogram" => {
                let (name, session) = parse_scope(&mut c)?;
                check_sorted(&c, &mut ph, series_key(&name, &session), "histogram")?;
                c.expect("count")?;
                let count = c.parse("observation count")?;
                c.expect("sum-ns")?;
                let sum_ns = c.parse("sum nanoseconds")?;
                c.expect("p50-us")?;
                let p50_us = c.parse("p50 microseconds")?;
                c.expect("p95-us")?;
                let p95_us = c.parse("p95 microseconds")?;
                c.expect("p99-us")?;
                let p99_us = c.parse("p99 microseconds")?;
                c.finish()?;
                let buckets = parse_buckets(&mut lines)?;
                m.histograms.push(HistogramRow {
                    name,
                    session,
                    count,
                    sum_ns,
                    p50_us,
                    p95_us,
                    p99_us,
                    buckets,
                });
            }
            other => return Err(perr(c.line, format!("unknown metrics keyword {other:?}"))),
        }
    }
    Err(IoError::Truncated {
        expected: "end sentinel of the metrics artifact".into(),
    })
}

/// Parses the bucket block of one histogram, through `end-histogram`.
fn parse_buckets(lines: &mut Lines<'_>) -> Result<Vec<(Option<u64>, u64)>, IoError> {
    let mut buckets: Vec<(Option<u64>, u64)> = Vec::new();
    loop {
        let Some(mut c) = lines.next_cursor()? else {
            return Err(IoError::Truncated {
                expected: "end-histogram terminator".into(),
            });
        };
        let kw = c.word("keyword")?;
        if kw == "end-histogram" {
            c.finish()?;
            return Ok(buckets);
        }
        if kw != "bucket" {
            return Err(perr(
                c.line,
                format!("expected bucket lines or end-histogram, found {kw:?}"),
            ));
        }
        let tok = c.word("bucket bound")?;
        let bound = if tok == "inf" {
            None
        } else {
            Some(
                tok.parse::<u64>()
                    .map_err(|_| perr(c.line, format!("bad bucket bound {tok:?}")))?,
            )
        };
        let n = c.parse("bucket count")?;
        let line = c.line;
        c.finish()?;
        match (buckets.last(), bound) {
            // The overflow bucket closes the block.
            (Some((None, _)), _) => {
                return Err(perr(line, "bucket after the overflow (inf) bucket"))
            }
            (Some((Some(prev), _)), Some(b)) if b <= *prev => {
                return Err(perr(line, "bucket bounds must be strictly increasing"))
            }
            _ => {}
        }
        buckets.push((bound, n));
    }
}

/// Parses a spans artifact (requires the `end` sentinel).
pub fn parse_spans(text: &str) -> Result<SpanReport, IoError> {
    let mut lines = parse_header(text, Artifact::Spans)?;
    let mut r = SpanReport::default();
    while let Some(mut c) = lines.next_cursor()? {
        let kw = c.word("keyword")?;
        match kw.as_str() {
            "end" => {
                c.finish()?;
                if let Some(c) = lines.next_cursor()? {
                    return Err(perr(c.line, "content after end sentinel"));
                }
                return Ok(r);
            }
            "span" => {
                let epoch = c.parse("epoch index")?;
                c.expect("session")?;
                let session = c.string("session name")?;
                c.expect("parse-ns")?;
                let parse_ns = c.parse("parse nanoseconds")?;
                c.expect("cp-ns")?;
                let cp_ns = c.parse("cp nanoseconds")?;
                c.expect("dp-ns")?;
                let dp_ns = c.parse("dp nanoseconds")?;
                c.expect("publish-ns")?;
                let publish_ns = c.parse("publish nanoseconds")?;
                c.expect("total-ns")?;
                let total_ns = c.parse("total nanoseconds")?;
                c.expect("changes")?;
                let changes = c.parse("change count")?;
                c.expect("flows")?;
                let flows = c.parse("flow count")?;
                // Optional trailing label, written only when present.
                let label = if c.at_end() {
                    None
                } else {
                    c.expect("label")?;
                    Some(c.string("epoch label")?)
                };
                c.finish()?;
                r.spans.push(SpanRow {
                    session,
                    epoch,
                    parse_ns,
                    cp_ns,
                    dp_ns,
                    publish_ns,
                    total_ns,
                    changes,
                    flows,
                    label,
                });
            }
            other => return Err(perr(c.line, format!("unknown spans keyword {other:?}"))),
        }
    }
    Err(IoError::Truncated {
        expected: "end sentinel of the spans artifact".into(),
    })
}

/// Parses a history artifact (requires the `end` sentinel).
pub fn parse_history(text: &str) -> Result<HistoryReport, IoError> {
    let mut lines = parse_header(text, Artifact::History)?;
    let mut h = HistoryReport::default();
    while let Some(mut c) = lines.next_cursor()? {
        let kw = c.word("keyword")?;
        match kw.as_str() {
            "end" => {
                c.finish()?;
                if let Some(c) = lines.next_cursor()? {
                    return Err(perr(c.line, "content after end sentinel"));
                }
                return Ok(h);
            }
            "sample" => {
                let t_ms = c.parse("sample timestamp")?;
                let line = c.line;
                c.finish()?;
                if h.samples.last().is_some_and(|s| s.t_ms > t_ms) {
                    return Err(perr(line, "sample timestamps must be non-decreasing"));
                }
                h.samples.push(parse_sample(t_ms, &mut lines)?);
            }
            other => return Err(perr(c.line, format!("unknown history keyword {other:?}"))),
        }
    }
    Err(IoError::Truncated {
        expected: "end sentinel of the history artifact".into(),
    })
}

/// Parses the series block of one sample, through `end-sample`.
fn parse_sample(t_ms: u64, lines: &mut Lines<'_>) -> Result<HistorySample, IoError> {
    let mut s = HistorySample {
        t_ms,
        ..Default::default()
    };
    let (mut pc, mut pg) = (None, None);
    loop {
        let Some(mut c) = lines.next_cursor()? else {
            return Err(IoError::Truncated {
                expected: "end-sample terminator".into(),
            });
        };
        let kw = c.word("keyword")?;
        match kw.as_str() {
            "end-sample" => {
                c.finish()?;
                return Ok(s);
            }
            "counter" | "gauge" => {
                let (name, session) = parse_scope(&mut c)?;
                let value = c.parse("value")?;
                let key = series_key(&name, &session);
                let row = SeriesRow {
                    name,
                    session,
                    value,
                };
                if kw == "counter" {
                    check_sorted(&c, &mut pc, key, "counter")?;
                    s.counters.push(row);
                } else {
                    check_sorted(&c, &mut pg, key, "gauge")?;
                    s.gauges.push(row);
                }
                c.finish()?;
            }
            other => {
                return Err(perr(
                    c.line,
                    format!("expected series rows or end-sample, found {other:?}"),
                ))
            }
        }
    }
}

fn parse_status(c: &mut Cursor) -> Result<HealthStatus, IoError> {
    let w = c.word("ok|degraded|failed")?;
    match w.as_str() {
        "ok" => Ok(HealthStatus::Ok),
        "degraded" => Ok(HealthStatus::Degraded),
        "failed" => Ok(HealthStatus::Failed),
        other => Err(perr(
            c.line,
            format!("expected ok|degraded|failed, found {other:?}"),
        )),
    }
}

/// Parses a health artifact (requires the `end` sentinel).
pub fn parse_health(text: &str) -> Result<HealthReport, IoError> {
    let mut lines = parse_header(text, Artifact::Health)?;
    let Some(mut c) = lines.next_cursor()? else {
        return Err(IoError::Truncated {
            expected: "the server status line".into(),
        });
    };
    c.expect("server")?;
    let server = parse_status(&mut c)?;
    c.finish()?;
    let mut sessions: Vec<SessionHealth> = Vec::new();
    loop {
        let Some(mut c) = lines.next_cursor()? else {
            return Err(IoError::Truncated {
                expected: "end sentinel of the health artifact".into(),
            });
        };
        let kw = c.word("keyword")?;
        if kw == "end" {
            c.finish()?;
            if let Some(c) = lines.next_cursor()? {
                return Err(perr(c.line, "content after end sentinel"));
            }
            return Ok(HealthReport { server, sessions });
        }
        if kw != "session" {
            return Err(perr(
                c.line,
                format!("expected session lines or end, found {kw:?}"),
            ));
        }
        let name = c.string("session name")?;
        let status = parse_status(&mut c)?;
        let line = c.line;
        let reason = if c.at_end() {
            None
        } else {
            c.expect("reason")?;
            Some(c.word("reason token")?)
        };
        // The encoding is canonical: the reason marker appears exactly
        // when the status is not ok.
        match (status, &reason) {
            (HealthStatus::Ok, Some(_)) => {
                return Err(perr(line, "an ok session carries no reason"))
            }
            (HealthStatus::Degraded | HealthStatus::Failed, None) => {
                return Err(perr(line, "a degraded or failed session names its reason"))
            }
            _ => {}
        }
        if let Some(prev) = sessions.last() {
            if prev.name >= name {
                return Err(perr(line, "session lines must be name-sorted"));
            }
        }
        sessions.push(SessionHealth {
            name,
            status,
            reason,
        });
        c.finish()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> MetricsReport {
        MetricsReport {
            counters: vec![
                SeriesRow {
                    name: "epochs_applied".into(),
                    session: Some("a".into()),
                    value: 12,
                },
                SeriesRow {
                    name: "tcp_connections".into(),
                    session: None,
                    value: 3,
                },
            ],
            gauges: vec![SeriesRow {
                name: "view_served".into(),
                session: Some("scenario a".into()),
                value: 7,
            }],
            histograms: vec![HistogramRow {
                name: "epoch_apply_us".into(),
                session: Some("a".into()),
                count: 5,
                sum_ns: 9_000_000,
                p50_us: 1_000,
                p95_us: 2_500,
                p99_us: 2_500,
                buckets: vec![(Some(1_000), 3), (Some(2_500), 2), (None, 0)],
            }],
        }
    }

    fn sample_spans() -> SpanReport {
        SpanReport {
            spans: vec![
                SpanRow {
                    session: "a".into(),
                    epoch: 0,
                    parse_ns: 100,
                    cp_ns: 2_000,
                    dp_ns: 900,
                    publish_ns: 40,
                    total_ns: 3_100,
                    changes: 2,
                    flows: 1,
                    label: Some("link-failure".into()),
                },
                SpanRow {
                    session: "scenario b".into(),
                    epoch: 7,
                    parse_ns: 0,
                    cp_ns: 1,
                    dp_ns: 2,
                    publish_ns: 0,
                    total_ns: 3,
                    changes: 0,
                    flows: 0,
                    label: None,
                },
            ],
        }
    }

    #[test]
    fn metrics_round_trip() {
        for m in [MetricsReport::default(), sample_metrics()] {
            let text = write_metrics(&m);
            let back = parse_metrics(&text).expect("parses");
            assert_eq!(back, m);
            assert_eq!(write_metrics(&back), text, "canonical");
        }
    }

    #[test]
    fn spans_round_trip() {
        for r in [SpanReport::default(), sample_spans()] {
            let text = write_spans(&r);
            let back = parse_spans(&text).expect("parses");
            assert_eq!(back, r);
            assert_eq!(write_spans(&back), text, "canonical");
        }
    }

    #[test]
    fn global_scope_sorts_before_sessions() {
        // The same name at global and session scope is legal and ordered
        // global-first (None < Some in the registry's BTreeMap key).
        let m = MetricsReport {
            counters: vec![
                SeriesRow {
                    name: "queries_answered".into(),
                    session: None,
                    value: 9,
                },
                SeriesRow {
                    name: "queries_answered".into(),
                    session: Some("a".into()),
                    value: 4,
                },
            ],
            ..Default::default()
        };
        let text = write_metrics(&m);
        assert_eq!(parse_metrics(&text).unwrap(), m);
    }

    #[test]
    fn malformed_metrics_are_typed_errors() {
        assert!(matches!(
            parse_metrics("dna-io v1 metrics\n"),
            Err(IoError::Truncated { .. })
        ));
        assert!(matches!(
            parse_metrics("dna-io v1 metrics\n  frobnicate\nend\n"),
            Err(IoError::Parse { line: 2, .. })
        ));
        // Unsorted series rows are rejected (the encoding is canonical).
        let unsorted =
            "dna-io v1 metrics\n  counter \"b\" global 1\n  counter \"a\" global 1\nend\n";
        assert!(matches!(
            parse_metrics(unsorted),
            Err(IoError::Parse { line: 3, .. })
        ));
        // A session row before the global row of the same name is unsorted.
        let scope_unsorted =
            "dna-io v1 metrics\n  counter \"a\" session \"s\" 1\n  counter \"a\" global 1\nend\n";
        assert!(matches!(
            parse_metrics(scope_unsorted),
            Err(IoError::Parse { line: 3, .. })
        ));
        // A histogram must be closed before the artifact ends.
        let open = "dna-io v1 metrics\n  histogram \"h\" global count 0 sum-ns 0 p50-us 0 p95-us 0 p99-us 0\nend\n";
        assert!(matches!(
            parse_metrics(open),
            Err(IoError::Parse { line: 3, .. })
        ));
        // Bucket bounds must increase; nothing follows the inf bucket.
        let bad_bounds = "dna-io v1 metrics\n  histogram \"h\" global count 0 sum-ns 0 p50-us 0 p95-us 0 p99-us 0\n    bucket 100 0\n    bucket 50 0\n    end-histogram\nend\n";
        assert!(matches!(
            parse_metrics(bad_bounds),
            Err(IoError::Parse { line: 4, .. })
        ));
        let after_inf = "dna-io v1 metrics\n  histogram \"h\" global count 0 sum-ns 0 p50-us 0 p95-us 0 p99-us 0\n    bucket inf 0\n    bucket 50 0\n    end-histogram\nend\n";
        assert!(matches!(
            parse_metrics(after_inf),
            Err(IoError::Parse { line: 4, .. })
        ));
        // Wrong version / kind fail closed.
        assert!(matches!(
            parse_metrics("dna-io v2 metrics\nend\n"),
            Err(IoError::UnsupportedVersion(2))
        ));
        assert!(matches!(
            parse_metrics("dna-io v1 spans\nend\n"),
            Err(IoError::WrongArtifact { .. })
        ));
    }

    fn sample_history() -> HistoryReport {
        HistoryReport {
            samples: vec![
                HistorySample {
                    t_ms: 1_000,
                    counters: vec![SeriesRow {
                        name: "epochs_applied".into(),
                        session: Some("a".into()),
                        value: 4,
                    }],
                    gauges: vec![SeriesRow {
                        name: "ingest_queue_depth".into(),
                        session: Some("a".into()),
                        value: 1,
                    }],
                },
                HistorySample {
                    t_ms: 2_000,
                    counters: vec![
                        SeriesRow {
                            name: "epochs_applied".into(),
                            session: Some("a".into()),
                            value: 9,
                        },
                        SeriesRow {
                            name: "tcp_connections".into(),
                            session: None,
                            value: 2,
                        },
                    ],
                    gauges: vec![],
                },
            ],
        }
    }

    fn sample_health() -> HealthReport {
        HealthReport {
            server: HealthStatus::Degraded,
            sessions: vec![
                SessionHealth {
                    name: "a".into(),
                    status: HealthStatus::Ok,
                    reason: None,
                },
                SessionHealth {
                    name: "b".into(),
                    status: HealthStatus::Degraded,
                    reason: Some("queue-depth".into()),
                },
                SessionHealth {
                    name: "scenario c".into(),
                    status: HealthStatus::Failed,
                    reason: Some("panic".into()),
                },
            ],
        }
    }

    #[test]
    fn history_round_trip() {
        for h in [HistoryReport::default(), sample_history()] {
            let text = write_history(&h);
            let back = parse_history(&text).expect("parses");
            assert_eq!(back, h);
            assert_eq!(write_history(&back), text, "canonical");
        }
        // Equal timestamps are legal (two ticks in the same millisecond).
        let flat = HistoryReport {
            samples: vec![
                HistorySample {
                    t_ms: 5,
                    ..Default::default()
                },
                HistorySample {
                    t_ms: 5,
                    ..Default::default()
                },
            ],
        };
        assert_eq!(parse_history(&write_history(&flat)).unwrap(), flat);
    }

    #[test]
    fn health_round_trip() {
        for h in [HealthReport::default(), sample_health()] {
            let text = write_health(&h);
            let back = parse_health(&text).expect("parses");
            assert_eq!(back, h);
            assert_eq!(write_health(&back), text, "canonical");
        }
    }

    #[test]
    fn malformed_history_is_a_typed_error() {
        assert!(matches!(
            parse_history("dna-io v1 history\n"),
            Err(IoError::Truncated { .. })
        ));
        // An open sample must be closed before the artifact ends.
        assert!(matches!(
            parse_history("dna-io v1 history\n  sample 10\n"),
            Err(IoError::Truncated { .. })
        ));
        assert!(matches!(
            parse_history("dna-io v1 history\n  sample 10\nend\n"),
            Err(IoError::Parse { line: 3, .. })
        ));
        // Timestamps may not go backwards.
        let backwards =
            "dna-io v1 history\n  sample 10\n    end-sample\n  sample 5\n    end-sample\nend\n";
        assert!(matches!(
            parse_history(backwards),
            Err(IoError::Parse { line: 4, .. })
        ));
        // Series rows inside a sample must be sorted, like a metrics scrape.
        let unsorted = "dna-io v1 history\n  sample 10\n    counter \"b\" global 1\n    counter \"a\" global 1\n    end-sample\nend\n";
        assert!(matches!(
            parse_history(unsorted),
            Err(IoError::Parse { line: 4, .. })
        ));
        assert!(matches!(
            parse_history("dna-io v2 history\nend\n"),
            Err(IoError::UnsupportedVersion(2))
        ));
        assert!(matches!(
            parse_history("dna-io v1 metrics\nend\n"),
            Err(IoError::WrongArtifact { .. })
        ));
    }

    #[test]
    fn malformed_health_is_a_typed_error() {
        // The server line is mandatory and comes first.
        assert!(matches!(
            parse_health("dna-io v1 health\nend\n"),
            Err(IoError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_health("dna-io v1 health\n  server ok\n"),
            Err(IoError::Truncated { .. })
        ));
        assert!(matches!(
            parse_health("dna-io v1 health\n  server wedged\nend\n"),
            Err(IoError::Parse { line: 2, .. })
        ));
        // The reason marker appears exactly when the status is not ok.
        let ok_with_reason =
            "dna-io v1 health\n  server ok\n  session \"a\" ok reason panic\nend\n";
        assert!(matches!(
            parse_health(ok_with_reason),
            Err(IoError::Parse { line: 3, .. })
        ));
        let failed_without = "dna-io v1 health\n  server ok\n  session \"a\" failed\nend\n";
        assert!(matches!(
            parse_health(failed_without),
            Err(IoError::Parse { line: 3, .. })
        ));
        // Session rows must be name-sorted (the encoding is canonical).
        let unsorted =
            "dna-io v1 health\n  server ok\n  session \"b\" ok\n  session \"a\" ok\nend\n";
        assert!(matches!(
            parse_health(unsorted),
            Err(IoError::Parse { line: 4, .. })
        ));
        assert!(matches!(
            parse_health("dna-io v2 health\nend\n"),
            Err(IoError::UnsupportedVersion(2))
        ));
        assert!(matches!(
            parse_health("dna-io v1 spans\nend\n"),
            Err(IoError::WrongArtifact { .. })
        ));
    }

    #[test]
    fn malformed_spans_are_typed_errors() {
        assert!(matches!(
            parse_spans("dna-io v1 spans\n"),
            Err(IoError::Truncated { .. })
        ));
        assert!(matches!(
            parse_spans("dna-io v1 spans\n  frobnicate\nend\n"),
            Err(IoError::Parse { line: 2, .. })
        ));
        // Junk after the flows field must be the label marker or nothing.
        let junk = "dna-io v1 spans\n  span 0 session \"a\" parse-ns 0 cp-ns 0 dp-ns 0 publish-ns 0 total-ns 0 changes 0 flows 0 wedged\nend\n";
        assert!(matches!(
            parse_spans(junk),
            Err(IoError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_spans("dna-io v3 response\nend\n"),
            Err(IoError::WrongArtifact { .. })
        ));
    }
}
