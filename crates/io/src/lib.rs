//! # dna-io — versioned wire format of the differential-analysis toolkit
//!
//! A self-contained, line-oriented text format (no external dependencies;
//! the vendored `serde` stub stays a marker-only stub) carrying every
//! artifact the workflow exchanges:
//!
//! * **snapshot** — a complete [`net_model::Snapshot`]: devices, configs,
//!   links, environment ([`write_snapshot`] / [`parse_snapshot`]);
//! * **trace** — an ordered stream of change epochs recordable from any
//!   `topo-gen` scenario ([`Trace`], [`write_trace`] / [`parse_trace`]);
//! * **report** — canonicalized per-epoch behavior diffs, byte-stable for
//!   golden tests and cross-analyzer verification ([`Report`],
//!   [`write_report`] / [`parse_report`]);
//! * **query** / **response** — the request/reply protocol `dna-serve`
//!   speaks over pipes, sockets and TCP ([`Query`], [`Response`]);
//! * **checkpoint** — a persisted live-session state for durable restarts
//!   ([`Checkpoint`]);
//! * **metrics** / **spans** / **history** / **health** — telemetry
//!   scrapes of the serve-side observability plane ([`MetricsReport`],
//!   [`SpanReport`], [`HistoryReport`], [`HealthReport`]);
//! * **notify** — pushed (or polled) deltas of a standing query
//!   ([`Notify`], [`write_notify`] / [`parse_notify`]).
//!
//! Every artifact starts with a `dna-io v<N> <kind>` header — versions are
//! per kind, see [`artifact_version`] — and ends with an `end` sentinel;
//! see `crates/io/FORMAT.md` for the full grammar. The format guarantees
//! exact round-trips (`parse(write(x)) == x`), canonical bytes (equal
//! values serialize identically) and total safety on malformed input:
//! wrong versions, wrong artifact kinds, truncations and garbage all
//! surface as typed [`IoError`]s, never panics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod codec;
mod error;
mod lex;
mod notify;
mod obsfmt;
mod proto;
mod report;
mod snapshot;
mod tail;
mod trace;

use std::fmt;

pub use checkpoint::{
    parse_checkpoint, write_checkpoint, Checkpoint, CheckpointConfig, CheckpointSource,
    CheckpointTotals, ResumeCounters,
};
pub use codec::{artifact_version, FORMAT_VERSION};
pub use error::IoError;
pub use notify::{parse_notify, write_notify, Notify, NotifyEvent};
pub use obsfmt::{
    parse_health, parse_history, parse_metrics, parse_spans, write_health, write_history,
    write_metrics, write_spans, HealthReport, HealthStatus, HistogramRow, HistoryReport,
    HistorySample, MetricsReport, SeriesRow, SessionHealth, SpanReport, SpanRow,
};
pub use proto::{
    parse_query, parse_response, write_query, write_response, Query, QueryKind, Response,
    ServiceStats, SessionInfo, SubscriptionSpec,
};
pub use report::{parse_report, write_report, EpochDiff, Report};
pub use snapshot::{parse_snapshot, write_snapshot};
pub use tail::TraceTail;
pub use trace::{parse_trace, write_trace, Trace, TraceEpoch};

/// The artifact kinds the format carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Artifact {
    /// A complete network snapshot.
    Snapshot,
    /// A stream of change epochs.
    Trace,
    /// Per-epoch behavior diffs.
    Report,
    /// A service request (`dna query` → `dna serve`).
    Query,
    /// A service reply (`dna serve` → `dna query`).
    Response,
    /// A persisted live-session state: config, snapshot (inline or by
    /// reference), applied-epoch counters and retained history.
    Checkpoint,
    /// A telemetry scrape: counters, gauges and latency histograms from
    /// the serve-side metrics registry (`dna query metrics`).
    Metrics,
    /// Epoch-lifecycle spans: per-epoch stage timings from the span
    /// recorder ring (`dna query trace`).
    Spans,
    /// Metrics history: timestamped samples of the registry's counters
    /// and gauges from the serve-side history ring (`dna query history`).
    History,
    /// A health classification of the server and each session
    /// (`dna query health`).
    Health,
    /// Standing-query deltas: pushed to subscribed TCP clients on each
    /// changed commit, and the reply to the `subscribe` / `unsubscribe` /
    /// `notifications` commands (query v5).
    Notify,
}

/// Every artifact kind, in a stable order (used by [`sniff`]).
pub const ALL_ARTIFACTS: &[Artifact] = &[
    Artifact::Snapshot,
    Artifact::Trace,
    Artifact::Report,
    Artifact::Query,
    Artifact::Response,
    Artifact::Checkpoint,
    Artifact::Metrics,
    Artifact::Spans,
    Artifact::History,
    Artifact::Health,
    Artifact::Notify,
];

impl fmt::Display for Artifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Artifact::Snapshot => "snapshot",
            Artifact::Trace => "trace",
            Artifact::Report => "report",
            Artifact::Query => "query",
            Artifact::Response => "response",
            Artifact::Checkpoint => "checkpoint",
            Artifact::Metrics => "metrics",
            Artifact::Spans => "spans",
            Artifact::History => "history",
            Artifact::Health => "health",
            Artifact::Notify => "notify",
        };
        write!(f, "{s}")
    }
}

/// Reads the header of any artifact without parsing the body: returns the
/// declared `(version, kind)`. Useful for dispatch and error messages.
pub fn sniff(text: &str) -> Result<(u32, Artifact), IoError> {
    for &artifact in ALL_ARTIFACTS {
        match codec::parse_header(text, artifact) {
            Ok(_) => return Ok((artifact_version(artifact), artifact)),
            Err(IoError::WrongArtifact { .. }) => continue,
            Err(e) => return Err(e),
        }
    }
    unreachable!("parse_header matches one of the artifact kinds or errors")
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::acl::{Acl, AclEntry, Action, FlowMatch, PortRange};
    use net_model::route::{RmAction, RmMatch, RmSet, RouteMapClause};
    use net_model::{
        ip, pfx, BgpConfig, BgpNeighbor, Change, ChangeSet, Endpoint, ExternalRoute, IfaceConfig,
        Link, NextHop, RouteAttrs, RouteMap, Snapshot, StaticRoute,
    };

    /// A snapshot exercising every construct of the grammar.
    fn kitchen_sink() -> Snapshot {
        let mut snap = Snapshot::default();
        let mut r1 = net_model::DeviceConfig::default();
        let mut ic = IfaceConfig::new(ip("10.0.0.1"), 31).with_ospf(3);
        ic.acl_in = Some("blo ck".into());
        ic.ospf.as_mut().unwrap().passive = true;
        r1.interfaces.insert("eth \"0\"".into(), ic);
        r1.interfaces
            .insert("lan".into(), IfaceConfig::new(ip("192.168.0.1"), 24));
        r1.static_routes.push(StaticRoute {
            prefix: pfx("0.0.0.0/0"),
            next_hop: NextHop::Ip(ip("10.0.0.0")),
            admin_distance: 5,
        });
        r1.static_routes.push(StaticRoute {
            prefix: pfx("203.0.113.0/24"),
            next_hop: NextHop::Discard,
            admin_distance: 1,
        });
        r1.bgp = Some(BgpConfig {
            asn: 65001,
            router_id: 7,
            neighbors: vec![BgpNeighbor {
                peer: ip("10.0.0.0"),
                remote_as: 65002,
                import_policy: Some("imp".into()),
                export_policy: None,
            }],
            networks: vec![pfx("192.168.0.0/24")],
        });
        let mut rm = RouteMap::default();
        rm.add(RouteMapClause {
            seq: 10,
            matches: vec![
                RmMatch::Prefix {
                    covering: pfx("10.0.0.0/8"),
                    ge: 16,
                    le: 24,
                },
                RmMatch::Community(77),
                RmMatch::AsPathContains(65000),
            ],
            action: RmAction::Permit,
            sets: vec![
                RmSet::LocalPref(200),
                RmSet::Med(5),
                RmSet::AddCommunity(1),
                RmSet::DeleteCommunity(2),
                RmSet::AsPathPrepend {
                    asn: 65009,
                    count: 3,
                },
            ],
        });
        rm.add(RouteMapClause {
            seq: 20,
            matches: vec![],
            action: RmAction::Deny,
            sets: vec![],
        });
        r1.route_maps.insert("imp".into(), rm);
        let mut acl = Acl::default();
        acl.add(AclEntry {
            seq: 10,
            action: Action::Deny,
            matches: FlowMatch {
                src: Some(pfx("172.16.0.0/12")),
                dst: None,
                proto: Some(6),
                src_ports: None,
                dst_ports: Some(PortRange { lo: 80, hi: 443 }),
            },
        });
        acl.add(AclEntry {
            seq: u32::MAX,
            action: Action::Permit,
            matches: FlowMatch::any(),
        });
        r1.acls.insert("blo ck".into(), acl);
        snap.devices.insert("r1".into(), r1);
        let mut r2 = net_model::DeviceConfig::default();
        r2.interfaces
            .insert("eth0".into(), IfaceConfig::new(ip("10.0.0.0"), 31));
        snap.devices.insert("r\n2".into(), r2);
        snap.links.push(Link::new(
            Endpoint::new("r1", "eth \"0\""),
            Endpoint::new("r\n2", "eth0"),
        ));
        snap.environment.down_links.insert(snap.links[0].clone());
        snap.environment.down_devices.insert("r\n2".into());
        snap.environment.external_routes.push(ExternalRoute {
            device: "r1".into(),
            peer: ip("10.0.0.0"),
            attrs: RouteAttrs {
                prefix: pfx("8.8.0.0/16"),
                local_pref: 120,
                as_path: vec![3356, 15169],
                med: 10,
                origin: 2,
                communities: [1, 2, 3].into_iter().collect(),
            },
        });
        snap
    }

    fn every_change() -> ChangeSet {
        let link = Link::new(Endpoint::new("a", "e0"), Endpoint::new("b", "e1"));
        let mut rm = RouteMap::default();
        rm.add(RouteMapClause {
            seq: 5,
            matches: vec![RmMatch::Community(9)],
            action: RmAction::Permit,
            sets: vec![RmSet::LocalPref(50)],
        });
        ChangeSet::of(vec![
            Change::LinkDown(link.clone()),
            Change::LinkUp(link),
            Change::DeviceDown("d zero".into()),
            Change::DeviceUp("d zero".into()),
            Change::AclEntryAdd {
                device: "a".into(),
                acl: "g".into(),
                entry: AclEntry {
                    seq: 30,
                    action: Action::Permit,
                    matches: FlowMatch::dst(pfx("1.2.3.0/24")),
                },
            },
            Change::AclEntryRemove {
                device: "a".into(),
                acl: "g".into(),
                seq: 30,
            },
            Change::SetAclIn {
                device: "a".into(),
                iface: "e0".into(),
                acl: Some("g".into()),
            },
            Change::SetAclOut {
                device: "a".into(),
                iface: "e0".into(),
                acl: None,
            },
            Change::SetRouteMap {
                device: "a".into(),
                name: "rm".into(),
                map: rm,
            },
            Change::StaticRouteAdd {
                device: "a".into(),
                route: StaticRoute {
                    prefix: pfx("10.9.0.0/16"),
                    next_hop: NextHop::Discard,
                    admin_distance: 200,
                },
            },
            Change::StaticRouteRemove {
                device: "a".into(),
                prefix: pfx("10.9.0.0/16"),
                next_hop: NextHop::Ip(ip("1.1.1.1")),
            },
            Change::BgpNetworkAdd {
                device: "a".into(),
                prefix: pfx("10.0.0.0/8"),
            },
            Change::BgpNetworkRemove {
                device: "a".into(),
                prefix: pfx("10.0.0.0/8"),
            },
            Change::ExternalAnnounce(ExternalRoute {
                device: "a".into(),
                peer: ip("9.9.9.9"),
                attrs: RouteAttrs::originated(pfx("5.0.0.0/8")),
            }),
            Change::ExternalWithdraw {
                device: "a".into(),
                peer: ip("9.9.9.9"),
                prefix: pfx("5.0.0.0/8"),
            },
            Change::SetOspfCost {
                device: "a".into(),
                iface: "e0".into(),
                cost: 12,
            },
        ])
    }

    #[test]
    fn snapshot_round_trip_kitchen_sink() {
        let snap = kitchen_sink();
        let text = write_snapshot(&snap);
        let back = parse_snapshot(&text).expect("parses");
        assert_eq!(back, snap);
        // Serialization is canonical: a second trip is byte-identical.
        assert_eq!(write_snapshot(&back), text);
    }

    #[test]
    fn trace_round_trip_every_change_kind() {
        let trace = Trace {
            epochs: vec![
                TraceEpoch {
                    label: Some("every kind".into()),
                    changes: every_change(),
                },
                TraceEpoch {
                    label: None,
                    changes: ChangeSet::default(),
                },
            ],
        };
        let text = write_trace(&trace);
        let back = parse_trace(&text).expect("parses");
        assert_eq!(back, trace);
        assert_eq!(write_trace(&back), text);
    }

    #[test]
    fn empty_artifacts_round_trip() {
        let snap = Snapshot::default();
        assert_eq!(parse_snapshot(&write_snapshot(&snap)).unwrap(), snap);
        let trace = Trace::default();
        assert_eq!(parse_trace(&write_trace(&trace)).unwrap(), trace);
        let report = Report::default();
        assert_eq!(parse_report(&write_report(&report)).unwrap(), report);
    }

    #[test]
    fn sniff_identifies_artifacts() {
        assert_eq!(
            sniff(&write_snapshot(&Snapshot::default())).unwrap(),
            (1, Artifact::Snapshot)
        );
        assert_eq!(
            sniff(&write_trace(&Trace::default())).unwrap(),
            (1, Artifact::Trace)
        );
        assert_eq!(
            sniff(&write_report(&Report::default())).unwrap(),
            (1, Artifact::Report)
        );
        assert!(matches!(sniff("nonsense"), Err(IoError::BadHeader(_))));
    }

    #[test]
    fn wrong_version_and_artifact_are_typed_errors() {
        assert!(matches!(
            parse_snapshot("dna-io v2 snapshot\nend\n"),
            Err(IoError::UnsupportedVersion(2))
        ));
        assert!(matches!(
            parse_snapshot("dna-io v1 trace\nend\n"),
            Err(IoError::WrongArtifact {
                expected: Artifact::Snapshot,
                found: Artifact::Trace
            })
        ));
        assert!(matches!(
            parse_trace("dna-io v1 report\nend\n"),
            Err(IoError::WrongArtifact { .. })
        ));
        assert!(matches!(parse_snapshot(""), Err(IoError::BadHeader(_))));
        assert!(matches!(
            parse_snapshot("garbage here\n"),
            Err(IoError::BadHeader(_))
        ));
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let text = write_snapshot(&kitchen_sink());
        // Drop the end sentinel (and progressively more).
        let lines: Vec<&str> = text.lines().collect();
        for keep in [lines.len() - 1, lines.len() / 2, 1] {
            let truncated = lines[..keep].join("\n");
            let err = parse_snapshot(&truncated).expect_err("truncated must fail");
            assert!(
                matches!(err, IoError::Truncated { .. }),
                "keep={keep}: {err:?}"
            );
        }
    }

    #[test]
    fn unknown_keywords_and_context_violations_error() {
        assert!(matches!(
            parse_snapshot("dna-io v1 snapshot\nfrobnicate\nend\n"),
            Err(IoError::Parse { line: 2, .. })
        ));
        // iface outside a device section.
        assert!(matches!(
            parse_snapshot(
                "dna-io v1 snapshot\niface \"e\" 10.0.0.0/31 10.0.0.1 acl-in - acl-out - ospf -\nend\n"
            ),
            Err(IoError::Parse { line: 2, .. })
        ));
        // Change before the first epoch.
        assert!(matches!(
            parse_trace("dna-io v1 trace\ndevice-down \"x\"\nend\n"),
            Err(IoError::Parse { line: 2, .. })
        ));
        // Content after the end sentinel.
        assert!(matches!(
            parse_trace("dna-io v1 trace\nend\nepoch\n"),
            Err(IoError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n; a comment\ndna-io v1 trace\n\nepoch label \"x\"\n  ; inline note\n  device-down \"d\"\nend\n";
        let trace = parse_trace(text).unwrap();
        assert_eq!(trace.epochs.len(), 1);
        assert_eq!(trace.epochs[0].label.as_deref(), Some("x"));
        assert_eq!(trace.epochs[0].changes.len(), 1);
    }

    #[test]
    fn trace_helpers() {
        let t = Trace::from_changesets(vec![every_change()]);
        assert_eq!(t.epochs.len(), 1);
        assert_eq!(t.change_count(), 16);
        let t = Trace::from_labeled(vec![("x".into(), ChangeSet::default())]);
        assert_eq!(t.epochs[0].label.as_deref(), Some("x"));
    }
}
