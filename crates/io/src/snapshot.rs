//! The `snapshot` artifact: a complete [`net_model::Snapshot`] — device
//! configurations, physical links, failure state and external
//! announcements — with exact round-trip guarantees
//! (`parse_snapshot(write_snapshot(s)) == s`).

use crate::codec::{
    fmt_acl_entry, fmt_link, fmt_opt_str, fmt_route_attrs, parse_acl_entry, parse_header,
    parse_link, parse_route_attrs, write_route_map, RouteMapBuilder, W,
};
use crate::error::{perr, IoError};
use crate::lex::quote;
use crate::Artifact;
use net_model::{
    BgpConfig, BgpNeighbor, DeviceConfig, ExternalRoute, IfaceConfig, NextHop, OspfIfaceConfig,
    Snapshot, StaticRoute,
};

/// Serializes a snapshot in canonical form (devices, interfaces, route
/// maps and ACLs in name order; vectors in their stored order).
pub fn write_snapshot(snap: &Snapshot) -> String {
    let mut w = W::new(Artifact::Snapshot);
    for (name, dc) in &snap.devices {
        w.line(0, &format!("device {}", quote(name)));
        for (ifname, ic) in &dc.interfaces {
            let ospf = match &ic.ospf {
                None => "-".to_string(),
                Some(o) => format!(
                    "{} {} {}",
                    o.cost,
                    o.area,
                    if o.passive { "passive" } else { "active" }
                ),
            };
            w.line(
                1,
                &format!(
                    "iface {} {} {} acl-in {} acl-out {} ospf {ospf}",
                    quote(ifname),
                    ic.prefix,
                    ic.addr,
                    fmt_opt_str(&ic.acl_in),
                    fmt_opt_str(&ic.acl_out),
                ),
            );
        }
        for sr in &dc.static_routes {
            w.line(1, &format!("static {}", fmt_static_route(sr)));
        }
        if let Some(bgp) = &dc.bgp {
            w.line(1, &format!("bgp {} {}", bgp.asn, bgp.router_id));
            for n in &bgp.neighbors {
                w.line(
                    2,
                    &format!(
                        "neighbor {} as {} import {} export {}",
                        n.peer,
                        n.remote_as,
                        fmt_opt_str(&n.import_policy),
                        fmt_opt_str(&n.export_policy),
                    ),
                );
            }
            for p in &bgp.networks {
                w.line(2, &format!("network {p}"));
            }
        }
        for (name, map) in &dc.route_maps {
            w.line(1, &format!("route-map {}", quote(name)));
            write_route_map(&mut w, 2, map);
        }
        for (name, acl) in &dc.acls {
            w.line(1, &format!("acl {}", quote(name)));
            for e in &acl.entries {
                w.line(2, &format!("entry {}", fmt_acl_entry(e)));
            }
        }
    }
    for l in &snap.links {
        w.line(0, &format!("link {}", fmt_link(l)));
    }
    for l in &snap.environment.down_links {
        w.line(0, &format!("down-link {}", fmt_link(l)));
    }
    for d in &snap.environment.down_devices {
        w.line(0, &format!("down-device {}", quote(d)));
    }
    for e in &snap.environment.external_routes {
        w.line(
            0,
            &format!(
                "external {} {} {}",
                quote(&e.device),
                e.peer,
                fmt_route_attrs(&e.attrs)
            ),
        );
    }
    w.finish()
}

/// Parser state: the device section being filled in, plus the sub-section
/// (route map) still accumulating clause lines.
struct SnapParser {
    snap: Snapshot,
    cur_device: Option<(String, DeviceConfig)>,
    cur_rm: Option<(String, RouteMapBuilder)>,
    cur_acl: Option<String>,
}

impl SnapParser {
    fn flush_rm(&mut self) {
        if let Some((name, b)) = self.cur_rm.take() {
            // `cur_rm` is only ever set while `cur_device` is.
            let (_, dc) = self.cur_device.as_mut().expect("route map inside device");
            dc.route_maps.insert(name, b.finish());
        }
    }

    fn flush_device(&mut self) {
        self.flush_rm();
        self.cur_acl = None;
        if let Some((name, dc)) = self.cur_device.take() {
            self.snap.devices.insert(name, dc);
        }
    }

    fn device_mut(&mut self, line: usize, kw: &str) -> Result<&mut DeviceConfig, IoError> {
        self.cur_device
            .as_mut()
            .map(|(_, dc)| dc)
            .ok_or_else(|| perr(line, format!("{kw} outside a device section")))
    }
}

/// Parses a snapshot artifact. The input must end with the `end`
/// sentinel; a missing sentinel reports [`IoError::Truncated`].
pub fn parse_snapshot(text: &str) -> Result<Snapshot, IoError> {
    let mut lines = parse_header(text, Artifact::Snapshot)?;
    let mut p = SnapParser {
        snap: Snapshot::default(),
        cur_device: None,
        cur_rm: None,
        cur_acl: None,
    };
    while let Some(mut c) = lines.next_cursor()? {
        let kw = c.word("keyword")?;
        // Route-map clause lines bind tightest; anything else closes the map.
        if let Some((_, rm)) = p.cur_rm.as_mut() {
            if rm.try_line(&kw, &mut c)? {
                c.finish()?;
                continue;
            }
            p.flush_rm();
        }
        match kw.as_str() {
            "end" => {
                c.finish()?;
                p.flush_device();
                if let Some(c) = lines.next_cursor()? {
                    return Err(perr(c.line, "content after end sentinel"));
                }
                return Ok(p.snap);
            }
            "device" => {
                p.flush_device();
                let name = c.string("device name")?;
                if p.snap.devices.contains_key(&name) {
                    return Err(perr(c.line, format!("duplicate device {name:?}")));
                }
                p.cur_device = Some((name, DeviceConfig::default()));
            }
            "iface" => {
                let line = c.line;
                let name = c.string("interface name")?;
                let prefix = c.prefix("interface prefix")?;
                let addr = c.ip("interface address")?;
                c.expect("acl-in")?;
                let acl_in = c.opt_string("ACL name")?;
                c.expect("acl-out")?;
                let acl_out = c.opt_string("ACL name")?;
                c.expect("ospf")?;
                let ospf = {
                    let w = c.word("ospf config")?;
                    if w == "-" {
                        None
                    } else {
                        let cost = w
                            .parse()
                            .map_err(|_| perr(line, format!("bad ospf cost {w:?}")))?;
                        let area = c.parse("ospf area")?;
                        let mode = c.word("active|passive")?;
                        let passive = match mode.as_str() {
                            "active" => false,
                            "passive" => true,
                            other => {
                                return Err(perr(
                                    line,
                                    format!("expected active|passive, found {other:?}"),
                                ))
                            }
                        };
                        Some(OspfIfaceConfig {
                            cost,
                            area,
                            passive,
                        })
                    }
                };
                let dc = p.device_mut(line, "iface")?;
                if dc.interfaces.contains_key(&name) {
                    return Err(perr(line, format!("duplicate interface {name:?}")));
                }
                dc.interfaces.insert(
                    name,
                    IfaceConfig {
                        prefix,
                        addr,
                        acl_in,
                        acl_out,
                        ospf,
                    },
                );
            }
            "static" => {
                let line = c.line;
                let route = parse_static_route(&mut c)?;
                p.device_mut(line, "static")?.static_routes.push(route);
            }
            "bgp" => {
                let line = c.line;
                let asn = c.parse("AS number")?;
                let router_id = c.parse("router id")?;
                let dc = p.device_mut(line, "bgp")?;
                if dc.bgp.is_some() {
                    return Err(perr(line, "duplicate bgp section"));
                }
                dc.bgp = Some(BgpConfig {
                    asn,
                    router_id,
                    neighbors: Vec::new(),
                    networks: Vec::new(),
                });
            }
            "neighbor" => {
                let line = c.line;
                let peer = c.ip("peer address")?;
                c.expect("as")?;
                let remote_as = c.parse("remote AS")?;
                c.expect("import")?;
                let import_policy = c.opt_string("route-map name")?;
                c.expect("export")?;
                let export_policy = c.opt_string("route-map name")?;
                let dc = p.device_mut(line, "neighbor")?;
                let bgp = dc
                    .bgp
                    .as_mut()
                    .ok_or_else(|| perr(line, "neighbor outside a bgp section"))?;
                bgp.neighbors.push(BgpNeighbor {
                    peer,
                    remote_as,
                    import_policy,
                    export_policy,
                });
            }
            "network" => {
                let line = c.line;
                let prefix = c.prefix("network prefix")?;
                let dc = p.device_mut(line, "network")?;
                let bgp = dc
                    .bgp
                    .as_mut()
                    .ok_or_else(|| perr(line, "network outside a bgp section"))?;
                bgp.networks.push(prefix);
            }
            "route-map" => {
                let line = c.line;
                let name = c.string("route-map name")?;
                p.cur_acl = None;
                let dc = p.device_mut(line, "route-map")?;
                if dc.route_maps.contains_key(&name) {
                    return Err(perr(line, format!("duplicate route map {name:?}")));
                }
                p.cur_rm = Some((name, RouteMapBuilder::new()));
            }
            "acl" => {
                let line = c.line;
                let name = c.string("ACL name")?;
                let dc = p.device_mut(line, "acl")?;
                if dc.acls.contains_key(&name) {
                    return Err(perr(line, format!("duplicate ACL {name:?}")));
                }
                dc.acls.insert(name.clone(), Default::default());
                p.cur_acl = Some(name);
            }
            "entry" => {
                let line = c.line;
                let entry = parse_acl_entry(&mut c)?;
                let acl_name = p
                    .cur_acl
                    .clone()
                    .ok_or_else(|| perr(line, "entry outside an acl section"))?;
                let dc = p.device_mut(line, "entry")?;
                // Preserve file order exactly (serialization order is the
                // stored order, which `Acl::add` keeps seq-sorted anyway).
                dc.acls
                    .get_mut(&acl_name)
                    .expect("acl created when section opened")
                    .entries
                    .push(entry);
            }
            "link" => {
                p.flush_device();
                p.snap.links.push(parse_link(&mut c)?);
            }
            "down-link" => {
                p.flush_device();
                let l = parse_link(&mut c)?;
                p.snap.environment.down_links.insert(l);
            }
            "down-device" => {
                p.flush_device();
                let d = c.string("device name")?;
                p.snap.environment.down_devices.insert(d);
            }
            "external" => {
                p.flush_device();
                let device = c.string("device")?;
                let peer = c.ip("peer address")?;
                let attrs = parse_route_attrs(&mut c)?;
                p.snap.environment.external_routes.push(ExternalRoute {
                    device,
                    peer,
                    attrs,
                });
            }
            other => {
                return Err(perr(c.line, format!("unknown snapshot keyword {other:?}")));
            }
        }
        c.finish()?;
    }
    Err(IoError::Truncated {
        expected: "end sentinel of the snapshot artifact".into(),
    })
}

/// Parses `<prefix> (via <ip> | discard) ad <u8>`.
pub(crate) fn parse_static_route(c: &mut crate::lex::Cursor) -> Result<StaticRoute, IoError> {
    let prefix = c.prefix("static prefix")?;
    let next_hop = parse_next_hop(c)?;
    c.expect("ad")?;
    let admin_distance = c.parse("admin distance")?;
    Ok(StaticRoute {
        prefix,
        next_hop,
        admin_distance,
    })
}

/// Parses `via <ip>` or `discard`.
pub(crate) fn parse_next_hop(c: &mut crate::lex::Cursor) -> Result<NextHop, IoError> {
    let w = c.word("via|discard")?;
    match w.as_str() {
        "via" => Ok(NextHop::Ip(c.ip("next hop address")?)),
        "discard" => Ok(NextHop::Discard),
        other => Err(perr(
            c.line,
            format!("expected via|discard, found {other:?}"),
        )),
    }
}

/// Formats a static-route tail (shared with the trace artifact).
pub(crate) fn fmt_static_route(sr: &StaticRoute) -> String {
    format!(
        "{} {} ad {}",
        sr.prefix,
        fmt_next_hop(&sr.next_hop),
        sr.admin_distance
    )
}

/// Formats `via <ip>` / `discard` (shared with the trace artifact).
pub(crate) fn fmt_next_hop(nh: &NextHop) -> String {
    match nh {
        NextHop::Ip(ip) => format!("via {ip}"),
        NextHop::Discard => "discard".to_string(),
    }
}
