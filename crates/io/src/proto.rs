//! The `query` and `response` artifacts: the request/reply protocol the
//! `dna-serve` service speaks over a line-oriented transport (stdio pipe
//! or unix socket).
//!
//! A query targets one named session of a running server and asks one
//! question: concrete-flow or endpoint-pair reachability on the *current*
//! (incrementally maintained) state, the blast radius of the last N
//! ingested epochs, a stored diff-report range, session statistics, or
//! the session list. Query v5 adds the standing-query commands
//! (`subscribe`, `unsubscribe`, `notifications`), which are answered
//! with `notify` artifacts instead of responses. A response is either
//! `error "…"` or `ok <kind>` with a kind-specific payload. Both
//! artifacts carry the same envelope, round-trip and never-panic
//! guarantees as snapshots, traces and reports (see
//! `crates/io/FORMAT.md`).

use crate::codec::{parse_header, W};
use crate::error::{perr, IoError};
use crate::lex::{quote, Cursor};
use crate::report::{write_epoch, EpochDiff, EpochsParser, IndexRule};
use crate::Artifact;
use data_plane::Outcome;
use net_model::Flow;
use std::collections::BTreeSet;

/// One service request: a question against one named session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Target session; `None` addresses the server's default session.
    pub session: Option<String>,
    /// The question.
    pub kind: QueryKind,
}

/// The questions the service answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryKind {
    /// Outcomes of a concrete flow injected at `src`, on current state.
    Reach {
        /// Source device.
        src: String,
        /// The packet to trace.
        flow: Flow,
    },
    /// Reachability between an endpoint pair: the server resolves `dst`
    /// to its canonical address (lowest-named interface) and traces a
    /// representative TCP flow from `src`.
    ReachPair {
        /// Source device.
        src: String,
        /// Destination device.
        dst: String,
    },
    /// Per-device flow-impact counts over the last `last` ingested epochs.
    Blast {
        /// Window size in epochs (clamped to the retained history).
        last: usize,
    },
    /// Stored behavior-diff reports for epochs `from..to` (half-open,
    /// absolute indices; clamped to the retained history).
    Report {
        /// First epoch index requested.
        from: usize,
        /// One past the last epoch index requested.
        to: usize,
    },
    /// Ingest counters, engine state sizes and cumulative stage timings.
    Stats,
    /// The server's session list.
    Sessions,
    /// Persist the session's state now: write an on-demand checkpoint
    /// (requires the server to run with a checkpoint directory).
    Checkpoint,
    /// Scrape the server's metrics registry (query v3). This is a
    /// server-level question — answered for every session at once; a
    /// `session` line narrows the scrape to that session's series. The
    /// reply is a `metrics` artifact, not a `response`.
    Metrics,
    /// Dump the epoch-lifecycle span ring (query v3), optionally
    /// truncated to the freshest `last` spans. Server-level like
    /// [`QueryKind::Metrics`]; a `session` line filters spans. The reply
    /// is a `spans` artifact.
    TraceSpans {
        /// Keep only the freshest `last` spans (`None` = the whole ring).
        last: Option<usize>,
    },
    /// Classify the server and every session as ok/degraded/failed
    /// (query v4). Server-level like [`QueryKind::Metrics`]; the reply
    /// is a `health` artifact.
    Health,
    /// Dump the metrics history ring (query v4), optionally truncated
    /// to the freshest `last` samples. Server-level like
    /// [`QueryKind::Metrics`]; a `session` line filters each sample's
    /// series. The reply is a `history` artifact.
    History {
        /// Keep only the freshest `last` samples (`None` = whole ring).
        last: Option<usize>,
    },
    /// Register a standing query on the session (query v5). The reply is
    /// a `notify` artifact echoing the assigned subscription id (zero
    /// events); subsequent commits that change the answer emit events.
    Subscribe(SubscriptionSpec),
    /// Remove a standing query by id (query v5). The reply is a `notify`
    /// artifact echoing the id (zero events).
    Unsubscribe {
        /// The subscription to remove.
        id: u64,
    },
    /// Drain the pending events of a subscription (query v5). The reply
    /// is a `notify` artifact with every event since the last drain —
    /// polled on any transport, its bytes match what a pushed TCP stream
    /// delivered for the same commits.
    Notifications {
        /// The subscription to drain.
        id: u64,
    },
}

/// The question a standing query keeps answering (query v5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscriptionSpec {
    /// Outcomes of a concrete flow injected at `src` (the standing form
    /// of [`QueryKind::Reach`]).
    Reach {
        /// Source device.
        src: String,
        /// The packet to trace.
        flow: Flow,
    },
    /// Endpoint-pair reachability: the server resolves `dst` to its
    /// canonical address at subscribe time (the standing form of
    /// [`QueryKind::ReachPair`]).
    ReachPair {
        /// Source device.
        src: String,
        /// Destination device.
        dst: String,
    },
    /// Blast radius of one device: an event whenever a commit produces
    /// flow diffs sourced at it.
    Blast {
        /// The device whose blast radius is watched.
        device: String,
    },
    /// Invariant: `src` must never reach `dst`. Violated while the
    /// traced representative flow is delivered at `dst`.
    NeverReach {
        /// Source device.
        src: String,
        /// Forbidden destination device.
        dst: String,
    },
    /// Invariant: the flow injected at `src` must never blackhole.
    NoBlackhole {
        /// Source device.
        src: String,
        /// The packet that must not blackhole.
        flow: Flow,
    },
}

impl QueryKind {
    /// The command's stable wire keyword (used to label query spans).
    pub fn name(&self) -> &'static str {
        match self {
            QueryKind::Reach { .. } => "reach",
            QueryKind::ReachPair { .. } => "reach-pair",
            QueryKind::Blast { .. } => "blast",
            QueryKind::Report { .. } => "report",
            QueryKind::Stats => "stats",
            QueryKind::Sessions => "sessions",
            QueryKind::Checkpoint => "checkpoint",
            QueryKind::Metrics => "metrics",
            QueryKind::TraceSpans { .. } => "trace",
            QueryKind::Health => "health",
            QueryKind::History { .. } => "history",
            QueryKind::Subscribe(_) => "subscribe",
            QueryKind::Unsubscribe { .. } => "unsubscribe",
            QueryKind::Notifications { .. } => "notifications",
        }
    }
}

/// Session statistics (the `ok stats` payload). Counter fields are exact
/// and deterministic for a given snapshot + trace; the `*_us` cumulative
/// stage timings are wall-clock and vary run to run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Session name.
    pub session: String,
    /// Epochs ingested since the session opened.
    pub epochs: u64,
    /// Epochs currently retained in history.
    pub retained: u64,
    /// Absolute index of the oldest retained epoch.
    pub retained_from: u64,
    /// Devices in the current snapshot.
    pub devices: u64,
    /// Links in the current snapshot.
    pub links: u64,
    /// Live packet equivalence classes.
    pub classes: u64,
    /// Tuples held by the differential control-plane engine.
    pub tuples: u64,
    /// Cumulative flow diffs across all ingested epochs.
    pub flows: u64,
    /// Epochs on which the verification shadow disagreed (0 without
    /// `--verify`).
    pub mismatches: u64,
    /// Cumulative control-plane stage time, microseconds.
    pub cp_us: u64,
    /// Cumulative data-plane stage time, microseconds.
    pub dp_us: u64,
    /// Cumulative end-to-end apply time, microseconds.
    pub total_us: u64,
}

/// One row of the `ok sessions` payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionInfo {
    /// Session name.
    pub name: String,
    /// Epochs ingested.
    pub epochs: u64,
    /// Devices in the session's current snapshot.
    pub devices: u64,
    /// Whether a from-scratch verification shadow is attached.
    pub verify: bool,
    /// Whether the session's engine thread died (panicked); a failed
    /// session stays listed but answers every request with an error.
    /// Encoded as a trailing `failed` marker, written only when set
    /// (response v3).
    pub failed: bool,
}

/// One service reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request failed (unknown session, bad range, parse error, ...).
    Error(String),
    /// A snapshot artifact (re)loaded a session.
    Loaded {
        /// Session that was (re)created.
        session: String,
        /// Devices in the loaded snapshot.
        devices: u64,
        /// Links in the loaded snapshot.
        links: u64,
    },
    /// A trace artifact was ingested incrementally.
    Ingested {
        /// Session that absorbed the epochs.
        session: String,
        /// Epochs applied from this artifact.
        epochs: u64,
        /// Flow diffs those epochs produced.
        flows: u64,
        /// Session epoch count after ingest.
        total: u64,
    },
    /// Answer to [`QueryKind::Reach`] / [`QueryKind::ReachPair`].
    Reach {
        /// Outcome set of the traced flow.
        outcomes: BTreeSet<Outcome>,
    },
    /// Answer to [`QueryKind::Blast`].
    Blast {
        /// Epochs actually covered (window clamped to history).
        epochs: u64,
        /// Total flow diffs in the window.
        flows: u64,
        /// Per-source-device flow-diff counts, name-sorted.
        devices: Vec<(String, u64)>,
    },
    /// Answer to [`QueryKind::Report`]: retained epochs of the range,
    /// under absolute indices.
    Report {
        /// `(absolute index, diff)` pairs, index-ascending.
        epochs: Vec<(usize, EpochDiff)>,
    },
    /// Answer to [`QueryKind::Stats`].
    Stats(ServiceStats),
    /// Answer to [`QueryKind::Sessions`], name-sorted.
    Sessions(Vec<SessionInfo>),
    /// Answer to [`QueryKind::Checkpoint`]: the session's state was
    /// durably written.
    Checkpointed {
        /// Session that was checkpointed.
        session: String,
        /// Epochs applied at the checkpoint.
        epochs: u64,
        /// Canonical size of the written checkpoint artifact.
        bytes: u64,
    },
}

// ---- write ------------------------------------------------------------

/// Serializes a query.
pub fn write_query(q: &Query) -> String {
    let mut w = W::new(Artifact::Query);
    if let Some(s) = &q.session {
        w.line(1, &format!("session {}", quote(s)));
    }
    let line = match &q.kind {
        QueryKind::Reach { src, flow } => format!(
            "reach {} {} {} {} {} {}",
            quote(src),
            flow.src,
            flow.dst,
            flow.proto,
            flow.src_port,
            flow.dst_port
        ),
        QueryKind::ReachPair { src, dst } => {
            format!("reach-pair {} {}", quote(src), quote(dst))
        }
        QueryKind::Blast { last } => format!("blast {last}"),
        QueryKind::Report { from, to } => format!("report {from} {to}"),
        QueryKind::Stats => "stats".into(),
        QueryKind::Sessions => "sessions".into(),
        QueryKind::Checkpoint => "checkpoint".into(),
        QueryKind::Metrics => "metrics".into(),
        QueryKind::TraceSpans { last: None } => "trace".into(),
        QueryKind::TraceSpans { last: Some(n) } => format!("trace {n}"),
        QueryKind::Health => "health".into(),
        QueryKind::History { last: None } => "history".into(),
        QueryKind::History { last: Some(n) } => format!("history {n}"),
        QueryKind::Subscribe(spec) => match spec {
            SubscriptionSpec::Reach { src, flow } => format!(
                "subscribe reach {} {} {} {} {} {}",
                quote(src),
                flow.src,
                flow.dst,
                flow.proto,
                flow.src_port,
                flow.dst_port
            ),
            SubscriptionSpec::ReachPair { src, dst } => {
                format!("subscribe reach-pair {} {}", quote(src), quote(dst))
            }
            SubscriptionSpec::Blast { device } => format!("subscribe blast {}", quote(device)),
            SubscriptionSpec::NeverReach { src, dst } => {
                format!(
                    "subscribe invariant never-reach {} {}",
                    quote(src),
                    quote(dst)
                )
            }
            SubscriptionSpec::NoBlackhole { src, flow } => format!(
                "subscribe invariant no-blackhole {} {} {} {} {} {}",
                quote(src),
                flow.src,
                flow.dst,
                flow.proto,
                flow.src_port,
                flow.dst_port
            ),
        },
        QueryKind::Unsubscribe { id } => format!("unsubscribe {id}"),
        QueryKind::Notifications { id } => format!("notifications {id}"),
    };
    w.line(1, &line);
    w.finish()
}

/// Serializes a response.
pub fn write_response(r: &Response) -> String {
    use crate::codec::fmt_outcomes;
    let mut w = W::new(Artifact::Response);
    match r {
        Response::Error(msg) => w.line(0, &format!("error {}", quote(msg))),
        Response::Loaded {
            session,
            devices,
            links,
        } => {
            w.line(0, "ok loaded");
            w.line(
                1,
                &format!("session {} devices {devices} links {links}", quote(session)),
            );
        }
        Response::Ingested {
            session,
            epochs,
            flows,
            total,
        } => {
            w.line(0, "ok ingested");
            w.line(
                1,
                &format!(
                    "session {} epochs {epochs} flows {flows} total {total}",
                    quote(session)
                ),
            );
        }
        Response::Reach { outcomes } => {
            w.line(0, "ok reach");
            w.line(1, &format!("outcomes {}", fmt_outcomes(outcomes.iter())));
        }
        Response::Blast {
            epochs,
            flows,
            devices,
        } => {
            w.line(0, "ok blast");
            w.line(1, &format!("window {epochs} flows {flows}"));
            for (d, n) in devices {
                w.line(1, &format!("device {} flows {n}", quote(d)));
            }
        }
        Response::Report { epochs } => {
            w.line(0, "ok report");
            for (i, ep) in epochs {
                write_epoch(&mut w, *i, ep);
            }
        }
        Response::Stats(s) => {
            w.line(0, "ok stats");
            w.line(
                1,
                &format!(
                    "session {} epochs {} retained {} from {}",
                    quote(&s.session),
                    s.epochs,
                    s.retained,
                    s.retained_from
                ),
            );
            w.line(
                1,
                &format!("topology devices {} links {}", s.devices, s.links),
            );
            w.line(
                1,
                &format!("state classes {} tuples {}", s.classes, s.tuples),
            );
            w.line(
                1,
                &format!("work flows {} mismatches {}", s.flows, s.mismatches),
            );
            w.line(
                1,
                &format!(
                    "time cp-us {} dp-us {} total-us {}",
                    s.cp_us, s.dp_us, s.total_us
                ),
            );
        }
        Response::Sessions(list) => {
            w.line(0, "ok sessions");
            for s in list {
                w.line(
                    1,
                    &format!(
                        "session {} epochs {} devices {} verify {}{}",
                        quote(&s.name),
                        s.epochs,
                        s.devices,
                        if s.verify { "on" } else { "off" },
                        if s.failed { " failed" } else { "" }
                    ),
                );
            }
        }
        Response::Checkpointed {
            session,
            epochs,
            bytes,
        } => {
            w.line(0, "ok checkpointed");
            w.line(
                1,
                &format!("session {} epochs {epochs} bytes {bytes}", quote(session)),
            );
        }
    }
    w.finish()
}

// ---- parse ------------------------------------------------------------

/// Parses a query artifact (requires the `end` sentinel).
pub fn parse_query(text: &str) -> Result<Query, IoError> {
    let mut lines = parse_header(text, Artifact::Query)?;
    let mut session: Option<String> = None;
    let mut kind: Option<QueryKind> = None;
    while let Some(mut c) = lines.next_cursor()? {
        let kw = c.word("keyword")?;
        match kw.as_str() {
            "end" => {
                c.finish()?;
                if let Some(c) = lines.next_cursor()? {
                    return Err(perr(c.line, "content after end sentinel"));
                }
                return match kind {
                    Some(kind) => Ok(Query { session, kind }),
                    None => Err(IoError::Truncated {
                        expected: "a query command before the end sentinel".into(),
                    }),
                };
            }
            "session" => {
                if session.is_some() {
                    return Err(perr(c.line, "duplicate session line"));
                }
                if kind.is_some() {
                    return Err(perr(c.line, "session line must precede the command"));
                }
                session = Some(c.string("session name")?);
            }
            cmd => {
                if kind.is_some() {
                    return Err(perr(c.line, "a query carries exactly one command"));
                }
                kind = Some(parse_query_kind(cmd, &mut c)?);
            }
        }
        c.finish()?;
    }
    Err(IoError::Truncated {
        expected: "end sentinel of the query artifact".into(),
    })
}

fn parse_query_kind(cmd: &str, c: &mut Cursor) -> Result<QueryKind, IoError> {
    match cmd {
        "reach" => Ok(QueryKind::Reach {
            src: c.string("source device")?,
            flow: parse_flow(c)?,
        }),
        "reach-pair" => Ok(QueryKind::ReachPair {
            src: c.string("source device")?,
            dst: c.string("destination device")?,
        }),
        "blast" => Ok(QueryKind::Blast {
            last: c.parse("window size")?,
        }),
        "report" => Ok(QueryKind::Report {
            from: c.parse("range start")?,
            to: c.parse("range end")?,
        }),
        "stats" => Ok(QueryKind::Stats),
        "sessions" => Ok(QueryKind::Sessions),
        "checkpoint" => Ok(QueryKind::Checkpoint),
        "metrics" => Ok(QueryKind::Metrics),
        "trace" => Ok(QueryKind::TraceSpans {
            last: if c.at_end() {
                None
            } else {
                Some(c.parse("span count")?)
            },
        }),
        "health" => Ok(QueryKind::Health),
        "history" => Ok(QueryKind::History {
            last: if c.at_end() {
                None
            } else {
                Some(c.parse("sample count")?)
            },
        }),
        "subscribe" => {
            let what = c.word("subscription kind")?;
            let spec = match what.as_str() {
                "reach" => SubscriptionSpec::Reach {
                    src: c.string("source device")?,
                    flow: parse_flow(c)?,
                },
                "reach-pair" => SubscriptionSpec::ReachPair {
                    src: c.string("source device")?,
                    dst: c.string("destination device")?,
                },
                "blast" => SubscriptionSpec::Blast {
                    device: c.string("device")?,
                },
                "invariant" => {
                    let which = c.word("invariant kind")?;
                    match which.as_str() {
                        "never-reach" => SubscriptionSpec::NeverReach {
                            src: c.string("source device")?,
                            dst: c.string("destination device")?,
                        },
                        "no-blackhole" => SubscriptionSpec::NoBlackhole {
                            src: c.string("source device")?,
                            flow: parse_flow(c)?,
                        },
                        other => {
                            return Err(perr(c.line, format!("unknown invariant kind {other:?}")))
                        }
                    }
                }
                other => return Err(perr(c.line, format!("unknown subscription kind {other:?}"))),
            };
            Ok(QueryKind::Subscribe(spec))
        }
        "unsubscribe" => Ok(QueryKind::Unsubscribe {
            id: c.parse("subscription id")?,
        }),
        "notifications" => Ok(QueryKind::Notifications {
            id: c.parse("subscription id")?,
        }),
        other => Err(perr(c.line, format!("unknown query command {other:?}"))),
    }
}

/// Parses the five flow tokens shared by `reach` and the flow-carrying
/// subscription kinds.
fn parse_flow(c: &mut Cursor) -> Result<Flow, IoError> {
    Ok(Flow {
        src: c.ip("flow source address")?,
        dst: c.ip("flow destination address")?,
        proto: c.parse("flow protocol")?,
        src_port: c.parse("flow source port")?,
        dst_port: c.parse("flow destination port")?,
    })
}

/// Parses a response artifact (requires the `end` sentinel).
pub fn parse_response(text: &str) -> Result<Response, IoError> {
    use crate::codec::parse_outcomes;
    let mut lines = parse_header(text, Artifact::Response)?;
    let Some(mut c) = lines.next_cursor()? else {
        return Err(IoError::Truncated {
            expected: "a response status line".into(),
        });
    };
    let kw = c.word("keyword")?;
    match kw.as_str() {
        "error" => {
            let msg = c.string("error message")?;
            c.finish()?;
            expect_end(&mut lines)?;
            Ok(Response::Error(msg))
        }
        "ok" => {
            let kind = c.word("response kind")?;
            let kind_line = c.line;
            c.finish()?;
            match kind.as_str() {
                "loaded" => {
                    let mut c = payload_line(&mut lines)?;
                    c.expect("session")?;
                    let session = c.string("session name")?;
                    c.expect("devices")?;
                    let devices = c.parse("device count")?;
                    c.expect("links")?;
                    let links = c.parse("link count")?;
                    c.finish()?;
                    expect_end(&mut lines)?;
                    Ok(Response::Loaded {
                        session,
                        devices,
                        links,
                    })
                }
                "ingested" => {
                    let mut c = payload_line(&mut lines)?;
                    c.expect("session")?;
                    let session = c.string("session name")?;
                    c.expect("epochs")?;
                    let epochs = c.parse("epoch count")?;
                    c.expect("flows")?;
                    let flows = c.parse("flow count")?;
                    c.expect("total")?;
                    let total = c.parse("total epoch count")?;
                    c.finish()?;
                    expect_end(&mut lines)?;
                    Ok(Response::Ingested {
                        session,
                        epochs,
                        flows,
                        total,
                    })
                }
                "reach" => {
                    let mut c = payload_line(&mut lines)?;
                    c.expect("outcomes")?;
                    let outcomes = parse_outcomes(&mut c)?;
                    c.finish()?;
                    expect_end(&mut lines)?;
                    Ok(Response::Reach { outcomes })
                }
                "blast" => {
                    let mut c = payload_line(&mut lines)?;
                    c.expect("window")?;
                    let epochs = c.parse("window size")?;
                    c.expect("flows")?;
                    let flows = c.parse("flow count")?;
                    c.finish()?;
                    let mut devices = Vec::new();
                    loop {
                        let Some(mut c) = lines.next_cursor()? else {
                            return Err(IoError::Truncated {
                                expected: "end sentinel of the response artifact".into(),
                            });
                        };
                        let kw = c.word("keyword")?;
                        if kw == "end" {
                            c.finish()?;
                            expect_none(&mut lines)?;
                            return Ok(Response::Blast {
                                epochs,
                                flows,
                                devices,
                            });
                        }
                        if kw != "device" {
                            return Err(perr(
                                c.line,
                                format!("expected device lines or end, found {kw:?}"),
                            ));
                        }
                        let d = c.string("device")?;
                        c.expect("flows")?;
                        let n = c.parse("flow count")?;
                        if let Some((prev, _)) = devices.last() {
                            if *prev >= d {
                                return Err(perr(c.line, "device lines must be name-sorted"));
                            }
                        }
                        devices.push((d, n));
                        c.finish()?;
                    }
                }
                "report" => {
                    let mut epochs = EpochsParser::new(IndexRule::StrictlyIncreasing);
                    loop {
                        let Some(mut c) = lines.next_cursor()? else {
                            return Err(IoError::Truncated {
                                expected: "end sentinel of the response artifact".into(),
                            });
                        };
                        let kw = c.word("keyword")?;
                        if kw == "end" {
                            c.finish()?;
                            expect_none(&mut lines)?;
                            return Ok(Response::Report {
                                epochs: epochs.finish()?,
                            });
                        }
                        if !epochs.try_line(&kw, &mut c)? {
                            return Err(perr(
                                c.line,
                                format!("unknown report payload keyword {kw:?}"),
                            ));
                        }
                        c.finish()?;
                    }
                }
                "stats" => {
                    let mut s = ServiceStats::default();
                    let mut c = payload_line(&mut lines)?;
                    c.expect("session")?;
                    s.session = c.string("session name")?;
                    c.expect("epochs")?;
                    s.epochs = c.parse("epoch count")?;
                    c.expect("retained")?;
                    s.retained = c.parse("retained count")?;
                    c.expect("from")?;
                    s.retained_from = c.parse("oldest retained index")?;
                    c.finish()?;
                    let mut c = payload_line(&mut lines)?;
                    c.expect("topology")?;
                    c.expect("devices")?;
                    s.devices = c.parse("device count")?;
                    c.expect("links")?;
                    s.links = c.parse("link count")?;
                    c.finish()?;
                    let mut c = payload_line(&mut lines)?;
                    c.expect("state")?;
                    c.expect("classes")?;
                    s.classes = c.parse("class count")?;
                    c.expect("tuples")?;
                    s.tuples = c.parse("tuple count")?;
                    c.finish()?;
                    let mut c = payload_line(&mut lines)?;
                    c.expect("work")?;
                    c.expect("flows")?;
                    s.flows = c.parse("flow count")?;
                    c.expect("mismatches")?;
                    s.mismatches = c.parse("mismatch count")?;
                    c.finish()?;
                    let mut c = payload_line(&mut lines)?;
                    c.expect("time")?;
                    c.expect("cp-us")?;
                    s.cp_us = c.parse("cp microseconds")?;
                    c.expect("dp-us")?;
                    s.dp_us = c.parse("dp microseconds")?;
                    c.expect("total-us")?;
                    s.total_us = c.parse("total microseconds")?;
                    c.finish()?;
                    expect_end(&mut lines)?;
                    Ok(Response::Stats(s))
                }
                "sessions" => {
                    let mut list: Vec<SessionInfo> = Vec::new();
                    loop {
                        let Some(mut c) = lines.next_cursor()? else {
                            return Err(IoError::Truncated {
                                expected: "end sentinel of the response artifact".into(),
                            });
                        };
                        let kw = c.word("keyword")?;
                        if kw == "end" {
                            c.finish()?;
                            expect_none(&mut lines)?;
                            return Ok(Response::Sessions(list));
                        }
                        if kw != "session" {
                            return Err(perr(
                                c.line,
                                format!("expected session lines or end, found {kw:?}"),
                            ));
                        }
                        let name = c.string("session name")?;
                        c.expect("epochs")?;
                        let epochs = c.parse("epoch count")?;
                        c.expect("devices")?;
                        let devices = c.parse("device count")?;
                        c.expect("verify")?;
                        let verify = match c.word("on|off")?.as_str() {
                            "on" => true,
                            "off" => false,
                            other => {
                                return Err(perr(
                                    c.line,
                                    format!("expected on|off, found {other:?}"),
                                ))
                            }
                        };
                        // Optional trailing failure marker (written only
                        // when set, keeping healthy rows byte-stable).
                        let failed = if c.at_end() {
                            false
                        } else {
                            c.expect("failed")?;
                            true
                        };
                        if let Some(prev) = list.last() {
                            if prev.name >= name {
                                return Err(perr(c.line, "session lines must be name-sorted"));
                            }
                        }
                        list.push(SessionInfo {
                            name,
                            epochs,
                            devices,
                            verify,
                            failed,
                        });
                        c.finish()?;
                    }
                }
                "checkpointed" => {
                    let mut c = payload_line(&mut lines)?;
                    c.expect("session")?;
                    let session = c.string("session name")?;
                    c.expect("epochs")?;
                    let epochs = c.parse("epoch count")?;
                    c.expect("bytes")?;
                    let bytes = c.parse("byte count")?;
                    c.finish()?;
                    expect_end(&mut lines)?;
                    Ok(Response::Checkpointed {
                        session,
                        epochs,
                        bytes,
                    })
                }
                other => Err(perr(kind_line, format!("unknown response kind {other:?}"))),
            }
        }
        other => Err(perr(
            c.line,
            format!("expected error or ok, found {other:?}"),
        )),
    }
}

/// Next line of a fixed-shape payload (truncation mid-payload is typed).
fn payload_line(lines: &mut crate::lex::Lines<'_>) -> Result<Cursor, IoError> {
    lines.next_cursor()?.ok_or_else(|| IoError::Truncated {
        expected: "a response payload line".into(),
    })
}

/// Requires the `end` sentinel next, then end of input.
fn expect_end(lines: &mut crate::lex::Lines<'_>) -> Result<(), IoError> {
    let Some(mut c) = lines.next_cursor()? else {
        return Err(IoError::Truncated {
            expected: "end sentinel of the response artifact".into(),
        });
    };
    c.expect("end")?;
    c.finish()?;
    expect_none(lines)
}

/// Requires end of input (nothing after the sentinel).
fn expect_none(lines: &mut crate::lex::Lines<'_>) -> Result<(), IoError> {
    if let Some(c) = lines.next_cursor()? {
        return Err(perr(c.line, "content after end sentinel"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::ip;

    fn roundtrip_query(q: &Query) {
        let text = write_query(q);
        let back = parse_query(&text).expect("query parses");
        assert_eq!(&back, q);
        assert_eq!(write_query(&back), text);
    }

    fn roundtrip_response(r: &Response) {
        let text = write_response(r);
        let back = parse_response(&text).expect("response parses");
        assert_eq!(&back, r);
        assert_eq!(write_response(&back), text);
    }

    #[test]
    fn queries_round_trip() {
        for kind in [
            QueryKind::Reach {
                src: "edge0_0".into(),
                flow: Flow {
                    src: ip("10.0.0.1"),
                    dst: ip("10.1.2.3"),
                    proto: 6,
                    src_port: 12345,
                    dst_port: 80,
                },
            },
            QueryKind::ReachPair {
                src: "edge 0".into(),
                dst: "co\"re".into(),
            },
            QueryKind::Blast { last: 16 },
            QueryKind::Report { from: 3, to: 9 },
            QueryKind::Stats,
            QueryKind::Sessions,
            QueryKind::Checkpoint,
            QueryKind::Metrics,
            QueryKind::TraceSpans { last: None },
            QueryKind::TraceSpans { last: Some(32) },
            QueryKind::Health,
            QueryKind::History { last: None },
            QueryKind::History { last: Some(8) },
            QueryKind::Subscribe(SubscriptionSpec::Reach {
                src: "edge0_0".into(),
                flow: Flow {
                    src: ip("10.0.0.1"),
                    dst: ip("10.1.2.3"),
                    proto: 17,
                    src_port: 5353,
                    dst_port: 53,
                },
            }),
            QueryKind::Subscribe(SubscriptionSpec::ReachPair {
                src: "edge 0".into(),
                dst: "co\"re".into(),
            }),
            QueryKind::Subscribe(SubscriptionSpec::Blast {
                device: "agg0_0".into(),
            }),
            QueryKind::Subscribe(SubscriptionSpec::NeverReach {
                src: "edge0_0".into(),
                dst: "edge1_1".into(),
            }),
            QueryKind::Subscribe(SubscriptionSpec::NoBlackhole {
                src: "edge0_0".into(),
                flow: Flow {
                    src: ip("10.0.0.1"),
                    dst: ip("10.1.2.3"),
                    proto: 6,
                    src_port: 40000,
                    dst_port: 443,
                },
            }),
            QueryKind::Unsubscribe { id: 7 },
            QueryKind::Notifications { id: 7 },
        ] {
            roundtrip_query(&Query {
                session: None,
                kind: kind.clone(),
            });
            roundtrip_query(&Query {
                session: Some("scenario a\n".into()),
                kind,
            });
        }
    }

    #[test]
    fn responses_round_trip() {
        roundtrip_response(&Response::Error("no such session \"x\"".into()));
        roundtrip_response(&Response::Loaded {
            session: "main".into(),
            devices: 45,
            links: 162,
        });
        roundtrip_response(&Response::Ingested {
            session: "main".into(),
            epochs: 12,
            flows: 7,
            total: 76,
        });
        roundtrip_response(&Response::Reach {
            outcomes: BTreeSet::new(),
        });
        roundtrip_response(&Response::Reach {
            outcomes: [
                Outcome::Delivered("edge1_1".into()),
                Outcome::Filtered("agg 0".into()),
                Outcome::Loop,
            ]
            .into_iter()
            .collect(),
        });
        roundtrip_response(&Response::Blast {
            epochs: 8,
            flows: 21,
            devices: vec![("agg0_0".into(), 13), ("edge0_0".into(), 8)],
        });
        roundtrip_response(&Response::Report {
            epochs: vec![
                (
                    4,
                    EpochDiff {
                        label: Some("link-failure".into()),
                        ..Default::default()
                    },
                ),
                (6, EpochDiff::default()),
            ],
        });
        roundtrip_response(&Response::Stats(ServiceStats {
            session: "main".into(),
            epochs: 64,
            retained: 32,
            retained_from: 32,
            devices: 45,
            links: 162,
            classes: 127,
            tuples: 30276,
            flows: 211,
            mismatches: 0,
            cp_us: 120_000,
            dp_us: 40_000,
            total_us: 161_000,
        }));
        roundtrip_response(&Response::Checkpointed {
            session: "scenario a".into(),
            epochs: 48,
            bytes: 20_113,
        });
        roundtrip_response(&Response::Sessions(vec![
            SessionInfo {
                name: "a".into(),
                epochs: 2,
                devices: 20,
                verify: true,
                failed: false,
            },
            SessionInfo {
                name: "b".into(),
                epochs: 0,
                devices: 45,
                verify: false,
                failed: true,
            },
        ]));
    }

    #[test]
    fn session_failure_marker_is_canonical() {
        // The marker appears exactly when set; absent rows stay at the
        // pre-v3 byte shape.
        let text = write_response(&Response::Sessions(vec![SessionInfo {
            name: "a".into(),
            epochs: 1,
            devices: 2,
            verify: false,
            failed: true,
        }]));
        assert!(text.contains("verify off failed\n"), "{text:?}");
        let healthy = write_response(&Response::Sessions(vec![SessionInfo {
            name: "a".into(),
            epochs: 1,
            devices: 2,
            verify: false,
            failed: false,
        }]));
        assert!(!healthy.contains("failed"), "{healthy:?}");
        // Junk after the verify token is rejected, not ignored.
        let bad = "dna-io v3 response\nok sessions\n  session \"a\" epochs 1 devices 2 verify off wedged\nend\n";
        assert!(matches!(
            parse_response(bad),
            Err(IoError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn malformed_queries_are_typed_errors() {
        assert!(matches!(
            parse_query("dna-io v5 query\nend\n"),
            Err(IoError::Truncated { .. })
        ));
        assert!(matches!(
            parse_query("dna-io v5 query\n  stats\n"),
            Err(IoError::Truncated { .. })
        ));
        assert!(matches!(
            parse_query("dna-io v5 query\n  stats\n  sessions\nend\n"),
            Err(IoError::Parse { line: 3, .. })
        ));
        assert!(matches!(
            parse_query("dna-io v5 query\n  stats\n  session \"x\"\nend\n"),
            Err(IoError::Parse { line: 3, .. })
        ));
        assert!(matches!(
            parse_query("dna-io v5 query\n  frobnicate\nend\n"),
            Err(IoError::Parse { line: 2, .. })
        ));
        // Junk after a trace span count or history sample count is
        // rejected, not ignored.
        assert!(matches!(
            parse_query("dna-io v5 query\n  trace 4 5\nend\n"),
            Err(IoError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_query("dna-io v5 query\n  history 4 5\nend\n"),
            Err(IoError::Parse { line: 2, .. })
        ));
        // Unknown subscription shapes are rejected.
        assert!(matches!(
            parse_query("dna-io v5 query\n  subscribe frobnicate \"x\"\nend\n"),
            Err(IoError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_query("dna-io v5 query\n  subscribe invariant maybe \"x\" \"y\"\nend\n"),
            Err(IoError::Parse { line: 2, .. })
        ));
        // Earlier query versions are rejected (strict equality): readers
        // that predate a keyword must fail closed, so writers may never
        // downgrade the header.
        assert!(matches!(
            parse_query("dna-io v2 query\n  stats\nend\n"),
            Err(IoError::UnsupportedVersion(2))
        ));
        assert!(matches!(
            parse_query("dna-io v3 query\n  health\nend\n"),
            Err(IoError::UnsupportedVersion(3))
        ));
        assert!(matches!(
            parse_query("dna-io v4 query\n  subscribe blast \"d\"\nend\n"),
            Err(IoError::UnsupportedVersion(4))
        ));
        assert!(matches!(
            parse_query("dna-io v3 response\nend\n"),
            Err(IoError::WrongArtifact { .. })
        ));
    }

    #[test]
    fn malformed_responses_are_typed_errors() {
        assert!(matches!(
            parse_response("dna-io v3 response\nend\n"),
            Err(IoError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_response("dna-io v3 response\nok reach\n"),
            Err(IoError::Truncated { .. })
        ));
        assert!(matches!(
            parse_response("dna-io v3 response\nok blast\n  window 1 flows 0\n"),
            Err(IoError::Truncated { .. })
        ));
        assert!(matches!(
            parse_response("dna-io v3 response\nok nonsense\nend\n"),
            Err(IoError::Parse { line: 2, .. })
        ));
        // Unsorted payload rows are rejected (the encoding is canonical).
        let unsorted = "dna-io v3 response\nok blast\n  window 1 flows 2\n  device \"b\" flows 1\n  device \"a\" flows 1\nend\n";
        assert!(matches!(
            parse_response(unsorted),
            Err(IoError::Parse { line: 5, .. })
        ));
        // Out-of-order report payload epochs are rejected.
        let bad = "dna-io v3 response\nok report\nepoch 5\nepoch 3\nend\n";
        assert!(matches!(
            parse_response(bad),
            Err(IoError::Parse { line: 4, .. })
        ));
    }
}
