//! The `checkpoint` artifact: a live `dna-serve` session's durable
//! state — enough to bring the session back after a restart (or a
//! `kill -9`) observationally identical to one that never stopped.
//!
//! A checkpoint carries the session's open-time configuration, its
//! *current* snapshot (the base plus every applied epoch — inline, or a
//! reference to a snapshot file for hand-authored checkpoints), the
//! applied-epoch counters, and the retained history of canonical
//! per-epoch diffs. Engine state itself is deliberately **not**
//! serialized: the analyzers guarantee that a fresh (sharded) bring-up
//! on the current snapshot reproduces the incremental engine's
//! observable behavior exactly (the E8 equivalence property), so the
//! snapshot *is* the engine state's durable form. Resume is therefore
//! bring-up plus a fast-forward of the counters and history.
//!
//! Same envelope, round-trip and never-panic guarantees as every other
//! artifact; see `crates/io/FORMAT.md` for the grammar.

use crate::codec::{parse_header, W};
use crate::error::{perr, IoError};
use crate::lex::{lex_line, quote, Cursor};
use crate::report::{write_epoch, EpochDiff, EpochsParser, IndexRule};
use crate::snapshot::{parse_snapshot, write_snapshot};
use crate::Artifact;
use net_model::Snapshot;

/// The session configuration a checkpoint restores on resume. Mirrors
/// the serve layer's session policy: every field here is observable in
/// the session's responses (retention bounds what history queries see;
/// verify attaches the cross-checking shadow), so resume must restore
/// them rather than take whatever the restarted server was passed.
/// `shards` is recorded for provenance but is *not* observable — a
/// resuming host may bring the engine up with any shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Maximum per-epoch diffs retained for history queries.
    pub retain: u64,
    /// Optional byte budget on the retained history's canonical size.
    pub retain_bytes: Option<u64>,
    /// Whether a from-scratch verification shadow is attached.
    pub verify: bool,
    /// Shard count the session was brought up with (provenance only).
    pub shards: u64,
}

/// Session-cumulative counters over every epoch ever applied. The four
/// count fields are exact and deterministic; the `*_ns` stage timings
/// are cumulative wall-clock (carried so a resumed session's `stats`
/// keeps counting from where the original left off, not from zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointTotals {
    /// Primitive changes applied.
    pub changes: u64,
    /// Route-level deltas reported.
    pub rib: u64,
    /// Forwarding-entry deltas reported.
    pub fib: u64,
    /// Flow-level reachability diffs reported.
    pub flows: u64,
    /// Cumulative control-plane stage time, nanoseconds.
    pub cp_ns: u64,
    /// Cumulative data-plane stage time, nanoseconds.
    pub dp_ns: u64,
    /// Cumulative end-to-end apply time, nanoseconds.
    pub total_ns: u64,
}

/// Where a checkpoint's snapshot lives.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointSource {
    /// The snapshot is embedded in the checkpoint artifact itself (what
    /// a live server writes: its current snapshot exists nowhere else).
    Inline(Snapshot),
    /// The snapshot is a separate `dna-io` snapshot file, referenced by
    /// path (resolved relative to the checkpoint file's directory).
    /// Useful for hand-authored epoch-0 checkpoints over an existing
    /// snapshot artifact.
    Ref(String),
}

/// One persisted session: everything `dna serve --resume` needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Session name.
    pub session: String,
    /// Open-time session policy, restored on resume.
    pub config: CheckpointConfig,
    /// Epochs applied when the checkpoint was taken.
    pub epochs: u64,
    /// Epochs on which the verification shadow disagreed.
    pub mismatches: u64,
    /// Session-cumulative counters.
    pub totals: CheckpointTotals,
    /// The session's current snapshot (inline or by reference).
    pub source: CheckpointSource,
    /// Retained history: `(absolute epoch index, canonical diff)`
    /// pairs, index-ascending, every index `< epochs`.
    pub history: Vec<(usize, EpochDiff)>,
}

/// A checkpoint's wire counters converted for in-memory session state:
/// every `u64` counter checked into `usize`, the retention bound clamped
/// to its documented minimum of 1. Produced by
/// [`Checkpoint::resume_counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeCounters {
    /// Epochs applied when the checkpoint was taken.
    pub epochs: usize,
    /// Primitive changes applied.
    pub changes: usize,
    /// Route-level deltas reported.
    pub rib: usize,
    /// Forwarding-entry deltas reported.
    pub fib: usize,
    /// Flow-level reachability diffs reported.
    pub flows: usize,
    /// History-retention bound (always ≥ 1).
    pub retain: usize,
    /// Optional byte budget on the retained history.
    pub retain_bytes: Option<usize>,
}

impl Checkpoint {
    /// Checked conversion of the wire counters into host-width session
    /// state. A counter too large for `usize` (possible on 32-bit
    /// targets, where `as usize` would silently truncate) and a history
    /// entry at or past the applied-epoch count (possible in a
    /// hand-constructed or corrupted value, parse re-checks it too) both
    /// surface as [`IoError::Invalid`] instead of being accepted.
    pub fn resume_counters(&self) -> Result<ResumeCounters, IoError> {
        fn conv(value: u64, what: &str) -> Result<usize, IoError> {
            usize::try_from(value).map_err(|_| IoError::Invalid {
                message: format!("checkpoint {what} counter {value} does not fit this host"),
            })
        }
        if let Some(&(last, _)) = self.history.last() {
            if last as u64 >= self.epochs {
                return Err(IoError::Invalid {
                    message: format!(
                        "checkpoint history epoch {last} is not below the applied epoch count {}",
                        self.epochs
                    ),
                });
            }
        }
        Ok(ResumeCounters {
            epochs: conv(self.epochs, "applied-epoch")?,
            changes: conv(self.totals.changes, "changes")?,
            rib: conv(self.totals.rib, "rib")?,
            fib: conv(self.totals.fib, "fib")?,
            flows: conv(self.totals.flows, "flows")?,
            retain: conv(self.config.retain, "retain")?.max(1),
            retain_bytes: self
                .config
                .retain_bytes
                .map(|b| conv(b, "retain-bytes"))
                .transpose()?,
        })
    }
}

// ---- write ------------------------------------------------------------

/// Serializes a checkpoint in canonical form.
pub fn write_checkpoint(ck: &Checkpoint) -> String {
    let mut w = W::new(Artifact::Checkpoint);
    w.line(0, &format!("session {}", quote(&ck.session)));
    let rb = match ck.config.retain_bytes {
        None => "-".to_string(),
        Some(b) => b.to_string(),
    };
    w.line(
        0,
        &format!(
            "config retain {} retain-bytes {rb} verify {} shards {}",
            ck.config.retain,
            if ck.config.verify { "on" } else { "off" },
            ck.config.shards
        ),
    );
    w.line(
        0,
        &format!("applied epochs {} mismatches {}", ck.epochs, ck.mismatches),
    );
    let t = &ck.totals;
    w.line(
        0,
        &format!(
            "totals changes {} rib {} fib {} flows {} cp-ns {} dp-ns {} total-ns {}",
            t.changes, t.rib, t.fib, t.flows, t.cp_ns, t.dp_ns, t.total_ns
        ),
    );
    match &ck.source {
        CheckpointSource::Ref(path) => w.line(0, &format!("snapshot ref {}", quote(path))),
        CheckpointSource::Inline(snap) => {
            w.line(0, "snapshot inline");
            // Embed the snapshot's canonical body verbatim (its header
            // and `end` sentinel stripped). No snapshot body line is a
            // bare `end`, so stream framing stays unambiguous.
            let text = write_snapshot(snap);
            let mut lines = text.lines();
            let _header = lines.next();
            let mut lines: Vec<&str> = lines.collect();
            let _end = lines.pop();
            for l in lines {
                w.raw_line(l);
            }
            w.line(0, "end-snapshot");
        }
    }
    w.line(0, "history");
    for (i, ep) in &ck.history {
        write_epoch(&mut w, *i, ep);
    }
    w.line(0, "end-history");
    w.finish()
}

// ---- parse ------------------------------------------------------------

enum Mode {
    Meta,
    Snapshot,
    History(Box<EpochsParser>),
    Done,
}

/// Parses a checkpoint artifact (requires the `end` sentinel). Every
/// metadata line must appear exactly once; history indices must be
/// strictly increasing and below the applied-epoch count.
pub fn parse_checkpoint(text: &str) -> Result<Checkpoint, IoError> {
    // Validate the header through the shared codec path (version and
    // kind checks), then walk the raw lines ourselves: the inline
    // snapshot block must be captured verbatim for its own parser.
    let _ = parse_header(text, Artifact::Checkpoint)?;
    let mut mode = Mode::Meta;
    let mut header_seen = false;
    let mut session: Option<String> = None;
    let mut config: Option<CheckpointConfig> = None;
    let mut applied: Option<(u64, u64)> = None;
    let mut totals: Option<CheckpointTotals> = None;
    let mut source: Option<CheckpointSource> = None;
    let mut history: Option<Vec<(usize, EpochDiff)>> = None;
    // Inline snapshot block: raw text plus the file line its first line
    // sits on, for error remapping.
    let mut snap_buf = String::new();
    let mut snap_start = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = raw.trim();
        let meaningful = !(trimmed.is_empty() || trimmed.starts_with(';'));
        if !header_seen {
            if meaningful {
                header_seen = true; // the validated header line
            }
            continue;
        }
        match &mut mode {
            Mode::Snapshot => {
                if trimmed == "end-snapshot" {
                    let body = std::mem::take(&mut snap_buf);
                    let snap = parse_embedded_snapshot(&body, snap_start)?;
                    source = Some(CheckpointSource::Inline(snap));
                    mode = Mode::Meta;
                } else {
                    if snap_buf.is_empty() {
                        snap_start = line_no;
                    }
                    snap_buf.push_str(raw);
                    snap_buf.push('\n');
                }
            }
            Mode::History(epochs) => {
                if !meaningful {
                    continue;
                }
                if trimmed == "end-history" {
                    let Mode::History(epochs) = std::mem::replace(&mut mode, Mode::Meta) else {
                        unreachable!("mode matched above");
                    };
                    history = Some(epochs.finish()?);
                } else {
                    let mut c = Cursor::new(lex_line(trimmed, line_no)?, line_no);
                    let kw = c.word("keyword")?;
                    if !epochs.try_line(&kw, &mut c)? {
                        return Err(perr(
                            line_no,
                            format!("unknown checkpoint history keyword {kw:?}"),
                        ));
                    }
                    c.finish()?;
                }
            }
            Mode::Done => {
                if meaningful {
                    return Err(perr(line_no, "content after end sentinel"));
                }
            }
            Mode::Meta => {
                if !meaningful {
                    continue;
                }
                let mut c = Cursor::new(lex_line(trimmed, line_no)?, line_no);
                let kw = c.word("keyword")?;
                match kw.as_str() {
                    "end" => {
                        c.finish()?;
                        mode = Mode::Done;
                    }
                    "session" => {
                        set_once(&mut session, c.string("session name")?, line_no, "session")?;
                        c.finish()?;
                    }
                    "config" => {
                        c.expect("retain")?;
                        let retain = c.parse("retention bound")?;
                        c.expect("retain-bytes")?;
                        let rb = c.word("byte budget")?;
                        let retain_bytes =
                            if rb == "-" {
                                None
                            } else {
                                Some(rb.parse().map_err(|_| {
                                    perr(line_no, format!("bad byte budget {rb:?}"))
                                })?)
                            };
                        c.expect("verify")?;
                        let verify = parse_on_off(&mut c)?;
                        c.expect("shards")?;
                        let shards = c.parse("shard count")?;
                        c.finish()?;
                        set_once(
                            &mut config,
                            CheckpointConfig {
                                retain,
                                retain_bytes,
                                verify,
                                shards,
                            },
                            line_no,
                            "config",
                        )?;
                    }
                    "applied" => {
                        c.expect("epochs")?;
                        let epochs = c.parse("epoch count")?;
                        c.expect("mismatches")?;
                        let mismatches = c.parse("mismatch count")?;
                        c.finish()?;
                        set_once(&mut applied, (epochs, mismatches), line_no, "applied")?;
                    }
                    "totals" => {
                        let mut t = CheckpointTotals::default();
                        c.expect("changes")?;
                        t.changes = c.parse("change count")?;
                        c.expect("rib")?;
                        t.rib = c.parse("rib count")?;
                        c.expect("fib")?;
                        t.fib = c.parse("fib count")?;
                        c.expect("flows")?;
                        t.flows = c.parse("flow count")?;
                        c.expect("cp-ns")?;
                        t.cp_ns = c.parse("cp nanoseconds")?;
                        c.expect("dp-ns")?;
                        t.dp_ns = c.parse("dp nanoseconds")?;
                        c.expect("total-ns")?;
                        t.total_ns = c.parse("total nanoseconds")?;
                        c.finish()?;
                        set_once(&mut totals, t, line_no, "totals")?;
                    }
                    "snapshot" => {
                        if source.is_some() {
                            return Err(perr(line_no, "duplicate snapshot section"));
                        }
                        let how = c.word("ref|inline")?;
                        match how.as_str() {
                            "ref" => {
                                source = Some(CheckpointSource::Ref(c.string("snapshot path")?));
                                c.finish()?;
                            }
                            "inline" => {
                                c.finish()?;
                                snap_buf.clear();
                                mode = Mode::Snapshot;
                            }
                            other => {
                                return Err(perr(
                                    line_no,
                                    format!("expected ref|inline, found {other:?}"),
                                ))
                            }
                        }
                    }
                    "history" => {
                        if history.is_some() {
                            return Err(perr(line_no, "duplicate history section"));
                        }
                        c.finish()?;
                        mode = Mode::History(Box::new(EpochsParser::new(
                            IndexRule::StrictlyIncreasing,
                        )));
                    }
                    other => {
                        return Err(perr(
                            line_no,
                            format!("unknown checkpoint keyword {other:?}"),
                        ))
                    }
                }
            }
        }
    }
    match mode {
        Mode::Done => {}
        Mode::Snapshot => {
            return Err(IoError::Truncated {
                expected: "end-snapshot terminator of the inline snapshot".into(),
            })
        }
        Mode::History(_) => {
            return Err(IoError::Truncated {
                expected: "end-history terminator of the history section".into(),
            })
        }
        Mode::Meta => {
            return Err(IoError::Truncated {
                expected: "end sentinel of the checkpoint artifact".into(),
            })
        }
    }
    let missing = |what: &str| IoError::Truncated {
        expected: format!("a {what} line before the end sentinel"),
    };
    let (epochs, mismatches) = applied.ok_or_else(|| missing("applied"))?;
    let ck = Checkpoint {
        session: session.ok_or_else(|| missing("session"))?,
        config: config.ok_or_else(|| missing("config"))?,
        epochs,
        mismatches,
        totals: totals.ok_or_else(|| missing("totals"))?,
        source: source.ok_or_else(|| missing("snapshot"))?,
        history: history.ok_or_else(|| missing("history"))?,
    };
    if let Some((last, _)) = ck.history.last() {
        if *last as u64 >= ck.epochs {
            return Err(IoError::Parse {
                line: 1,
                message: format!(
                    "history epoch {last} is not below the applied epoch count {}",
                    ck.epochs
                ),
            });
        }
    }
    Ok(ck)
}

/// Parses the inline snapshot block by wrapping it back into a
/// standalone snapshot artifact, remapping parse-error line numbers
/// from the synthetic document onto the checkpoint file's real lines.
fn parse_embedded_snapshot(body: &str, first_line: usize) -> Result<Snapshot, IoError> {
    parse_snapshot(&format!("dna-io v1 snapshot\n{body}end\n")).map_err(|e| match e {
        IoError::Parse { line, message } if line > 1 => IoError::Parse {
            line: first_line + (line - 2),
            message,
        },
        other => other,
    })
}

fn set_once<T>(slot: &mut Option<T>, value: T, line: usize, what: &str) -> Result<(), IoError> {
    if slot.is_some() {
        return Err(perr(line, format!("duplicate {what} line")));
    }
    *slot = Some(value);
    Ok(())
}

fn parse_on_off(c: &mut Cursor) -> Result<bool, IoError> {
    match c.word("on|off")?.as_str() {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(perr(c.line, format!("expected on|off, found {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::{ip, NetBuilder};

    fn two_router_snapshot() -> Snapshot {
        NetBuilder::new()
            .router("r 1")
            .iface("r 1", "eth\"0", "10.0.0.1/31")
            .router("r2")
            .iface("r2", "eth0", "10.0.0.0/31")
            .link("r 1", "eth\"0", "r2", "eth0")
            .build()
    }

    fn sample(source: CheckpointSource) -> Checkpoint {
        Checkpoint {
            session: "scenario a\n".into(),
            config: CheckpointConfig {
                retain: 64,
                retain_bytes: Some(4096),
                verify: true,
                shards: 4,
            },
            epochs: 9,
            mismatches: 0,
            totals: CheckpointTotals {
                changes: 9,
                rib: 31,
                fib: 28,
                flows: 12,
                cp_ns: 120_000_400,
                dp_ns: 45_000_100,
                total_ns: 170_001_000,
            },
            source,
            history: vec![
                (
                    5,
                    EpochDiff {
                        label: Some("link-failure".into()),
                        ..Default::default()
                    },
                ),
                (
                    8,
                    EpochDiff {
                        label: None,
                        flows: vec![dna_core::FlowDiff {
                            src: "r 1".into(),
                            headers: vec!["dst=10.0.0.0..10.0.0.1".into()],
                            example: net_model::Flow::tcp_to(ip("10.0.0.0"), 80),
                            before: [data_plane::Outcome::Delivered("r2".into())].into(),
                            after: [data_plane::Outcome::Loop].into(),
                        }],
                        ..Default::default()
                    },
                ),
            ],
        }
    }

    #[test]
    fn inline_and_ref_checkpoints_round_trip() {
        for source in [
            CheckpointSource::Inline(two_router_snapshot()),
            CheckpointSource::Ref("runs/ft4.snap.dna".into()),
        ] {
            let ck = sample(source);
            let text = write_checkpoint(&ck);
            let back = parse_checkpoint(&text).expect("checkpoint parses");
            assert_eq!(back, ck);
            assert_eq!(write_checkpoint(&back), text, "canonical");
            assert_eq!(
                crate::sniff(&text).unwrap(),
                (1, Artifact::Checkpoint),
                "sniffable"
            );
        }
    }

    #[test]
    fn empty_history_and_default_snapshot_round_trip() {
        let mut ck = sample(CheckpointSource::Inline(Snapshot::default()));
        ck.history.clear();
        ck.epochs = 0;
        ck.totals = CheckpointTotals::default();
        let text = write_checkpoint(&ck);
        assert_eq!(parse_checkpoint(&text).unwrap(), ck);
    }

    #[test]
    fn truncations_are_typed_errors() {
        let text = write_checkpoint(&sample(CheckpointSource::Inline(two_router_snapshot())));
        let lines: Vec<&str> = text.lines().collect();
        for keep in 1..lines.len() {
            let truncated = lines[..keep].join("\n");
            let err = parse_checkpoint(&truncated).expect_err("truncated must fail");
            assert!(
                matches!(err, IoError::Truncated { .. } | IoError::Parse { .. }),
                "keep={keep}: {err:?}"
            );
        }
    }

    #[test]
    fn structural_violations_are_parse_errors() {
        // Duplicate metadata.
        let dup = "dna-io v1 checkpoint\nsession \"a\"\nsession \"b\"\nend\n";
        assert!(matches!(
            parse_checkpoint(dup),
            Err(IoError::Parse { line: 3, .. })
        ));
        // Unknown keyword.
        let unk = "dna-io v1 checkpoint\nfrobnicate\nend\n";
        assert!(matches!(
            parse_checkpoint(unk),
            Err(IoError::Parse { line: 2, .. })
        ));
        // History index at/above the applied count.
        let mut ck = sample(CheckpointSource::Ref("s.dna".into()));
        ck.epochs = 8; // history holds epoch 8
        let err = parse_checkpoint(&write_checkpoint(&ck)).expect_err("index bound");
        assert!(matches!(err, IoError::Parse { .. }), "{err:?}");
        // Content after the end sentinel.
        let ok = write_checkpoint(&sample(CheckpointSource::Ref("s.dna".into())));
        let after = format!("{ok}history\n");
        assert!(matches!(
            parse_checkpoint(&after),
            Err(IoError::Parse { .. })
        ));
        // Wrong artifact kind.
        assert!(matches!(
            parse_checkpoint("dna-io v1 trace\nend\n"),
            Err(IoError::WrongArtifact { .. })
        ));
        // Unsupported version.
        assert!(matches!(
            parse_checkpoint("dna-io v9 checkpoint\nend\n"),
            Err(IoError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn inline_snapshot_errors_carry_real_line_numbers() {
        let good = write_checkpoint(&sample(CheckpointSource::Inline(two_router_snapshot())));
        // Corrupt the first snapshot body line (directly after the
        // `snapshot inline` marker) and expect the error to point at it.
        let marker = good.find("snapshot inline\n").unwrap();
        let bad_line_start = marker + "snapshot inline\n".len();
        let bad_line_no = good[..bad_line_start].lines().count() + 1;
        let mut bad = good[..bad_line_start].to_string();
        bad.push_str("garbage-keyword\n");
        bad.push_str(&good[bad_line_start..]);
        match parse_checkpoint(&bad) {
            Err(IoError::Parse { line, message }) => {
                assert_eq!(line, bad_line_no, "{message}");
                assert!(message.contains("garbage-keyword"), "{message}");
            }
            other => panic!("expected a located parse error, got {other:?}"),
        }
    }
}
