//! The `trace` artifact: an ordered stream of change epochs. Each epoch
//! is one [`net_model::ChangeSet`] (applied atomically by the analyzers)
//! with an optional label (e.g. the scenario kind that generated it).

use crate::codec::{
    fmt_acl_entry, fmt_link, fmt_opt_str, fmt_route_attrs, parse_acl_entry, parse_header,
    parse_link, parse_route_attrs, write_route_map, RouteMapBuilder, W,
};
use crate::error::{perr, IoError};
use crate::lex::quote;
use crate::snapshot::{fmt_next_hop, fmt_static_route, parse_next_hop, parse_static_route};
use crate::Artifact;
use net_model::{Change, ChangeSet, ExternalRoute};

/// One epoch of a change trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceEpoch {
    /// Optional label (scenario kind, operator note, ...).
    pub label: Option<String>,
    /// The changes applied atomically in this epoch.
    pub changes: ChangeSet,
}

/// A recorded stream of change epochs, replayable against a snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Epochs in application order.
    pub epochs: Vec<TraceEpoch>,
}

impl Trace {
    /// Wraps plain change sets as unlabeled epochs.
    pub fn from_changesets(sets: impl IntoIterator<Item = ChangeSet>) -> Self {
        Trace {
            epochs: sets
                .into_iter()
                .map(|changes| TraceEpoch {
                    label: None,
                    changes,
                })
                .collect(),
        }
    }

    /// Wraps labeled change sets (label, changes) as epochs.
    pub fn from_labeled(sets: impl IntoIterator<Item = (String, ChangeSet)>) -> Self {
        Trace {
            epochs: sets
                .into_iter()
                .map(|(label, changes)| TraceEpoch {
                    label: Some(label),
                    changes,
                })
                .collect(),
        }
    }

    /// Total number of primitive changes across all epochs.
    pub fn change_count(&self) -> usize {
        self.epochs.iter().map(|e| e.changes.len()).sum()
    }
}

/// Serializes a trace.
pub fn write_trace(trace: &Trace) -> String {
    let mut w = W::new(Artifact::Trace);
    for ep in &trace.epochs {
        match &ep.label {
            None => w.line(0, "epoch"),
            Some(l) => w.line(0, &format!("epoch label {}", quote(l))),
        }
        for ch in &ep.changes.changes {
            write_change(&mut w, ch);
        }
    }
    w.finish()
}

fn write_change(w: &mut W, ch: &Change) {
    match ch {
        Change::LinkDown(l) => w.line(1, &format!("link-down {}", fmt_link(l))),
        Change::LinkUp(l) => w.line(1, &format!("link-up {}", fmt_link(l))),
        Change::DeviceDown(d) => w.line(1, &format!("device-down {}", quote(d))),
        Change::DeviceUp(d) => w.line(1, &format!("device-up {}", quote(d))),
        Change::AclEntryAdd { device, acl, entry } => w.line(
            1,
            &format!(
                "acl-add {} {} {}",
                quote(device),
                quote(acl),
                fmt_acl_entry(entry)
            ),
        ),
        Change::AclEntryRemove { device, acl, seq } => w.line(
            1,
            &format!("acl-del {} {} {seq}", quote(device), quote(acl)),
        ),
        Change::SetAclIn { device, iface, acl } => w.line(
            1,
            &format!(
                "set-acl-in {} {} {}",
                quote(device),
                quote(iface),
                fmt_opt_str(acl)
            ),
        ),
        Change::SetAclOut { device, iface, acl } => w.line(
            1,
            &format!(
                "set-acl-out {} {} {}",
                quote(device),
                quote(iface),
                fmt_opt_str(acl)
            ),
        ),
        Change::SetRouteMap { device, name, map } => {
            w.line(
                1,
                &format!("set-route-map {} {}", quote(device), quote(name)),
            );
            write_route_map(w, 2, map);
            w.line(1, "end-map");
        }
        Change::StaticRouteAdd { device, route } => w.line(
            1,
            &format!("static-add {} {}", quote(device), fmt_static_route(route)),
        ),
        Change::StaticRouteRemove {
            device,
            prefix,
            next_hop,
        } => w.line(
            1,
            &format!(
                "static-del {} {prefix} {}",
                quote(device),
                fmt_next_hop(next_hop)
            ),
        ),
        Change::BgpNetworkAdd { device, prefix } => {
            w.line(1, &format!("bgp-net-add {} {prefix}", quote(device)))
        }
        Change::BgpNetworkRemove { device, prefix } => {
            w.line(1, &format!("bgp-net-del {} {prefix}", quote(device)))
        }
        Change::ExternalAnnounce(e) => w.line(
            1,
            &format!(
                "announce {} {} {}",
                quote(&e.device),
                e.peer,
                fmt_route_attrs(&e.attrs)
            ),
        ),
        Change::ExternalWithdraw {
            device,
            peer,
            prefix,
        } => w.line(1, &format!("withdraw {} {peer} {prefix}", quote(device))),
        Change::SetOspfCost {
            device,
            iface,
            cost,
        } => w.line(
            1,
            &format!("ospf-cost {} {} {cost}", quote(device), quote(iface)),
        ),
    }
}

/// Parses a trace artifact (requires the `end` sentinel).
pub fn parse_trace(text: &str) -> Result<Trace, IoError> {
    let mut lines = parse_header(text, Artifact::Trace)?;
    let mut trace = Trace::default();
    let mut cur: Option<TraceEpoch> = None;
    // Pending multi-line SetRouteMap change: (device, name, builder).
    let mut cur_rm: Option<(String, String, RouteMapBuilder)> = None;
    while let Some(mut c) = lines.next_cursor()? {
        let kw = c.word("keyword")?;
        if let Some((_, _, rm)) = cur_rm.as_mut() {
            if rm.try_line(&kw, &mut c)? {
                c.finish()?;
                continue;
            }
            if kw != "end-map" {
                return Err(perr(
                    c.line,
                    format!("expected clause/match/set lines or end-map, found {kw:?}"),
                ));
            }
            let (device, name, rm) = cur_rm.take().expect("checked above");
            cur.as_mut()
                .expect("route map inside an epoch")
                .changes
                .changes
                .push(Change::SetRouteMap {
                    device,
                    name,
                    map: rm.finish(),
                });
            c.finish()?;
            continue;
        }
        if kw == "end" {
            c.finish()?;
            if let Some(ep) = cur.take() {
                trace.epochs.push(ep);
            }
            if let Some(c) = lines.next_cursor()? {
                return Err(perr(c.line, "content after end sentinel"));
            }
            return Ok(trace);
        }
        if kw == "epoch" {
            if let Some(ep) = cur.take() {
                trace.epochs.push(ep);
            }
            let label = if c.at_end() {
                None
            } else {
                c.expect("label")?;
                Some(c.string("epoch label")?)
            };
            c.finish()?;
            cur = Some(TraceEpoch {
                label,
                changes: ChangeSet::default(),
            });
            continue;
        }
        let line = c.line;
        let Some(ep) = cur.as_mut() else {
            return Err(perr(line, format!("{kw} before the first epoch")));
        };
        let change = match kw.as_str() {
            "link-down" => Change::LinkDown(parse_link(&mut c)?),
            "link-up" => Change::LinkUp(parse_link(&mut c)?),
            "device-down" => Change::DeviceDown(c.string("device")?),
            "device-up" => Change::DeviceUp(c.string("device")?),
            "acl-add" => Change::AclEntryAdd {
                device: c.string("device")?,
                acl: c.string("ACL name")?,
                entry: parse_acl_entry(&mut c)?,
            },
            "acl-del" => Change::AclEntryRemove {
                device: c.string("device")?,
                acl: c.string("ACL name")?,
                seq: c.parse("entry seq")?,
            },
            "set-acl-in" => Change::SetAclIn {
                device: c.string("device")?,
                iface: c.string("interface")?,
                acl: c.opt_string("ACL name")?,
            },
            "set-acl-out" => Change::SetAclOut {
                device: c.string("device")?,
                iface: c.string("interface")?,
                acl: c.opt_string("ACL name")?,
            },
            "set-route-map" => {
                let device = c.string("device")?;
                let name = c.string("route-map name")?;
                c.finish()?;
                cur_rm = Some((device, name, RouteMapBuilder::new()));
                continue;
            }
            "static-add" => Change::StaticRouteAdd {
                device: c.string("device")?,
                route: parse_static_route(&mut c)?,
            },
            "static-del" => Change::StaticRouteRemove {
                device: c.string("device")?,
                prefix: c.prefix("static prefix")?,
                next_hop: parse_next_hop(&mut c)?,
            },
            "bgp-net-add" => Change::BgpNetworkAdd {
                device: c.string("device")?,
                prefix: c.prefix("network prefix")?,
            },
            "bgp-net-del" => Change::BgpNetworkRemove {
                device: c.string("device")?,
                prefix: c.prefix("network prefix")?,
            },
            "announce" => Change::ExternalAnnounce(ExternalRoute {
                device: c.string("device")?,
                peer: c.ip("peer address")?,
                attrs: parse_route_attrs(&mut c)?,
            }),
            "withdraw" => Change::ExternalWithdraw {
                device: c.string("device")?,
                peer: c.ip("peer address")?,
                prefix: c.prefix("withdrawn prefix")?,
            },
            "ospf-cost" => Change::SetOspfCost {
                device: c.string("device")?,
                iface: c.string("interface")?,
                cost: c.parse("ospf cost")?,
            },
            other => return Err(perr(line, format!("unknown trace keyword {other:?}"))),
        };
        ep.changes.changes.push(change);
        c.finish()?;
    }
    Err(IoError::Truncated {
        expected: if cur_rm.is_some() {
            "end-map of a set-route-map change".into()
        } else {
            "end sentinel of the trace artifact".into()
        },
    })
}
