//! The `report` artifact: per-epoch [`dna_core::BehaviorDiff`]s in a
//! canonical, byte-stable encoding.
//!
//! Stage timings and work counters (`DiffStats`) are deliberately *not*
//! part of the wire format: they are engine-specific and nondeterministic,
//! while the report artifact exists to be diffed — between analyzers
//! (`dna replay --verify`), between runs (golden tests) and between
//! versions. Entries are canonically sorted, so two analyzers that agree
//! semantically produce byte-identical report files.

use crate::codec::{
    fmt_fib_entry, fmt_outcomes, fmt_rib_entry, parse_fib_entry, parse_header, parse_outcomes,
    parse_rib_entry, W,
};
use crate::error::{perr, IoError};
use crate::lex::{quote, Cursor};
use crate::Artifact;
use control_plane::{FibEntry, RibEntry};
use ddflow::Diff;
use dna_core::{BehaviorDiff, FlowDiff};
use net_model::Flow;

/// One epoch's behavior diff, canonicalized for the wire.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EpochDiff {
    /// Optional label (mirrors the trace epoch that produced it).
    pub label: Option<String>,
    /// Route-level changes, sorted.
    pub rib: Vec<(RibEntry, Diff)>,
    /// Forwarding-entry changes, sorted.
    pub fib: Vec<(FibEntry, Diff)>,
    /// Flow-level changes, sorted by (src, example, headers).
    pub flows: Vec<FlowDiff>,
}

impl EpochDiff {
    /// Canonicalizes a [`BehaviorDiff`]: sorts all three delta lists and
    /// drops the (nondeterministic) stats. Two semantically equal diffs
    /// map to identical `EpochDiff`s regardless of the analyzer's
    /// emission order.
    pub fn from_behavior(label: Option<String>, diff: &BehaviorDiff) -> Self {
        let mut rib = diff.rib.clone();
        rib.sort();
        let mut fib = diff.fib.clone();
        fib.sort();
        let flows = dna_core::sorted_flows(diff);
        EpochDiff {
            label,
            rib,
            fib,
            flows,
        }
    }

    /// Whether the epoch had any observable effect.
    pub fn is_noop(&self) -> bool {
        self.rib.is_empty() && self.fib.is_empty() && self.flows.is_empty()
    }
}

/// A multi-epoch behavior-diff report (one entry per replayed epoch).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// Per-epoch diffs, in replay order.
    pub epochs: Vec<EpochDiff>,
}

/// Serializes a report.
pub fn write_report(report: &Report) -> String {
    let mut w = W::new(Artifact::Report);
    for (i, ep) in report.epochs.iter().enumerate() {
        write_epoch(&mut w, i, ep);
    }
    w.finish()
}

/// Emits one epoch block (`epoch <index>` plus its rib/fib/flow lines).
/// Shared by the report artifact and the `ok report` response payload,
/// which carries the same grammar under absolute epoch indices.
pub(crate) fn write_epoch(w: &mut W, index: usize, ep: &EpochDiff) {
    match &ep.label {
        None => w.line(0, &format!("epoch {index}")),
        Some(l) => w.line(0, &format!("epoch {index} label {}", quote(l))),
    }
    for (e, d) in &ep.rib {
        w.line(1, &format!("rib {d:+} {}", fmt_rib_entry(e)));
    }
    for (e, d) in &ep.fib {
        w.line(1, &format!("fib {d:+} {}", fmt_fib_entry(e)));
    }
    for f in &ep.flows {
        w.line(
            1,
            &format!(
                "flow {} example {} {} {} {} {}",
                quote(&f.src),
                f.example.src,
                f.example.dst,
                f.example.proto,
                f.example.src_port,
                f.example.dst_port
            ),
        );
        for h in &f.headers {
            w.line(2, &format!("header {}", quote(h)));
        }
        w.line(2, &format!("before {}", fmt_outcomes(f.before.iter())));
        w.line(2, &format!("after {}", fmt_outcomes(f.after.iter())));
    }
}

fn parse_diff_weight(c: &mut Cursor) -> Result<Diff, IoError> {
    let w = c.word("delta weight")?;
    let stripped = w.strip_prefix('+').unwrap_or(&w);
    stripped
        .parse()
        .map_err(|_| perr(c.line, format!("bad delta weight {w:?}")))
}

/// In-progress flow record (before/after lines may still be pending).
struct FlowBuilder {
    src: String,
    example: Flow,
    headers: Vec<String>,
    before: Option<std::collections::BTreeSet<data_plane::Outcome>>,
    after: Option<std::collections::BTreeSet<data_plane::Outcome>>,
    line: usize,
}

impl FlowBuilder {
    fn finish(self) -> Result<FlowDiff, IoError> {
        let before = self
            .before
            .ok_or_else(|| perr(self.line, "flow record missing its before line"))?;
        let after = self
            .after
            .ok_or_else(|| perr(self.line, "flow record missing its after line"))?;
        Ok(FlowDiff {
            src: self.src,
            headers: self.headers,
            example: self.example,
            before,
            after,
        })
    }
}

/// How an epoch stream constrains its indices.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum IndexRule {
    /// Report artifact: indices are ordinals, consecutive from 0.
    ConsecutiveFromZero,
    /// Response payload: absolute indices of a history range — strictly
    /// increasing, starting anywhere.
    StrictlyIncreasing,
}

/// Incremental parser for the epoch-body sub-grammar (`epoch` / `rib` /
/// `fib` / `flow` / `header` / `before` / `after` lines), shared by the
/// report artifact and the `ok report` response payload. Feed it every
/// body line via [`EpochsParser::try_line`]; anything it does not consume
/// belongs to the caller's grammar.
pub(crate) struct EpochsParser {
    rule: IndexRule,
    epochs: Vec<(usize, EpochDiff)>,
    cur: Option<(usize, EpochDiff)>,
    cur_flow: Option<FlowBuilder>,
}

impl EpochsParser {
    pub(crate) fn new(rule: IndexRule) -> Self {
        EpochsParser {
            rule,
            epochs: Vec::new(),
            cur: None,
            cur_flow: None,
        }
    }

    fn flush_flow(&mut self) -> Result<(), IoError> {
        if let Some(f) = self.cur_flow.take() {
            self.cur
                .as_mut()
                .expect("flow inside an epoch")
                .1
                .flows
                .push(f.finish()?);
        }
        Ok(())
    }

    fn flush_epoch(&mut self) -> Result<(), IoError> {
        self.flush_flow()?;
        if let Some(ep) = self.cur.take() {
            self.epochs.push(ep);
        }
        Ok(())
    }

    /// Consumes a line if its keyword belongs to the epoch-body grammar;
    /// returns `Ok(false)` (without touching the cursor further) when the
    /// keyword is not ours. The caller runs `Cursor::finish`.
    pub(crate) fn try_line(&mut self, kw: &str, c: &mut Cursor) -> Result<bool, IoError> {
        match kw {
            "epoch" => {
                self.flush_epoch()?;
                let index: usize = c.parse("epoch index")?;
                match self.rule {
                    IndexRule::ConsecutiveFromZero => {
                        if index != self.epochs.len() {
                            return Err(perr(
                                c.line,
                                format!(
                                    "epoch index {index} out of order (expected {})",
                                    self.epochs.len()
                                ),
                            ));
                        }
                    }
                    IndexRule::StrictlyIncreasing => {
                        if let Some((prev, _)) = self.epochs.last() {
                            if index <= *prev {
                                return Err(perr(
                                    c.line,
                                    format!("epoch index {index} not increasing (after {prev})"),
                                ));
                            }
                        }
                    }
                }
                let label = if c.at_end() {
                    None
                } else {
                    c.expect("label")?;
                    Some(c.string("epoch label")?)
                };
                self.cur = Some((
                    index,
                    EpochDiff {
                        label,
                        ..Default::default()
                    },
                ));
            }
            "rib" => {
                self.flush_flow()?;
                let line = c.line;
                let d = parse_diff_weight(c)?;
                let e = parse_rib_entry(c)?;
                self.cur
                    .as_mut()
                    .ok_or_else(|| perr(line, "rib outside an epoch"))?
                    .1
                    .rib
                    .push((e, d));
            }
            "fib" => {
                self.flush_flow()?;
                let line = c.line;
                let d = parse_diff_weight(c)?;
                let e = parse_fib_entry(c)?;
                self.cur
                    .as_mut()
                    .ok_or_else(|| perr(line, "fib outside an epoch"))?
                    .1
                    .fib
                    .push((e, d));
            }
            "flow" => {
                self.flush_flow()?;
                let line = c.line;
                if self.cur.is_none() {
                    return Err(perr(line, "flow outside an epoch"));
                }
                let src = c.string("source device")?;
                c.expect("example")?;
                let example = Flow {
                    src: c.ip("example source address")?,
                    dst: c.ip("example destination address")?,
                    proto: c.parse("example protocol")?,
                    src_port: c.parse("example source port")?,
                    dst_port: c.parse("example destination port")?,
                };
                self.cur_flow = Some(FlowBuilder {
                    src,
                    example,
                    headers: Vec::new(),
                    before: None,
                    after: None,
                    line,
                });
            }
            "header" => {
                let line = c.line;
                let h = c.string("header description")?;
                self.cur_flow
                    .as_mut()
                    .ok_or_else(|| perr(line, "header outside a flow record"))?
                    .headers
                    .push(h);
            }
            "before" | "after" => {
                let line = c.line;
                let outcomes = parse_outcomes(c)?;
                let f = self
                    .cur_flow
                    .as_mut()
                    .ok_or_else(|| perr(line, format!("{kw} outside a flow record")))?;
                let slot = if kw == "before" {
                    &mut f.before
                } else {
                    &mut f.after
                };
                if slot.is_some() {
                    return Err(perr(line, format!("duplicate {kw} line in a flow record")));
                }
                *slot = Some(outcomes);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Completes any in-progress epoch and returns the indexed stream.
    pub(crate) fn finish(mut self) -> Result<Vec<(usize, EpochDiff)>, IoError> {
        self.flush_epoch()?;
        Ok(self.epochs)
    }
}

/// Parses a report artifact (requires the `end` sentinel).
pub fn parse_report(text: &str) -> Result<Report, IoError> {
    let mut lines = parse_header(text, Artifact::Report)?;
    let mut epochs = EpochsParser::new(IndexRule::ConsecutiveFromZero);
    while let Some(mut c) = lines.next_cursor()? {
        let kw = c.word("keyword")?;
        if kw == "end" {
            c.finish()?;
            if let Some(c) = lines.next_cursor()? {
                return Err(perr(c.line, "content after end sentinel"));
            }
            return Ok(Report {
                epochs: epochs.finish()?.into_iter().map(|(_, ep)| ep).collect(),
            });
        }
        if !epochs.try_line(&kw, &mut c)? {
            return Err(perr(c.line, format!("unknown report keyword {kw:?}")));
        }
        c.finish()?;
    }
    Err(IoError::Truncated {
        expected: "end sentinel of the report artifact".into(),
    })
}
