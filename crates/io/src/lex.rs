//! Lexical layer of the wire format: line/token iteration on the read
//! side, string quoting on the write side.
//!
//! A body line is a sequence of whitespace-separated tokens. Bare tokens
//! carry numbers, addresses, keywords and punctuation-free atoms; quoted
//! tokens (`"…"` with `\\`, `\"`, `\n`, `\r`, `\t` and `\u{…}` escapes)
//! carry arbitrary names, so every Rust `String` round-trips — including
//! embedded newlines and quotes. Leading indentation is cosmetic and
//! ignored; blank lines and lines starting with `;` are skipped.

use crate::error::{perr, IoError};
use net_model::{Ipv4Addr, Ipv4Prefix};

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    /// A bare (unquoted) token.
    Word(String),
    /// A quoted string, unescaped.
    Str(String),
}

/// Quotes and escapes a string for the wire.
pub(crate) fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{{{:x}}}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lexes one line into tokens.
pub(crate) fn lex_line(line: &str, line_no: usize) -> Result<Vec<Tok>, IoError> {
    let mut toks = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        let Some(&c) = chars.peek() else { break };
        if c == '"' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    None => return Err(perr(line_no, "unterminated string")),
                    Some('"') => break,
                    Some('\\') => match chars.next() {
                        Some('"') => s.push('"'),
                        Some('\\') => s.push('\\'),
                        Some('n') => s.push('\n'),
                        Some('r') => s.push('\r'),
                        Some('t') => s.push('\t'),
                        Some('u') => {
                            if chars.next() != Some('{') {
                                return Err(perr(line_no, "bad \\u escape: expected '{'"));
                            }
                            let mut hex = String::new();
                            loop {
                                match chars.next() {
                                    Some('}') => break,
                                    Some(h) if h.is_ascii_hexdigit() => hex.push(h),
                                    _ => return Err(perr(line_no, "bad \\u escape digits")),
                                }
                            }
                            let v = u32::from_str_radix(&hex, 16)
                                .map_err(|_| perr(line_no, "bad \\u escape value"))?;
                            let c = char::from_u32(v)
                                .ok_or_else(|| perr(line_no, "\\u escape is not a char"))?;
                            s.push(c);
                        }
                        other => {
                            return Err(perr(line_no, format!("unknown escape {other:?}")));
                        }
                    },
                    Some(c) => s.push(c),
                }
            }
            toks.push(Tok::Str(s));
        } else {
            let mut w = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() || c == '"' {
                    break;
                }
                w.push(c);
                chars.next();
            }
            toks.push(Tok::Word(w));
        }
    }
    Ok(toks)
}

/// A cursor over the tokens of one line, with typed getters that produce
/// located [`IoError::Parse`] failures.
pub(crate) struct Cursor {
    toks: std::vec::IntoIter<Tok>,
    /// 1-based line number, for error messages.
    pub line: usize,
}

impl Cursor {
    pub(crate) fn new(toks: Vec<Tok>, line: usize) -> Self {
        Cursor {
            toks: toks.into_iter(),
            line,
        }
    }

    fn next_tok(&mut self, what: &str) -> Result<Tok, IoError> {
        self.toks
            .next()
            .ok_or_else(|| perr(self.line, format!("expected {what}, found end of line")))
    }

    /// Next token as a bare word.
    pub(crate) fn word(&mut self, what: &str) -> Result<String, IoError> {
        match self.next_tok(what)? {
            Tok::Word(w) => Ok(w),
            Tok::Str(s) => Err(perr(
                self.line,
                format!("expected {what}, found string {s:?}"),
            )),
        }
    }

    /// Next token must be this exact bare word.
    pub(crate) fn expect(&mut self, kw: &str) -> Result<(), IoError> {
        let w = self.word(&format!("keyword {kw:?}"))?;
        if w == kw {
            Ok(())
        } else {
            Err(perr(
                self.line,
                format!("expected keyword {kw:?}, found {w:?}"),
            ))
        }
    }

    /// Next token as a quoted string.
    pub(crate) fn string(&mut self, what: &str) -> Result<String, IoError> {
        match self.next_tok(what)? {
            Tok::Str(s) => Ok(s),
            Tok::Word(w) => Err(perr(
                self.line,
                format!("expected quoted {what}, found {w:?}"),
            )),
        }
    }

    /// `-` for `None`, a quoted string for `Some`.
    pub(crate) fn opt_string(&mut self, what: &str) -> Result<Option<String>, IoError> {
        match self.next_tok(what)? {
            Tok::Word(w) if w == "-" => Ok(None),
            Tok::Str(s) => Ok(Some(s)),
            Tok::Word(w) => Err(perr(
                self.line,
                format!("expected quoted {what} or '-', found {w:?}"),
            )),
        }
    }

    /// Next token parsed with `FromStr`.
    pub(crate) fn parse<T: std::str::FromStr>(&mut self, what: &str) -> Result<T, IoError> {
        let w = self.word(what)?;
        w.parse()
            .map_err(|_| perr(self.line, format!("bad {what}: {w:?}")))
    }

    /// IPv4 address token.
    pub(crate) fn ip(&mut self, what: &str) -> Result<Ipv4Addr, IoError> {
        self.parse(what)
    }

    /// IPv4 prefix token (`a.b.c.d/len`).
    pub(crate) fn prefix(&mut self, what: &str) -> Result<Ipv4Prefix, IoError> {
        self.parse(what)
    }

    /// Comma-separated `u32` list token, `-` for empty.
    pub(crate) fn u32_list(&mut self, what: &str) -> Result<Vec<u32>, IoError> {
        let w = self.word(what)?;
        if w == "-" {
            return Ok(Vec::new());
        }
        w.split(',')
            .map(|p| {
                p.parse()
                    .map_err(|_| perr(self.line, format!("bad {what} element {p:?}")))
            })
            .collect()
    }

    /// Whether any tokens remain.
    pub(crate) fn at_end(&self) -> bool {
        self.toks.as_slice().is_empty()
    }

    /// Asserts the line is fully consumed.
    pub(crate) fn finish(mut self) -> Result<(), IoError> {
        match self.toks.next() {
            None => Ok(()),
            Some(t) => Err(perr(self.line, format!("trailing token {t:?}"))),
        }
    }
}

/// Iterates body lines of an artifact: skips blanks and `;` comments,
/// tracks line numbers, and lexes each remaining line.
pub(crate) struct Lines<'a> {
    inner: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Lines<'a> {
    pub(crate) fn new(text: &'a str) -> Self {
        Lines {
            inner: text.lines().enumerate(),
        }
    }

    /// The next meaningful line as a [`Cursor`], or `None` at end of input.
    pub(crate) fn next_cursor(&mut self) -> Result<Option<Cursor>, IoError> {
        for (idx, raw) in self.inner.by_ref() {
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with(';') {
                continue;
            }
            let toks = lex_line(trimmed, idx + 1)?;
            return Ok(Some(Cursor::new(toks, idx + 1)));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_round_trips_awkward_strings() {
        for s in [
            "plain",
            "with space",
            "quo\"te",
            "back\\slash",
            "new\nline",
            "tab\there",
            "bell\u{7}",
            "uni—code ✓",
            "",
        ] {
            let quoted = quote(s);
            let toks = lex_line(&quoted, 1).unwrap();
            assert_eq!(toks, vec![Tok::Str(s.to_string())], "for {s:?}");
        }
    }

    #[test]
    fn words_and_strings_mix() {
        let toks = lex_line("iface \"eth0\" 10.0.0.1 -", 3).unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Word("iface".into()),
                Tok::Str("eth0".into()),
                Tok::Word("10.0.0.1".into()),
                Tok::Word("-".into()),
            ]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(matches!(
            lex_line("\"oops", 7),
            Err(IoError::Parse { line: 7, .. })
        ));
    }

    #[test]
    fn cursor_typed_getters() {
        let toks = lex_line("static 10.0.0.0/8 via 1.2.3.4 ad 1", 1).unwrap();
        let mut c = Cursor::new(toks, 1);
        c.expect("static").unwrap();
        assert_eq!(c.prefix("prefix").unwrap(), net_model::pfx("10.0.0.0/8"));
        c.expect("via").unwrap();
        assert_eq!(c.ip("next hop").unwrap(), net_model::ip("1.2.3.4"));
        c.expect("ad").unwrap();
        assert_eq!(c.parse::<u8>("distance").unwrap(), 1);
        c.finish().unwrap();
    }

    #[test]
    fn trailing_tokens_rejected() {
        let toks = lex_line("drop extra", 2).unwrap();
        let mut c = Cursor::new(toks, 2);
        c.expect("drop").unwrap();
        assert!(c.finish().is_err());
    }
}
