//! The `notify` artifact: pushed (or polled) deltas of a standing query.
//!
//! A subscription (`subscribe …`, query v5) names a question the server
//! keeps answering incrementally; whenever an applied commit changes the
//! answer, the session emits one `notify` artifact carrying the
//! subscription id, the session name and the changed answers — one event
//! per commit, reusing the reach outcome grammar so pushed bytes are
//! directly comparable to polled `ok reach` payloads. The same artifact
//! answers `subscribe` / `unsubscribe` (zero events, echoing the id) and
//! the `notifications <id>` poll (all events since the last drain). A
//! `resync` event marks a gap: the bounded delivery queue overflowed and
//! `dropped` older events were discarded, so the subscriber should
//! re-poll full state.
//!
//! Like every artifact the encoding is canonical — events serialize in
//! order, outcome sets sort — so a pushed stream and a poll-after-every-
//! epoch drain of the same subscription are byte-identical.

use crate::codec::{fmt_outcomes, parse_header, parse_outcomes, W};
use crate::error::{perr, IoError};
use crate::lex::quote;
use crate::Artifact;
use data_plane::Outcome;
use std::collections::BTreeSet;

/// One delivery of standing-query deltas for a single subscription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notify {
    /// The subscription this delivery belongs to (per-session ids,
    /// assigned by the server at `subscribe` time, starting at 1).
    pub subscription: u64,
    /// The session that owns the subscription (resolved name, never the
    /// default-session shorthand).
    pub session: String,
    /// Changed answers, oldest first. Empty for subscribe/unsubscribe
    /// acknowledgements and for polls that drained nothing.
    pub events: Vec<NotifyEvent>,
}

/// One changed answer (or gap marker) of a standing query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NotifyEvent {
    /// A reach-like subscription (`reach`, `reach-pair`) changed its
    /// outcome set at the given commit.
    Reach {
        /// Absolute index of the commit that changed the answer (the
        /// first stream epoch of a coalesced commit).
        epoch: u64,
        /// The new outcome set, canonical (sorted).
        outcomes: BTreeSet<Outcome>,
    },
    /// A blast subscription observed flow diffs sourced at its device.
    Blast {
        /// Absolute index of the commit.
        epoch: u64,
        /// Flow diffs sourced at the subscribed device in this commit.
        flows: u64,
    },
    /// An invariant subscription re-evaluated to a changed outcome set.
    Invariant {
        /// Absolute index of the commit.
        epoch: u64,
        /// Whether the invariant holds under the new answer.
        holds: bool,
        /// The new outcome set the verdict was derived from.
        outcomes: BTreeSet<Outcome>,
    },
    /// The bounded delivery queue overflowed: `dropped` older events
    /// were discarded before this drain. Subscribers should treat the
    /// stream as gapped and re-establish state by polling.
    Resync {
        /// Absolute index of the newest commit whose event was dropped.
        epoch: u64,
        /// How many events were discarded.
        dropped: u64,
    },
}

impl NotifyEvent {
    /// The commit index the event is anchored to.
    pub fn epoch(&self) -> u64 {
        match self {
            NotifyEvent::Reach { epoch, .. }
            | NotifyEvent::Blast { epoch, .. }
            | NotifyEvent::Invariant { epoch, .. }
            | NotifyEvent::Resync { epoch, .. } => *epoch,
        }
    }
}

/// Serializes a notify artifact (canonical bytes).
pub fn write_notify(n: &Notify) -> String {
    let mut w = W::new(Artifact::Notify);
    w.line(
        1,
        &format!(
            "subscription {} session {}",
            n.subscription,
            quote(&n.session)
        ),
    );
    for ev in &n.events {
        let line = match ev {
            NotifyEvent::Reach { epoch, outcomes } => {
                format!("event {epoch} reach {}", fmt_outcomes(outcomes.iter()))
            }
            NotifyEvent::Blast { epoch, flows } => format!("event {epoch} blast {flows}"),
            NotifyEvent::Invariant {
                epoch,
                holds,
                outcomes,
            } => format!(
                "event {epoch} invariant {} {}",
                if *holds { "holds" } else { "violated" },
                fmt_outcomes(outcomes.iter())
            ),
            NotifyEvent::Resync { epoch, dropped } => {
                format!("resync {epoch} dropped {dropped}")
            }
        };
        w.line(1, &line);
    }
    w.finish()
}

/// Parses a notify artifact (requires the `end` sentinel).
pub fn parse_notify(text: &str) -> Result<Notify, IoError> {
    let mut lines = parse_header(text, Artifact::Notify)?;
    let Some(mut c) = lines.next_cursor()? else {
        return Err(IoError::Truncated {
            expected: "the subscription line of the notify artifact".into(),
        });
    };
    c.expect("subscription")?;
    let subscription = c.parse("subscription id")?;
    c.expect("session")?;
    let session = c.string("session name")?;
    c.finish()?;
    let mut events = Vec::new();
    loop {
        let Some(mut c) = lines.next_cursor()? else {
            return Err(IoError::Truncated {
                expected: "end sentinel of the notify artifact".into(),
            });
        };
        let kw = c.word("keyword")?;
        match kw.as_str() {
            "end" => {
                c.finish()?;
                if let Some(c) = lines.next_cursor()? {
                    return Err(perr(c.line, "content after end sentinel"));
                }
                return Ok(Notify {
                    subscription,
                    session,
                    events,
                });
            }
            "event" => {
                let epoch = c.parse("commit index")?;
                let what = c.word("event kind")?;
                let ev = match what.as_str() {
                    "reach" => NotifyEvent::Reach {
                        epoch,
                        outcomes: parse_outcomes(&mut c)?,
                    },
                    "blast" => NotifyEvent::Blast {
                        epoch,
                        flows: c.parse("flow count")?,
                    },
                    "invariant" => {
                        let verdict = c.word("holds|violated")?;
                        let holds = match verdict.as_str() {
                            "holds" => true,
                            "violated" => false,
                            other => {
                                return Err(perr(
                                    c.line,
                                    format!("expected holds|violated, found {other:?}"),
                                ))
                            }
                        };
                        NotifyEvent::Invariant {
                            epoch,
                            holds,
                            outcomes: parse_outcomes(&mut c)?,
                        }
                    }
                    other => return Err(perr(c.line, format!("unknown event kind {other:?}"))),
                };
                events.push(ev);
            }
            "resync" => {
                let epoch = c.parse("commit index")?;
                c.expect("dropped")?;
                let dropped = c.parse("dropped count")?;
                events.push(NotifyEvent::Resync { epoch, dropped });
            }
            other => return Err(perr(c.line, format!("unknown notify keyword {other:?}"))),
        }
        c.finish()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Notify {
        Notify {
            subscription: 3,
            session: "scenario a".into(),
            events: vec![
                NotifyEvent::Reach {
                    epoch: 4,
                    outcomes: [
                        Outcome::Delivered("edge1_1".into()),
                        Outcome::Blackhole("agg 0".into()),
                        Outcome::Loop,
                    ]
                    .into_iter()
                    .collect(),
                },
                NotifyEvent::Blast { epoch: 5, flows: 7 },
                NotifyEvent::Invariant {
                    epoch: 6,
                    holds: false,
                    outcomes: [Outcome::Delivered("edge1_1".into())].into_iter().collect(),
                },
                NotifyEvent::Resync {
                    epoch: 9,
                    dropped: 12,
                },
                NotifyEvent::Reach {
                    epoch: 10,
                    outcomes: BTreeSet::new(),
                },
            ],
        }
    }

    #[test]
    fn notify_round_trips_canonically() {
        let n = sample();
        let text = write_notify(&n);
        let back = parse_notify(&text).expect("parses");
        assert_eq!(back, n);
        assert_eq!(write_notify(&back), text);
        // An acknowledgement (no events) round-trips too.
        let ack = Notify {
            subscription: 1,
            session: "s".into(),
            events: Vec::new(),
        };
        assert_eq!(parse_notify(&write_notify(&ack)).unwrap(), ack);
    }

    #[test]
    fn notify_body_lines_are_never_bare_end() {
        // Stream framing splits artifacts on exact `end` lines; every
        // body line of a notify is indented, so no payload can forge the
        // sentinel.
        let text = write_notify(&sample());
        let bare_ends = text.lines().filter(|l| l.trim() == "end").count();
        assert_eq!(bare_ends, 1);
        assert!(text.ends_with("\nend\n"));
    }

    #[test]
    fn malformed_notifies_are_typed_errors() {
        assert!(matches!(
            parse_notify("dna-io v1 notify\nend\n"),
            Err(IoError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_notify("dna-io v1 notify\n  subscription 1 session \"s\"\n"),
            Err(IoError::Truncated { .. })
        ));
        assert!(matches!(
            parse_notify("dna-io v1 notify\n"),
            Err(IoError::Truncated { .. })
        ));
        assert!(matches!(
            parse_notify(
                "dna-io v1 notify\n  subscription 1 session \"s\"\n  event 0 frobnicate\nend\n"
            ),
            Err(IoError::Parse { line: 3, .. })
        ));
        assert!(matches!(
            parse_notify(
                "dna-io v1 notify\n  subscription 1 session \"s\"\n  event 0 invariant maybe -\nend\n"
            ),
            Err(IoError::Parse { line: 3, .. })
        ));
        assert!(matches!(
            parse_notify("dna-io v2 notify\n  subscription 1 session \"s\"\nend\n"),
            Err(IoError::UnsupportedVersion(2))
        ));
        assert!(matches!(
            parse_notify("dna-io v3 response\nend\n"),
            Err(IoError::WrongArtifact { .. })
        ));
        // Content after the end sentinel is rejected.
        assert!(matches!(
            parse_notify(
                "dna-io v1 notify\n  subscription 1 session \"s\"\nend\nevent 0 blast 1\n"
            ),
            Err(IoError::Parse { line: 4, .. })
        ));
    }
}
