//! Incremental trace framing for file-tail ingest (`dna serve
//! --follow`).
//!
//! A growing trace file is one `trace` artifact whose epochs are
//! appended over time and whose closing `end` sentinel arrives last. A
//! [`TraceTail`] consumes such a file in arbitrary chunks and yields
//! each epoch as soon as it is *complete* — an epoch only closes when
//! the next top-level `epoch` line (or the `end` sentinel) appears,
//! since until then more change lines may still be written to it.
//!
//! Framing relies on the format's indentation contract: epoch headers
//! and the `end` sentinel are the only unindented body lines of a trace
//! artifact (change lines and route-map clauses are indented). Each
//! completed block is re-parsed through [`crate::parse_trace`], so the
//! tailer accepts exactly the language the batch parser accepts.

use crate::error::{perr, IoError};
use crate::trace::{parse_trace, TraceEpoch};

/// Incremental, chunk-at-a-time reader of a growing trace artifact.
#[derive(Debug, Default)]
pub struct TraceTail {
    /// Trailing bytes of the last chunk that did not end in a newline.
    partial: String,
    /// The artifact's header line (plus any leading comments), once
    /// seen and validated.
    header: Option<String>,
    /// Lines of the currently-open epoch block.
    block: String,
    /// File line number of the open block's first line.
    block_start: usize,
    /// 1-based number of the last fully-consumed line.
    line: usize,
    /// Whether the closing `end` sentinel has been consumed.
    finished: bool,
}

impl TraceTail {
    /// A tailer at the start of a trace file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the artifact's closing `end` sentinel has been seen;
    /// after that, [`TraceTail::feed`] rejects further meaningful input.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Whether buffered input is still waiting for its closing
    /// boundary (an open epoch block or an unterminated line).
    pub fn pending(&self) -> bool {
        !self.finished
            && (!self.partial.trim().is_empty() || self.block.lines().any(|l| !l.trim().is_empty()))
    }

    /// Resets the framer for a **rotated** file: the follower detected
    /// that the tailed path now names a different (or truncated) file,
    /// which by the follow contract is a fresh trace artifact written
    /// from its first byte. Everything buffered from the old file is
    /// discarded — a half-open epoch that never reached its boundary
    /// before rotation was never complete, and a completed-but-unread
    /// epoch no longer exists to read. Epochs already yielded are
    /// unaffected; the next [`TraceTail::feed`] expects a header line.
    pub fn rotate(&mut self) {
        *self = Self::default();
    }

    /// Call at end-of-input: a final `end` sentinel written without a
    /// trailing newline is already complete (no top-level trace line
    /// begins with `end` except the sentinel itself), so consume it —
    /// the batch parser accepts such files and the tailer must too.
    /// Any other partial line keeps waiting; a tailer cannot know
    /// whether a writer will extend it.
    pub fn finish_eof(&mut self) -> Result<Vec<TraceEpoch>, IoError> {
        // Top-level check mirrors `consume_line`: an indented "end" is
        // a (malformed) block line, not the sentinel.
        if !self.finished && self.partial.trim_end() == "end" {
            return self.feed("\n");
        }
        Ok(Vec::new())
    }

    /// Consumes the next chunk of the file, returning every epoch that
    /// completed. Chunks may split anywhere, even mid-line.
    pub fn feed(&mut self, chunk: &str) -> Result<Vec<TraceEpoch>, IoError> {
        self.partial.push_str(chunk);
        let mut epochs = Vec::new();
        while let Some(eol) = self.partial.find('\n') {
            let line: String = self.partial.drain(..=eol).collect();
            self.line += 1;
            self.consume_line(&line, &mut epochs)?;
        }
        Ok(epochs)
    }

    fn consume_line(&mut self, line: &str, epochs: &mut Vec<TraceEpoch>) -> Result<(), IoError> {
        let meaningful = {
            let t = line.trim();
            !(t.is_empty() || t.starts_with(';'))
        };
        if self.finished {
            if meaningful {
                return Err(perr(self.line, "content after end sentinel"));
            }
            return Ok(());
        }
        if self.header.is_none() {
            self.block.push_str(line);
            if meaningful {
                // The first meaningful line must be the trace header;
                // validating it now (against an empty body) surfaces
                // wrong-kind or wrong-version files immediately.
                parse_trace(&format!("{}end\n", self.block))?;
                self.header = Some(std::mem::take(&mut self.block));
            }
            return Ok(());
        }
        let top_level = meaningful && !line.starts_with([' ', '\t']);
        let t = line.trim();
        if top_level && t == "end" {
            self.flush(epochs)?;
            self.finished = true;
        } else {
            if top_level && (t == "epoch" || t.starts_with("epoch ")) {
                self.flush(epochs)?;
            }
            if self.block.is_empty() {
                self.block_start = self.line;
            }
            self.block.push_str(line);
        }
        Ok(())
    }

    /// Parses and drains the open block (a no-op when it holds no
    /// meaningful lines).
    fn flush(&mut self, epochs: &mut Vec<TraceEpoch>) -> Result<(), IoError> {
        let block = std::mem::take(&mut self.block);
        let meaningful = block.lines().any(|l| {
            let t = l.trim();
            !(t.is_empty() || t.starts_with(';'))
        });
        if !meaningful {
            return Ok(());
        }
        let header = self.header.as_deref().expect("flush only after header");
        // A parse error reports a line in the synthetic header+block
        // document; remap it onto the real file line so the operator is
        // pointed at the actual bad line of the tailed trace.
        let header_lines = header.lines().count();
        let parsed = parse_trace(&format!("{header}{block}end\n")).map_err(|e| match e {
            IoError::Parse { line, message } if line > header_lines => IoError::Parse {
                line: (self.block_start + (line - header_lines - 1)).min(self.line),
                message,
            },
            other => other,
        })?;
        epochs.extend(parsed.epochs);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{write_trace, Trace};
    use net_model::{Change, ChangeSet};

    fn sample_trace() -> Trace {
        Trace::from_labeled(vec![
            (
                "one".to_string(),
                ChangeSet::single(Change::DeviceDown("r1".into())),
            ),
            (
                "two".to_string(),
                ChangeSet::single(Change::DeviceUp("r1".into())),
            ),
            (
                "three".to_string(),
                ChangeSet::single(Change::SetRouteMap {
                    device: "r1".into(),
                    name: "rm".into(),
                    map: net_model::RouteMap::permit_all(),
                }),
            ),
        ])
    }

    /// Feeding byte-at-a-time must yield exactly the batch parse, with
    /// each epoch emitted only once its closing boundary arrives.
    #[test]
    fn tail_yields_batch_parse_at_any_chunking() {
        let text = write_trace(&sample_trace());
        for chunk_size in [1, 2, 7, text.len()] {
            let mut tail = TraceTail::new();
            let mut got = Vec::new();
            let bytes = text.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                let end = (i + chunk_size).min(bytes.len());
                let chunk = std::str::from_utf8(&bytes[i..end]).unwrap();
                got.extend(tail.feed(chunk).expect("chunk parses"));
                i = end;
            }
            assert!(tail.finished());
            assert!(!tail.pending());
            assert_eq!(got, sample_trace().epochs, "chunk size {chunk_size}");
        }
    }

    /// An epoch stays pending until the next boundary line shows up —
    /// the property --follow relies on to never ingest a half-written
    /// epoch.
    #[test]
    fn epochs_close_only_at_the_next_boundary() {
        let mut tail = TraceTail::new();
        let fed = tail
            .feed("dna-io v1 trace\nepoch label \"a\"\n  device-down \"r1\"\n")
            .unwrap();
        assert!(fed.is_empty(), "open epoch must not be emitted");
        assert!(tail.pending());
        let fed = tail.feed("epoch label \"b\"\n").unwrap();
        assert_eq!(fed.len(), 1);
        assert_eq!(fed[0].label.as_deref(), Some("a"));
        let fed = tail.feed("end\n").unwrap();
        assert_eq!(fed.len(), 1);
        assert_eq!(fed[0].label.as_deref(), Some("b"));
        assert!(tail.finished());
    }

    /// A file whose closing `end` lacks a trailing newline parses in
    /// batch mode, so the tailer must finish on it too (via
    /// `finish_eof` at end-of-input) instead of waiting forever.
    #[test]
    fn unterminated_end_sentinel_finishes_at_eof() {
        let text = write_trace(&sample_trace());
        let mut tail = TraceTail::new();
        let mut got = tail.feed(text.trim_end_matches('\n')).unwrap();
        assert!(!tail.finished(), "sentinel line is still open");
        got.extend(tail.finish_eof().unwrap());
        assert!(tail.finished());
        assert_eq!(got, sample_trace().epochs);
        // A partial non-sentinel line keeps waiting.
        let mut tail = TraceTail::new();
        tail.feed("dna-io v1 trace\nepoch label \"a\"\n  device-down")
            .unwrap();
        assert!(tail.finish_eof().unwrap().is_empty());
        assert!(!tail.finished());
        assert!(tail.pending());
    }

    /// Parse errors must point at the bad line's position in the
    /// *tailed file*, not in the synthetic per-block re-parse buffer.
    #[test]
    fn parse_errors_carry_real_file_line_numbers() {
        let mut tail = TraceTail::new();
        // Lines 1-5 are fine; line 6 holds the bad keyword. The error
        // only surfaces when the block closes (line 7).
        tail.feed("; a leading comment\ndna-io v1 trace\nepoch label \"a\"\n  device-down \"r1\"\nepoch label \"b\"\n  bogus-keyword\n")
            .unwrap();
        let err = tail.feed("end\n").unwrap_err();
        match err {
            IoError::Parse { line, message } => {
                assert_eq!(line, 6, "{message}");
                assert!(message.contains("bogus-keyword"), "{message}");
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    /// Rotation mid-stream: the tailer must drop every buffered
    /// artifact of the old file (half-open epoch, partial line, even
    /// its header) and frame the new file as a fresh trace from its
    /// first byte — the property `--follow` relies on to survive
    /// `logrotate`-style truncation or rename of the tailed file.
    #[test]
    fn rotate_discards_old_state_and_frames_the_new_file() {
        let mut tail = TraceTail::new();
        // Old file: one complete epoch (yielded), one half-open epoch
        // and a partial line (both buffered, never complete).
        let fed = tail
            .feed("dna-io v1 trace\nepoch label \"old-a\"\n  device-down \"r1\"\nepoch label \"old-b\"\n  device-d")
            .unwrap();
        assert_eq!(fed.len(), 1);
        assert_eq!(fed[0].label.as_deref(), Some("old-a"));
        assert!(tail.pending());
        tail.rotate();
        assert!(!tail.pending(), "rotation discards buffered state");
        assert!(!tail.finished());
        // New file: a complete trace, fed in awkward chunks spanning
        // the header boundary.
        let text = write_trace(&sample_trace());
        let (head, rest) = text.split_at(7);
        let mut got = tail.feed(head).unwrap();
        got.extend(tail.feed(rest).unwrap());
        assert!(tail.finished());
        assert_eq!(got, sample_trace().epochs);
        // Rotating again after a finished file starts over cleanly.
        tail.rotate();
        let got = tail.feed(&text).unwrap();
        assert_eq!(got, sample_trace().epochs);
    }

    /// A rotated-in replacement file must still be a *trace*: the
    /// fresh framer re-validates the header and rejects imposters.
    #[test]
    fn rotated_file_with_wrong_header_is_rejected() {
        let mut tail = TraceTail::new();
        tail.feed("dna-io v1 trace\nepoch\n").unwrap();
        tail.rotate();
        assert!(matches!(
            tail.feed("dna-io v1 snapshot\n"),
            Err(IoError::WrongArtifact { .. })
        ));
    }

    #[test]
    fn malformed_input_is_a_typed_error() {
        let mut tail = TraceTail::new();
        assert!(matches!(
            tail.feed("dna-io v1 snapshot\n"),
            Err(IoError::WrongArtifact { .. })
        ));
        let mut tail = TraceTail::new();
        tail.feed("dna-io v1 trace\nepoch\n").unwrap();
        assert!(tail.feed("garbage-keyword\nend\n").is_err());
        let mut tail = TraceTail::new();
        tail.feed("; comment\n\ndna-io v1 trace\nepoch\nend\n")
            .unwrap();
        assert!(tail.finished());
        assert!(tail.feed("epoch\n").is_err(), "content after end");
        assert!(tail.feed("; trailing comment ok\n").is_ok());
    }
}
