//! Typed errors of the wire format. Parsing never panics: every malformed,
//! truncated or wrong-version input maps to one of these variants.

use crate::Artifact;
use std::fmt;

/// Error reading a `dna-io` artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// The first non-blank line is not a well-formed `dna-io v<N> <kind>`
    /// header.
    BadHeader(String),
    /// The header names a format version this library does not speak.
    UnsupportedVersion(u32),
    /// The header names a different artifact than the caller asked for.
    WrongArtifact {
        /// What the caller tried to parse.
        expected: Artifact,
        /// What the header declared.
        found: Artifact,
    },
    /// A body line failed to parse.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The input ended before the closing `end` sentinel (or mid-section),
    /// i.e. the file was truncated.
    Truncated {
        /// What the parser was still waiting for.
        expected: String,
    },
    /// A structurally well-formed artifact carries a value that violates a
    /// documented cross-field invariant, or that cannot be represented on
    /// this host (counter overflow on a narrower target).
    Invalid {
        /// Which value, and what it violates.
        message: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::BadHeader(l) => write!(f, "bad header line: {l:?}"),
            IoError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported format version v{v} (this library speaks v1)"
                )
            }
            IoError::WrongArtifact { expected, found } => {
                write!(f, "expected a {expected} artifact, found a {found}")
            }
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::Truncated { expected } => {
                write!(f, "input truncated: expected {expected}")
            }
            IoError::Invalid { message } => write!(f, "invalid artifact value: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Shorthand for a [`IoError::Parse`] at a line.
pub(crate) fn perr(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}
