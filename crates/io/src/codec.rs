//! Shared sub-grammars: the scalar and composite encodings used by more
//! than one artifact (ACL entries, route maps, route attributes, FIB
//! actions, outcomes) plus the artifact header.

use crate::error::{perr, IoError};
use crate::lex::{quote, Cursor, Lines};
use crate::Artifact;
use control_plane::{FibAction, FibEntry, NextDevice, Proto, RibEntry};
use data_plane::Outcome;
use net_model::acl::{AclEntry, Action, FlowMatch, PortRange};
use net_model::route::{RmAction, RmMatch, RmSet, RouteMapClause};
use net_model::{Endpoint, Ipv4Prefix, Link, RouteAttrs, RouteMap};
use std::fmt::Write as _;

/// The base format version (snapshot, trace, report and checkpoint
/// artifacts). Kinds version independently — see [`artifact_version`]
/// and FORMAT.md "Versioning".
pub const FORMAT_VERSION: u32 = 1;

/// The grammar version of one artifact kind. The service protocol's
/// `query` kind is at v5 (v2 added the `checkpoint` command — new
/// keywords require a bump, since older readers reject unknown keywords
/// by design; v3 added the `metrics` and `trace` telemetry commands; v4
/// added the `health` and `history` commands; v5 added the `subscribe`,
/// `unsubscribe` and `notifications` standing-query commands) and
/// `response` is at v3 (v2 added the `ok checkpointed` payload; v3 added
/// the `failed` marker on `ok sessions` rows). The telemetry scrape
/// kinds `metrics`, `spans`, `history` and `health` and the
/// standing-query `notify` kind are new whole kinds, not extensions of
/// `response`, so introducing them bumped nothing else; every remaining
/// kind is still at its initial version.
pub fn artifact_version(kind: Artifact) -> u32 {
    match kind {
        Artifact::Query => 5,
        Artifact::Response => 3,
        Artifact::Snapshot
        | Artifact::Trace
        | Artifact::Report
        | Artifact::Checkpoint
        | Artifact::Metrics
        | Artifact::Spans
        | Artifact::History
        | Artifact::Health
        | Artifact::Notify => FORMAT_VERSION,
    }
}

/// Indented line writer for the canonical serializers.
pub(crate) struct W {
    out: String,
}

impl W {
    pub(crate) fn new(artifact: Artifact) -> Self {
        let mut w = W { out: String::new() };
        w.line(
            0,
            &format!("dna-io v{} {artifact}", artifact_version(artifact)),
        );
        w
    }

    /// Appends one raw, already-formatted line (used to embed the body
    /// of another artifact verbatim, e.g. a snapshot in a checkpoint).
    pub(crate) fn raw_line(&mut self, text: &str) {
        self.out.push_str(text);
        self.out.push('\n');
    }

    pub(crate) fn line(&mut self, depth: usize, text: &str) {
        for _ in 0..depth {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    /// Closes the artifact with the `end` sentinel and returns the text.
    pub(crate) fn finish(mut self) -> String {
        self.line(0, "end");
        self.out
    }
}

/// Parses the header line and checks version + artifact kind. Returns the
/// body line iterator positioned after the header.
pub(crate) fn parse_header(text: &str, expected: Artifact) -> Result<Lines<'_>, IoError> {
    let mut lines = Lines::new(text);
    let Some(mut c) = lines.next_cursor()? else {
        return Err(IoError::BadHeader(String::new()));
    };
    let magic = c
        .word("magic")
        .map_err(|_| IoError::BadHeader("missing magic".into()))?;
    if magic != "dna-io" {
        return Err(IoError::BadHeader(magic));
    }
    let vtok = c
        .word("version")
        .map_err(|_| IoError::BadHeader("missing version".into()))?;
    let version: u32 = vtok
        .strip_prefix('v')
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| IoError::BadHeader(format!("bad version token {vtok:?}")))?;
    let kind = c
        .word("artifact kind")
        .map_err(|_| IoError::BadHeader("missing artifact kind".into()))?;
    let found = match kind.as_str() {
        "snapshot" => Artifact::Snapshot,
        "trace" => Artifact::Trace,
        "report" => Artifact::Report,
        "query" => Artifact::Query,
        "response" => Artifact::Response,
        "checkpoint" => Artifact::Checkpoint,
        "metrics" => Artifact::Metrics,
        "spans" => Artifact::Spans,
        "history" => Artifact::History,
        "health" => Artifact::Health,
        "notify" => Artifact::Notify,
        other => return Err(IoError::BadHeader(format!("unknown artifact {other:?}"))),
    };
    // Versions are per-kind: check against the version of the kind the
    // header *declares*, so a future-versioned artifact reports
    // UnsupportedVersion rather than a misleading kind mismatch.
    if version != artifact_version(found) {
        return Err(IoError::UnsupportedVersion(version));
    }
    c.finish()?;
    if found != expected {
        return Err(IoError::WrongArtifact { expected, found });
    }
    Ok(lines)
}

// ---- scalar encodings -------------------------------------------------

pub(crate) fn fmt_opt_prefix(p: &Option<Ipv4Prefix>) -> String {
    match p {
        None => "-".into(),
        Some(p) => p.to_string(),
    }
}

pub(crate) fn parse_opt_prefix(c: &mut Cursor, what: &str) -> Result<Option<Ipv4Prefix>, IoError> {
    let w = c.word(what)?;
    if w == "-" {
        return Ok(None);
    }
    w.parse()
        .map(Some)
        .map_err(|_| perr(c.line, format!("bad {what}: {w:?}")))
}

pub(crate) fn fmt_opt_u8(v: &Option<u8>) -> String {
    match v {
        None => "-".into(),
        Some(v) => v.to_string(),
    }
}

pub(crate) fn parse_opt_u8(c: &mut Cursor, what: &str) -> Result<Option<u8>, IoError> {
    let w = c.word(what)?;
    if w == "-" {
        return Ok(None);
    }
    w.parse()
        .map(Some)
        .map_err(|_| perr(c.line, format!("bad {what}: {w:?}")))
}

pub(crate) fn fmt_opt_ports(r: &Option<PortRange>) -> String {
    match r {
        None => "-".into(),
        Some(r) => format!("{}-{}", r.lo, r.hi),
    }
}

pub(crate) fn parse_opt_ports(c: &mut Cursor, what: &str) -> Result<Option<PortRange>, IoError> {
    let w = c.word(what)?;
    if w == "-" {
        return Ok(None);
    }
    let (lo, hi) = w
        .split_once('-')
        .ok_or_else(|| perr(c.line, format!("bad {what}: {w:?}")))?;
    let lo = lo
        .parse()
        .map_err(|_| perr(c.line, format!("bad {what} low bound: {w:?}")))?;
    let hi = hi
        .parse()
        .map_err(|_| perr(c.line, format!("bad {what} high bound: {w:?}")))?;
    Ok(Some(PortRange { lo, hi }))
}

pub(crate) fn fmt_u32_list(vs: &[u32]) -> String {
    if vs.is_empty() {
        "-".into()
    } else {
        vs.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

pub(crate) fn fmt_opt_str(s: &Option<String>) -> String {
    match s {
        None => "-".into(),
        Some(s) => quote(s),
    }
}

// ---- links ------------------------------------------------------------

/// Formats a link's four endpoint tokens (shared by the snapshot and
/// trace artifacts).
pub(crate) fn fmt_link(l: &Link) -> String {
    format!(
        "{} {} {} {}",
        quote(&l.a.device),
        quote(&l.a.iface),
        quote(&l.b.device),
        quote(&l.b.iface)
    )
}

/// Parses a link's four endpoint tokens, re-canonicalizing orientation.
pub(crate) fn parse_link(c: &mut Cursor) -> Result<Link, IoError> {
    let ad = c.string("device")?;
    let ai = c.string("interface")?;
    let bd = c.string("device")?;
    let bi = c.string("interface")?;
    Ok(Link::new(Endpoint::new(&ad, &ai), Endpoint::new(&bd, &bi)))
}

// ---- ACL entries ------------------------------------------------------

pub(crate) fn fmt_acl_entry(e: &AclEntry) -> String {
    let action = match e.action {
        Action::Permit => "permit",
        Action::Deny => "deny",
    };
    format!(
        "{} {action} src {} dst {} proto {} sport {} dport {}",
        e.seq,
        fmt_opt_prefix(&e.matches.src),
        fmt_opt_prefix(&e.matches.dst),
        fmt_opt_u8(&e.matches.proto),
        fmt_opt_ports(&e.matches.src_ports),
        fmt_opt_ports(&e.matches.dst_ports),
    )
}

pub(crate) fn parse_acl_entry(c: &mut Cursor) -> Result<AclEntry, IoError> {
    let seq = c.parse("entry seq")?;
    let action = parse_action(c)?;
    c.expect("src")?;
    let src = parse_opt_prefix(c, "src prefix")?;
    c.expect("dst")?;
    let dst = parse_opt_prefix(c, "dst prefix")?;
    c.expect("proto")?;
    let proto = parse_opt_u8(c, "protocol")?;
    c.expect("sport")?;
    let src_ports = parse_opt_ports(c, "source port range")?;
    c.expect("dport")?;
    let dst_ports = parse_opt_ports(c, "destination port range")?;
    Ok(AclEntry {
        seq,
        action,
        matches: FlowMatch {
            src,
            dst,
            proto,
            src_ports,
            dst_ports,
        },
    })
}

fn parse_action(c: &mut Cursor) -> Result<Action, IoError> {
    let w = c.word("permit|deny")?;
    match w.as_str() {
        "permit" => Ok(Action::Permit),
        "deny" => Ok(Action::Deny),
        other => Err(perr(
            c.line,
            format!("expected permit|deny, found {other:?}"),
        )),
    }
}

// ---- route attributes -------------------------------------------------

pub(crate) fn fmt_route_attrs(a: &RouteAttrs) -> String {
    let comms: Vec<u32> = a.communities.iter().copied().collect();
    format!(
        "{} lp {} med {} origin {} path {} comm {}",
        a.prefix,
        a.local_pref,
        a.med,
        a.origin,
        fmt_u32_list(&a.as_path),
        fmt_u32_list(&comms),
    )
}

pub(crate) fn parse_route_attrs(c: &mut Cursor) -> Result<RouteAttrs, IoError> {
    let prefix = c.prefix("route prefix")?;
    c.expect("lp")?;
    let local_pref = c.parse("local preference")?;
    c.expect("med")?;
    let med = c.parse("MED")?;
    c.expect("origin")?;
    let origin = c.parse("origin code")?;
    c.expect("path")?;
    let as_path = c.u32_list("AS path")?;
    c.expect("comm")?;
    let communities = c.u32_list("communities")?.into_iter().collect();
    Ok(RouteAttrs {
        prefix,
        local_pref,
        as_path,
        med,
        origin,
        communities,
    })
}

// ---- route maps -------------------------------------------------------

/// Emits the clause lines of a route map at `depth`.
pub(crate) fn write_route_map(w: &mut W, depth: usize, map: &RouteMap) {
    for cl in &map.clauses {
        let action = match cl.action {
            RmAction::Permit => "permit",
            RmAction::Deny => "deny",
        };
        w.line(depth, &format!("clause {} {action}", cl.seq));
        for m in &cl.matches {
            let text = match m {
                RmMatch::Prefix { covering, ge, le } => {
                    format!("match-prefix {covering} {ge} {le}")
                }
                RmMatch::Community(c) => format!("match-community {c}"),
                RmMatch::AsPathContains(asn) => format!("match-as-path {asn}"),
            };
            w.line(depth + 1, &text);
        }
        for s in &cl.sets {
            let text = match s {
                RmSet::LocalPref(v) => format!("set-local-pref {v}"),
                RmSet::Med(v) => format!("set-med {v}"),
                RmSet::AddCommunity(v) => format!("set-add-community {v}"),
                RmSet::DeleteCommunity(v) => format!("set-del-community {v}"),
                RmSet::AsPathPrepend { asn, count } => format!("set-prepend {asn} {count}"),
            };
            w.line(depth + 1, &text);
        }
    }
}

/// Incremental route-map parser: feed it every `clause` / `match-*` /
/// `set-*` line; anything else ends the map.
pub(crate) struct RouteMapBuilder {
    clauses: Vec<RouteMapClause>,
    cur: Option<RouteMapClause>,
}

impl RouteMapBuilder {
    pub(crate) fn new() -> Self {
        RouteMapBuilder {
            clauses: Vec::new(),
            cur: None,
        }
    }

    /// Consumes a line if its keyword belongs to the route-map grammar.
    /// Returns `Ok(true)` when consumed.
    pub(crate) fn try_line(&mut self, kw: &str, c: &mut Cursor) -> Result<bool, IoError> {
        if kw == "clause" {
            let seq = c.parse("clause seq")?;
            let w = c.word("permit|deny")?;
            let action = match w.as_str() {
                "permit" => RmAction::Permit,
                "deny" => RmAction::Deny,
                other => {
                    return Err(perr(
                        c.line,
                        format!("expected permit|deny, found {other:?}"),
                    ))
                }
            };
            if let Some(done) = self.cur.take() {
                self.clauses.push(done);
            }
            self.cur = Some(RouteMapClause {
                seq,
                matches: Vec::new(),
                action,
                sets: Vec::new(),
            });
            return Ok(true);
        }
        if !matches!(
            kw,
            "match-prefix"
                | "match-community"
                | "match-as-path"
                | "set-local-pref"
                | "set-med"
                | "set-add-community"
                | "set-del-community"
                | "set-prepend"
        ) {
            return Ok(false);
        }
        let line = c.line;
        let cur = self
            .cur
            .as_mut()
            .ok_or_else(|| perr(line, format!("{kw} outside a clause")))?;
        match kw {
            "match-prefix" => {
                let covering = c.prefix("covering prefix")?;
                let ge = c.parse("ge bound")?;
                let le = c.parse("le bound")?;
                cur.matches.push(RmMatch::Prefix { covering, ge, le });
            }
            "match-community" => cur.matches.push(RmMatch::Community(c.parse("community")?)),
            "match-as-path" => cur
                .matches
                .push(RmMatch::AsPathContains(c.parse("AS number")?)),
            "set-local-pref" => cur
                .sets
                .push(RmSet::LocalPref(c.parse("local preference")?)),
            "set-med" => cur.sets.push(RmSet::Med(c.parse("MED")?)),
            "set-add-community" => cur.sets.push(RmSet::AddCommunity(c.parse("community")?)),
            "set-del-community" => cur.sets.push(RmSet::DeleteCommunity(c.parse("community")?)),
            "set-prepend" => {
                let asn = c.parse("AS number")?;
                let count = c.parse("prepend count")?;
                cur.sets.push(RmSet::AsPathPrepend { asn, count });
            }
            _ => unreachable!("keyword list above"),
        }
        Ok(true)
    }

    pub(crate) fn finish(mut self) -> RouteMap {
        if let Some(done) = self.cur.take() {
            self.clauses.push(done);
        }
        RouteMap {
            clauses: self.clauses,
        }
    }
}

// ---- FIB / RIB entries ------------------------------------------------

pub(crate) fn fmt_fib_action(a: &FibAction) -> String {
    match a {
        FibAction::Deliver { iface } => format!("deliver {}", quote(iface)),
        FibAction::Forward { iface, next } => match next {
            NextDevice::Device(d) => format!("forward {} dev {}", quote(iface), quote(d)),
            NextDevice::External => format!("forward {} external", quote(iface)),
        },
        FibAction::Drop => "drop".into(),
    }
}

pub(crate) fn parse_fib_action(c: &mut Cursor) -> Result<FibAction, IoError> {
    let w = c.word("fib action")?;
    match w.as_str() {
        "deliver" => Ok(FibAction::Deliver {
            iface: c.string("interface")?,
        }),
        "forward" => {
            let iface = c.string("interface")?;
            let next = c.word("next hop kind")?;
            match next.as_str() {
                "dev" => Ok(FibAction::Forward {
                    iface,
                    next: NextDevice::Device(c.string("next device")?),
                }),
                "external" => Ok(FibAction::Forward {
                    iface,
                    next: NextDevice::External,
                }),
                other => Err(perr(
                    c.line,
                    format!("expected dev|external, found {other:?}"),
                )),
            }
        }
        "drop" => Ok(FibAction::Drop),
        other => Err(perr(
            c.line,
            format!("expected deliver|forward|drop, found {other:?}"),
        )),
    }
}

pub(crate) fn fmt_fib_entry(e: &FibEntry) -> String {
    format!(
        "{} {} {}",
        quote(&e.device),
        e.prefix,
        fmt_fib_action(&e.action)
    )
}

pub(crate) fn parse_fib_entry(c: &mut Cursor) -> Result<FibEntry, IoError> {
    let device = c.string("device")?;
    let prefix = c.prefix("prefix")?;
    let action = parse_fib_action(c)?;
    Ok(FibEntry {
        device,
        prefix,
        action,
    })
}

pub(crate) fn fmt_proto(p: Proto) -> &'static str {
    match p {
        Proto::Connected => "connected",
        Proto::Static => "static",
        Proto::BgpExternal => "ebgp",
        Proto::Ospf => "ospf",
        Proto::BgpInternal => "ibgp",
    }
}

pub(crate) fn parse_proto(c: &mut Cursor) -> Result<Proto, IoError> {
    let w = c.word("protocol")?;
    match w.as_str() {
        "connected" => Ok(Proto::Connected),
        "static" => Ok(Proto::Static),
        "ebgp" => Ok(Proto::BgpExternal),
        "ospf" => Ok(Proto::Ospf),
        "ibgp" => Ok(Proto::BgpInternal),
        other => Err(perr(c.line, format!("unknown protocol {other:?}"))),
    }
}

pub(crate) fn fmt_rib_entry(e: &RibEntry) -> String {
    format!(
        "{} {} {} {} {}",
        quote(&e.device),
        e.prefix,
        fmt_proto(e.proto),
        e.metric,
        fmt_fib_action(&e.action)
    )
}

pub(crate) fn parse_rib_entry(c: &mut Cursor) -> Result<RibEntry, IoError> {
    let device = c.string("device")?;
    let prefix = c.prefix("prefix")?;
    let proto = parse_proto(c)?;
    let metric = c.parse("metric")?;
    let action = parse_fib_action(c)?;
    Ok(RibEntry {
        device,
        prefix,
        proto,
        metric,
        action,
    })
}

// ---- outcomes ---------------------------------------------------------

/// Formats an outcome set on one line (`-` when empty).
pub(crate) fn fmt_outcomes<'a>(outcomes: impl Iterator<Item = &'a Outcome>) -> String {
    let mut out = String::new();
    for o in outcomes {
        if !out.is_empty() {
            out.push(' ');
        }
        match o {
            Outcome::Delivered(d) => {
                let _ = write!(out, "delivered {}", quote(d));
            }
            Outcome::External(d) => {
                let _ = write!(out, "external {}", quote(d));
            }
            Outcome::Blackhole(d) => {
                let _ = write!(out, "blackhole {}", quote(d));
            }
            Outcome::Filtered(d) => {
                let _ = write!(out, "filtered {}", quote(d));
            }
            Outcome::Loop => out.push_str("loop"),
        }
    }
    if out.is_empty() {
        out.push('-');
    }
    out
}

/// Parses outcomes to the end of the line (`-` for the empty set).
pub(crate) fn parse_outcomes(
    c: &mut Cursor,
) -> Result<std::collections::BTreeSet<Outcome>, IoError> {
    let mut set = std::collections::BTreeSet::new();
    let mut first = true;
    while !c.at_end() {
        let w = c.word("outcome")?;
        if first && w == "-" {
            return Ok(set);
        }
        first = false;
        let o = match w.as_str() {
            "delivered" => Outcome::Delivered(c.string("device")?),
            "external" => Outcome::External(c.string("device")?),
            "blackhole" => Outcome::Blackhole(c.string("device")?),
            "filtered" => Outcome::Filtered(c.string("device")?),
            "loop" => Outcome::Loop,
            other => return Err(perr(c.line, format!("unknown outcome {other:?}"))),
        };
        set.insert(o);
    }
    Ok(set)
}
