//! Property tests for the data-plane layer.
//!
//! 1. Packet-set algebra: arbitrary expressions over random field
//!    constraints must agree with direct boolean evaluation on random
//!    concrete flows (a model-based check of the decision-diagram code).
//! 2. Incremental verification: random FIB/filter churn must leave the
//!    verifier in exactly the state a full recomputation produces.

use data_plane::{compile_acl, DataPlane, DpUpdate, PsetArena, FULL};
use net_model::acl::{Acl, AclEntry, Action, FlowMatch, PortRange};
use net_model::{Flow, Ipv4Addr, Ipv4Prefix, NetBuilder, Snapshot};
use proptest::prelude::*;

/// A random single-field constraint, kept on tiny domains so collisions
/// and adjacencies are common.
#[derive(Debug, Clone)]
enum Constraint {
    Dst(Ipv4Prefix),
    Src(Ipv4Prefix),
    Proto(u8),
    DstPort(u16, u16),
}

fn constraint() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        (0u32..4, 22u8..28).prop_map(|(n, len)| {
            Constraint::Dst(Ipv4Prefix::new(Ipv4Addr(0x0a000000 + (n << 8)), len))
        }),
        (0u32..4, 22u8..28).prop_map(|(n, len)| {
            Constraint::Src(Ipv4Prefix::new(Ipv4Addr(0xc0a80000 + (n << 8)), len))
        }),
        prop_oneof![Just(6u8), Just(17u8)].prop_map(Constraint::Proto),
        (0u16..4, 0u16..4).prop_map(|(a, b)| { Constraint::DstPort(80 + a.min(b), 80 + a.max(b)) }),
    ]
}

/// Expression tree over constraints.
#[derive(Debug, Clone)]
enum Expr {
    Leaf(Constraint),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = constraint().prop_map(Expr::Leaf);
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
        ]
    })
}

fn eval_constraint(c: &Constraint, f: &Flow) -> bool {
    match c {
        Constraint::Dst(p) => p.contains(f.dst),
        Constraint::Src(p) => p.contains(f.src),
        Constraint::Proto(pr) => *pr == f.proto,
        Constraint::DstPort(lo, hi) => (*lo..=*hi).contains(&f.dst_port),
    }
}

fn eval_expr(e: &Expr, f: &Flow) -> bool {
    match e {
        Expr::Leaf(c) => eval_constraint(c, f),
        Expr::Not(a) => !eval_expr(a, f),
        Expr::And(a, b) => eval_expr(a, f) && eval_expr(b, f),
        Expr::Or(a, b) => eval_expr(a, f) || eval_expr(b, f),
    }
}

fn build_pset(arena: &mut PsetArena, e: &Expr) -> data_plane::Pset {
    match e {
        Expr::Leaf(c) => {
            let m = match c {
                Constraint::Dst(p) => FlowMatch::dst(*p),
                Constraint::Src(p) => FlowMatch::src(*p),
                Constraint::Proto(pr) => FlowMatch {
                    proto: Some(*pr),
                    ..FlowMatch::any()
                },
                Constraint::DstPort(lo, hi) => FlowMatch {
                    dst_ports: Some(PortRange { lo: *lo, hi: *hi }),
                    ..FlowMatch::any()
                },
            };
            arena.flow_match(&m)
        }
        Expr::Not(a) => {
            let pa = build_pset(arena, a);
            arena.complement(pa)
        }
        Expr::And(a, b) => {
            let (pa, pb) = (build_pset(arena, a), build_pset(arena, b));
            arena.intersect(pa, pb)
        }
        Expr::Or(a, b) => {
            let (pa, pb) = (build_pset(arena, a), build_pset(arena, b));
            arena.union(pa, pb)
        }
    }
}

fn flow() -> impl Strategy<Value = Flow> {
    (
        0u32..6,
        0u32..6,
        prop_oneof![Just(6u8), Just(17u8), Just(1u8)],
        78u16..86,
    )
        .prop_map(|(d, s, proto, port)| Flow {
            dst: Ipv4Addr(0x0a000000 + (d << 8) + 1),
            src: Ipv4Addr(0xc0a80000 + (s << 8) + 1),
            proto,
            src_port: 40000,
            dst_port: port,
        })
}

// Cases and RNG seed pinned so CI replays the same cases every run; the
// vendored runner is fully deterministic and emits no regression files.
// Sweep fresh cases locally with `PROPTEST_RNG_SEED=<u64> cargo test`.
proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(128, 0xD9A_0001))]

    #[test]
    fn pset_expressions_agree_with_boolean_model(
        e in expr(),
        flows in prop::collection::vec(flow(), 16)
    ) {
        let mut arena = PsetArena::new();
        let p = build_pset(&mut arena, &e);
        for f in &flows {
            prop_assert_eq!(
                arena.contains(p, f),
                eval_expr(&e, f),
                "disagreement on {:?}",
                f
            );
        }
        // Canonical-form sanity: x ∪ ¬x = FULL, x ∩ ¬x = EMPTY.
        let np = arena.complement(p);
        prop_assert_eq!(arena.union(p, np), FULL);
        prop_assert_eq!(arena.intersect(p, np), data_plane::EMPTY);
    }

    #[test]
    fn acl_compilation_matches_first_match_semantics(
        entries in prop::collection::vec(
            (constraint(), any::<bool>()),
            1..6
        ),
        flows in prop::collection::vec(flow(), 16)
    ) {
        let mut acl = Acl::default();
        for (i, (c, permit)) in entries.iter().enumerate() {
            let m = match c {
                Constraint::Dst(p) => FlowMatch::dst(*p),
                Constraint::Src(p) => FlowMatch::src(*p),
                Constraint::Proto(pr) => FlowMatch { proto: Some(*pr), ..FlowMatch::any() },
                Constraint::DstPort(lo, hi) => FlowMatch {
                    dst_ports: Some(PortRange { lo: *lo, hi: *hi }),
                    ..FlowMatch::any()
                },
            };
            acl.add(AclEntry {
                seq: (i as u32 + 1) * 10,
                action: if *permit { Action::Permit } else { Action::Deny },
                matches: m,
            });
        }
        let mut arena = PsetArena::new();
        let allowed = compile_acl(&mut arena, &acl);
        for f in &flows {
            prop_assert_eq!(
                arena.contains(allowed, f),
                acl.permits(f),
                "ACL compile/interpret disagree on {:?}",
                f
            );
        }
    }
}

// ---------------------------------------------------------------------
// Incremental-vs-recompute under random churn.

fn churn_snapshot() -> Snapshot {
    NetBuilder::new()
        .router("a")
        .iface("a", "lan", "172.16.0.1/24")
        .iface("a", "p1", "10.0.0.1/31")
        .router("b")
        .iface("b", "p1", "10.0.0.0/31")
        .iface("b", "p2", "10.0.1.1/31")
        .router("c")
        .iface("c", "p2", "10.0.1.0/31")
        .iface("c", "lan", "172.16.2.1/24")
        .link("a", "p1", "b", "p1")
        .link("b", "p2", "c", "p2")
        .build()
}

#[derive(Debug, Clone)]
enum ChurnOp {
    Fib {
        dev: u8,
        prefix_idx: u8,
        action_idx: u8,
        add: bool,
    },
    Filter {
        dev: u8,
        dir_in: bool,
        deny_idx: Option<u8>,
    },
}

fn churn_op() -> impl Strategy<Value = ChurnOp> {
    prop_oneof![
        (0u8..3, 0u8..4, 0u8..4, any::<bool>()).prop_map(|(dev, prefix_idx, action_idx, add)| {
            ChurnOp::Fib {
                dev,
                prefix_idx,
                action_idx,
                add,
            }
        }),
        (0u8..3, any::<bool>(), prop::option::of(0u8..4)).prop_map(|(dev, dir_in, deny_idx)| {
            ChurnOp::Filter {
                dev,
                dir_in,
                deny_idx,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(48, 0xD9A_0002))]

    #[test]
    fn incremental_verifier_equals_recompute(
        ops in prop::collection::vec(churn_op(), 1..24)
    ) {
        use control_plane::{FibAction, FibEntry, NextDevice};
        let snap = churn_snapshot();
        let devs = ["a", "b", "c"];
        let prefixes = ["172.16.0.0/24", "172.16.2.0/24", "9.9.0.0/16", "0.0.0.0/0"];
        let mut dp = DataPlane::new(&snap);
        // Track live entries so removals stay set-like.
        let mut live: std::collections::BTreeMap<FibEntry, isize> = Default::default();
        for op in ops {
            let update = match op {
                ChurnOp::Fib { dev, prefix_idx, action_idx, add } => {
                    let device = devs[dev as usize].to_string();
                    let action = match action_idx {
                        0 => FibAction::Drop,
                        1 => FibAction::Deliver { iface: "lan".into() },
                        2 => FibAction::Forward {
                            iface: "p1".into(),
                            next: NextDevice::Device(if device == "a" { "b".into() } else { "a".into() }),
                        },
                        _ => FibAction::Forward {
                            iface: "p2".into(),
                            next: NextDevice::External,
                        },
                    };
                    let entry = FibEntry {
                        device,
                        prefix: prefixes[prefix_idx as usize].parse().unwrap(),
                        action,
                    };
                    let diff = if add {
                        *live.entry(entry.clone()).or_insert(0) += 1;
                        1
                    } else if live.get(&entry).copied().unwrap_or(0) > 0 {
                        *live.get_mut(&entry).unwrap() -= 1;
                        -1
                    } else {
                        continue;
                    };
                    DpUpdate { fib: vec![(entry, diff)], filters: vec![] }
                }
                ChurnOp::Filter { dev, dir_in, deny_idx } => {
                    let acl = deny_idx.map(|i| {
                        let mut acl = Acl::default();
                        acl.add(AclEntry {
                            seq: 10,
                            action: Action::Deny,
                            matches: FlowMatch::dst(prefixes[i as usize].parse().unwrap()),
                        });
                        acl.add(AclEntry {
                            seq: 20,
                            action: Action::Permit,
                            matches: FlowMatch::any(),
                        });
                        acl
                    });
                    DpUpdate {
                        fib: vec![],
                        filters: vec![data_plane::FilterChange {
                            device: devs[dev as usize].to_string(),
                            iface: if dev == 1 { "p1" } else { "lan" }.to_string(),
                            dir: if dir_in { data_plane::Dir::In } else { data_plane::Dir::Out },
                            acl,
                        }],
                    }
                }
            };
            dp.apply(&update);
            let incremental = dp.fingerprint();
            dp.recompute_all();
            prop_assert_eq!(incremental, dp.fingerprint(), "incremental state diverged");
        }
    }
}
