//! Data-plane verifier tests: forwarding semantics (LPM, ECMP, ACLs,
//! loops, blackholes) and the incremental-equals-recompute property.

use control_plane::{FibAction, FibEntry, NextDevice};
use data_plane::{DataPlane, Dir, DpUpdate, FilterChange, Outcome};
use net_model::acl::{Acl, AclEntry, Action, FlowMatch};
use net_model::{ip, pfx, Flow, NetBuilder, Snapshot};

/// Three routers in a line with LAN subnets on the ends.
fn line_snapshot() -> Snapshot {
    NetBuilder::new()
        .router("a")
        .iface("a", "lan", "172.16.0.1/24")
        .iface("a", "right", "10.0.0.1/31")
        .router("b")
        .iface("b", "left", "10.0.0.0/31")
        .iface("b", "right", "10.0.1.1/31")
        .router("c")
        .iface("c", "left", "10.0.1.0/31")
        .iface("c", "lan", "172.16.2.1/24")
        .link("a", "right", "b", "left")
        .link("b", "right", "c", "left")
        .build()
}

fn fw(device: &str, prefix: &str, iface: &str, next: &str) -> (FibEntry, isize) {
    (
        FibEntry {
            device: device.into(),
            prefix: pfx(prefix),
            action: FibAction::Forward {
                iface: iface.into(),
                next: NextDevice::Device(next.into()),
            },
        },
        1,
    )
}

fn deliver(device: &str, prefix: &str, iface: &str) -> (FibEntry, isize) {
    (
        FibEntry {
            device: device.into(),
            prefix: pfx(prefix),
            action: FibAction::Deliver {
                iface: iface.into(),
            },
        },
        1,
    )
}

/// Loads the natural FIB for the line: everyone routes both LANs.
fn line_fib() -> Vec<(FibEntry, isize)> {
    vec![
        deliver("a", "172.16.0.0/24", "lan"),
        fw("a", "172.16.2.0/24", "right", "b"),
        fw("b", "172.16.0.0/24", "left", "a"),
        fw("b", "172.16.2.0/24", "right", "c"),
        fw("c", "172.16.0.0/24", "left", "b"),
        deliver("c", "172.16.2.0/24", "lan"),
    ]
}

#[test]
fn end_to_end_delivery_and_blackholes() {
    let snap = line_snapshot();
    let mut dp = DataPlane::new(&snap);
    dp.apply(&DpUpdate {
        fib: line_fib(),
        filters: vec![],
    });
    let to_c = Flow::tcp_to(ip("172.16.2.9"), 80);
    assert_eq!(
        dp.query("a", &to_c),
        [Outcome::Delivered("c".into())].into()
    );
    assert_eq!(
        dp.query("b", &to_c),
        [Outcome::Delivered("c".into())].into()
    );
    // Unrouted space blackholes at the source.
    let nowhere = Flow::tcp_to(ip("8.8.8.8"), 53);
    assert_eq!(
        dp.query("a", &nowhere),
        [Outcome::Blackhole("a".into())].into()
    );
}

#[test]
fn fib_withdrawal_creates_blackhole_and_delta_reports_it() {
    let snap = line_snapshot();
    let mut dp = DataPlane::new(&snap);
    dp.apply(&DpUpdate {
        fib: line_fib(),
        filters: vec![],
    });
    let mut withdraw = DpUpdate::default();
    withdraw.fib.push({
        let (e, _) = fw("b", "172.16.2.0/24", "right", "c");
        (e, -1)
    });
    let deltas = dp.apply(&withdraw);
    // Sources a and b lose delivery to c for exactly the c-LAN class.
    assert!(deltas.iter().any(|d| d.src == "a"
        && d.before.contains(&Outcome::Delivered("c".into()))
        && d.after.contains(&Outcome::Blackhole("b".into()))));
    assert!(deltas.iter().any(|d| d.src == "b"));
    // c's own traffic to its LAN is untouched.
    assert!(deltas
        .iter()
        .all(|d| { !(d.src == "c" && d.before.contains(&Outcome::Delivered("c".into()))) }));
}

#[test]
fn longest_prefix_match_wins() {
    let snap = line_snapshot();
    let mut dp = DataPlane::new(&snap);
    let mut fib = line_fib();
    // A more specific /25 at a diverts half of c's LAN to a null route.
    fib.push((
        FibEntry {
            device: "a".into(),
            prefix: pfx("172.16.2.0/25"),
            action: FibAction::Drop,
        },
        1,
    ));
    dp.apply(&DpUpdate {
        fib,
        filters: vec![],
    });
    let low = Flow::tcp_to(ip("172.16.2.1"), 80); // inside /25
    let high = Flow::tcp_to(ip("172.16.2.200"), 80); // outside /25
    assert_eq!(dp.query("a", &low), [Outcome::Blackhole("a".into())].into());
    assert_eq!(
        dp.query("a", &high),
        [Outcome::Delivered("c".into())].into()
    );
}

#[test]
fn ecmp_produces_outcome_union() {
    // b forwards c's LAN both directly and back to a (artificial ECMP):
    // sources see both outcomes.
    let snap = line_snapshot();
    let mut dp = DataPlane::new(&snap);
    let mut fib = line_fib();
    fib.push(fw("b", "172.16.2.0/24", "left", "a"));
    // ...and a drops it, so the union is {Delivered(c), loop-ish via a}.
    fib.push((
        FibEntry {
            device: "a".into(),
            prefix: pfx("172.16.2.0/24"),
            action: FibAction::Forward {
                iface: "right".into(),
                next: NextDevice::Device("b".into()),
            },
        },
        0, // no-op delta exercise
    ));
    dp.apply(&DpUpdate {
        fib,
        filters: vec![],
    });
    let to_c = Flow::tcp_to(ip("172.16.2.9"), 80);
    let out = dp.query("b", &to_c);
    assert!(out.contains(&Outcome::Delivered("c".into())), "{out:?}");
    assert!(out.contains(&Outcome::Loop), "{out:?}");
}

#[test]
fn forwarding_loops_detected() {
    let snap = line_snapshot();
    let mut dp = DataPlane::new(&snap);
    let fib = vec![
        fw("a", "9.9.9.0/24", "right", "b"),
        fw("b", "9.9.9.0/24", "left", "a"),
    ];
    dp.apply(&DpUpdate {
        fib,
        filters: vec![],
    });
    let f = Flow::tcp_to(ip("9.9.9.9"), 443);
    assert_eq!(dp.query("a", &f), [Outcome::Loop].into());
    assert_eq!(dp.query("b", &f), [Outcome::Loop].into());
    // c has no route at all.
    assert_eq!(dp.query("c", &f), [Outcome::Blackhole("c".into())].into());
}

#[test]
fn acl_filters_block_and_unblock() {
    let snap = line_snapshot();
    let mut dp = DataPlane::new(&snap);
    dp.apply(&DpUpdate {
        fib: line_fib(),
        filters: vec![],
    });
    // Block TCP port 80 to c's LAN at b's ingress from a.
    let mut acl = Acl::default();
    acl.add(AclEntry {
        seq: 10,
        action: Action::Deny,
        matches: FlowMatch {
            dst: Some(pfx("172.16.2.0/24")),
            dst_ports: Some(net_model::PortRange::exactly(80)),
            ..FlowMatch::any()
        },
    });
    acl.add(AclEntry {
        seq: 20,
        action: Action::Permit,
        matches: FlowMatch::any(),
    });
    let deltas = dp.apply(&DpUpdate {
        fib: vec![],
        filters: vec![FilterChange {
            device: "b".into(),
            iface: "left".into(),
            dir: Dir::In,
            acl: Some(acl),
        }],
    });
    assert!(!deltas.is_empty());
    let web = Flow::tcp_to(ip("172.16.2.9"), 80);
    let ssh = Flow::tcp_to(ip("172.16.2.9"), 22);
    assert_eq!(dp.query("a", &web), [Outcome::Filtered("b".into())].into());
    assert_eq!(dp.query("a", &ssh), [Outcome::Delivered("c".into())].into());
    // b itself originates past its own ingress filter — unaffected.
    assert_eq!(dp.query("b", &web), [Outcome::Delivered("c".into())].into());
    // Unbind: behavior restored, and the delta says so.
    let deltas = dp.apply(&DpUpdate {
        fib: vec![],
        filters: vec![FilterChange {
            device: "b".into(),
            iface: "left".into(),
            dir: Dir::In,
            acl: None,
        }],
    });
    assert!(deltas
        .iter()
        .any(|d| d.after.contains(&Outcome::Delivered("c".into()))));
    assert_eq!(dp.query("a", &web), [Outcome::Delivered("c".into())].into());
}

#[test]
fn egress_acl_applies_to_delivery() {
    let snap = line_snapshot();
    let mut dp = DataPlane::new(&snap);
    dp.apply(&DpUpdate {
        fib: line_fib(),
        filters: vec![],
    });
    // Deny everything out of c's LAN interface.
    let deny_all = Acl::default(); // empty = implicit deny
    dp.apply(&DpUpdate {
        fib: vec![],
        filters: vec![FilterChange {
            device: "c".into(),
            iface: "lan".into(),
            dir: Dir::Out,
            acl: Some(deny_all),
        }],
    });
    let to_c = Flow::tcp_to(ip("172.16.2.9"), 80);
    assert_eq!(dp.query("a", &to_c), [Outcome::Filtered("c".into())].into());
}

#[test]
fn incremental_equals_recompute_under_churn() {
    let snap = line_snapshot();
    let mut dp = DataPlane::new(&snap);
    dp.apply(&DpUpdate {
        fib: line_fib(),
        filters: vec![],
    });
    // A scripted churn sequence mixing everything.
    let steps: Vec<DpUpdate> = vec![
        DpUpdate {
            fib: vec![
                fw("a", "9.9.0.0/16", "right", "b"),
                fw("b", "9.9.0.0/16", "right", "c"),
            ],
            filters: vec![],
        },
        DpUpdate {
            fib: vec![(
                FibEntry {
                    device: "c".into(),
                    prefix: pfx("9.9.0.0/16"),
                    action: FibAction::Drop,
                },
                1,
            )],
            filters: vec![],
        },
        DpUpdate {
            fib: vec![{
                let (e, _) = fw("b", "172.16.2.0/24", "right", "c");
                (e, -1)
            }],
            filters: vec![],
        },
        DpUpdate {
            fib: vec![],
            filters: vec![FilterChange {
                device: "b".into(),
                iface: "left".into(),
                dir: Dir::In,
                acl: Some(Acl::permit_all()),
            }],
        },
        DpUpdate {
            fib: vec![{
                let (e, _) = fw("a", "9.9.0.0/16", "right", "b");
                (e, -1)
            }],
            filters: vec![FilterChange {
                device: "b".into(),
                iface: "left".into(),
                dir: Dir::In,
                acl: None,
            }],
        },
    ];
    for (i, step) in steps.iter().enumerate() {
        dp.apply(step);
        let incremental = dp.fingerprint();
        dp.recompute_all();
        let scratch = dp.fingerprint();
        assert_eq!(incremental, scratch, "diverged at step {i}");
    }
}

#[test]
fn deltas_are_exact_transformations() {
    let snap = line_snapshot();
    let mut dp = DataPlane::new(&snap);
    let before = dp.fingerprint();
    let deltas = dp.apply(&DpUpdate {
        fib: line_fib(),
        filters: vec![],
    });
    // Deltas must describe exactly the before→after differences for atoms
    // that survived (splits report via the new ids, so just validate that
    // every delta's `after` matches the live state).
    for d in &deltas {
        assert_eq!(dp.outcomes(&d.src, d.atom), d.after, "stale delta");
        assert_ne!(d.before, d.after, "no-op delta reported");
    }
    assert_ne!(before, dp.fingerprint());
}

#[test]
fn atom_descriptions_and_samples_are_consistent() {
    let snap = line_snapshot();
    let mut dp = DataPlane::new(&snap);
    dp.apply(&DpUpdate {
        fib: line_fib(),
        filters: vec![],
    });
    for atom in dp.atoms() {
        let f = dp.sample_atom(atom).expect("atoms are nonempty");
        // The sample must land back in the same atom.
        let out_direct = dp.outcomes("a", atom);
        let out_via_flow = dp.query("a", &f);
        assert_eq!(out_direct, out_via_flow);
        assert!(!dp.describe_atom(atom, 8).is_empty());
    }
}

/// The sharded bring-up loader must land in exactly the state the
/// incremental path produces — same partition, same reachability, same
/// subsequent behavior — for any worker count.
#[test]
fn load_baseline_matches_apply_for_any_worker_count() {
    let snap = line_snapshot();
    let fib = vec![
        fw("a", "172.16.2.0/24", "right", "b"),
        fw("b", "172.16.2.0/24", "right", "c"),
        deliver("c", "172.16.2.0/24", "lan"),
        fw("c", "172.16.0.0/24", "left", "b"),
        fw("b", "172.16.0.0/24", "left", "a"),
        deliver("a", "172.16.0.0/24", "lan"),
    ];
    let mut reference = DataPlane::new(&snap);
    reference.apply(&DpUpdate {
        fib: fib.clone(),
        filters: vec![],
    });
    for workers in [1, 2, 7] {
        let mut dp = DataPlane::new(&snap);
        dp.load_baseline(&fib, workers);
        assert_eq!(
            dp.fingerprint(),
            reference.fingerprint(),
            "bulk load with {workers} workers diverged from the apply path"
        );
        assert_eq!(dp.atom_count(), reference.atom_count());
        // Subsequent incremental updates behave identically too.
        let retract = vec![(fib[1].0.clone(), -1)];
        let mut a = dp;
        let mut deltas_a = a.apply(&DpUpdate {
            fib: retract.clone(),
            filters: vec![],
        });
        let mut b_ref = DataPlane::new(&snap);
        b_ref.apply(&DpUpdate {
            fib: fib.clone(),
            filters: vec![],
        });
        let mut deltas_b = b_ref.apply(&DpUpdate {
            fib: retract,
            filters: vec![],
        });
        let key = |d: &data_plane::ReachDelta| (d.src.clone(), d.before.clone(), d.after.clone());
        deltas_a.sort_by_key(key);
        deltas_b.sort_by_key(key);
        let strip: fn(Vec<data_plane::ReachDelta>) -> Vec<_> = |v| {
            v.into_iter()
                .map(|d| (d.src, d.before, d.after))
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(deltas_a), strip(deltas_b));
    }
}
