//! Packet equivalence classes (*atoms*), maintained incrementally.
//!
//! The registry keeps the coarsest partition of the header space such that
//! every registered predicate (FIB prefix match, compiled ACL filter) is a
//! union of atoms. Every packet in one atom is treated identically by every
//! device, so reachability needs to be computed once per atom — the
//! Veriflow/APKeep insight. Predicates are reference-counted; registering a
//! new predicate *splits* the atoms it cuts, releasing the last reference
//! *merges* atoms that are no longer distinguished.
//!
//! Each atom carries its *signature* — the set of predicates containing it.
//! Signatures drive merging and give consumers O(log n) membership tests
//! (`atom ⊆ predicate ⇔ predicate ∈ signature`).

use crate::pset::{Pset, PsetArena, EMPTY, FULL};
use ddflow::FastMap;
use net_model::Flow;
use std::collections::{BTreeMap, BTreeSet};

/// Identifies an atom. Ids are never reused within one registry.
pub type AtomId = u32;
/// Identifies a registered predicate.
pub type PredId = u32;

/// Structural change to the atom partition, emitted so consumers can
/// migrate per-atom state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AtomChange {
    /// `parent` was cut by a new predicate into `inside` (covered by the
    /// predicate) and `outside`; `parent` is retired.
    Split {
        /// Retired atom.
        parent: AtomId,
        /// Child inside the new predicate.
        inside: AtomId,
        /// Child outside the new predicate.
        outside: AtomId,
    },
    /// `a` and `b` stopped being distinguishable and became `into`;
    /// both are retired.
    Merged {
        /// First retired atom.
        a: AtomId,
        /// Second retired atom.
        b: AtomId,
        /// Replacement atom.
        into: AtomId,
    },
}

struct AtomInfo {
    pset: Pset,
    sig: BTreeSet<PredId>,
}

struct PredInfo {
    pset: Pset,
    refcount: usize,
    atoms: BTreeSet<AtomId>,
}

/// The atom registry. See the module docs.
pub struct AtomRegistry {
    /// The packet-set arena (shared with consumers for building predicates).
    pub arena: PsetArena,
    atoms: BTreeMap<AtomId, AtomInfo>,
    preds: FastMap<PredId, PredInfo>,
    pred_by_pset: FastMap<Pset, PredId>,
    sig_index: FastMap<Vec<PredId>, AtomId>,
    next_atom: AtomId,
    next_pred: PredId,
}

impl Default for AtomRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomRegistry {
    /// Creates a registry with a single atom covering the full space.
    pub fn new() -> Self {
        let mut reg = AtomRegistry {
            arena: PsetArena::new(),
            atoms: BTreeMap::new(),
            preds: FastMap::default(),
            pred_by_pset: FastMap::default(),
            sig_index: FastMap::default(),
            next_atom: 0,
            next_pred: 0,
        };
        let id = reg.fresh_atom(FULL, BTreeSet::new());
        debug_assert_eq!(id, 0);
        reg
    }

    fn fresh_atom(&mut self, pset: Pset, sig: BTreeSet<PredId>) -> AtomId {
        let id = self.next_atom;
        self.next_atom += 1;
        let key: Vec<PredId> = sig.iter().copied().collect();
        for &p in &sig {
            self.preds
                .get_mut(&p)
                .expect("sig preds live")
                .atoms
                .insert(id);
        }
        self.sig_index.insert(key, id);
        self.atoms.insert(id, AtomInfo { pset, sig });
        id
    }

    fn retire_atom(&mut self, id: AtomId) -> AtomInfo {
        let info = self.atoms.remove(&id).expect("atom live");
        let key: Vec<PredId> = info.sig.iter().copied().collect();
        self.sig_index.remove(&key);
        for &p in &info.sig {
            if let Some(pi) = self.preds.get_mut(&p) {
                pi.atoms.remove(&id);
            }
        }
        info
    }

    /// Registers (or references) a predicate, splitting atoms as needed.
    /// Returns the predicate id and the structural changes.
    pub fn acquire(&mut self, pset: Pset) -> (PredId, Vec<AtomChange>) {
        if let Some(&pid) = self.pred_by_pset.get(&pset) {
            self.preds.get_mut(&pid).unwrap().refcount += 1;
            return (pid, Vec::new());
        }
        let pid = self.next_pred;
        self.next_pred += 1;
        self.preds.insert(
            pid,
            PredInfo {
                pset,
                refcount: 1,
                atoms: BTreeSet::new(),
            },
        );
        self.pred_by_pset.insert(pset, pid);
        let mut changes = Vec::new();
        if pset == EMPTY {
            return (pid, changes);
        }
        let ids: Vec<AtomId> = self.atoms.keys().copied().collect();
        for id in ids {
            let apset = self.atoms[&id].pset;
            let inside = self.arena.intersect(apset, pset);
            if inside == EMPTY {
                continue;
            }
            if inside == apset {
                // Fully covered: extend the signature in place.
                let info = self.atoms.get_mut(&id).unwrap();
                let old_key: Vec<PredId> = info.sig.iter().copied().collect();
                info.sig.insert(pid);
                let new_key: Vec<PredId> = info.sig.iter().copied().collect();
                self.sig_index.remove(&old_key);
                self.sig_index.insert(new_key, id);
                self.preds.get_mut(&pid).unwrap().atoms.insert(id);
                continue;
            }
            // Properly cut: split.
            let outside_pset = self.arena.subtract(apset, pset);
            let old = self.retire_atom(id);
            let mut in_sig = old.sig.clone();
            in_sig.insert(pid);
            let inside_id = self.fresh_atom(inside, in_sig);
            let outside_id = self.fresh_atom(outside_pset, old.sig);
            changes.push(AtomChange::Split {
                parent: id,
                inside: inside_id,
                outside: outside_id,
            });
        }
        (pid, changes)
    }

    /// Releases one reference to a predicate; dropping the last reference
    /// removes it and merges atoms it used to distinguish.
    ///
    /// # Panics
    /// Panics if the predicate id is not live.
    pub fn release(&mut self, pid: PredId) -> Vec<AtomChange> {
        let info = self.preds.get_mut(&pid).expect("predicate live");
        assert!(info.refcount > 0);
        info.refcount -= 1;
        if info.refcount > 0 {
            return Vec::new();
        }
        let members: Vec<AtomId> = info.atoms.iter().copied().collect();
        let pset = info.pset;
        self.preds.remove(&pid);
        self.pred_by_pset.remove(&pset);
        let mut changes = Vec::new();
        for id in members {
            if !self.atoms.contains_key(&id) {
                continue; // already merged away this round
            }
            // Drop the predicate from the signature and look for a twin.
            let info = self.atoms.get_mut(&id).unwrap();
            let old_key: Vec<PredId> = info.sig.iter().copied().collect();
            info.sig.remove(&pid);
            let new_key: Vec<PredId> = info.sig.iter().copied().collect();
            self.sig_index.remove(&old_key);
            if let Some(&twin) = self.sig_index.get(&new_key) {
                // Merge `id` and `twin`.
                let a = self.retire_atom(twin);
                let b = {
                    let info = self.atoms.remove(&id).unwrap();
                    for &p in &info.sig {
                        if let Some(pi) = self.preds.get_mut(&p) {
                            pi.atoms.remove(&id);
                        }
                    }
                    info
                };
                let merged_pset = self.arena.union(a.pset, b.pset);
                let into = self.fresh_atom(merged_pset, b.sig);
                changes.push(AtomChange::Merged {
                    a: twin,
                    b: id,
                    into,
                });
            } else {
                self.sig_index.insert(new_key, id);
            }
        }
        changes
    }

    /// Live atoms, in id order.
    pub fn atom_ids(&self) -> impl Iterator<Item = AtomId> + '_ {
        self.atoms.keys().copied()
    }

    /// Number of live atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Number of live predicates.
    pub fn pred_count(&self) -> usize {
        self.preds.len()
    }

    /// The atom's packet set.
    pub fn atom_pset(&self, id: AtomId) -> Pset {
        self.atoms[&id].pset
    }

    /// Whether the atom lies inside the predicate.
    pub fn atom_in(&self, atom: AtomId, pred: PredId) -> bool {
        self.atoms[&atom].sig.contains(&pred)
    }

    /// The atom's signature: the set of predicates containing it. Borrowing
    /// it once lets hot loops run membership tests without re-resolving the
    /// atom per probe.
    pub fn atom_sig(&self, atom: AtomId) -> &BTreeSet<PredId> {
        &self.atoms[&atom].sig
    }

    /// Atoms currently covered by a predicate.
    pub fn atoms_of(&self, pred: PredId) -> impl Iterator<Item = AtomId> + '_ {
        self.preds[&pred].atoms.iter().copied()
    }

    /// The atom containing a concrete flow.
    pub fn atom_of_flow(&self, flow: &Flow) -> AtomId {
        self.atoms
            .iter()
            .find(|(_, a)| self.arena.contains(a.pset, flow))
            .map(|(&id, _)| id)
            .expect("atoms partition the full space")
    }

    /// Internal consistency check (used by tests): atoms are nonempty,
    /// pairwise disjoint, cover the space, and signatures are exact.
    pub fn check_invariants(&mut self) {
        let ids: Vec<AtomId> = self.atoms.keys().copied().collect();
        let mut acc = EMPTY;
        for &id in &ids {
            let p = self.atoms[&id].pset;
            assert_ne!(p, EMPTY, "atom {id} empty");
            assert_eq!(self.arena.intersect(acc, p), EMPTY, "atoms overlap");
            acc = self.arena.union(acc, p);
        }
        assert_eq!(acc, FULL, "atoms must cover the space");
        let preds: Vec<(PredId, Pset)> = self.preds.iter().map(|(&i, p)| (i, p.pset)).collect();
        for &id in &ids {
            let apset = self.atoms[&id].pset;
            for &(pid, ppset) in &preds {
                let inside = self.arena.is_subset(apset, ppset);
                assert_eq!(
                    inside,
                    self.atoms[&id].sig.contains(&pid),
                    "signature of atom {id} wrong for pred {pid}"
                );
                assert_eq!(
                    inside,
                    self.preds[&pid].atoms.contains(&id),
                    "pred {pid} member list wrong for atom {id}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::pfx;

    #[test]
    fn starts_with_one_full_atom() {
        let mut reg = AtomRegistry::new();
        assert_eq!(reg.atom_count(), 1);
        reg.check_invariants();
    }

    #[test]
    fn acquire_splits_and_release_merges() {
        let mut reg = AtomRegistry::new();
        let p = reg.arena.dst_prefix(pfx("10.0.0.0/8"));
        let (pid, changes) = reg.acquire(p);
        assert_eq!(changes.len(), 1);
        assert_eq!(reg.atom_count(), 2);
        reg.check_invariants();
        let merges = reg.release(pid);
        assert_eq!(merges.len(), 1);
        assert_eq!(reg.atom_count(), 1);
        reg.check_invariants();
    }

    #[test]
    fn refcounting_defers_merge() {
        let mut reg = AtomRegistry::new();
        let p = reg.arena.dst_prefix(pfx("10.0.0.0/8"));
        let (pid1, _) = reg.acquire(p);
        let (pid2, changes) = reg.acquire(p);
        assert_eq!(pid1, pid2);
        assert!(changes.is_empty(), "second acquire splits nothing");
        assert!(reg.release(pid1).is_empty(), "still referenced");
        assert_eq!(reg.release(pid1).len(), 1, "last release merges");
        reg.check_invariants();
    }

    #[test]
    fn nested_prefixes_form_three_atoms() {
        let mut reg = AtomRegistry::new();
        let outer = reg.arena.dst_prefix(pfx("10.0.0.0/8"));
        let inner = reg.arena.dst_prefix(pfx("10.1.0.0/16"));
        reg.acquire(outer);
        let (_, changes) = reg.acquire(inner);
        // Only the atom inside 10/8 is cut.
        assert_eq!(changes.len(), 1);
        assert_eq!(reg.atom_count(), 3);
        reg.check_invariants();
    }

    #[test]
    fn multifield_predicates_cross_cut() {
        let mut reg = AtomRegistry::new();
        let dst = reg.arena.dst_prefix(pfx("10.0.0.0/8"));
        let m = net_model::FlowMatch {
            proto: Some(6),
            ..net_model::FlowMatch::any()
        };
        let tcp = reg.arena.flow_match(&m);
        reg.acquire(dst);
        let (_, changes) = reg.acquire(tcp);
        // Both existing atoms are cut by the protocol predicate.
        assert_eq!(changes.len(), 2);
        assert_eq!(reg.atom_count(), 4);
        reg.check_invariants();
    }

    #[test]
    fn flow_lookup_finds_unique_atom() {
        let mut reg = AtomRegistry::new();
        let p = reg.arena.dst_prefix(pfx("10.0.0.0/8"));
        let (pid, _) = reg.acquire(p);
        let inside = reg.atom_of_flow(&Flow::tcp_to(net_model::ip("10.1.1.1"), 80));
        let outside = reg.atom_of_flow(&Flow::tcp_to(net_model::ip("11.1.1.1"), 80));
        assert_ne!(inside, outside);
        assert!(reg.atom_in(inside, pid));
        assert!(!reg.atom_in(outside, pid));
    }

    #[test]
    fn empty_predicate_is_harmless() {
        let mut reg = AtomRegistry::new();
        let (pid, changes) = reg.acquire(EMPTY);
        assert!(changes.is_empty());
        assert_eq!(reg.atom_count(), 1);
        assert!(reg.release(pid).is_empty());
        reg.check_invariants();
    }

    #[test]
    fn churn_preserves_invariants() {
        let mut reg = AtomRegistry::new();
        let prefixes = [
            "10.0.0.0/8",
            "10.1.0.0/16",
            "10.1.2.0/24",
            "192.168.0.0/16",
            "10.0.0.0/9",
            "0.0.0.0/0",
        ];
        let mut pids = Vec::new();
        for p in prefixes {
            let ps = reg.arena.dst_prefix(pfx(p));
            pids.push(reg.acquire(ps).0);
            reg.check_invariants();
        }
        // Release in a scrambled order.
        for i in [3, 0, 5, 1, 4, 2] {
            reg.release(pids[i]);
            reg.check_invariants();
        }
        assert_eq!(reg.atom_count(), 1);
    }
}
