//! The data-plane verifier: per-atom forwarding resolution and network-wide
//! reachability, maintained incrementally under FIB and ACL-filter deltas.
//!
//! For every atom (packet equivalence class) the verifier knows, for every
//! source device, the set of possible [`Outcome`]s (delivery, external
//! exit, blackhole, ACL filtering, forwarding loop — sets because ECMP can
//! take different paths). An update dirties only the atoms whose behavior
//! could change: the atoms covered by the touched prefix or filter, plus
//! structural splits, whose untouched halves inherit their parent's results
//! — this is the differential data-plane half of the paper's pipeline.

use crate::atoms::{AtomChange, AtomId, AtomRegistry, PredId};
use crate::pset::{Pset, EMPTY, FULL};
use control_plane::{FibAction, FibEntry, NextDevice};
use net_model::{Acl, Flow, Ipv4Prefix, Snapshot};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Final fate of a packet class injected at some source device.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Outcome {
    /// Delivered into a connected subnet of this device.
    Delivered(String),
    /// Left the modeled network at this device (external peer / host next
    /// hop).
    External(String),
    /// Dropped at this device: null route or no matching route.
    Blackhole(String),
    /// Dropped by an ACL when crossing this device boundary.
    Filtered(String),
    /// Caught in a forwarding loop.
    Loop,
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Delivered(d) => write!(f, "delivered@{d}"),
            Outcome::External(d) => write!(f, "external@{d}"),
            Outcome::Blackhole(d) => write!(f, "blackhole@{d}"),
            Outcome::Filtered(d) => write!(f, "filtered@{d}"),
            Outcome::Loop => write!(f, "loop"),
        }
    }
}

/// Direction of an interface ACL.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Dir {
    /// Applied to packets entering the device on the interface.
    In,
    /// Applied to packets leaving the device on the interface.
    Out,
}

/// One filter (re)binding: the resolved ACL contents for an interface
/// direction (`None` clears the filter).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FilterChange {
    /// Device owning the interface.
    pub device: String,
    /// Interface name.
    pub iface: String,
    /// Direction.
    pub dir: Dir,
    /// New ACL contents (already resolved by name), or `None` to unbind.
    pub acl: Option<Acl>,
}

/// A batch of data-plane updates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DpUpdate {
    /// FIB entry insertions (+1) and removals (-1).
    pub fib: Vec<(FibEntry, isize)>,
    /// ACL filter rebindings.
    pub filters: Vec<FilterChange>,
}

/// Predicate releases deferred past delta computation by
/// [`DataPlane::apply_deferred`]; hand back to [`DataPlane::finish_update`].
#[must_use = "pass to DataPlane::finish_update or retired predicates leak"]
pub struct PendingReleases(Vec<PredId>);

/// One reachability change: for packets in `atom` injected at `src`, the
/// outcome set changed from `before` to `after`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReachDelta {
    /// Affected packet class. Valid while the producing update's partition
    /// is alive; see [`DataPlane::apply`] for when ids go stale.
    pub atom: AtomId,
    /// Source device.
    pub src: String,
    /// Outcomes before the update (empty set = device didn't exist).
    pub before: BTreeSet<Outcome>,
    /// Outcomes after the update.
    pub after: BTreeSet<Outcome>,
}

/// Per-device FIB state for one prefix.
struct PrefixEntry {
    pred: PredId,
    /// Actions with multiplicities (ECMP entries are distinct actions).
    actions: BTreeMap<FibAction, isize>,
}

type ReachMap = BTreeMap<String, BTreeSet<Outcome>>;

/// An immutable reachability view detached from the live verifier: the
/// frozen packet-class partition plus the per-class reach maps, captured
/// by [`DataPlane::reach_view`]. Fully owned data — clone it, move it
/// across threads, and answer queries while the verifier keeps mutating.
#[derive(Clone)]
pub struct ReachView {
    psets: crate::pset::FrozenPsets,
    /// Live atoms at capture time, in id order (the same order the live
    /// lookup scans), each with its packet set.
    atoms: Vec<(AtomId, Pset)>,
    reach: HashMap<AtomId, ReachMap>,
}

impl ReachView {
    /// Outcomes for packets of `flow` injected at `src` — identical to
    /// what [`DataPlane::query`] answered at capture time.
    pub fn query(&self, src: &str, flow: &Flow) -> BTreeSet<Outcome> {
        let (atom, _) = self
            .atoms
            .iter()
            .find(|(_, p)| self.psets.contains(*p, flow))
            .expect("atoms partition the full space");
        self.reach[atom].get(src).cloned().unwrap_or_default()
    }

    /// Number of packet equivalence classes captured.
    pub fn class_count(&self) -> usize {
        self.atoms.len()
    }
}

/// The incremental data-plane verifier. See the module docs.
pub struct DataPlane {
    reg: AtomRegistry,
    /// Sorted (comes from the snapshot's device BTreeMap), so a device's
    /// index is recovered by binary search — the reach DFS runs on indices
    /// instead of allocating `String` keys per step.
    devices: Vec<String>,
    /// `device -> iface -> (peer device, peer iface)` over physical links.
    /// Nested (rather than keyed by a `(String, String)` tuple) so the hot
    /// path can probe with borrowed `&str`s without building owned keys.
    link_map: HashMap<String, HashMap<String, (String, String)>>,
    /// Per-device FIB: prefix -> actions, with the prefix predicate.
    fibs: BTreeMap<String, BTreeMap<Ipv4Prefix, PrefixEntry>>,
    /// Compiled interface filters, per device; the inner list is small
    /// (a device's filtered interfaces) and scanned linearly with borrowed
    /// `&str` compares — again avoiding owned tuple keys per probe.
    filters: HashMap<String, Vec<(String, Dir, PredId)>>,
    /// Reachability per atom: source device -> outcomes.
    reach: HashMap<AtomId, ReachMap>,
}

/// Compiles an ACL to its permitted packet set (first-match, implicit
/// deny).
pub fn compile_acl(arena: &mut crate::pset::PsetArena, acl: &Acl) -> Pset {
    let mut allowed = EMPTY;
    let mut remaining = FULL;
    for e in &acl.entries {
        let m = arena.flow_match(&e.matches);
        let hit = arena.intersect(m, remaining);
        if e.action == net_model::Action::Permit {
            allowed = arena.union(allowed, hit);
        }
        remaining = arena.subtract(remaining, hit);
        if remaining == EMPTY {
            break;
        }
    }
    allowed
}

impl DataPlane {
    /// Creates a verifier for the given topology shell: device set, link
    /// map and initial ACL bindings come from the snapshot; the FIB starts
    /// empty and is loaded via [`DataPlane::apply`].
    pub fn new(snapshot: &Snapshot) -> Self {
        let devices: Vec<String> = snapshot.devices.keys().cloned().collect();
        let mut link_map: HashMap<String, HashMap<String, (String, String)>> = HashMap::new();
        for l in &snapshot.links {
            link_map
                .entry(l.a.device.clone())
                .or_default()
                .insert(l.a.iface.clone(), (l.b.device.clone(), l.b.iface.clone()));
            link_map
                .entry(l.b.device.clone())
                .or_default()
                .insert(l.b.iface.clone(), (l.a.device.clone(), l.a.iface.clone()));
        }
        let mut dp = DataPlane {
            reg: AtomRegistry::new(),
            devices,
            link_map,
            fibs: BTreeMap::new(),
            filters: HashMap::new(),
            reach: HashMap::new(),
        };
        // Initial reachability: single full atom, no routes anywhere.
        let initial: Vec<AtomId> = dp.reg.atom_ids().collect();
        for atom in initial {
            let map = dp.compute_reach(atom);
            dp.reach.insert(atom, map);
        }
        // Initial ACL bindings.
        let mut update = DpUpdate::default();
        for (dev, dc) in &snapshot.devices {
            for (ifname, ic) in &dc.interfaces {
                for (dir, name) in [(Dir::In, &ic.acl_in), (Dir::Out, &ic.acl_out)] {
                    if let Some(name) = name {
                        let acl = dc.acls.get(name).cloned().unwrap_or_default();
                        update.filters.push(FilterChange {
                            device: dev.clone(),
                            iface: ifname.clone(),
                            dir,
                            acl: Some(acl),
                        });
                    }
                }
            }
        }
        dp.apply(&update);
        dp
    }

    /// Number of live packet equivalence classes.
    pub fn atom_count(&self) -> usize {
        self.reg.atom_count()
    }

    /// Number of registered predicates.
    pub fn pred_count(&self) -> usize {
        self.reg.pred_count()
    }

    /// Interior decision-diagram nodes allocated (memory proxy).
    pub fn pset_nodes(&self) -> usize {
        self.reg.arena.node_count()
    }

    /// Human-readable description of an atom's header space.
    pub fn describe_atom(&self, atom: AtomId, limit: usize) -> Vec<String> {
        let p = self.reg.atom_pset(atom);
        self.reg.arena.describe(p, limit)
    }

    /// A concrete example packet of the atom.
    pub fn sample_atom(&self, atom: AtomId) -> Option<Flow> {
        self.reg.arena.sample(self.reg.atom_pset(atom))
    }

    /// Outcomes for packets of `flow` injected at `src`.
    pub fn query(&self, src: &str, flow: &Flow) -> BTreeSet<Outcome> {
        let atom = self.reg.atom_of_flow(flow);
        self.reach[&atom].get(src).cloned().unwrap_or_default()
    }

    /// Captures an immutable [`ReachView`] of the current reachability
    /// state: the frozen packet-class partition plus every per-class reach
    /// map. The view answers [`ReachView::query`] with exactly the outcomes
    /// [`DataPlane::query`] returns at this instant, without the verifier.
    pub fn reach_view(&self) -> ReachView {
        ReachView {
            psets: self.reg.arena.freeze(),
            atoms: self
                .reg
                .atom_ids()
                .map(|id| (id, self.reg.atom_pset(id)))
                .collect(),
            reach: self.reach.clone(),
        }
    }

    /// All live atoms.
    pub fn atoms(&self) -> Vec<AtomId> {
        self.reg.atom_ids().collect()
    }

    /// Outcomes for an atom injected at `src`.
    pub fn outcomes(&self, src: &str, atom: AtomId) -> BTreeSet<Outcome> {
        self.reach[&atom].get(src).cloned().unwrap_or_default()
    }

    /// Applies a batch of updates, returning the exact reachability changes.
    ///
    /// The returned [`ReachDelta::atom`] ids label packet classes *as
    /// partitioned during the update*; a class retired by the update (its
    /// last predicate released, its atoms merged) is reported but its id is
    /// dead afterwards — passing it to [`DataPlane::outcomes`] /
    /// [`DataPlane::describe_atom`] / [`DataPlane::sample_atom`] panics.
    /// Callers that need to inspect delta atoms must use
    /// [`DataPlane::apply_deferred`] and do so before
    /// [`DataPlane::finish_update`].
    pub fn apply(&mut self, update: &DpUpdate) -> Vec<ReachDelta> {
        let (deltas, pending) = self.apply_deferred(update);
        self.finish_update(pending);
        deltas
    }

    /// [`DataPlane::apply`] with predicate releases deferred: the returned
    /// deltas are computed while *both* the old and new predicates are
    /// registered, i.e. at the finest common refinement of the before and
    /// after partitions. Without deferral, releasing a predicate merges
    /// its atoms before the diff is taken, and a behavior change confined
    /// to one merged-away part is reported against the wrong baseline (or
    /// dropped entirely once the atom id dies). Callers may inspect /
    /// describe the delta atoms, then must pass the token to
    /// [`DataPlane::finish_update`].
    pub fn apply_deferred(&mut self, update: &DpUpdate) -> (Vec<ReachDelta>, PendingReleases) {
        let mut pending = PendingReleases(Vec::new());
        let mut dirty: BTreeSet<AtomId> = BTreeSet::new();
        // ---- FIB deltas ----
        for (entry, diff) in &update.fib {
            self.apply_fib_delta(entry, *diff, &mut dirty, &mut pending);
        }
        // ---- Filter changes ----
        for fc in &update.filters {
            let old = self
                .filters
                .get(fc.device.as_str())
                .and_then(|v| v.iter().find(|(i, d, _)| *i == fc.iface && *d == fc.dir))
                .map(|&(_, _, p)| p);
            // Register the new filter first so splits settle before we
            // compare memberships.
            let new = match &fc.acl {
                Some(acl) => {
                    let pset = compile_acl(&mut self.reg.arena, acl);
                    let (pred, changes) = self.reg.acquire(pset);
                    self.migrate(&changes, &mut dirty);
                    Some(pred)
                }
                None => None,
            };
            // Exactly the atoms whose pass/block flips change behavior:
            // symmetric difference of old and new memberships (an absent
            // filter behaves as "all atoms pass").
            let all: BTreeSet<AtomId> = self.reg.atom_ids().collect();
            let old_members: BTreeSet<AtomId> = match old {
                Some(p) => self.reg.atoms_of(p).collect(),
                None => all.clone(),
            };
            let new_members: BTreeSet<AtomId> = match new {
                Some(p) => self.reg.atoms_of(p).collect(),
                None => all.clone(),
            };
            dirty.extend(old_members.symmetric_difference(&new_members).copied());
            let entries = self.filters.entry(fc.device.clone()).or_default();
            entries.retain(|(i, d, _)| !(*i == fc.iface && *d == fc.dir));
            match new {
                Some(p) => entries.push((fc.iface.clone(), fc.dir, p)),
                None => {
                    if entries.is_empty() {
                        self.filters.remove(fc.device.as_str());
                    }
                }
            }
            if let Some(oldp) = old {
                pending.0.push(oldp);
            }
        }
        // Drop retired atoms that remained in the dirty set.
        let live: BTreeSet<AtomId> = self.reg.atom_ids().collect();
        dirty.retain(|a| live.contains(a));
        // The paper's incrementality claim in one number: classes
        // recomputed this update (vs. the full |atoms| a from-scratch
        // run would pay). No-op when telemetry is disabled.
        dna_obs::global()
            .counter("dp_dirty_classes")
            .add(dirty.len() as u64);
        // ---- Recompute dirty atoms and diff ----
        let mut deltas = Vec::new();
        for atom in dirty {
            let after = self.compute_reach(atom);
            let before = self.reach.insert(atom, after.clone()).unwrap_or_default();
            for dev in &self.devices {
                let b = before.get(dev).cloned().unwrap_or_default();
                let a = after.get(dev).cloned().unwrap_or_default();
                if b != a {
                    deltas.push(ReachDelta {
                        atom,
                        src: dev.clone(),
                        before: b,
                        after: a,
                    });
                }
            }
        }
        (deltas, pending)
    }

    /// Installs or retracts one FIB entry, tracking the atoms whose
    /// reachability is invalidated and the predicates retired by it.
    fn apply_fib_delta(
        &mut self,
        entry: &FibEntry,
        diff: isize,
        dirty: &mut BTreeSet<AtomId>,
        pending: &mut PendingReleases,
    ) {
        if diff == 0 {
            return;
        }
        let pset = self.reg.arena.dst_prefix(entry.prefix);
        let dev_fib = self.fibs.entry(entry.device.clone()).or_default();
        if diff > 0 {
            let pred = match dev_fib.get(&entry.prefix) {
                Some(pe) => pe.pred,
                None => {
                    let (pred, changes) = self.reg.acquire(pset);
                    self.migrate(&changes, dirty);
                    pred
                }
            };
            // Re-borrow after possible registry mutation.
            let dev_fib = self.fibs.entry(entry.device.clone()).or_default();
            let pe = dev_fib.entry(entry.prefix).or_insert(PrefixEntry {
                pred,
                actions: BTreeMap::new(),
            });
            *pe.actions.entry(entry.action.clone()).or_insert(0) += diff;
            dirty.extend(self.reg.atoms_of(pred));
        } else {
            let Some(pe) = dev_fib.get_mut(&entry.prefix) else {
                return; // removing a nonexistent entry: no-op
            };
            let pred = pe.pred;
            let count = pe.actions.entry(entry.action.clone()).or_insert(0);
            *count += diff;
            if *count <= 0 {
                pe.actions.remove(&entry.action);
            }
            dirty.extend(self.reg.atoms_of(pred));
            if pe.actions.is_empty() {
                dev_fib.remove(&entry.prefix);
                pending.0.push(pred);
            }
        }
    }

    /// Bulk baseline load of an initial FIB — the sharded bring-up
    /// seam. Ends in exactly the state of
    /// `apply(&DpUpdate { fib, filters: vec![] })` (same fibs, same
    /// partition, same reachability maps) but produces no deltas:
    /// instead of diffing each dirtied class against its pre-load
    /// outcomes, it recomputes reachability for *every* live class
    /// once, fanned out over up to `workers` scoped threads
    /// (`DataPlane::compute_reach` is read-only, and at baseline load
    /// essentially every class is dirty anyway).
    pub fn load_baseline(&mut self, fib: &[(FibEntry, isize)], workers: usize) {
        let mut dirty = BTreeSet::new();
        let mut pending = PendingReleases(Vec::new());
        for (entry, diff) in fib {
            self.apply_fib_delta(entry, *diff, &mut dirty, &mut pending);
        }
        // `dirty` only mattered for migrate bookkeeping: the full
        // recompute below covers every live atom regardless.
        drop(dirty);
        let atoms: Vec<AtomId> = self.reg.atom_ids().collect();
        let workers = workers.clamp(1, atoms.len().max(1));
        let maps: Vec<ReachMap> = if workers <= 1 {
            atoms.iter().map(|&a| self.compute_reach(a)).collect()
        } else {
            // One contiguous chunk per worker; results are stitched
            // back in atom order, so the merged state is independent of
            // scheduling.
            let chunk = atoms.len().div_ceil(workers);
            let me: &DataPlane = self;
            std::thread::scope(|s| {
                let handles: Vec<_> = atoms
                    .chunks(chunk)
                    .map(|part| {
                        s.spawn(move || {
                            part.iter()
                                .map(|&a| me.compute_reach(a))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("reach worker panicked"))
                    .collect()
            })
        };
        for (atom, map) in atoms.into_iter().zip(maps) {
            self.reach.insert(atom, map);
        }
        self.finish_update(pending);
    }

    /// Completes an [`DataPlane::apply_deferred`] call: releases retired
    /// predicates, merging atoms no longer distinguished. Merged parts are
    /// behaviorally identical by now (the dirty ones were recomputed
    /// against the after-state), so no further deltas can arise here.
    pub fn finish_update(&mut self, pending: PendingReleases) {
        let mut dirty: BTreeSet<AtomId> = BTreeSet::new();
        for pred in pending.0 {
            let changes = self.reg.release(pred);
            self.migrate(&changes, &mut dirty);
        }
        debug_assert!(
            dirty.is_empty(),
            "release-time merges must not create new dirty atoms"
        );
    }

    /// Migrates per-atom reachability across structural atom changes:
    /// children inherit their parent's results; merges keep one copy.
    fn migrate(&mut self, changes: &[AtomChange], dirty: &mut BTreeSet<AtomId>) {
        for ch in changes {
            match ch {
                AtomChange::Split {
                    parent,
                    inside,
                    outside,
                } => {
                    let map = self.reach.remove(parent).unwrap_or_default();
                    self.reach.insert(*inside, map.clone());
                    self.reach.insert(*outside, map);
                    if dirty.remove(parent) {
                        dirty.insert(*inside);
                        dirty.insert(*outside);
                    }
                }
                AtomChange::Merged { a, b, into } => {
                    let ma = self.reach.remove(a).unwrap_or_default();
                    let mb = self.reach.remove(b).unwrap_or_default();
                    // Merged atoms were behaviorally identical; if either
                    // was dirty the merged atom must be recomputed.
                    debug_assert!(ma == mb || dirty.contains(a) || dirty.contains(b));
                    self.reach.insert(*into, ma);
                    if dirty.remove(a) | dirty.remove(b) {
                        dirty.insert(*into);
                    }
                }
            }
        }
    }

    /// Longest-prefix-match resolution of an atom (by signature) at a
    /// device.
    fn actions_for(
        &self,
        device: &str,
        sig: &BTreeSet<PredId>,
    ) -> Option<&BTreeMap<FibAction, isize>> {
        let fib = self.fibs.get(device)?;
        // Prefixes sorted ascending; scan from most specific.
        let mut best: Option<(&Ipv4Prefix, &PrefixEntry)> = None;
        for (p, pe) in fib.iter() {
            if !sig.contains(&pe.pred) {
                continue;
            }
            match best {
                Some((bp, _)) if bp.len() >= p.len() => {}
                _ => best = Some((p, pe)),
            }
        }
        best.map(|(_, pe)| &pe.actions)
    }

    fn passes(&self, device: &str, iface: &str, dir: Dir, sig: &BTreeSet<PredId>) -> bool {
        match self
            .filters
            .get(device)
            .and_then(|v| v.iter().find(|(i, d, _)| i == iface && *d == dir))
        {
            None => true,
            Some(&(_, _, pred)) => sig.contains(&pred),
        }
    }

    /// Full reachability map of one atom (all sources).
    ///
    /// Memoized DFS with loop detection. Results computed while a cycle
    /// ancestor was on the stack are *tainted* (they'd miss the ancestor's
    /// other branches) and are not memoized — only complete, source-
    /// independent results enter the memo, keeping the memo sound.
    ///
    /// The DFS runs on device *indices* into the sorted `devices` vec, with
    /// flat per-index memo/stack vectors, and resolves the atom's signature
    /// once up front — the walk itself allocates no keys.
    fn compute_reach(&self, atom: AtomId) -> ReachMap {
        let sig = self.reg.atom_sig(atom);
        let n = self.devices.len();
        let mut on_stack = vec![false; n];
        let mut memo: Vec<Option<BTreeSet<Outcome>>> = vec![None; n];
        let mut map = ReachMap::new();
        for di in 0..n {
            let (out, _tainted) = self.visit(sig, di, &mut on_stack, &mut memo, 0);
            map.insert(self.devices[di].clone(), out);
        }
        map
    }

    /// One DFS step of [`DataPlane::compute_reach`]; returns the outcome
    /// set and whether it depended on a device still on the DFS stack.
    fn visit(
        &self,
        sig: &BTreeSet<PredId>,
        di: usize,
        on_stack: &mut Vec<bool>,
        memo: &mut Vec<Option<BTreeSet<Outcome>>>,
        depth: usize,
    ) -> (BTreeSet<Outcome>, bool) {
        if let Some(out) = &memo[di] {
            return (out.clone(), false);
        }
        if on_stack[di] {
            let mut s = BTreeSet::new();
            s.insert(Outcome::Loop);
            return (s, true);
        }
        debug_assert!(depth <= self.devices.len(), "path longer than device count");
        on_stack[di] = true;
        let dev = self.devices[di].as_str();
        let mut out = BTreeSet::new();
        let mut tainted = false;
        match self.actions_for(dev, sig) {
            None => {
                out.insert(Outcome::Blackhole(dev.to_string()));
            }
            Some(actions) if actions.is_empty() => {
                out.insert(Outcome::Blackhole(dev.to_string()));
            }
            Some(actions) => {
                for action in actions.keys().cloned().collect::<Vec<_>>() {
                    match &action {
                        FibAction::Drop => {
                            out.insert(Outcome::Blackhole(dev.to_string()));
                        }
                        FibAction::Deliver { iface } => {
                            if self.passes(dev, iface, Dir::Out, sig) {
                                out.insert(Outcome::Delivered(dev.to_string()));
                            } else {
                                out.insert(Outcome::Filtered(dev.to_string()));
                            }
                        }
                        FibAction::Forward { iface, next } => {
                            if !self.passes(dev, iface, Dir::Out, sig) {
                                out.insert(Outcome::Filtered(dev.to_string()));
                                continue;
                            }
                            match next {
                                NextDevice::External => {
                                    out.insert(Outcome::External(dev.to_string()));
                                }
                                NextDevice::Device(b) => {
                                    match self.link_map.get(dev).and_then(|m| m.get(iface.as_str()))
                                    {
                                        Some((peer, peer_if)) => {
                                            debug_assert_eq!(peer, b);
                                            if !self.passes(peer, peer_if, Dir::In, sig) {
                                                out.insert(Outcome::Filtered(b.clone()));
                                            } else if let Ok(bi) = self
                                                .devices
                                                .binary_search_by(|d| d.as_str().cmp(peer.as_str()))
                                            {
                                                let (sub, t) =
                                                    self.visit(sig, bi, on_stack, memo, depth + 1);
                                                tainted |= t;
                                                out.extend(sub);
                                            } else {
                                                // Link to a device outside the
                                                // snapshot: it has no FIB, so it
                                                // blackholes the traffic.
                                                out.insert(Outcome::Blackhole(b.clone()));
                                            }
                                        }
                                        // FIB points over an unknown link:
                                        // treat as blackhole.
                                        None => {
                                            out.insert(Outcome::Blackhole(dev.to_string()));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        on_stack[di] = false;
        if !tainted {
            memo[di] = Some(out.clone());
        }
        (out, tainted)
    }

    /// Semantic snapshot of all reachability state: `(atom, src) ->
    /// outcomes`. Used by tests to compare incremental maintenance against
    /// from-scratch recomputation.
    pub fn fingerprint(&self) -> BTreeMap<(AtomId, String), BTreeSet<Outcome>> {
        let mut out = BTreeMap::new();
        for (atom, map) in &self.reach {
            for (src, outcomes) in map {
                out.insert((*atom, src.clone()), outcomes.clone());
            }
        }
        out
    }

    /// From-scratch recomputation of every atom's reachability — the
    /// baseline the incremental path is benchmarked against, and the test
    /// oracle for incremental maintenance.
    pub fn recompute_all(&mut self) {
        let atoms: Vec<AtomId> = self.reg.atom_ids().collect();
        for atom in atoms {
            let map = self.compute_reach(atom);
            self.reach.insert(atom, map);
        }
    }
}
