//! # data-plane — packet-set algebra and incremental data-plane verification
//!
//! The second half of the differential pipeline: given per-device FIBs
//! (from the control-plane stage) and interface ACLs, the verifier
//! maintains network-wide reachability — per packet equivalence class and
//! per source device, the set of possible outcomes (delivered, external,
//! blackhole, filtered, loop).
//!
//! Components:
//! * [`pset`] — canonical interval decision diagrams over the 5-tuple
//!   header space (the header-space-analysis substrate);
//! * [`atoms`] — reference-counted packet equivalence classes with
//!   incremental split/merge (the Veriflow/APKeep role);
//! * [`verify`] — per-atom forwarding resolution (longest-prefix match +
//!   ACL edge filters) and memoized reachability, updated only for the
//!   classes an update actually touches.
//!
//! The from-scratch twin ([`DataPlane::recompute_all`]) doubles as the
//! benchmark baseline and the property-test oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atoms;
pub mod pset;
pub mod verify;

pub use atoms::{AtomChange, AtomId, AtomRegistry, PredId};
pub use pset::{FrozenPsets, Pset, PsetArena, EMPTY, FULL};
pub use verify::{
    compile_acl, DataPlane, Dir, DpUpdate, FilterChange, Outcome, PendingReleases, ReachDelta,
    ReachView,
};
