//! Packet sets: canonical interval decision diagrams over the 5-tuple
//! header space (dst IP, src IP, protocol, source port, destination port).
//!
//! A packet set is a node in a hash-consed DAG. Each node tests one header
//! field and partitions its domain into intervals, each leading to a child
//! deciding the remaining fields; `TRUE`/`FALSE` terminals accept/reject.
//! Canonical form (sorted intervals, merged equal neighbors, collapsed
//! uniform nodes, hash-consed) makes set equality a pointer comparison —
//! the property the atom registry builds on. This plays the role header
//! space analysis / ddNF representations play in published data-plane
//! verifiers.

use ddflow::FastMap;
use net_model::{Flow, FlowMatch, Ipv4Prefix, PortRange};

/// Field order tested by the diagram, most significant first.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Field {
    /// Destination IPv4 address (32 bits).
    DstIp = 0,
    /// Source IPv4 address (32 bits).
    SrcIp = 1,
    /// IP protocol (8 bits).
    Proto = 2,
    /// Source port (16 bits).
    SrcPort = 3,
    /// Destination port (16 bits).
    DstPort = 4,
}

const FIELDS: [Field; 5] = [
    Field::DstIp,
    Field::SrcIp,
    Field::Proto,
    Field::SrcPort,
    Field::DstPort,
];

impl Field {
    fn max(self) -> u64 {
        match self {
            Field::DstIp | Field::SrcIp => u32::MAX as u64,
            Field::Proto => u8::MAX as u64,
            Field::SrcPort | Field::DstPort => u16::MAX as u64,
        }
    }

    fn of_flow(self, f: &Flow) -> u64 {
        match self {
            Field::DstIp => f.dst.0 as u64,
            Field::SrcIp => f.src.0 as u64,
            Field::Proto => f.proto as u64,
            Field::SrcPort => f.src_port as u64,
            Field::DstPort => f.dst_port as u64,
        }
    }
}

/// A packet set handle; only meaningful with the arena that produced it.
/// Equal handles ⇔ equal sets (canonical form).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pset(u32);

/// The empty set.
pub const EMPTY: Pset = Pset(0);
/// The full header space.
pub const FULL: Pset = Pset(1);

/// Interior node: tests `field`, children cover the domain as intervals
/// `(prev_upper+1 ..= upper)`; the last upper equals the field maximum.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Node {
    field: u8, // index into FIELDS
    children: Vec<(u64, Pset)>,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    Union,
    Intersect,
}

/// Arena of hash-consed packet-set nodes with memoized operations.
///
/// All sets manipulated together must come from one arena.
#[derive(Default)]
pub struct PsetArena {
    nodes: Vec<Node>,
    // Memo caches are keyed by engine-derived handles/nodes, probed on
    // every algebra step: a non-cryptographic hasher is safe and much
    // cheaper than SipHash here (see `ddflow::hash`).
    dedup: FastMap<Node, Pset>,
    op_cache: FastMap<(Op, Pset, Pset), Pset>,
    not_cache: FastMap<Pset, Pset>,
}

impl PsetArena {
    /// Creates an arena (terminals preallocated).
    pub fn new() -> Self {
        let mut a = PsetArena::default();
        // Index 0 = EMPTY, 1 = FULL; placeholders in the node vec.
        a.nodes.push(Node {
            field: u8::MAX,
            children: vec![],
        });
        a.nodes.push(Node {
            field: u8::MAX,
            children: vec![],
        });
        a
    }

    /// Number of live interior nodes (terminals excluded).
    pub fn node_count(&self) -> usize {
        self.nodes.len().saturating_sub(2)
    }

    fn node(&self, p: Pset) -> &Node {
        &self.nodes[p.0 as usize]
    }

    fn is_terminal(p: Pset) -> bool {
        p.0 < 2
    }

    /// Builds a canonical node: merges equal neighbors, collapses uniform
    /// nodes, hash-conses.
    fn mk(&mut self, field: u8, mut children: Vec<(u64, Pset)>) -> Pset {
        debug_assert!(!children.is_empty());
        // Merge adjacent equal children.
        let mut merged: Vec<(u64, Pset)> = Vec::with_capacity(children.len());
        for (upper, child) in children.drain(..) {
            match merged.last_mut() {
                Some((lu, lc)) if *lc == child => *lu = upper,
                _ => merged.push((upper, child)),
            }
        }
        debug_assert_eq!(merged.last().unwrap().0, FIELDS[field as usize].max());
        if merged.len() == 1 {
            return merged[0].1; // uniform: collapse to the child
        }
        let node = Node {
            field,
            children: merged,
        };
        if let Some(&p) = self.dedup.get(&node) {
            return p;
        }
        let p = Pset(self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.dedup.insert(node, p);
        p
    }

    /// Set over one field: `lo..=hi` of `field`, all other fields free.
    pub fn field_range(&mut self, field: Field, lo: u64, hi: u64) -> Pset {
        let max = field.max();
        assert!(lo <= hi && hi <= max, "invalid range {lo}..={hi}");
        let mut children = Vec::new();
        if lo > 0 {
            children.push((lo - 1, EMPTY));
        }
        children.push((hi, FULL));
        if hi < max {
            children.push((max, EMPTY));
        }
        self.mk(field as u8, children)
    }

    /// Set of packets whose destination lies in the prefix.
    pub fn dst_prefix(&mut self, p: Ipv4Prefix) -> Pset {
        self.field_range(Field::DstIp, p.first() as u64, p.last() as u64)
    }

    /// Set of packets whose source lies in the prefix.
    pub fn src_prefix(&mut self, p: Ipv4Prefix) -> Pset {
        self.field_range(Field::SrcIp, p.first() as u64, p.last() as u64)
    }

    /// Set described by an ACL match (conjunction of field constraints).
    pub fn flow_match(&mut self, m: &FlowMatch) -> Pset {
        let mut acc = FULL;
        if let Some(p) = m.dst {
            let s = self.dst_prefix(p);
            acc = self.intersect(acc, s);
        }
        if let Some(p) = m.src {
            let s = self.src_prefix(p);
            acc = self.intersect(acc, s);
        }
        if let Some(pr) = m.proto {
            let s = self.field_range(Field::Proto, pr as u64, pr as u64);
            acc = self.intersect(acc, s);
        }
        if let Some(PortRange { lo, hi }) = m.src_ports {
            let s = self.field_range(Field::SrcPort, lo as u64, hi as u64);
            acc = self.intersect(acc, s);
        }
        if let Some(PortRange { lo, hi }) = m.dst_ports {
            let s = self.field_range(Field::DstPort, lo as u64, hi as u64);
            acc = self.intersect(acc, s);
        }
        acc
    }

    fn apply(&mut self, op: Op, a: Pset, b: Pset) -> Pset {
        match (op, a, b) {
            (Op::Union, FULL, _) | (Op::Union, _, FULL) => return FULL,
            (Op::Union, EMPTY, x) | (Op::Union, x, EMPTY) => return x,
            (Op::Intersect, EMPTY, _) | (Op::Intersect, _, EMPTY) => return EMPTY,
            (Op::Intersect, FULL, x) | (Op::Intersect, x, FULL) => return x,
            _ => {}
        }
        if a == b {
            return a;
        }
        let key = (op, a.min(b), a.max(b));
        if let Some(&r) = self.op_cache.get(&key) {
            return r;
        }
        let (fa, fb) = (self.node(a).field, self.node(b).field);
        let field = fa.min(fb);
        // Children of each side over `field`; a side testing a later field
        // is constant over this one.
        let ca: Vec<(u64, Pset)> = if fa == field {
            self.node(a).children.clone()
        } else {
            vec![(FIELDS[field as usize].max(), a)]
        };
        let cb: Vec<(u64, Pset)> = if fb == field {
            self.node(b).children.clone()
        } else {
            vec![(FIELDS[field as usize].max(), b)]
        };
        // Merge the two interval partitions.
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            let (ua, pa) = ca[i];
            let (ub, pb) = cb[j];
            let upper = ua.min(ub);
            let child = self.apply(op, pa, pb);
            out.push((upper, child));
            if upper == FIELDS[field as usize].max() {
                break;
            }
            if ua == upper {
                i += 1;
            }
            if ub == upper {
                j += 1;
            }
        }
        let r = self.mk(field, out);
        self.op_cache.insert(key, r);
        r
    }

    /// Set union.
    pub fn union(&mut self, a: Pset, b: Pset) -> Pset {
        self.apply(Op::Union, a, b)
    }

    /// Set intersection.
    pub fn intersect(&mut self, a: Pset, b: Pset) -> Pset {
        self.apply(Op::Intersect, a, b)
    }

    /// Set complement.
    pub fn complement(&mut self, a: Pset) -> Pset {
        match a {
            EMPTY => return FULL,
            FULL => return EMPTY,
            _ => {}
        }
        if let Some(&r) = self.not_cache.get(&a) {
            return r;
        }
        let node = self.node(a).clone();
        let children: Vec<(u64, Pset)> = node
            .children
            .iter()
            .map(|&(u, c)| (u, self.complement(c)))
            .collect();
        let r = self.mk(node.field, children);
        self.not_cache.insert(a, r);
        self.not_cache.insert(r, a);
        r
    }

    /// Set difference `a ∖ b`.
    pub fn subtract(&mut self, a: Pset, b: Pset) -> Pset {
        let nb = self.complement(b);
        self.intersect(a, nb)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self, a: Pset) -> bool {
        a == EMPTY
    }

    /// Whether `a ⊆ b`.
    pub fn is_subset(&mut self, a: Pset, b: Pset) -> bool {
        self.intersect(a, b) == a
    }

    /// Membership test for a concrete flow.
    pub fn contains(&self, a: Pset, flow: &Flow) -> bool {
        contains_in(&self.nodes, a, flow)
    }

    /// Freezes the node table into an immutable membership-only snapshot.
    /// Handles minted before the freeze stay valid against the snapshot;
    /// later arena growth is invisible to it.
    pub fn freeze(&self) -> FrozenPsets {
        FrozenPsets {
            nodes: self.nodes.clone(),
        }
    }

    /// Produces one concrete flow inside the set, or `None` if empty.
    /// Unconstrained fields default to "typical" values (TCP, port 80,
    /// source port 40000) when those lie inside the set.
    pub fn sample(&self, a: Pset) -> Option<Flow> {
        if a == EMPTY {
            return None;
        }
        let defaults: [u64; 5] = [0, 0, 6, 40000, 80];
        let mut values = defaults;
        let mut cur = a;
        while !Self::is_terminal(cur) {
            let node = self.node(cur);
            let fidx = node.field as usize;
            // Prefer the child containing the default value; otherwise the
            // first nonempty child.
            let didx = node.children.partition_point(|&(u, _)| u < defaults[fidx]);
            let pick = if node.children[didx].1 != EMPTY {
                didx
            } else {
                node.children.iter().position(|&(_, c)| c != EMPTY)?
            };
            let (upper, child) = node.children[pick];
            let lower = if pick == 0 {
                0
            } else {
                node.children[pick - 1].0 + 1
            };
            values[fidx] = if (lower..=upper).contains(&defaults[fidx]) {
                defaults[fidx]
            } else {
                lower
            };
            cur = child;
        }
        debug_assert_eq!(cur, FULL);
        Some(Flow {
            dst: net_model::Ipv4Addr(values[0] as u32),
            src: net_model::Ipv4Addr(values[1] as u32),
            proto: values[2] as u8,
            src_port: values[3] as u16,
            dst_port: values[4] as u16,
        })
    }

    /// Renders the set as a list of human-readable per-field constraints
    /// (one line per cube; truncated to `limit` cubes).
    pub fn describe(&self, a: Pset, limit: usize) -> Vec<String> {
        // DFS frame: node plus the `(field, lo, hi)` constraints on its path.
        type Frame = (Pset, Vec<(u8, u64, u64)>);
        let mut out = Vec::new();
        let mut stack: Vec<Frame> = vec![(a, Vec::new())];
        while let Some((cur, constraints)) = stack.pop() {
            if out.len() >= limit {
                out.push("…".to_string());
                break;
            }
            match cur {
                EMPTY => continue,
                FULL => {
                    let mut parts: Vec<String> = Vec::new();
                    for &(f, lo, hi) in &constraints {
                        let field = FIELDS[f as usize];
                        if lo == 0 && hi == field.max() {
                            continue;
                        }
                        let label = match field {
                            Field::DstIp => "dst",
                            Field::SrcIp => "src",
                            Field::Proto => "proto",
                            Field::SrcPort => "sport",
                            Field::DstPort => "dport",
                        };
                        let render = |v: u64| match field {
                            Field::DstIp | Field::SrcIp => {
                                net_model::Ipv4Addr(v as u32).to_string()
                            }
                            _ => v.to_string(),
                        };
                        if lo == hi {
                            parts.push(format!("{label}={}", render(lo)));
                        } else {
                            parts.push(format!("{label}={}..{}", render(lo), render(hi)));
                        }
                    }
                    if parts.is_empty() {
                        parts.push("any".to_string());
                    }
                    out.push(parts.join(" "));
                }
                _ => {
                    let node = self.node(cur).clone();
                    let mut lower = 0u64;
                    for (upper, child) in node.children {
                        let mut c = constraints.clone();
                        c.push((node.field, lower, upper));
                        stack.push((child, c));
                        lower = upper + 1;
                    }
                }
            }
        }
        out.reverse();
        out
    }
}

/// Walks the decision diagram stored in `nodes` for a membership test.
fn contains_in(nodes: &[Node], a: Pset, flow: &Flow) -> bool {
    let mut cur = a;
    while !PsetArena::is_terminal(cur) {
        let node = &nodes[cur.0 as usize];
        let v = FIELDS[node.field as usize].of_flow(flow);
        let idx = node.children.partition_point(|&(u, _)| u < v);
        cur = node.children[idx].1;
    }
    cur == FULL
}

/// An immutable snapshot of an arena's node table supporting membership
/// tests only. Produced by [`PsetArena::freeze`]; safe to move across
/// threads (no interior mutability, no memo caches). Any [`Pset`] handle
/// minted by the source arena before the freeze resolves identically
/// against the snapshot.
#[derive(Clone)]
pub struct FrozenPsets {
    nodes: Vec<Node>,
}

impl FrozenPsets {
    /// Membership test for a concrete flow.
    pub fn contains(&self, a: Pset, flow: &Flow) -> bool {
        contains_in(&self.nodes, a, flow)
    }

    /// Number of interior nodes captured (terminals excluded).
    pub fn node_count(&self) -> usize {
        self.nodes.len().saturating_sub(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::{ip, pfx};

    #[test]
    fn terminals_and_canonical_equality() {
        let mut a = PsetArena::new();
        let p1 = a.dst_prefix(pfx("10.0.0.0/8"));
        let p2 = a.dst_prefix(pfx("10.0.0.0/8"));
        assert_eq!(p1, p2, "hash-consing gives identical handles");
        let np1 = a.complement(p1);
        assert_eq!(a.union(p1, np1), FULL);
        let none = a.subtract(p1, p1);
        assert_eq!(none, EMPTY);
    }

    #[test]
    fn containment_follows_prefixes() {
        let mut a = PsetArena::new();
        let p = a.dst_prefix(pfx("10.1.0.0/16"));
        assert!(a.contains(p, &Flow::tcp_to(ip("10.1.2.3"), 80)));
        assert!(!a.contains(p, &Flow::tcp_to(ip("10.2.0.0"), 80)));
        let sub = a.dst_prefix(pfx("10.1.4.0/24"));
        assert!(a.is_subset(sub, p));
        assert!(!a.is_subset(p, sub));
    }

    #[test]
    fn algebra_laws_hold() {
        let mut a = PsetArena::new();
        let x = a.dst_prefix(pfx("10.0.0.0/8"));
        let y = a.src_prefix(pfx("192.168.0.0/16"));
        let z = a.field_range(Field::Proto, 6, 6);
        // De Morgan.
        let lhs = {
            let u = a.union(x, y);
            a.complement(u)
        };
        let rhs = {
            let (nx, ny) = (a.complement(x), a.complement(y));
            a.intersect(nx, ny)
        };
        assert_eq!(lhs, rhs);
        // Distributivity.
        let lhs = {
            let u = a.union(y, z);
            a.intersect(x, u)
        };
        let rhs = {
            let xy = a.intersect(x, y);
            let xz = a.intersect(x, z);
            a.union(xy, xz)
        };
        assert_eq!(lhs, rhs);
        // Absorption and idempotence.
        let xy = a.intersect(x, y);
        assert_eq!(a.union(x, xy), x);
        assert_eq!(a.union(x, x), x);
        assert_eq!(a.intersect(x, x), x);
        // Double complement.
        let nn = {
            let n = a.complement(x);
            a.complement(n)
        };
        assert_eq!(nn, x);
    }

    #[test]
    fn multi_field_flow_match() {
        let mut a = PsetArena::new();
        let m = FlowMatch {
            src: Some(pfx("192.168.0.0/16")),
            dst: Some(pfx("10.0.0.0/8")),
            proto: Some(6),
            src_ports: None,
            dst_ports: Some(PortRange { lo: 80, hi: 443 }),
        };
        let s = a.flow_match(&m);
        let mut inside = Flow::tcp_to(ip("10.1.1.1"), 100);
        inside.src = ip("192.168.5.5");
        assert!(a.contains(s, &inside));
        let mut wrong_port = inside;
        wrong_port.dst_port = 8080;
        assert!(!a.contains(s, &wrong_port));
        let mut wrong_proto = inside;
        wrong_proto.proto = 17;
        assert!(!a.contains(s, &wrong_proto));
    }

    #[test]
    fn sample_picks_member() {
        let mut a = PsetArena::new();
        let m = FlowMatch {
            dst: Some(pfx("10.9.0.0/16")),
            proto: Some(17),
            ..FlowMatch::any()
        };
        let s = a.flow_match(&m);
        let f = a.sample(s).unwrap();
        assert!(a.contains(s, &f));
        assert_eq!(f.proto, 17);
        assert!(pfx("10.9.0.0/16").contains(f.dst));
        assert!(a.sample(EMPTY).is_none());
    }

    #[test]
    fn describe_renders_constraints() {
        let mut a = PsetArena::new();
        let s = a.dst_prefix(pfx("10.0.0.0/8"));
        let d = a.describe(s, 5);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("dst=10.0.0.0..10.255.255.255"), "{d:?}");
        assert_eq!(a.describe(FULL, 5), vec!["any".to_string()]);
    }

    #[test]
    fn disjoint_prefixes_partition() {
        let mut a = PsetArena::new();
        let (l, r) = pfx("10.0.0.0/8").split().unwrap();
        let pl = a.dst_prefix(l);
        let pr = a.dst_prefix(r);
        let whole = a.dst_prefix(pfx("10.0.0.0/8"));
        assert_eq!(a.intersect(pl, pr), EMPTY);
        assert_eq!(a.union(pl, pr), whole);
    }
}
