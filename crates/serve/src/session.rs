//! The session layer: one live analysis per loaded snapshot.
//!
//! A [`Session`] keeps a [`dna_core::DiffEngine`] resident across epochs
//! (plus an optional [`dna_core::ScratchDiffer`] verification shadow),
//! ingests change epochs incrementally, and retains a bounded window of
//! canonical per-epoch diffs so history queries (blast radius, report
//! ranges) are answered from memory. A [`SessionManager`] owns several
//! named sessions — one per loaded snapshot — enabling concurrent
//! scenarios against one server.
//!
//! Every query is answered from incrementally maintained state; nothing
//! on the query path re-simulates the network.

use crate::subs::{InvariantCheck, NotifyHub, SubKind, SubscriptionRegistry};
use crate::view::{QueryView, ViewSlot};
use data_plane::Outcome;
use dna_core::{ReplayCheckpoint, ReplayMode, ReplaySession, ReplayTotals};
use dna_io::{
    Checkpoint, CheckpointConfig, CheckpointSource, CheckpointTotals, EpochDiff, Notify,
    NotifyEvent, Query, QueryKind, Response, ServiceStats, SessionInfo, SubscriptionSpec, Trace,
    TraceEpoch,
};
use dna_obs::EpochSpan;
use net_model::{Flow, Snapshot};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Per-session policy, fixed at open time.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Maximum per-epoch diffs retained for history queries. Older
    /// epochs age out; ingest continues unbounded.
    pub retain: usize,
    /// Additional byte budget for the retained history: when set, old
    /// epochs also age out once the canonical serialized size of the
    /// retained diffs exceeds the budget (the freshest epoch is always
    /// kept, even when it alone is over budget).
    pub retain_bytes: Option<usize>,
    /// Attach a from-scratch shadow and cross-check every epoch.
    pub verify: bool,
    /// Shard count for engine bring-up (`DiffEngine::with_shards`).
    pub shards: usize,
    /// Directory for durable per-session checkpoints. Enables both the
    /// ingest-cadence checkpoints and the on-demand `checkpoint` query.
    pub checkpoint_dir: Option<PathBuf>,
    /// Write a checkpoint after every N ingested epochs (0 disables the
    /// cadence; on-demand checkpoints still work). Only meaningful with
    /// a checkpoint directory.
    pub checkpoint_every: usize,
    /// Backlog epoch coalescing: when this session's ingest queue is
    /// deep, up to this many pending epochs are merged into **one**
    /// dataflow commit (one engine commit, one history record with a
    /// `coalesced(N): ...` label — see FORMAT.md). 0 or 1 disables
    /// coalescing; every epoch then commits individually.
    pub coalesce: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            retain: 64,
            retain_bytes: None,
            verify: false,
            shards: 1,
            checkpoint_dir: None,
            checkpoint_every: 0,
            coalesce: 0,
        }
    }
}

/// The merged history label of a coalesced commit (the format FORMAT.md
/// documents): `coalesced(N)` followed by the constituent epochs'
/// labels in arrival order joined with ` + `. Unlabeled epochs are
/// skipped; an all-unlabeled merge keeps the bare `coalesced(N)`.
pub fn coalesced_label(epochs: &[&TraceEpoch]) -> String {
    let mut label = format!("coalesced({})", epochs.len());
    let mut sep = ": ";
    for ep in epochs {
        if let Some(l) = &ep.label {
            label.push_str(sep);
            label.push_str(l);
            sep = " + ";
        }
    }
    label
}

/// The on-disk file name of a session's checkpoint inside the
/// checkpoint directory. Session names are arbitrary strings (the wire
/// format quotes them); a name made only of `[A-Za-z0-9._-]` is used
/// verbatim, anything else is sanitized **and** suffixed with a hash
/// of the real name — two distinct sessions must never share a file,
/// or the later cadence write would silently destroy the earlier
/// session's durability. The authoritative name lives *inside* the
/// artifact; the file name is only an address.
pub fn checkpoint_file_name(session: &str) -> String {
    let safe = !session.is_empty()
        && session
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if safe {
        return format!("{session}.ckpt.dna");
    }
    let stem: String = session
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    // FNV-1a over the original name disambiguates the sanitized stem.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in session.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{stem}-{hash:016x}.ckpt.dna")
}

/// Loads a checkpoint's snapshot: inline checkpoints carry it; `ref`
/// checkpoints name a snapshot artifact on disk, resolved relative to
/// `base_dir` (the checkpoint file's directory — `None` means the
/// process working directory, the only base a streamed artifact has).
pub fn resolve_checkpoint_snapshot(
    ckpt: &Checkpoint,
    base_dir: Option<&Path>,
) -> Result<Snapshot, String> {
    match &ckpt.source {
        CheckpointSource::Inline(snap) => Ok(snap.clone()),
        CheckpointSource::Ref(path) => {
            let mut full = PathBuf::from(path);
            if full.is_relative() {
                if let Some(base) = base_dir {
                    full = base.join(full);
                }
            }
            let text = std::fs::read_to_string(&full)
                .map_err(|e| format!("checkpoint snapshot ref {}: {e}", full.display()))?;
            dna_io::parse_snapshot(&text)
                .map_err(|e| format!("checkpoint snapshot ref {}: {e}", full.display()))
        }
    }
}

/// One retained epoch: its absolute index, canonical diff, and the
/// diff's canonical serialized size (0 when no byte budget is set).
/// The diff is `Arc`'d so publishing a [`QueryView`] after epoch N
/// shares the window with the previous view instead of deep-copying
/// `retain` diffs per epoch.
struct EpochRecord {
    index: usize,
    diff: Arc<EpochDiff>,
    bytes: usize,
}

/// Telemetry handles for one session's hot paths, resolved against the
/// process-global registry once at open/resume so per-epoch work never
/// re-hashes a registry key. When telemetry is killed via
/// `DNA_OBS_DISABLED` every handle is a no-op and recording costs two
/// branch misses per epoch.
struct SessionObs {
    epochs_applied: dna_obs::Counter,
    epoch_apply_us: dna_obs::Histogram,
    view_publishes: dna_obs::Counter,
    view_publish_us: dna_obs::Histogram,
    checkpoint_writes: dna_obs::Counter,
    checkpoint_write_us: dna_obs::Histogram,
    queries_answered: dna_obs::Counter,
    /// Standing queries currently registered on this session.
    subscriptions_active: dna_obs::Gauge,
    /// Notify events delivered (queued for poll, and pushed when a hub
    /// watcher is attached) because a commit changed a subscription's
    /// answer.
    notifies_pushed: dna_obs::Counter,
    /// Commit × subscription evaluations that produced no event — the
    /// proof that non-intersecting epochs cost zero bytes.
    notify_suppressed: dna_obs::Counter,
    /// Epochs folded into an already-open merged commit by backlog
    /// coalescing — i.e. engine commits saved (a merged commit of N
    /// epochs adds N-1).
    epochs_coalesced: dna_obs::Counter,
    /// Dataflow operators skipped by dirty-node scheduling, summed
    /// over every commit this session applied.
    dd_nodes_skipped: dna_obs::Counter,
    /// Dataflow tuples processed, summed over every commit — the
    /// cheap allocation-pressure proxy for the commit path (tuple
    /// traffic is what the hot-path maps and batches allocate for).
    dd_tuples: dna_obs::Counter,
    /// Live resource accounting (heartbeat, retained/published bytes).
    /// The session layer shares these cells with the router's engine
    /// thread — registration is get-or-create — so single-threaded
    /// transports (pipe, broker) still beat the heartbeat and report
    /// memory, and the health query sees every session on every
    /// transport.
    acct: dna_obs::SessionAccounting,
}

impl SessionObs {
    fn new(session: &str) -> Self {
        let r = dna_obs::global();
        SessionObs {
            epochs_applied: r.counter_for("epochs_applied", session),
            epoch_apply_us: r.histogram_for("epoch_apply_us", session),
            view_publishes: r.counter_for("view_publishes", session),
            view_publish_us: r.histogram_for("view_publish_us", session),
            checkpoint_writes: r.counter_for("checkpoint_writes", session),
            checkpoint_write_us: r.histogram_for("checkpoint_write_us", session),
            queries_answered: r.counter_for("queries_answered", session),
            subscriptions_active: r.gauge_for("subscriptions_active", session),
            notifies_pushed: r.counter_for("notifies_pushed", session),
            notify_suppressed: r.counter_for("notify_suppressed", session),
            epochs_coalesced: r.counter_for("epochs_coalesced", session),
            dd_nodes_skipped: r.counter_for("dd_nodes_skipped", session),
            dd_tuples: r.counter_for("dd_tuples", session),
            acct: dna_obs::SessionAccounting::register(r, session),
        }
    }
}

/// A live differential analysis of one snapshot.
pub struct Session {
    name: String,
    replay: ReplaySession,
    config: SessionConfig,
    history: VecDeque<EpochRecord>,
    /// Total canonical bytes of the retained history (0 unless a byte
    /// budget is configured).
    history_bytes: usize,
    mismatches: u64,
    /// Where this session publishes its immutable [`QueryView`] after
    /// every applied epoch (see [`crate::view`]). `None` outside the
    /// TCP front door — pipe-mode sessions never pay the capture.
    view: Option<Arc<ViewSlot>>,
    /// Standing queries ([`crate::subs`]). Interior mutability because
    /// subscribe/poll arrive on the `&self` query path while
    /// commit-tail evaluation runs on the ingest path of the same
    /// thread; the lock is never contended across threads.
    subs: Mutex<SubscriptionRegistry>,
    /// Push fan-out to TCP watchers; `None` outside the TCP front door
    /// (the `notifications` poll works on every transport regardless).
    hub: Option<Arc<NotifyHub>>,
    obs: SessionObs,
}

/// Locks a session's subscription registry even when a previous holder
/// panicked mid-update: every mutation under the lock is registry
/// bookkeeping, valid at each instruction boundary, so poison carries
/// no information — and must never fail the ingest path.
fn lock_subs(m: &Mutex<SubscriptionRegistry>) -> MutexGuard<'_, SubscriptionRegistry> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Session {
    /// Opens a session: runs the one-time from-scratch initialization of
    /// the differential engine (and the shadow when `config.verify`),
    /// fanned out over `config.shards` bring-up workers.
    pub fn open(name: &str, snapshot: Snapshot, config: SessionConfig) -> Result<Self, String> {
        let mode = if config.verify {
            ReplayMode::Both
        } else {
            ReplayMode::Differential
        };
        let mut replay = ReplaySession::with_shards(snapshot, mode, config.shards)
            .map_err(|e| format!("session {name:?}: initial analysis: {e}"))?;
        // Per-epoch stat records serve the same history window as the
        // diff history; both stay bounded on an unbounded stream.
        replay.set_stats_retention(config.retain);
        Ok(Session {
            name: name.to_string(),
            replay,
            config,
            history: VecDeque::new(),
            history_bytes: 0,
            mismatches: 0,
            view: None,
            subs: Mutex::new(SubscriptionRegistry::default()),
            hub: None,
            obs: SessionObs::new(name),
        })
    }

    /// Rebuilds a session from a checkpoint plus its (already resolved)
    /// snapshot: engine bring-up on the checkpointed state, then a
    /// fast-forward of the counters and retained history. Retention and
    /// verify policy come from the **checkpoint** — they are observable
    /// in the session's responses, so resume must restore them for the
    /// session to be indistinguishable from one that never restarted.
    /// Shard count and checkpoint cadence come from `server` — neither
    /// is observable, and the resuming host knows its own hardware and
    /// durability policy.
    pub fn resume(
        ckpt: &Checkpoint,
        snapshot: Snapshot,
        server: &SessionConfig,
    ) -> Result<Self, String> {
        let name = ckpt.session.clone();
        // Checked counter restoration: a checkpoint's u64 counters may
        // not fit this host's usize (32-bit resumer of a 64-bit write)
        // and its history window must sit below its epoch count — the
        // old `as usize` casts silently wrapped instead of refusing.
        let counters = ckpt
            .resume_counters()
            .map_err(|e| format!("session {name:?}: {e}"))?;
        let config = SessionConfig {
            retain: counters.retain,
            retain_bytes: counters.retain_bytes,
            verify: ckpt.config.verify,
            shards: server.shards,
            checkpoint_dir: server.checkpoint_dir.clone(),
            checkpoint_every: server.checkpoint_every,
            coalesce: server.coalesce,
        };
        let mode = if config.verify {
            ReplayMode::Both
        } else {
            ReplayMode::Differential
        };
        let t = &ckpt.totals;
        let replay_ckpt = ReplayCheckpoint {
            snapshot,
            epochs: counters.epochs,
            totals: ReplayTotals {
                epochs: counters.epochs,
                changes: counters.changes,
                rib: counters.rib,
                fib: counters.fib,
                flows: counters.flows,
                cp_time: Duration::from_nanos(t.cp_ns),
                dp_time: Duration::from_nanos(t.dp_ns),
                total_time: Duration::from_nanos(t.total_ns),
            },
        };
        let mut replay = ReplaySession::resume(replay_ckpt, mode, config.shards)
            .map_err(|e| format!("session {name:?}: resume analysis: {e}"))?;
        replay.set_stats_retention(config.retain);
        let mut session = Session {
            obs: SessionObs::new(&name),
            name,
            replay,
            config,
            history: VecDeque::new(),
            history_bytes: 0,
            mismatches: ckpt.mismatches,
            view: None,
            subs: Mutex::new(SubscriptionRegistry::default()),
            hub: None,
        };
        for (index, diff) in &ckpt.history {
            session.push_history(*index, diff.clone());
        }
        Ok(session)
    }

    /// Captures the session's durable state as a `dna-io` checkpoint
    /// artifact value (always with the snapshot inline — the live
    /// session's current snapshot exists nowhere else on disk).
    pub fn checkpoint_artifact(&self) -> Checkpoint {
        let t = self.replay.totals();
        Checkpoint {
            session: self.name.clone(),
            config: CheckpointConfig {
                retain: self.config.retain as u64,
                retain_bytes: self.config.retain_bytes.map(|b| b as u64),
                verify: self.config.verify,
                shards: self.config.shards as u64,
            },
            epochs: self.epochs() as u64,
            mismatches: self.mismatches,
            totals: CheckpointTotals {
                changes: t.changes as u64,
                rib: t.rib as u64,
                fib: t.fib as u64,
                flows: t.flows as u64,
                cp_ns: t.cp_time.as_nanos() as u64,
                dp_ns: t.dp_time.as_nanos() as u64,
                total_ns: t.total_time.as_nanos() as u64,
            },
            source: CheckpointSource::Inline(self.snapshot().clone()),
            history: self
                .history
                .iter()
                .map(|r| (r.index, (*r.diff).clone()))
                .collect(),
        }
    }

    /// Writes the session's checkpoint into the configured directory,
    /// atomically (write to a temp file in the same directory, then
    /// rename over the target): a crash mid-write leaves either the
    /// previous checkpoint or the new one, never a torn file. Returns
    /// the target path and the artifact's size in bytes.
    pub fn write_checkpoint(&self) -> Result<(PathBuf, u64), String> {
        let Some(dir) = &self.config.checkpoint_dir else {
            return Err(format!(
                "session {:?}: no checkpoint directory configured",
                self.name
            ));
        };
        let text = dna_io::write_checkpoint(&self.checkpoint_artifact());
        let bytes = text.len() as u64;
        let target = dir.join(checkpoint_file_name(&self.name));
        // The temp name must be unique per in-flight write, not just
        // per process: session engine threads checkpoint concurrently,
        // and two writers sharing a temp path could rename a torn file
        // over the target.
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = dir.join(format!(
            ".{}.tmp.{}.{seq}",
            checkpoint_file_name(&self.name),
            std::process::id()
        ));
        let fail = |what: &str, e: std::io::Error| {
            format!("session {:?}: {what} {}: {e}", self.name, tmp.display())
        };
        let start = Instant::now();
        std::fs::write(&tmp, &text).map_err(|e| fail("write checkpoint temp", e))?;
        std::fs::rename(&tmp, &target).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!(
                "session {:?}: rename checkpoint into {}: {e}",
                self.name,
                target.display()
            )
        })?;
        self.obs.checkpoint_writes.inc();
        self.obs.checkpoint_write_us.observe(start.elapsed());
        Ok((target, bytes))
    }

    /// Session name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Epochs ingested since open.
    pub fn epochs(&self) -> usize {
        self.replay.epochs_replayed()
    }

    /// Epochs on which the verification shadow disagreed.
    pub fn mismatches(&self) -> u64 {
        self.mismatches
    }

    /// The session's current snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        self.replay.snapshot()
    }

    /// The underlying replay session (stats, engine access).
    pub fn replay(&self) -> &ReplaySession {
        &self.replay
    }

    /// Applies one change epoch incrementally. Returns the flow-diff
    /// count of the epoch. On error nothing is applied.
    pub fn ingest(&mut self, epoch: &TraceEpoch) -> Result<usize, String> {
        self.ingest_timed(epoch, 0)
    }

    /// [`Session::ingest`] with the wire-parse time the caller already
    /// spent on this epoch, so the recorded lifecycle span covers the
    /// whole parse → control-plane → data-plane → publish pipeline
    /// (pass 0 when the epoch never crossed a wire).
    pub fn ingest_timed(&mut self, epoch: &TraceEpoch, parse_ns: u64) -> Result<usize, String> {
        let start = Instant::now();
        self.obs.acct.beat();
        let out = self
            .replay
            .step(&epoch.changes)
            .map_err(|e| format!("session {:?}: epoch {}: {e}", self.name, self.epochs()))?;
        if out.analyzers_agree() == Some(false) {
            self.mismatches += 1;
        }
        let index = out.index;
        let diff = EpochDiff::from_behavior(epoch.label.clone(), out.primary());
        let flows = self.push_history(index, diff);
        self.commit_epilogue(
            index,
            epoch.label.clone(),
            epoch.changes.len(),
            1,
            parse_ns,
            start,
            flows,
        );
        Ok(flows)
    }

    /// Applies several pending change epochs as **one** dataflow commit
    /// (see [`dna_core::ReplaySession::step_coalesced`]): the backlog
    /// drain path behind `--coalesce`. One engine commit, one retained
    /// history record carrying the merged `coalesced(N): ...` label
    /// (documented in FORMAT.md), one view publish, one lifecycle span.
    /// The final engine state is identical to ingesting the epochs one
    /// by one; what is lost is the N-1 intermediate history records.
    /// Atomic: on error nothing is applied (callers wanting stream
    /// semantics fall back to per-epoch ingest — the router does).
    pub fn ingest_coalesced(
        &mut self,
        epochs: &[&TraceEpoch],
        parse_ns: u64,
    ) -> Result<usize, String> {
        if let [single] = epochs {
            return self.ingest_timed(single, parse_ns);
        }
        if epochs.is_empty() {
            return Ok(0);
        }
        let start = Instant::now();
        self.obs.acct.beat();
        let out = self
            .replay
            .step_coalesced(epochs.iter().map(|e| &e.changes))
            .map_err(|e| format!("session {:?}: epoch {}: {e}", self.name, self.epochs()))?;
        if out.analyzers_agree() == Some(false) {
            self.mismatches += 1;
        }
        let index = out.index;
        let label = Some(coalesced_label(epochs));
        let diff = EpochDiff::from_behavior(label.clone(), out.primary());
        let flows = self.push_history(index, diff);
        // N epochs, one commit: N-1 engine commits amortized away.
        self.obs.epochs_coalesced.add(epochs.len() as u64 - 1);
        let changes = epochs.iter().map(|e| e.changes.len()).sum();
        self.commit_epilogue(index, label, changes, epochs.len(), parse_ns, start, flows);
        Ok(flows)
    }

    /// The shared tail of every applied commit — view publish, cadence
    /// checkpoint, hot-path counters, lifecycle span — so the per-epoch
    /// and coalesced ingest paths stay observably identical per commit.
    // Every argument is one fact about the commit just applied; a
    // params struct would only rename the call sites.
    #[allow(clippy::too_many_arguments)]
    fn commit_epilogue(
        &mut self,
        index: usize,
        label: Option<String>,
        changes: usize,
        epochs_in_commit: usize,
        parse_ns: u64,
        start: Instant,
        flows: usize,
    ) {
        // Standing queries re-evaluate from this commit's diff before
        // the view publish: the epoch lifecycle is parse → cp → dp →
        // diff → subscriptions → publish → ack, so a client that holds
        // the commit's ack has already had its notifies queued/pushed.
        self.notify_subscriptions(index);
        // Publish the refreshed read view before acknowledging the
        // epoch: a client that holds our reply must find a view at
        // least this fresh (cheap no-op when no slot is attached).
        let publish_ns = self.publish_view();
        // Cadence checkpoints ride the ingest path. A failed write must
        // not fail the epoch (the analysis state is fine — durability
        // degraded, which the operator hears about on stderr). A
        // coalesced commit advances the epoch counter by N, so the
        // cadence test is "did this commit cross a multiple", not
        // "did it land on one".
        if self.config.checkpoint_dir.is_some()
            && self.config.checkpoint_every > 0
            && self.epochs() / self.config.checkpoint_every
                > (self.epochs() - epochs_in_commit) / self.config.checkpoint_every
        {
            if let Err(e) = self.write_checkpoint() {
                // Durability degradation outranks --quiet: always heard.
                dna_obs::log::announce(&format!("dna serve: checkpoint failed: {e}"));
            }
        }
        let apply_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.obs.epochs_applied.inc();
        self.obs.epoch_apply_us.observe_ns(apply_ns);
        // The engine's own per-epoch record carries the stage split; the
        // span adds what the engine cannot know — parse and publish.
        let (cp_ns, dp_ns) = self.replay.last_stats().map_or((0, 0), |s| {
            (
                s.cp_time.as_nanos().min(u64::MAX as u128) as u64,
                s.dp_time.as_nanos().min(u64::MAX as u128) as u64,
            )
        });
        if let Some(s) = self.replay.last_stats() {
            self.obs.dd_nodes_skipped.add(s.nodes_skipped as u64);
            self.obs.dd_tuples.add(s.cp_tuples as u64);
        }
        dna_obs::spans().record(EpochSpan {
            session: self.name.clone(),
            epoch: index as u64,
            label,
            parse_ns,
            cp_ns,
            dp_ns,
            publish_ns,
            total_ns: parse_ns.saturating_add(apply_ns),
            changes: changes as u64,
            flows: flows as u64,
        });
    }

    /// Appends one canonical diff to the retained history and applies
    /// the retention bounds (shared by ingest and resume, so a resumed
    /// history is bounded exactly like a live one).
    fn push_history(&mut self, index: usize, mut diff: EpochDiff) -> usize {
        let flows = diff.flows.len();
        // Sizing only runs when a byte budget is configured — the
        // serialization is pure overhead otherwise.
        let bytes = if self.config.retain_bytes.is_some() {
            let wrapped = dna_io::Report { epochs: vec![diff] };
            let n = dna_io::write_report(&wrapped).len();
            diff = wrapped.epochs.into_iter().next().expect("just wrapped");
            n
        } else {
            0
        };
        self.history_bytes += bytes;
        self.history.push_back(EpochRecord {
            index,
            diff: Arc::new(diff),
            bytes,
        });
        while self.history.len() > self.config.retain
            || (self.history.len() > 1
                && self
                    .config
                    .retain_bytes
                    .is_some_and(|budget| self.history_bytes > budget))
        {
            if let Some(old) = self.history.pop_front() {
                self.history_bytes -= old.bytes;
            }
        }
        self.obs.acct.history_bytes.set(self.history_bytes as u64);
        flows
    }

    /// Canonical serialized size of the retained history (0 unless a
    /// byte budget is configured).
    pub fn history_bytes(&self) -> usize {
        self.history_bytes
    }

    /// Applies a whole trace epoch by epoch; returns `(epochs applied,
    /// flow diffs produced)`. Stops at the first failing epoch; earlier
    /// epochs stay applied (stream semantics), so the error side also
    /// carries how many were — state mutation is never misreported.
    pub fn ingest_trace(&mut self, trace: &Trace) -> Result<(usize, usize), (usize, String)> {
        self.ingest_trace_timed(trace, 0)
    }

    /// [`Session::ingest_trace`] with the wire-parse time the caller
    /// spent on the whole trace artifact, amortized evenly across its
    /// epochs for the recorded lifecycle spans (a trace parses as one
    /// artifact; per-epoch parse cost is not separately observable).
    pub fn ingest_trace_timed(
        &mut self,
        trace: &Trace,
        parse_ns: u64,
    ) -> Result<(usize, usize), (usize, String)> {
        let per_epoch_ns = parse_ns / trace.epochs.len().max(1) as u64;
        let mut flows = 0;
        for (applied, ep) in trace.epochs.iter().enumerate() {
            match self.ingest_timed(ep, per_epoch_ns) {
                Ok(n) => flows += n,
                Err(e) => {
                    return Err((
                        applied,
                        format!("{e} ({applied} earlier epoch(s) of this trace applied)"),
                    ))
                }
            }
        }
        Ok((trace.epochs.len(), flows))
    }

    /// Answers one query against this session. Infallible at this layer:
    /// domain problems (unknown device, empty engine) come back as
    /// [`Response::Error`].
    pub fn answer(&self, kind: &QueryKind) -> Response {
        self.obs.acct.beat();
        self.obs.queries_answered.inc();
        match kind {
            QueryKind::Reach { src, flow } => self.reach(src, flow),
            QueryKind::ReachPair { src, dst } => match self.resolve_dst(dst) {
                Ok(flow) => self.reach(src, &flow),
                Err(e) => Response::Error(e),
            },
            QueryKind::Blast { last } => self.blast(*last),
            QueryKind::Report { from, to } => self.report(*from, *to),
            QueryKind::Stats => Response::Stats(self.stats()),
            QueryKind::Sessions => {
                Response::Error("sessions is a server-level query; the manager answers it".into())
            }
            // Telemetry is process-global: every transport intercepts
            // these before session dispatch (see [`crate::obs`]), so
            // reaching a session is a routing bug surfaced as an error.
            QueryKind::Metrics
            | QueryKind::TraceSpans { .. }
            | QueryKind::Health
            | QueryKind::History { .. } => Response::Error(
                "metrics/trace/health/history are server-level queries; the transport answers them"
                    .into(),
            ),
            // Standing-query commands reply with notify artifacts, not
            // responses: every transport dispatches them through
            // [`Session::subscription_reply`] first, so reaching this
            // arm is a routing bug surfaced as an error.
            QueryKind::Subscribe(_)
            | QueryKind::Unsubscribe { .. }
            | QueryKind::Notifications { .. } => Response::Error(
                "subscription queries are answered with notify artifacts; the transport dispatches them"
                    .into(),
            ),
            QueryKind::Checkpoint => match self.write_checkpoint() {
                Ok((_path, bytes)) => Response::Checkpointed {
                    session: self.name.clone(),
                    epochs: self.epochs() as u64,
                    bytes,
                },
                Err(e) => Response::Error(e),
            },
        }
    }

    fn reach(&self, src: &str, flow: &Flow) -> Response {
        if !self.snapshot().devices.contains_key(src) {
            return Response::Error(format!("unknown source device {src:?}"));
        }
        match self.replay.query(src, flow) {
            Some(outcomes) => Response::Reach { outcomes },
            None => Response::Error("session has no live differential engine".into()),
        }
    }

    /// Resolves an endpoint-pair destination to a representative flow:
    /// a TCP/80 packet to the canonical (lowest-named interface)
    /// address of `dst`. Deterministic, so responses are byte-stable.
    fn resolve_dst(&self, dst: &str) -> Result<Flow, String> {
        let dc = self
            .snapshot()
            .devices
            .get(dst)
            .ok_or_else(|| format!("unknown destination device {dst:?}"))?;
        let (_, ic) = dc
            .interfaces
            .iter()
            .next()
            .ok_or_else(|| format!("destination device {dst:?} has no interfaces"))?;
        Ok(Flow::tcp_to(ic.addr, 80))
    }

    fn blast(&self, last: usize) -> Response {
        let window = last.min(self.history.len());
        let mut flows = 0u64;
        let mut devices: BTreeMap<&str, u64> = BTreeMap::new();
        for rec in self.history.iter().rev().take(window) {
            for f in &rec.diff.flows {
                flows += 1;
                *devices.entry(&f.src).or_insert(0) += 1;
            }
        }
        Response::Blast {
            epochs: window as u64,
            flows,
            devices: devices
                .into_iter()
                .map(|(d, n)| (d.to_string(), n))
                .collect(),
        }
    }

    fn report(&self, from: usize, to: usize) -> Response {
        let epochs = self
            .history
            .iter()
            .filter(|r| r.index >= from && r.index < to)
            .map(|r| (r.index, (*r.diff).clone()))
            .collect();
        Response::Report { epochs }
    }

    /// The session's statistics — counters and state sizes straight off
    /// the engine, timings off [`ReplaySession::totals`] (the same
    /// records the bench harness tabulates).
    pub fn stats(&self) -> ServiceStats {
        let t = self.replay.totals();
        let (tuples, classes) = match self.replay.engine() {
            Some(e) => {
                let (tuples, atoms, _psets) = e.state_size();
                (tuples as u64, atoms as u64)
            }
            None => (0, 0),
        };
        let snap = self.snapshot();
        ServiceStats {
            session: self.name.clone(),
            epochs: self.epochs() as u64,
            retained: self.history.len() as u64,
            retained_from: self.history.front().map_or(self.epochs(), |r| r.index) as u64,
            devices: snap.device_count() as u64,
            links: snap.links.len() as u64,
            classes,
            tuples,
            flows: t.flows as u64,
            mismatches: self.mismatches,
            cp_us: t.cp_time.as_micros() as u64,
            dp_us: t.dp_time.as_micros() as u64,
            total_us: t.total_time.as_micros() as u64,
        }
    }

    pub(crate) fn info(&self) -> SessionInfo {
        SessionInfo {
            name: self.name.clone(),
            epochs: self.epochs() as u64,
            devices: self.snapshot().device_count() as u64,
            verify: self.config.verify,
            failed: false,
        }
    }

    /// Attaches the slot this session publishes its read views into,
    /// and publishes the current state immediately — from the first
    /// moment a reader can resolve the session, a view exists.
    pub fn set_view_slot(&mut self, slot: Arc<ViewSlot>) {
        self.view = Some(slot);
        self.publish_view();
    }

    /// Publishes an immutable [`QueryView`] of the current state into
    /// the attached slot (no-op without one). Runs on the engine
    /// thread after every applied epoch; readers swap to the new view
    /// with one atomic version check. Returns the nanoseconds the
    /// capture took (0 when nothing was published).
    fn publish_view(&self) -> u64 {
        let Some(slot) = &self.view else { return 0 };
        let Some(engine) = self.replay.view() else {
            return 0;
        };
        let start = Instant::now();
        let devices: std::collections::BTreeMap<_, _> = self
            .snapshot()
            .devices
            .iter()
            .map(|(name, dc)| {
                let addr = dc.interfaces.values().next().map(|ic| ic.addr);
                (name.clone(), addr)
            })
            .collect();
        let history: Vec<_> = self
            .history
            .iter()
            .map(|r| (r.index, Arc::clone(&r.diff)))
            .collect();
        // A coarse per-element memory estimate for the `view_bytes`
        // accounting gauge — proportional to what the view pins alive
        // (device table + retained diffs), not an allocator measurement.
        let approx_bytes = 64 * devices.len()
            + history
                .iter()
                .map(|(_, d)| 96 + d.flows.len() * 128)
                .sum::<usize>();
        self.obs.acct.view_bytes.set(approx_bytes as u64);
        slot.publish(Arc::new(QueryView::assemble(
            self.name.clone(),
            engine,
            devices,
            history,
            self.stats(),
        )));
        let publish_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.obs.view_publishes.inc();
        self.obs.view_publish_us.observe_ns(publish_ns);
        publish_ns
    }

    /// Attaches the hub this session pushes notify artifacts through
    /// (the TCP front door). Polling works without one.
    pub fn set_notify_hub(&mut self, hub: Arc<NotifyHub>) {
        self.hub = Some(hub);
    }

    /// Re-evaluates every standing query against the commit that just
    /// applied (its diff is the freshest retained history record).
    /// Incremental by construction: a no-op commit suppresses every
    /// subscription without evaluating; a blast subscription only fires
    /// when the diff contains flow changes sourced at its device; the
    /// reach-like views compare the incrementally maintained answer set
    /// against the last delivered one, so an unchanged answer costs a
    /// set comparison and zero bytes. Changed answers are queued for
    /// the `notifications` poll and pushed to hub watchers; neither
    /// path can block the engine (both queues are bounded, drop-oldest
    /// with `resync` markers).
    fn notify_subscriptions(&self, index: usize) {
        let mut subs = lock_subs(&self.subs);
        if subs.is_empty() {
            return;
        }
        let Some(rec) = self.history.back() else {
            return;
        };
        let diff = Arc::clone(&rec.diff);
        if diff.is_noop() {
            self.obs.notify_suppressed.add(subs.len() as u64);
            return;
        }
        let epoch = index as u64;
        let mut pushes: Vec<(u64, NotifyEvent)> = Vec::new();
        for (id, sub) in subs.iter_mut() {
            let ev = match &mut sub.kind {
                SubKind::Blast { device } => {
                    let flows = diff.flows.iter().filter(|f| f.src == *device).count() as u64;
                    (flows > 0).then_some(NotifyEvent::Blast { epoch, flows })
                }
                SubKind::Reach { src, flow, last } => match self.replay.query(src, flow) {
                    Some(outcomes) if outcomes != *last => {
                        last.clone_from(&outcomes);
                        Some(NotifyEvent::Reach { epoch, outcomes })
                    }
                    _ => None,
                },
                SubKind::Invariant {
                    check,
                    src,
                    flow,
                    last,
                } => match self.replay.query(src, flow) {
                    Some(outcomes) if outcomes != *last => {
                        last.clone_from(&outcomes);
                        Some(NotifyEvent::Invariant {
                            epoch,
                            holds: check.holds(&outcomes),
                            outcomes,
                        })
                    }
                    _ => None,
                },
            };
            match ev {
                None => self.obs.notify_suppressed.inc(),
                Some(ev) => {
                    self.obs.notifies_pushed.inc();
                    sub.push(ev.clone());
                    pushes.push((id, ev));
                }
            }
        }
        drop(subs);
        let Some(hub) = &self.hub else { return };
        for (id, ev) in pushes {
            // Rendering is skipped when no connection watches this
            // subscription — the poll queue above already has the event.
            if !hub.wanted(&self.name, id) {
                continue;
            }
            let text = dna_io::write_notify(&Notify {
                subscription: id,
                session: self.name.clone(),
                events: vec![ev],
            });
            hub.publish(&self.name, id, epoch, &text);
        }
    }

    /// Answers the standing-query commands, whose replies are `notify`
    /// artifacts (or serialized `error` responses), not [`Response`]
    /// values — the transports dispatch these before [`Session::answer`].
    /// `None` for every other query kind.
    pub fn subscription_reply(&self, kind: &QueryKind) -> Option<String> {
        let reply = match kind {
            QueryKind::Subscribe(spec) => self.subscribe(spec),
            QueryKind::Unsubscribe { id } => self.unsubscribe(*id),
            QueryKind::Notifications { id } => self.notifications(*id),
            _ => return None,
        };
        self.obs.acct.beat();
        self.obs.queries_answered.inc();
        Some(match reply {
            Ok(n) => dna_io::write_notify(&n),
            Err(e) => dna_io::write_response(&Response::Error(e)),
        })
    }

    /// The zero-event notify acknowledging a subscribe/unsubscribe.
    fn ack(&self, id: u64) -> Notify {
        Notify {
            subscription: id,
            session: self.name.clone(),
            events: Vec::new(),
        }
    }

    /// Validates a subscription's devices and captures its baseline
    /// answer — the view is materialized once here; commits afterwards
    /// only diff against it.
    fn materialize(&self, spec: &SubscriptionSpec) -> Result<SubKind, String> {
        let baseline = |src: &str, flow: &Flow| -> Result<BTreeSet<Outcome>, String> {
            if !self.snapshot().devices.contains_key(src) {
                return Err(format!("unknown source device {src:?}"));
            }
            self.replay
                .query(src, flow)
                .ok_or_else(|| "session has no live differential engine".to_string())
        };
        Ok(match spec {
            SubscriptionSpec::Reach { src, flow } => SubKind::Reach {
                last: baseline(src, flow)?,
                src: src.clone(),
                flow: *flow,
            },
            SubscriptionSpec::ReachPair { src, dst } => {
                let flow = self.resolve_dst(dst)?;
                SubKind::Reach {
                    last: baseline(src, &flow)?,
                    src: src.clone(),
                    flow,
                }
            }
            SubscriptionSpec::Blast { device } => {
                if !self.snapshot().devices.contains_key(device) {
                    return Err(format!("unknown source device {device:?}"));
                }
                SubKind::Blast {
                    device: device.clone(),
                }
            }
            SubscriptionSpec::NeverReach { src, dst } => {
                let flow = self.resolve_dst(dst)?;
                SubKind::Invariant {
                    check: InvariantCheck::NeverReach { dst: dst.clone() },
                    last: baseline(src, &flow)?,
                    src: src.clone(),
                    flow,
                }
            }
            SubscriptionSpec::NoBlackhole { src, flow } => SubKind::Invariant {
                check: InvariantCheck::NoBlackhole,
                last: baseline(src, flow)?,
                src: src.clone(),
                flow: *flow,
            },
        })
    }

    fn subscribe(&self, spec: &SubscriptionSpec) -> Result<Notify, String> {
        let kind = self.materialize(spec)?;
        let mut subs = lock_subs(&self.subs);
        let id = subs.insert(kind);
        self.obs.subscriptions_active.set(subs.len() as u64);
        drop(subs);
        Ok(self.ack(id))
    }

    fn unsubscribe(&self, id: u64) -> Result<Notify, String> {
        let mut subs = lock_subs(&self.subs);
        if !subs.remove(id) {
            return Err(format!("session {:?} has no subscription {id}", self.name));
        }
        self.obs.subscriptions_active.set(subs.len() as u64);
        drop(subs);
        Ok(self.ack(id))
    }

    fn notifications(&self, id: u64) -> Result<Notify, String> {
        let events = lock_subs(&self.subs)
            .drain(id)
            .ok_or_else(|| format!("session {:?} has no subscription {id}", self.name))?;
        Ok(Notify {
            subscription: id,
            session: self.name.clone(),
            events,
        })
    }
}

/// Owner of the server's named sessions.
pub struct SessionManager {
    sessions: BTreeMap<String, Session>,
    default: Option<String>,
    config: SessionConfig,
    hub: Option<Arc<NotifyHub>>,
}

impl SessionManager {
    /// An empty manager; sessions opened later inherit `config`.
    pub fn new(config: SessionConfig) -> Self {
        SessionManager {
            sessions: BTreeMap::new(),
            default: None,
            config,
            hub: None,
        }
    }

    /// Attaches a notify hub: every current and future session pushes
    /// its standing-query notifies through it (the single-threaded
    /// broker's counterpart of [`crate::Router::with_notify_hub`]).
    pub fn set_notify_hub(&mut self, hub: Arc<NotifyHub>) {
        for session in self.sessions.values_mut() {
            session.set_notify_hub(Arc::clone(&hub));
        }
        self.hub = Some(hub);
    }

    /// Opens (or replaces) the named session over a snapshot. The first
    /// session opened becomes the default target for unaddressed
    /// queries and stream ingest.
    pub fn open(&mut self, name: &str, snapshot: Snapshot) -> Result<Response, String> {
        let devices = snapshot.device_count() as u64;
        let links = snapshot.links.len() as u64;
        let mut session = Session::open(name, snapshot, self.config.clone())?;
        if let Some(hub) = &self.hub {
            session.set_notify_hub(Arc::clone(hub));
        }
        self.sessions.insert(name.to_string(), session);
        if self.default.is_none() {
            self.default = Some(name.to_string());
        }
        Ok(Response::Loaded {
            session: name.to_string(),
            devices,
            links,
        })
    }

    /// Opens (or replaces) a session by resuming a checkpoint; the
    /// session keeps the name recorded inside the artifact. Like
    /// [`SessionManager::open`], the first session becomes the default.
    pub fn resume_checkpoint(
        &mut self,
        ckpt: &dna_io::Checkpoint,
        snapshot: Snapshot,
    ) -> Result<Response, String> {
        let devices = snapshot.device_count() as u64;
        let links = snapshot.links.len() as u64;
        let mut session = Session::resume(ckpt, snapshot, &self.config)?;
        if let Some(hub) = &self.hub {
            session.set_notify_hub(Arc::clone(hub));
        }
        let name = session.name().to_string();
        self.sessions.insert(name.clone(), session);
        if self.default.is_none() {
            self.default = Some(name.clone());
        }
        Ok(Response::Loaded {
            session: name,
            devices,
            links,
        })
    }

    /// The default session's name, once one is open.
    pub fn default_session(&self) -> Option<&str> {
        self.default.as_deref()
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Direct access to a session (tests, bench).
    pub fn session(&self, name: &str) -> Option<&Session> {
        self.sessions.get(name)
    }

    fn resolve(&self, name: Option<&str>) -> Result<&Session, Response> {
        let name = match name.or(self.default.as_deref()) {
            Some(n) => n,
            None => return Err(Response::Error("no session is open".into())),
        };
        self.sessions
            .get(name)
            .ok_or_else(|| Response::Error(format!("unknown session {name:?}")))
    }

    fn resolve_mut(&mut self, name: Option<&str>) -> Result<&mut Session, Response> {
        let name = match name.or(self.default.as_deref()) {
            Some(n) => n.to_string(),
            None => return Err(Response::Error("no session is open".into())),
        };
        match self.sessions.get_mut(&name) {
            Some(s) => Ok(s),
            None => Err(Response::Error(format!("unknown session {name:?}"))),
        }
    }

    /// Ingests a trace into the named (default: first-opened) session.
    /// Returns the response plus the number of epochs actually applied —
    /// nonzero even when the response is an error, since a trace failing
    /// mid-stream leaves its earlier epochs applied.
    pub fn ingest_trace(&mut self, session: Option<&str>, trace: &Trace) -> (Response, u64) {
        self.ingest_trace_timed(session, trace, 0)
    }

    /// [`SessionManager::ingest_trace`] carrying the wire-parse time
    /// the caller spent on the trace artifact (see
    /// [`Session::ingest_trace_timed`]).
    pub fn ingest_trace_timed(
        &mut self,
        session: Option<&str>,
        trace: &Trace,
        parse_ns: u64,
    ) -> (Response, u64) {
        let s = match self.resolve_mut(session) {
            Ok(s) => s,
            Err(r) => return (r, 0),
        };
        match s.ingest_trace_timed(trace, parse_ns) {
            Ok((epochs, flows)) => (
                Response::Ingested {
                    session: s.name().to_string(),
                    epochs: epochs as u64,
                    flows: flows as u64,
                    total: s.epochs() as u64,
                },
                epochs as u64,
            ),
            Err((applied, e)) => (Response::Error(e), applied as u64),
        }
    }

    /// Answers one protocol query.
    pub fn answer(&self, q: &Query) -> Response {
        if q.kind == QueryKind::Sessions {
            return Response::Sessions(self.sessions.values().map(Session::info).collect());
        }
        match self.resolve(q.session.as_deref()) {
            Ok(s) => s.answer(&q.kind),
            Err(r) => r,
        }
    }

    /// Answers the standing-query commands, whose replies are `notify`
    /// artifacts ([`Session::subscription_reply`] resolved through the
    /// manager's session table); `None` for every other query kind, and
    /// a serialized `error` response for resolution failures.
    pub fn subscription_reply(&self, q: &Query) -> Option<String> {
        if !matches!(
            q.kind,
            QueryKind::Subscribe(_)
                | QueryKind::Unsubscribe { .. }
                | QueryKind::Notifications { .. }
        ) {
            return None;
        }
        Some(match self.resolve(q.session.as_deref()) {
            Ok(s) => s
                .subscription_reply(&q.kind)
                .expect("subscription kind checked above"),
            Err(r) => dna_io::write_response(&r),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_io::write_response;
    use topo_gen::{fat_tree, Routing, ScenarioGen, ScenarioKind};

    fn k4_session(config: SessionConfig) -> (Session, Vec<TraceEpoch>) {
        let ft = fat_tree(4, Routing::Ebgp);
        let mut gen = ScenarioGen::new(7);
        let labeled = gen.labeled_sequence(
            &ft.snapshot,
            &[ScenarioKind::LinkFailure, ScenarioKind::LinkRecovery],
            6,
        );
        let epochs: Vec<TraceEpoch> = labeled
            .into_iter()
            .map(|(kind, changes)| TraceEpoch {
                label: Some(kind.to_string()),
                changes,
            })
            .collect();
        let session = Session::open("t", ft.snapshot, config).expect("opens");
        (session, epochs)
    }

    #[test]
    fn ingest_retention_and_history_queries() {
        let (mut s, epochs) = k4_session(SessionConfig {
            retain: 3,
            ..Default::default()
        });
        assert_eq!(epochs.len(), 6);
        let mut total_flows = 0;
        for ep in &epochs {
            total_flows += s.ingest(ep).expect("epoch applies");
        }
        assert_eq!(s.epochs(), 6);
        assert!(total_flows > 0, "link churn must change flows");
        // Retention bounds history; ingest count is unbounded.
        let stats = s.stats();
        assert_eq!(stats.epochs, 6);
        assert_eq!(stats.retained, 3);
        assert_eq!(stats.retained_from, 3);
        assert_eq!(stats.flows, total_flows as u64);
        assert!(stats.classes > 0 && stats.tuples > 0);
        // Report range clamps to what is retained.
        match s.answer(&QueryKind::Report { from: 0, to: 100 }) {
            Response::Report { epochs } => {
                assert_eq!(
                    epochs.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
                    vec![3, 4, 5]
                );
                for (_, d) in &epochs {
                    assert!(d.label.is_some());
                }
            }
            other => panic!("expected report, got {other:?}"),
        }
        // Blast window wider than history clamps too; device counts sum
        // to the window's flow total.
        match s.answer(&QueryKind::Blast { last: 100 }) {
            Response::Blast {
                epochs,
                flows,
                devices,
            } => {
                assert_eq!(epochs, 3);
                assert_eq!(devices.iter().map(|(_, n)| n).sum::<u64>(), flows);
                assert!(devices.windows(2).all(|w| w[0].0 < w[1].0), "name-sorted");
            }
            other => panic!("expected blast, got {other:?}"),
        }
    }

    #[test]
    fn byte_budget_bounds_history_alongside_epoch_count() {
        // Generous epoch bound, tight byte budget: bytes must be the
        // binding constraint, and the freshest epoch must survive even
        // if it alone exceeds the budget.
        let (mut s, epochs) = k4_session(SessionConfig {
            retain: 64,
            retain_bytes: Some(1),
            ..Default::default()
        });
        for ep in &epochs {
            s.ingest(ep).unwrap();
        }
        assert_eq!(s.epochs(), 6);
        let stats = s.stats();
        assert_eq!(stats.retained, 1, "1-byte budget keeps only the freshest");
        assert_eq!(stats.retained_from, 5);
        assert!(s.history_bytes() > 0);
        // A budget that fits the whole history changes nothing.
        let (mut roomy, epochs) = k4_session(SessionConfig {
            retain: 64,
            retain_bytes: Some(1 << 20),
            ..Default::default()
        });
        let (mut unbounded, _) = k4_session(SessionConfig::default());
        for ep in &epochs {
            roomy.ingest(ep).unwrap();
            unbounded.ingest(ep).unwrap();
        }
        assert_eq!(roomy.stats().retained, 6);
        assert!(roomy.history_bytes() <= 1 << 20);
        // Same retained diffs as the unbudgeted session, byte for byte.
        let report = |s: &Session| write_response(&s.answer(&QueryKind::Report { from: 0, to: 6 }));
        assert_eq!(report(&roomy), report(&unbounded));
    }

    #[test]
    fn reach_pair_resolves_and_is_deterministic() {
        let (mut s, epochs) = k4_session(SessionConfig::default());
        let q = QueryKind::ReachPair {
            src: "edge0_0".into(),
            dst: "edge1_0".into(),
        };
        let before = write_response(&s.answer(&q));
        assert!(before.contains("ok reach"));
        assert_eq!(before, write_response(&s.answer(&q)), "byte-stable");
        for ep in &epochs {
            s.ingest(ep).unwrap();
        }
        // Still answerable (and still deterministic) on evolved state.
        let after = write_response(&s.answer(&q));
        assert!(after.contains("ok reach"));
        assert_eq!(after, write_response(&s.answer(&q)));
        // Unknown devices are protocol errors, not panics.
        assert!(matches!(
            s.answer(&QueryKind::ReachPair {
                src: "edge0_0".into(),
                dst: "ghost".into()
            }),
            Response::Error(_)
        ));
        assert!(matches!(
            s.answer(&QueryKind::Reach {
                src: "ghost".into(),
                flow: Flow::tcp_to(net_model::ip("10.0.0.1"), 80)
            }),
            Response::Error(_)
        ));
    }

    #[test]
    fn checkpoint_file_names_are_filesystem_safe_and_collision_free() {
        assert_eq!(checkpoint_file_name("ft4"), "ft4.ckpt.dna");
        assert_eq!(checkpoint_file_name("x.y-z_0"), "x.y-z_0.ckpt.dna");
        // Unsafe names sanitize with a disambiguating hash: names that
        // would collide after sanitization get distinct files (the
        // later cadence write must never clobber another session).
        let hostile = ["a/b", "a_b\\", "a b", "", "a\nb", "prod/east"];
        let mut seen = std::collections::BTreeSet::new();
        for name in hostile {
            let file = checkpoint_file_name(name);
            assert!(
                file.chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')),
                "{file:?} must be filesystem-safe"
            );
            assert!(seen.insert(file.clone()), "{name:?} collided: {file}");
        }
        // A sanitized name never collides with the verbatim-safe form
        // of its own sanitization ("prod_east" vs "prod/east").
        assert_ne!(
            checkpoint_file_name("prod_east"),
            checkpoint_file_name("prod/east")
        );
    }

    /// The full durability loop at the session layer: ingest with a
    /// checkpoint cadence, pick up the file a `kill -9` would leave
    /// behind, resume from its parsed bytes, ingest the rest — and
    /// answer every deterministic query byte-for-byte like the session
    /// that never restarted.
    #[test]
    fn cadence_checkpoint_resumes_byte_identical() {
        let dir = std::env::temp_dir().join(format!("dna-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let config = SessionConfig {
            retain: 4,
            retain_bytes: Some(1 << 20),
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 3,
            ..Default::default()
        };
        let (mut live, epochs) = k4_session(config.clone());
        let (mut straight, _) = k4_session(config.clone());
        for ep in &epochs {
            straight.ingest(ep).unwrap();
        }
        // Drive the live session only to the cadence point, then
        // simulate the crash: all that survives is the file.
        for ep in &epochs[..3] {
            live.ingest(ep).unwrap();
        }
        let path = dir.join(checkpoint_file_name("t"));
        let text = std::fs::read_to_string(&path).expect("cadence checkpoint written");
        drop(live);
        let ckpt = dna_io::parse_checkpoint(&text).expect("checkpoint parses");
        assert_eq!(ckpt.epochs, 3);
        let snapshot = resolve_checkpoint_snapshot(&ckpt, Some(&dir)).unwrap();
        let mut resumed = Session::resume(&ckpt, snapshot, &config).expect("resumes");
        assert_eq!(resumed.epochs(), 3);
        for ep in &epochs[3..] {
            resumed.ingest(ep).unwrap();
        }
        assert_eq!(resumed.epochs(), straight.epochs());
        assert_eq!(resumed.history_bytes(), straight.history_bytes());
        for q in [
            QueryKind::ReachPair {
                src: "edge0_0".into(),
                dst: "edge1_0".into(),
            },
            QueryKind::Blast { last: 16 },
            QueryKind::Report { from: 0, to: 64 },
        ] {
            assert_eq!(
                write_response(&resumed.answer(&q)),
                write_response(&straight.answer(&q)),
                "resumed answer diverged for {q:?}"
            );
        }
        // Stats counters (not timings) survive the restart exactly.
        let (a, b) = (resumed.stats(), straight.stats());
        assert_eq!(
            (a.epochs, a.retained, a.retained_from, a.flows, a.mismatches),
            (b.epochs, b.retained, b.retained_from, b.flows, b.mismatches)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An on-demand `checkpoint` query writes the file and reports its
    /// exact canonical size; without a configured directory it is a
    /// protocol error, not a panic.
    #[test]
    fn on_demand_checkpoint_query() {
        let dir = std::env::temp_dir().join(format!("dna-ckpt-q-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (mut s, epochs) = k4_session(SessionConfig {
            checkpoint_dir: Some(dir.clone()),
            ..Default::default()
        });
        s.ingest(&epochs[0]).unwrap();
        match s.answer(&QueryKind::Checkpoint) {
            Response::Checkpointed {
                session,
                epochs,
                bytes,
            } => {
                assert_eq!((session.as_str(), epochs), ("t", 1));
                let written = std::fs::read_to_string(dir.join(checkpoint_file_name("t")))
                    .expect("checkpoint written");
                assert_eq!(written.len() as u64, bytes);
                assert_eq!(
                    dna_io::parse_checkpoint(&written).unwrap(),
                    s.checkpoint_artifact()
                );
            }
            other => panic!("expected checkpointed, got {other:?}"),
        }
        let (undurable, _) = k4_session(SessionConfig::default());
        assert!(matches!(
            undurable.answer(&QueryKind::Checkpoint),
            Response::Error(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_shadow_agrees_on_real_scenarios() {
        let (mut s, epochs) = k4_session(SessionConfig {
            verify: true,
            ..Default::default()
        });
        for ep in &epochs {
            s.ingest(ep).unwrap();
        }
        assert_eq!(s.mismatches(), 0, "analyzers must agree");
        assert_eq!(s.stats().mismatches, 0);
    }

    #[test]
    fn partial_trace_failure_reports_applied_epochs() {
        let ft = fat_tree(4, Routing::Ebgp);
        let mut mgr = SessionManager::new(SessionConfig::default());
        mgr.open("p", ft.snapshot.clone()).unwrap();
        let mut gen = ScenarioGen::new(5);
        let good = gen
            .generate(&ft.snapshot, ScenarioKind::LinkFailure)
            .unwrap();
        let bad = net_model::ChangeSet::single(net_model::Change::DeviceDown("ghost".into()));
        let trace = Trace::from_changesets(vec![good, bad]);
        // The first epoch stays applied (stream semantics); the error
        // response must not hide that from the caller's accounting.
        let (resp, applied) = mgr.ingest_trace(Some("p"), &trace);
        match resp {
            Response::Error(msg) => assert!(msg.contains("1 earlier epoch"), "{msg}"),
            other => panic!("expected error, got {other:?}"),
        }
        assert_eq!(applied, 1);
        assert_eq!(mgr.session("p").unwrap().epochs(), 1);
    }

    #[test]
    fn manager_serves_multiple_named_sessions() {
        let ft4 = fat_tree(4, Routing::Ebgp);
        let ft4b = fat_tree(4, Routing::Ospf);
        let mut mgr = SessionManager::new(SessionConfig::default());
        mgr.open("a", ft4.snapshot).unwrap();
        mgr.open("b", ft4b.snapshot).unwrap();
        assert_eq!(mgr.default_session(), Some("a"));
        assert_eq!(mgr.session_count(), 2);
        // Ingest into the non-default session only.
        let mut gen = ScenarioGen::new(3);
        let cs = gen
            .generate(
                mgr.session("b").unwrap().snapshot(),
                ScenarioKind::LinkFailure,
            )
            .unwrap();
        let trace = Trace::from_changesets(vec![cs]);
        match mgr.ingest_trace(Some("b"), &trace) {
            (Response::Ingested { session, total, .. }, applied) => {
                assert_eq!(session, "b");
                assert_eq!(total, 1);
                assert_eq!(applied, 1);
            }
            (other, _) => panic!("expected ingested, got {other:?}"),
        }
        assert_eq!(mgr.session("a").unwrap().epochs(), 0);
        assert_eq!(mgr.session("b").unwrap().epochs(), 1);
        // Queries address sessions by name; unknown names are errors.
        match mgr.answer(&Query {
            session: None,
            kind: QueryKind::Sessions,
        }) {
            Response::Sessions(list) => {
                assert_eq!(
                    list.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
                    vec!["a", "b"]
                );
            }
            other => panic!("expected sessions, got {other:?}"),
        }
        assert!(matches!(
            mgr.answer(&Query {
                session: Some("ghost".into()),
                kind: QueryKind::Stats,
            }),
            Response::Error(_)
        ));
        match mgr.answer(&Query {
            session: Some("b".into()),
            kind: QueryKind::Stats,
        }) {
            Response::Stats(st) => assert_eq!((st.session.as_str(), st.epochs), ("b", 1)),
            other => panic!("expected stats, got {other:?}"),
        }
    }
}
