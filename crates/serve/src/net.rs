//! The TCP front door: many concurrent clients over one listener.
//!
//! Wire format is the same artifact concatenation every other
//! transport speaks (see FORMAT.md "Framing on a stream") — the bytes
//! `dna dump` writes to a file can be piped over a socket unchanged,
//! and every inbound artifact maps to exactly one outbound reply.
//!
//! What makes this transport different from the unix-socket pump is
//! the **read path**: each connection thread holds the server's
//! [`ViewRegistry`] and answers read-only queries (reach, reach-pair,
//! blast, report, stats) straight from the session's latest published
//! [`crate::view::QueryView`] — one atomic version check on the fast
//! path, no engine-thread round trip, no serialization behind other
//! clients' ingest. Mutating artifacts (snapshot loads, traces,
//! checkpoints) and the queries a view cannot answer (`sessions`,
//! `checkpoint`, the standing-query commands) are forwarded to the
//! engine side over the usual [`Request`] channel. Responses are
//! byte-identical either way: views replicate the session's answer
//! logic and serialize through the same writer.
//!
//! **Pushed notifies.** A connection that subscribes (`subscribe …`)
//! is registered on the server's [`NotifyHub`]: a pusher thread drains
//! the connection's bounded notify queues onto the socket, so pushed
//! `notify` artifacts interleave *between* request replies (never
//! inside one — the socket writer is shared under a mutex and writes
//! whole artifacts). The engine never blocks on the socket: a slow
//! consumer overflows its own queue, the oldest artifacts drop, and the
//! stream resumes with a `resync` notify. One caveat is inherent to the
//! split: a commit that lands between the engine-side subscribe and the
//! hub registration below is delivered only by `notifications <id>`
//! polling, never pushed — subscribe before driving ingest when the
//! push stream must be gapless from epoch zero.

use crate::server::{read_artifact, Request};
use crate::subs::NotifyHub;
use crate::view::{ViewReader, ViewRegistry};
use dna_io::{parse_query, write_response, Artifact, QueryKind};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};

/// Recovers the shared socket-writer guard even when another writer
/// panicked mid-write: the connection is torn down on the next I/O
/// error anyway, so poison carries no information worth dying over.
fn lock_writer<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Accepts TCP connections forever, serving each on its own thread.
/// Holds a [`Request`] sender for as long as it runs, keeping the
/// engine side alive after stdin ends. Accept errors are transient
/// for a daemon: reported to stderr, and the loop keeps accepting.
pub fn tcp_accept_loop(
    requests: mpsc::Sender<Request>,
    listener: TcpListener,
    views: Arc<ViewRegistry>,
    hub: Arc<NotifyHub>,
) -> io::Result<()> {
    let connections = dna_obs::global().counter("tcp_connections");
    let accept_errors = dna_obs::global().counter("tcp_accept_errors");
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                accept_errors.inc();
                dna_obs::log::announce(&format!("dna serve: tcp accept failed (retrying): {e}"));
                std::thread::sleep(std::time::Duration::from_millis(50));
                continue;
            }
        };
        connections.inc();
        let requests = requests.clone();
        let views = Arc::clone(&views);
        let hub = Arc::clone(&hub);
        std::thread::spawn(move || {
            // A vanished client is its own problem; the server lives on.
            let _ = serve_connection(&requests, &views, &hub, stream);
        });
    }
}

/// Serves one TCP connection: artifacts in, replies out, until the
/// client closes its write half. Read-only queries are answered from
/// published views when one exists; everything else round-trips
/// through the engine side. A subscribe reply additionally registers
/// the connection on the hub and (once) spawns its pusher thread.
/// Returns the number of artifacts served.
pub fn serve_connection(
    requests: &mpsc::Sender<Request>,
    views: &ViewRegistry,
    hub: &Arc<NotifyHub>,
    stream: TcpStream,
) -> io::Result<u64> {
    let mut input = io::BufReader::new(stream.try_clone()?);
    // The write half is shared with the pusher thread once the client
    // subscribes; both sides write whole artifacts under the lock, so
    // framing survives the interleaving.
    let writer = Arc::new(Mutex::new(io::BufWriter::new(stream)));
    // Per-connection view caches, keyed by slot identity (slots live
    // as long as the registry, so the pointer is a stable key): while
    // a session's version is unchanged, answering takes zero locks.
    let mut readers: BTreeMap<usize, ViewReader> = BTreeMap::new();
    let mut watcher: Option<u64> = None;
    let result = connection_loop(
        requests,
        views,
        hub,
        &mut input,
        &writer,
        &mut readers,
        &mut watcher,
    );
    // Tear down the push registration (if any) however the loop ended;
    // the pusher thread wakes from its wait and exits.
    if let Some(w) = watcher {
        hub.unregister(w);
    }
    result
}

/// The request/reply half of one connection (see [`serve_connection`]).
#[allow(clippy::too_many_arguments)]
fn connection_loop(
    requests: &mpsc::Sender<Request>,
    views: &ViewRegistry,
    hub: &Arc<NotifyHub>,
    input: &mut io::BufReader<TcpStream>,
    writer: &Arc<Mutex<io::BufWriter<TcpStream>>>,
    readers: &mut BTreeMap<usize, ViewReader>,
    watcher: &mut Option<u64>,
) -> io::Result<u64> {
    let mut served = 0u64;
    while let Some(text) = read_artifact(input)? {
        let started = std::time::Instant::now();
        // Whether this artifact is a subscribe command — its reply (a
        // notify ack) carries the id to register on the hub.
        let subscribing = dna_io::sniff(&text).is_ok_and(|(_, kind)| kind == Artifact::Query)
            && parse_query(&text).is_ok_and(|q| matches!(q.kind, QueryKind::Subscribe(_)));
        let reply = match answer_from_view(views, readers, &text) {
            Some(response) => {
                // Only the snapshot fast path is a "tcp" answer — a
                // query forwarded to the engine side is timed (and
                // ringed) there, under its own scope.
                crate::obs::record_query_span("tcp", &text, started.elapsed());
                response
            }
            None => {
                let (reply_tx, reply_rx) = mpsc::channel();
                if requests
                    .send(Request {
                        text,
                        session: None,
                        reply: reply_tx,
                    })
                    .is_err()
                {
                    break; // engine side shut down
                }
                let Ok(response) = reply_rx.recv() else {
                    break; // engine side shut down mid-request
                };
                response
            }
        };
        if subscribing {
            // A successful subscribe acks with a notify naming the
            // (session, id) pair; errors parse as responses and fall
            // through. Register before writing the ack: once the
            // client reads it, the push stream is live.
            if let Ok(ack) = dna_io::parse_notify(&reply) {
                let w = *watcher.get_or_insert_with(|| {
                    let id = hub.register();
                    spawn_pusher(Arc::clone(hub), id, Arc::clone(writer));
                    id
                });
                hub.watch(w, &ack.session, ack.subscription);
            }
        }
        served += 1;
        let mut output = lock_writer(writer);
        output.write_all(reply.as_bytes())?;
        // One reply per artifact is the unit of interaction: flush
        // so clients are never left waiting on a full buffer.
        output.flush()?;
    }
    Ok(served)
}

/// Spawns the thread that drains one watcher's notify queues onto its
/// connection. Exits when the watcher is closed (connection gone) or
/// the socket write fails (client gone) — whichever comes first.
fn spawn_pusher(hub: Arc<NotifyHub>, watcher: u64, writer: Arc<Mutex<io::BufWriter<TcpStream>>>) {
    std::thread::spawn(move || {
        while let Some(batch) = hub.wait(watcher) {
            let mut output = lock_writer(&writer);
            let wrote = batch.iter().try_for_each(|artifact| {
                output
                    .write_all(artifact.as_bytes())
                    .and_then(|()| output.flush())
            });
            drop(output);
            if wrote.is_err() {
                hub.unregister(watcher);
                break;
            }
        }
    });
}

/// The snapshot read path: a query artifact whose session resolves to
/// a published view, asking something the view can answer, is served
/// right here. `None` sends the artifact to the engine side — which
/// also owns every error story (malformed artifacts, unknown or
/// failed sessions, not-yet-loaded sessions), so wire behavior is
/// identical on both paths.
fn answer_from_view(
    views: &ViewRegistry,
    readers: &mut BTreeMap<usize, ViewReader>,
    text: &str,
) -> Option<String> {
    let (_, kind) = dna_io::sniff(text).ok()?;
    if kind != Artifact::Query {
        return None;
    }
    let q = parse_query(text).ok()?;
    // Telemetry queries never need a view (or even an open session):
    // they read the process-global registry right on this thread.
    if let Some(reply) = crate::obs::obs_reply_for(&q) {
        return Some(reply);
    }
    let slot = views.resolve(q.session.as_deref())?;
    let reader = readers.entry(Arc::as_ptr(&slot) as usize).or_default();
    let view = reader.current(&slot)?;
    let response = view.answer(&q.kind)?;
    let session = view.session().to_string();
    views.note_served(&session);
    Some(write_response(&response))
}

/// Sends one query artifact over TCP and reads back the one reply
/// artifact — the client side of [`tcp_accept_loop`], used by
/// `dna query --connect`.
pub fn query_tcp(addr: &str, query_text: &str) -> io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    (&stream).write_all(query_text.as_bytes())?;
    (&stream).flush()?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut reader = io::BufReader::new(&stream);
    Ok(read_artifact(&mut reader)?.unwrap_or_default())
}
