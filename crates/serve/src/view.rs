//! Published query views: the lock-free snapshot read path.
//!
//! The engine is thread-local, so PR 5's router funnels *every* query
//! through the owning session's command channel — N clients querying
//! one session serialize behind its ingest. This module breaks that
//! coupling for the read-only queries: after every applied epoch the
//! session publishes an immutable [`QueryView`] — frozen packet-class
//! arena, FIB, reach sets, the retained history window, and the
//! cumulative stats — into a [`ViewSlot`]. Reader threads (the TCP
//! front door, [`crate::net`]) answer reach / reach-pair / blast /
//! report / stats queries straight from the latest published view,
//! never touching the engine thread; only mutating requests (snapshot
//! loads, trace ingest, checkpoints) still route to it.
//!
//! The slot is an arc-swap in spirit, built from std primitives: a
//! version counter readers poll with one atomic load, and a mutex they
//! take only when the version moved. A reader that cached `(version,
//! Arc<QueryView>)` answers an unchanged session without any lock at
//! all; the mutex is held for a pointer clone, never for engine work.
//! The mutex is poison-proof by construction (`lock_slot` recovers
//! via [`PoisonError::into_inner`]) — a reader panic must never wedge
//! publishing, nor the reverse.

use dna_core::EngineView;
use dna_io::{EpochDiff, QueryKind, Response, ServiceStats};
use net_model::{Flow, Ipv4Addr};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// An immutable, self-contained answer table for one session at one
/// epoch. Everything a read-only query needs is captured at publish
/// time; answering never reaches back into the live session, so the
/// engine thread and any number of readers proceed independently.
///
/// Answers are byte-identical to the live session's: [`QueryView::answer`]
/// mirrors `Session::answer` clause for clause (same resolution rules,
/// same error strings), and both serialize through the one
/// [`dna_io::write_response`].
pub struct QueryView {
    session: String,
    engine: EngineView,
    /// Destination resolution index: device name → canonical
    /// (lowest-named interface) address, `None` for a device with no
    /// interfaces. Mirrors `Session::resolve_dst` exactly.
    devices: BTreeMap<String, Option<Ipv4Addr>>,
    /// The retained history window at capture time. `Arc` per epoch:
    /// publishing after epoch N shares N-1 diffs with the previous
    /// view instead of deep-copying the window every epoch.
    history: Vec<(usize, Arc<EpochDiff>)>,
    stats: ServiceStats,
}

impl QueryView {
    /// Assembles a view from parts the session captures at publish
    /// time (see `Session::publish_view`).
    pub(crate) fn assemble(
        session: String,
        engine: EngineView,
        devices: BTreeMap<String, Option<Ipv4Addr>>,
        history: Vec<(usize, Arc<EpochDiff>)>,
        stats: ServiceStats,
    ) -> Self {
        QueryView {
            session,
            engine,
            devices,
            history,
            stats,
        }
    }

    /// The session this view was published by.
    pub fn session(&self) -> &str {
        &self.session
    }

    /// Epochs applied when this view was captured.
    pub fn epochs(&self) -> u64 {
        self.stats.epochs
    }

    /// Answers a read-only query from the captured state; `None` for
    /// the kinds a view cannot answer (`sessions` is server-level,
    /// `checkpoint` mutates durable state) — those still route to the
    /// engine thread.
    pub fn answer(&self, kind: &QueryKind) -> Option<Response> {
        Some(match kind {
            QueryKind::Reach { src, flow } => self.reach(src, flow),
            QueryKind::ReachPair { src, dst } => match self.resolve_dst(dst) {
                Ok(flow) => self.reach(src, &flow),
                Err(e) => Response::Error(e),
            },
            QueryKind::Blast { last } => self.blast(*last),
            QueryKind::Report { from, to } => self.report(*from, *to),
            QueryKind::Stats => Response::Stats(self.stats.clone()),
            // `sessions` is server-level, `checkpoint` mutates durable
            // state, telemetry queries are answered even earlier by the
            // transport (see [`crate::obs`]), and standing-query
            // commands mutate the session's subscription registry —
            // none route here.
            QueryKind::Sessions
            | QueryKind::Checkpoint
            | QueryKind::Metrics
            | QueryKind::TraceSpans { .. }
            | QueryKind::Health
            | QueryKind::History { .. }
            | QueryKind::Subscribe(_)
            | QueryKind::Unsubscribe { .. }
            | QueryKind::Notifications { .. } => return None,
        })
    }

    fn reach(&self, src: &str, flow: &Flow) -> Response {
        if !self.devices.contains_key(src) {
            return Response::Error(format!("unknown source device {src:?}"));
        }
        Response::Reach {
            outcomes: self.engine.query(src, flow),
        }
    }

    fn resolve_dst(&self, dst: &str) -> Result<Flow, String> {
        let addr = self
            .devices
            .get(dst)
            .ok_or_else(|| format!("unknown destination device {dst:?}"))?;
        match addr {
            Some(addr) => Ok(Flow::tcp_to(*addr, 80)),
            None => Err(format!("destination device {dst:?} has no interfaces")),
        }
    }

    fn blast(&self, last: usize) -> Response {
        let window = last.min(self.history.len());
        let mut flows = 0u64;
        let mut devices: BTreeMap<&str, u64> = BTreeMap::new();
        for (_, diff) in self.history.iter().rev().take(window) {
            for f in &diff.flows {
                flows += 1;
                *devices.entry(&f.src).or_insert(0) += 1;
            }
        }
        Response::Blast {
            epochs: window as u64,
            flows,
            devices: devices
                .into_iter()
                .map(|(d, n)| (d.to_string(), n))
                .collect(),
        }
    }

    fn report(&self, from: usize, to: usize) -> Response {
        let epochs = self
            .history
            .iter()
            .filter(|(i, _)| *i >= from && *i < to)
            .map(|(i, diff)| (*i, (**diff).clone()))
            .collect();
        Response::Report { epochs }
    }
}

/// Recovers a slot guard even when a previous holder panicked while
/// holding it: the data under the mutex is a pointer swap, valid at
/// every instruction boundary, so poison carries no information here.
fn lock_slot<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One session's published-view cell. Writers ([`ViewSlot::publish`] /
/// [`ViewSlot::clear`]) swap the pointer and bump the version; readers
/// poll [`ViewSlot::version`] with a single atomic load and call
/// [`ViewSlot::load`] only when it moved (see [`ViewReader`] for the
/// cache that makes the fast path lock-free).
#[derive(Default)]
pub struct ViewSlot {
    /// Bumped after every pointer swap. Starts at 0 = nothing ever
    /// published, so a reader's initial cache (version 0, no view)
    /// is correct without a first load.
    version: AtomicU64,
    slot: Mutex<Option<Arc<QueryView>>>,
}

impl ViewSlot {
    /// An empty slot (no view published yet).
    pub fn new() -> Self {
        ViewSlot::default()
    }

    /// Publishes a new immutable view, replacing any previous one.
    pub fn publish(&self, view: Arc<QueryView>) {
        let mut guard = lock_slot(&self.slot);
        *guard = Some(view);
        // Bump inside the guard: a reader that sees the new version is
        // guaranteed to load at least this view, never an older one.
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Withdraws the published view (session failed or was replaced by
    /// one that has not published yet): readers fall back to routing
    /// through the engine thread, which owns the error story.
    pub fn clear(&self) {
        let mut guard = lock_slot(&self.slot);
        *guard = None;
        self.version.fetch_add(1, Ordering::Release);
    }

    /// The current publish version — one atomic load, the whole cost
    /// of the read fast path when nothing changed.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Loads the current `(version, view)` pair through the mutex —
    /// the slow path, taken only when [`ViewSlot::version`] moved.
    pub fn load(&self) -> (u64, Option<Arc<QueryView>>) {
        let guard = lock_slot(&self.slot);
        // Version read under the guard pairs with the bump in
        // `publish`: the pair is always mutually consistent.
        (self.version.load(Ordering::Acquire), guard.clone())
    }
}

/// A per-reader cache over one [`ViewSlot`]: answers from the cached
/// `Arc<QueryView>` with zero locks while the slot's version is
/// unchanged, refreshing through the mutex only when an epoch was
/// published (or withdrawn) since the last look.
#[derive(Default)]
pub struct ViewReader {
    version: u64,
    view: Option<Arc<QueryView>>,
}

impl ViewReader {
    /// An empty cache (as if version 0 was observed).
    pub fn new() -> Self {
        ViewReader::default()
    }

    /// The freshest published view, refreshing the cache if the slot
    /// moved. `None` while nothing is published.
    pub fn current(&mut self, slot: &ViewSlot) -> Option<&Arc<QueryView>> {
        if slot.version() != self.version {
            let (version, view) = slot.load();
            self.version = version;
            self.view = view;
        }
        self.view.as_ref()
    }
}

/// The server-wide directory of view slots, shared between the router
/// (whose session threads publish) and every reader thread. Slots are
/// created eagerly when a session thread spawns and live as long as
/// the registry, so readers can hold an `Arc<ViewSlot>` without
/// worrying about session lifecycle.
#[derive(Default)]
pub struct ViewRegistry {
    inner: Mutex<RegistryInner>,
    /// Queries answered from published views (never routed to an
    /// engine thread). Observability hook: the TCP smoke test asserts
    /// it is nonzero, proving the read path actually served.
    served: AtomicU64,
}

#[derive(Default)]
struct RegistryInner {
    slots: BTreeMap<String, Arc<ViewSlot>>,
    default: Option<String>,
}

impl ViewRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ViewRegistry::default()
    }

    /// The named session's slot, created (empty) if absent.
    pub fn slot(&self, name: &str) -> Arc<ViewSlot> {
        let mut inner = lock_slot(&self.inner);
        Arc::clone(inner.slots.entry(name.to_string()).or_default())
    }

    /// Records which session unaddressed queries resolve to (the
    /// router's default stream target; first session opened).
    pub fn set_default(&self, name: Option<&str>) {
        lock_slot(&self.inner).default = name.map(str::to_string);
    }

    /// Resolves a query's (optional) session name to its slot, if one
    /// exists: `None` falls back to the default session. An unknown
    /// name returns `None` — the caller routes to the engine side,
    /// which owns the "unknown session" error.
    pub fn resolve(&self, session: Option<&str>) -> Option<Arc<ViewSlot>> {
        let inner = lock_slot(&self.inner);
        let name = session.or(inner.default.as_deref())?;
        inner.slots.get(name).map(Arc::clone)
    }

    /// Counts one query answered from the named session's published
    /// view: the instance counter (asserted by in-process tests that
    /// must not see each other's counts) and the process-global
    /// `view_served` gauge both move.
    pub fn note_served(&self, session: &str) {
        self.served.fetch_add(1, Ordering::Relaxed);
        dna_obs::global().gauge_for("view_served", session).add(1);
    }

    /// Queries answered from published views so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_view(session: &str, epochs: u64) -> Arc<QueryView> {
        let stats = ServiceStats {
            session: session.to_string(),
            epochs,
            retained: 0,
            retained_from: 0,
            devices: 0,
            links: 0,
            classes: 0,
            tuples: 0,
            flows: 0,
            mismatches: 0,
            cp_us: 0,
            dp_us: 0,
            total_us: 0,
        };
        Arc::new(QueryView::assemble(
            session.to_string(),
            dna_core::DiffEngine::new(net_model::NetBuilder::new().router("r").build())
                .expect("one-router engine")
                .view(),
            BTreeMap::new(),
            Vec::new(),
            stats,
        ))
    }

    #[test]
    fn slot_versions_gate_reloads() {
        let slot = ViewSlot::new();
        let mut reader = ViewReader::new();
        // Nothing published: version 0, no view, no lock taken.
        assert_eq!(slot.version(), 0);
        assert!(reader.current(&slot).is_none());
        slot.publish(dummy_view("s", 1));
        assert_eq!(slot.version(), 1);
        assert_eq!(reader.current(&slot).expect("published").epochs(), 1);
        slot.publish(dummy_view("s", 2));
        assert_eq!(reader.current(&slot).expect("published").epochs(), 2);
        // Clearing withdraws the view and moves the version again.
        slot.clear();
        assert_eq!(slot.version(), 3);
        assert!(reader.current(&slot).is_none());
    }

    #[test]
    fn slot_survives_a_poisoned_mutex() {
        let slot = Arc::new(ViewSlot::new());
        slot.publish(dummy_view("s", 1));
        let poisoner = Arc::clone(&slot);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.slot.lock().unwrap();
            panic!("deliberate poison");
        })
        .join();
        assert!(slot.slot.is_poisoned(), "test must actually poison");
        // Readers and writers both shrug the poison off.
        let (_, view) = slot.load();
        assert_eq!(view.expect("still published").epochs(), 1);
        slot.publish(dummy_view("s", 2));
        let mut reader = ViewReader::new();
        assert_eq!(reader.current(&slot).expect("published").epochs(), 2);
    }

    #[test]
    fn registry_resolves_names_and_default() {
        let reg = ViewRegistry::new();
        assert!(reg.resolve(None).is_none());
        assert!(reg.resolve(Some("a")).is_none());
        let a = reg.slot("a");
        a.publish(dummy_view("a", 3));
        // Named lookup finds the same slot object.
        let resolved = reg.resolve(Some("a")).expect("slot exists");
        assert_eq!(resolved.version(), a.version());
        // Unaddressed queries need a default.
        assert!(reg.resolve(None).is_none());
        reg.set_default(Some("a"));
        assert!(reg.resolve(None).is_some());
        assert!(reg.resolve(Some("ghost")).is_none());
        assert_eq!(reg.served(), 0);
        reg.note_served("a");
        assert_eq!(reg.served(), 1);
    }
}
