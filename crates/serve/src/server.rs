//! The transport layer: a stream of `dna-io` artifacts in, a stream of
//! `response` artifacts out.
//!
//! The protocol is plain artifact concatenation — the same bytes `dna
//! dump` writes to files can be piped straight into a server. Framing
//! splits on the top-level `end` sentinel (see FORMAT.md "Framing on a
//! stream"); each inbound artifact is dispatched by kind:
//!
//! * **snapshot** → (re)loads the stream-target session;
//! * **trace**    → epochs are ingested incrementally into the
//!   stream-target session;
//! * **query**    → answered against its named (or default) session.
//!
//! Every inbound artifact produces exactly one outbound `response`, so
//! a client can correlate by position. Malformed input is answered with
//! `error` responses — the server never dies on bad bytes.
//!
//! Threading: the dataflow engine is deliberately thread-local (`Rc`
//! internals), so the [`SessionManager`] never crosses threads. The
//! single-stream loop ([`serve_stream`]) runs wherever the manager
//! lives; multi-client service (stdin tail + unix-socket queries) runs
//! a **broker**: pump threads own the sockets and exchange raw artifact
//! text — plain `Send` strings — with the one engine thread over
//! channels ([`run_broker`] / [`pump_stream`] / [`accept_loop`]).

use crate::session::SessionManager;
use dna_io::{parse_query, parse_snapshot, parse_trace, write_response, Artifact, Response};
use std::io::{self, BufRead, Write};
use std::sync::mpsc;

/// Counters of one serve loop, reported when its input ends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Artifacts processed (including malformed ones).
    pub artifacts: u64,
    /// Queries answered.
    pub queries: u64,
    /// Change epochs ingested.
    pub epochs: u64,
    /// Error responses produced.
    pub errors: u64,
    /// Session engine threads that panicked and were fenced off (the
    /// session answers errors from then on; the server lives).
    pub failures: u64,
}

impl ServeSummary {
    /// Adds another loop's counters (used to sum per-session-thread
    /// summaries at router shutdown).
    pub fn merge(&mut self, other: &ServeSummary) {
        self.artifacts += other.artifacts;
        self.queries += other.queries;
        self.epochs += other.epochs;
        self.errors += other.errors;
        self.failures += other.failures;
    }

    /// Counts a telemetry (`metrics`/`trace`) query answered directly
    /// from the process-global registry: the reply is a metrics/spans
    /// artifact, not a `response`, so [`ServeSummary::count`] never
    /// sees it.
    pub(crate) fn count_obs(&mut self) {
        self.artifacts += 1;
        self.queries += 1;
    }

    pub(crate) fn count(&mut self, response: &Response, epochs_applied: u64) {
        self.artifacts += 1;
        // Epoch accounting comes from the session layer, not the
        // response kind: a trace failing mid-stream answers `error` yet
        // has applied its earlier epochs, and the summary must say so.
        self.epochs += epochs_applied;
        match response {
            Response::Error(_) => self.errors += 1,
            Response::Ingested { .. } | Response::Loaded { .. } => {}
            _ => self.queries += 1,
        }
    }
}

/// Reads one artifact's text off a stream: lines up to and including the
/// first whose trimmed content is exactly `end`. Returns `None` at end
/// of input (trailing blank/comment lines are not an artifact). Input
/// ending mid-artifact returns the partial text — parsing then reports
/// the truncation as a typed error.
pub fn read_artifact(input: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut buf = String::new();
    let mut line = String::new();
    let mut meaningful = false;
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Ok(if meaningful { Some(buf) } else { None });
        }
        let trimmed = line.trim();
        meaningful |= !(trimmed.is_empty() || trimmed.starts_with(';'));
        buf.push_str(&line);
        if trimmed == "end" {
            return Ok(Some(buf));
        }
    }
}

/// Dispatches one inbound artifact, returning the one response it maps
/// to plus the number of change epochs the artifact applied (nonzero
/// only for traces — including a trace whose response is an error after
/// a mid-stream failure). `stream_session` is the ingest target for
/// snapshot/trace artifacts (queries name their own session); `None`
/// targets the manager's default session.
pub fn handle_artifact(
    mgr: &mut SessionManager,
    stream_session: Option<&str>,
    text: &str,
) -> (Response, u64) {
    let kind = match dna_io::sniff(text) {
        Ok((_, kind)) => kind,
        Err(e) => return (Response::Error(e.to_string()), 0),
    };
    let response = match kind {
        Artifact::Snapshot => match parse_snapshot(text) {
            Ok(snap) => {
                let name = stream_session
                    .or(mgr.default_session())
                    .unwrap_or("main")
                    .to_string();
                mgr.open(&name, snap).unwrap_or_else(Response::Error)
            }
            Err(e) => Response::Error(e.to_string()),
        },
        Artifact::Trace => {
            let start = std::time::Instant::now();
            match parse_trace(text) {
                Ok(trace) => {
                    // The parse already happened; hand its cost to the
                    // session so epoch lifecycle spans start at the wire.
                    let parse_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                    return mgr.ingest_trace_timed(stream_session, &trace, parse_ns);
                }
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Artifact::Query => match parse_query(text) {
            Ok(q) => mgr.answer(&q),
            Err(e) => Response::Error(e.to_string()),
        },
        // An inbound checkpoint artifact resumes its session — the
        // streamed twin of `dna serve --resume` (a streamed artifact
        // has no file, so `ref` snapshots resolve against the server's
        // working directory). The session name comes from the artifact,
        // not the stream binding: a checkpoint *is* a named session.
        Artifact::Checkpoint => match dna_io::parse_checkpoint(text) {
            Ok(ckpt) => match crate::session::resolve_checkpoint_snapshot(&ckpt, None) {
                Ok(snapshot) => mgr
                    .resume_checkpoint(&ckpt, snapshot)
                    .unwrap_or_else(Response::Error),
                Err(e) => Response::Error(e),
            },
            Err(e) => Response::Error(e.to_string()),
        },
        Artifact::Report
        | Artifact::Response
        | Artifact::Metrics
        | Artifact::Spans
        | Artifact::History
        | Artifact::Health
        | Artifact::Notify => Response::Error(format!("cannot serve a {kind} artifact")),
    };
    (response, 0)
}

/// Answers the standing-query commands (`subscribe` / `unsubscribe` /
/// `notifications`) whose replies are `notify` artifacts, not
/// `response`s — the transports dispatch these before
/// [`handle_artifact`], mirroring how telemetry queries are intercepted
/// (see [`crate::obs::obs_reply`]). `None` for anything else, including
/// malformed queries (the normal path owns that error story).
pub fn subscription_reply(mgr: &SessionManager, text: &str) -> Option<String> {
    let (_, kind) = dna_io::sniff(text).ok()?;
    if kind != Artifact::Query {
        return None;
    }
    let q = parse_query(text).ok()?;
    mgr.subscription_reply(&q)
}

/// Runs one serve loop on the manager's own thread: artifacts from
/// `input`, responses to `output`, until end of input.
pub fn serve_stream(
    mgr: &mut SessionManager,
    stream_session: Option<&str>,
    input: &mut impl BufRead,
    output: &mut impl Write,
) -> io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    while let Some(text) = read_artifact(input)? {
        let started = std::time::Instant::now();
        // Telemetry queries are answered at the transport, straight
        // from the process-global registry — the engine never blocks a
        // scrape (see [`crate::obs`]).
        if let Some(reply) = crate::obs::obs_reply(&text) {
            summary.count_obs();
            crate::obs::record_query_span("pipe", &text, started.elapsed());
            output.write_all(reply.as_bytes())?;
            output.flush()?;
            continue;
        }
        // Standing-query commands answer with notify artifacts, so they
        // are dispatched ahead of the one-response-per-artifact path.
        if let Some(reply) = subscription_reply(mgr, &text) {
            summary.count_obs();
            crate::obs::record_query_span("pipe", &text, started.elapsed());
            output.write_all(reply.as_bytes())?;
            output.flush()?;
            continue;
        }
        let (response, epochs_applied) = handle_artifact(mgr, stream_session, &text);
        crate::obs::record_query_span("pipe", &text, started.elapsed());
        summary.count(&response, epochs_applied);
        output.write_all(write_response(&response).as_bytes())?;
        // One response per artifact is the unit of interaction: flush so
        // pipe/socket clients are never left waiting on a full buffer.
        output.flush()?;
    }
    Ok(summary)
}

/// One brokered request: an inbound artifact's text and the channel its
/// serialized response goes back on. Both sides are plain strings, so
/// requests cross threads even though the engine cannot.
pub struct Request {
    /// Raw artifact text as framed off the wire.
    pub text: String,
    /// Stream-target session for snapshot/trace artifacts (queries name
    /// their own). `None` targets the server's default session. Set by
    /// in-process pumps that are bound to a session (e.g. `--follow`);
    /// wire clients always pump with `None`.
    pub session: Option<String>,
    /// Where the serialized response artifact is sent.
    pub reply: mpsc::Sender<String>,
}

/// The engine side of the broker: processes requests in arrival order
/// until every [`Request`] sender is dropped. Ingest and queries from
/// different clients interleave here at artifact granularity — a query
/// never observes a half-applied epoch. Returns the cross-client
/// summary. (The single-engine-thread sibling of
/// `Router::run`, which gives every session its own
/// engine thread instead.)
pub fn run_broker(mgr: &mut SessionManager, requests: mpsc::Receiver<Request>) -> ServeSummary {
    let mut summary = ServeSummary::default();
    for req in requests {
        let started = std::time::Instant::now();
        if let Some(reply) = crate::obs::obs_reply(&req.text) {
            summary.count_obs();
            crate::obs::record_query_span("broker", &req.text, started.elapsed());
            let _ = req.reply.send(reply);
            continue;
        }
        if let Some(reply) = subscription_reply(mgr, &req.text) {
            summary.count_obs();
            crate::obs::record_query_span("broker", &req.text, started.elapsed());
            let _ = req.reply.send(reply);
            continue;
        }
        let (response, epochs_applied) = handle_artifact(mgr, req.session.as_deref(), &req.text);
        crate::obs::record_query_span("broker", &req.text, started.elapsed());
        summary.count(&response, epochs_applied);
        // A client that hung up before its answer is not an engine
        // problem; drop the response.
        let _ = req.reply.send(write_response(&response));
    }
    summary
}

/// The client side of the broker: frames artifacts off `input`, ships
/// them to the engine thread, writes the replies to `output` in order.
/// Returns the number of artifacts pumped (end of input, broker gone,
/// or client gone all end the pump).
pub fn pump_stream(
    requests: &mpsc::Sender<Request>,
    input: &mut impl BufRead,
    output: &mut impl Write,
) -> io::Result<u64> {
    pump_stream_as(requests, None, input, output)
}

/// [`pump_stream`] with the stream's snapshot/trace ingest bound to a
/// session (the brokered twin of [`serve_stream`]'s `stream_session`;
/// queries still name their own). For in-process pumps — wire clients
/// have no session side-channel and always pump unbound.
pub fn pump_stream_as(
    requests: &mpsc::Sender<Request>,
    session: Option<&str>,
    input: &mut impl BufRead,
    output: &mut impl Write,
) -> io::Result<u64> {
    let mut pumped = 0;
    while let Some(text) = read_artifact(input)? {
        let (reply_tx, reply_rx) = mpsc::channel();
        if requests
            .send(Request {
                text,
                session: session.map(str::to_string),
                reply: reply_tx,
            })
            .is_err()
        {
            break; // broker shut down
        }
        let Ok(response) = reply_rx.recv() else {
            break; // broker shut down mid-request
        };
        pumped += 1;
        output.write_all(response.as_bytes())?;
        output.flush()?;
    }
    Ok(pumped)
}

/// How many shipped epochs a follower lets run ahead of their
/// acknowledgements: deep enough that a burst presents the engine a
/// real backlog (the `--coalesce` drain caps merges well below this),
/// bounded so a runaway writer cannot queue unbounded epochs in the
/// broker.
const FOLLOW_WINDOW: usize = 32;

/// File-tail ingest (`dna serve --follow`): follows a growing trace
/// file, shipping each change epoch to the engine as a single-epoch
/// trace artifact the moment the epoch completes (see
/// [`dna_io::TraceTail`] — an epoch closes when the next `epoch` line
/// or the final `end` sentinel is written). Snapshot/trace ingest is
/// bound to `session` (`None` = the server's default session). Polls
/// the file every `poll`; returns the number of epochs shipped once
/// the trace's `end` sentinel arrives, or an error if the file turns
/// malformed (a follower cannot resynchronize past bad bytes) or the
/// engine goes away. Error *responses* (e.g. an epoch failing to
/// apply) are reported to stderr and do not stop the follow — later
/// epochs of a live stream may still apply.
///
/// Shipping is **pipelined**: up to `FOLLOW_WINDOW` epochs may be in
/// flight before the follower stops to collect acknowledgements, so a
/// burst appended to the tailed file reaches the engine back-to-back
/// instead of one round-trip at a time. That is what lets a fast
/// writer build a real ingest backlog — which `--coalesce` then drains
/// as merged commits — while the window bound keeps a runaway writer
/// from queueing unbounded epochs in the broker. Acknowledgements are
/// always fully drained before the follower sleeps at a quiet EOF and
/// before it returns, so error reporting lags a stalled stream by at
/// most one poll, never indefinitely.
///
/// The follow survives **truncation and rotation** of the tailed file:
/// when, at EOF, the path's on-disk size has shrunk below what was
/// read or (on unix) the path's inode changed, the follower reopens
/// the path and frames the replacement as a fresh trace artifact from
/// its first byte (see `tail_rotated` / [`dna_io::TraceTail::rotate`]).
/// Epochs already shipped from the old file stand; epochs buffered but
/// never completed before the rotation are discarded with it.
pub fn follow_trace(
    requests: &mpsc::Sender<Request>,
    session: Option<&str>,
    path: &std::path::Path,
    poll: std::time::Duration,
) -> io::Result<u64> {
    use std::io::Read;
    let mut file = std::fs::File::open(path)?;
    let mut tail = dna_io::TraceTail::new();
    let mut carry: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut shipped = 0u64;
    // In-flight acknowledgements, oldest first (see the pipelining
    // note in the doc comment).
    let mut pending: std::collections::VecDeque<mpsc::Receiver<String>> =
        std::collections::VecDeque::new();
    let engine_gone = || io::Error::new(io::ErrorKind::BrokenPipe, "engine shut down mid-follow");
    let drain_one =
        |pending: &mut std::collections::VecDeque<mpsc::Receiver<String>>| -> io::Result<()> {
            let Some(rx) = pending.pop_front() else {
                return Ok(());
            };
            let response = rx.recv().map_err(|_| engine_gone())?;
            if let Ok(Response::Error(msg)) = dna_io::parse_response(&response) {
                // An epoch failing to apply outranks --quiet.
                dna_obs::log::announce(&format!("dna serve: follow {}: {msg}", path.display()));
            }
            Ok(())
        };
    // Bytes read from the currently-open file: a path whose on-disk
    // size drops below this was truncated (or replaced by a shorter
    // file) — the shrink half of rotation detection.
    let mut consumed = 0u64;
    loop {
        let n = file.read(&mut chunk)?;
        consumed += n as u64;
        let bad_trace = |e: dna_io::IoError| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        };
        let epochs = if n == 0 {
            // A final `end` sentinel without a trailing newline is a
            // complete trace (the batch parser accepts it); anything
            // else pending just waits for the writer.
            let flushed = tail.finish_eof().map_err(bad_trace)?;
            if flushed.is_empty() {
                // Quiet moment: collect every outstanding ack before
                // returning or sleeping, so errors surface promptly
                // and a finished follow leaves nothing in flight.
                while !pending.is_empty() {
                    drain_one(&mut pending)?;
                }
                if tail.finished() {
                    return Ok(shipped);
                }
                // At EOF with nothing new: the quiet moment to check
                // whether the tailed *path* still names the file we
                // hold open. A shrink or an inode change means the
                // writer rotated it — reopen and frame the replacement
                // as a fresh trace artifact from its first byte
                // (epochs already shipped from the old file stand).
                if tail_rotated(path, &file, consumed)? {
                    match std::fs::File::open(path) {
                        Ok(f) => {
                            dna_obs::log::info(&format!(
                                "dna serve: follow {}: file rotated; following the new file",
                                path.display()
                            ));
                            file = f;
                            tail.rotate();
                            carry.clear();
                            consumed = 0;
                        }
                        // The replacement vanished between the check
                        // and the open (rotation race); the next poll
                        // re-checks.
                        Err(e) if e.kind() == io::ErrorKind::NotFound => {
                            std::thread::sleep(poll);
                        }
                        Err(e) => return Err(e),
                    }
                    continue;
                }
                std::thread::sleep(poll);
                continue;
            }
            flushed
        } else {
            carry.extend_from_slice(&chunk[..n]);
            // Feed only the valid UTF-8 prefix; a multi-byte character
            // split across reads waits in `carry` for its tail.
            let valid = match std::str::from_utf8(&carry) {
                Ok(s) => s.len(),
                Err(e) if e.error_len().is_none() => e.valid_up_to(),
                Err(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: invalid UTF-8: {e}", path.display()),
                    ))
                }
            };
            let text = std::str::from_utf8(&carry[..valid])
                .expect("validated prefix")
                .to_owned();
            carry.drain(..valid);
            tail.feed(&text).map_err(bad_trace)?
        };
        for epoch in epochs {
            let artifact = dna_io::write_trace(&dna_io::Trace {
                epochs: vec![epoch],
            });
            let (reply_tx, reply_rx) = mpsc::channel();
            let sent = requests.send(Request {
                text: artifact,
                session: session.map(str::to_string),
                reply: reply_tx,
            });
            if sent.is_err() {
                return Err(engine_gone());
            }
            pending.push_back(reply_rx);
            shipped += 1;
            while pending.len() >= FOLLOW_WINDOW {
                drain_one(&mut pending)?;
            }
        }
    }
}

/// Whether the tailed `path` no longer names the file the follower
/// holds open: either the on-disk size dropped below what was already
/// read (truncate-in-place, or a shorter replacement at the same
/// path), or — on unix — the path resolves to a different inode
/// (rename-style rotation, `logrotate`'s default). A path that is
/// momentarily *gone* is not yet a rotation: the writer may be mid
/// rename, so the follower keeps polling until the replacement lands.
fn tail_rotated(path: &std::path::Path, file: &std::fs::File, consumed: u64) -> io::Result<bool> {
    let on_disk = match std::fs::metadata(path) {
        Ok(m) => m,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e),
    };
    if on_disk.len() < consumed {
        return Ok(true);
    }
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt;
        let open = file.metadata()?;
        if (open.dev(), open.ino()) != (on_disk.dev(), on_disk.ino()) {
            return Ok(true);
        }
    }
    #[cfg(not(unix))]
    let _ = file;
    Ok(false)
}

/// Accepts unix-socket connections forever, pumping each on its own
/// thread into the broker. Holds a [`Request`] sender for as long as it
/// runs, keeping the broker alive after stdin ends. Accept errors
/// (EINTR, fd exhaustion under load, ...) are transient for a daemon:
/// they are reported to stderr and the loop keeps accepting — one bad
/// accept must not leave a healthy-looking server deaf to new clients.
#[cfg(unix)]
pub fn accept_loop(
    requests: mpsc::Sender<Request>,
    listener: std::os::unix::net::UnixListener,
) -> io::Result<()> {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                dna_obs::log::announce(&format!("dna serve: accept failed (retrying): {e}"));
                std::thread::sleep(std::time::Duration::from_millis(50));
                continue;
            }
        };
        let requests = requests.clone();
        std::thread::spawn(move || {
            let mut reader = io::BufReader::new(&stream);
            let mut writer = io::BufWriter::new(&stream);
            // A vanished client is its own problem; the server lives on.
            let _ = pump_stream(&requests, &mut reader, &mut writer);
        });
    }
}

/// Sends one query artifact over a unix socket and reads back the one
/// response artifact (client side of [`accept_loop`]).
#[cfg(unix)]
pub fn query_socket(path: &std::path::Path, query_text: &str) -> io::Result<String> {
    use std::os::unix::net::UnixStream;
    let stream = UnixStream::connect(path)?;
    (&stream).write_all(query_text.as_bytes())?;
    (&stream).flush()?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut reader = io::BufReader::new(&stream);
    Ok(read_artifact(&mut reader)?.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_io::{parse_response, write_query, write_snapshot, write_trace, Query, QueryKind};

    fn one_router_snapshot() -> net_model::Snapshot {
        net_model::NetBuilder::new()
            .router("r1")
            .iface("r1", "lan", "192.168.1.1/24")
            .ospf_passive("r1", "lan", 1)
            .build()
    }

    #[test]
    fn framing_splits_concatenated_artifacts() {
        let a = "dna-io v1 trace\nepoch\nend\n";
        let b = "; comment\n\ndna-io v5 query\n  stats\nend\n";
        let mut input = io::Cursor::new(format!("{a}{b}\n; trailing\n").into_bytes());
        let first = read_artifact(&mut input).unwrap().unwrap();
        assert_eq!(first, a);
        let second = read_artifact(&mut input).unwrap().unwrap();
        assert_eq!(second, b);
        assert_eq!(read_artifact(&mut input).unwrap(), None);
    }

    #[test]
    fn truncated_stream_artifact_is_a_typed_error_response() {
        let mut input = io::Cursor::new(b"dna-io v5 query\n  stats\n".to_vec());
        let text = read_artifact(&mut input).unwrap().unwrap();
        let mut mgr = SessionManager::new(Default::default());
        let (r, epochs) = handle_artifact(&mut mgr, None, &text);
        assert!(matches!(r, Response::Error(_)));
        assert_eq!(epochs, 0);
    }

    #[test]
    fn serve_stream_answers_one_response_per_artifact() {
        let stream = format!(
            "{}{}{}",
            write_snapshot(&one_router_snapshot()),
            write_trace(&dna_io::Trace::default()),
            write_query(&Query {
                session: None,
                kind: QueryKind::Sessions,
            })
        );
        let mut mgr = SessionManager::new(Default::default());
        let mut out = Vec::new();
        let summary = serve_stream(
            &mut mgr,
            None,
            &mut io::Cursor::new(stream.into_bytes()),
            &mut out,
        )
        .unwrap();
        assert_eq!(summary.artifacts, 3);
        assert_eq!(summary.errors, 0);
        assert_eq!(summary.queries, 1);
        let out = String::from_utf8(out).unwrap();
        let mut cursor = io::Cursor::new(out.into_bytes());
        let loaded = parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap();
        assert!(matches!(loaded, Response::Loaded { devices: 1, .. }));
        let ingested = parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap();
        assert!(matches!(ingested, Response::Ingested { epochs: 0, .. }));
        let sessions = parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap();
        match sessions {
            Response::Sessions(list) => {
                assert_eq!(list.len(), 1);
                assert_eq!(list[0].name, "main");
            }
            other => panic!("expected sessions, got {other:?}"),
        }
    }

    #[test]
    fn broker_serves_requests_from_other_threads() {
        let (tx, rx) = mpsc::channel();
        let client = std::thread::spawn(move || {
            let stream = format!(
                "{}{}",
                write_snapshot(&one_router_snapshot()),
                write_query(&Query {
                    session: Some("main".into()),
                    kind: QueryKind::Stats,
                })
            );
            let mut out = Vec::new();
            let pumped =
                pump_stream(&tx, &mut io::Cursor::new(stream.into_bytes()), &mut out).unwrap();
            (pumped, String::from_utf8(out).unwrap())
        });
        // The engine never leaves this thread; only strings cross.
        let mut mgr = SessionManager::new(Default::default());
        let summary = run_broker(&mut mgr, rx);
        let (pumped, out) = client.join().unwrap();
        assert_eq!(pumped, 2);
        assert_eq!(summary.artifacts, 2);
        assert_eq!(summary.errors, 0);
        let mut cursor = io::Cursor::new(out.into_bytes());
        let _loaded = read_artifact(&mut cursor).unwrap().unwrap();
        let stats = parse_response(&read_artifact(&mut cursor).unwrap().unwrap()).unwrap();
        match stats {
            Response::Stats(s) => {
                assert_eq!(s.session, "main");
                assert_eq!(s.epochs, 0);
                assert_eq!(s.devices, 1);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }
}
