//! The telemetry query surface: one serializer for every answer path.
//!
//! `metrics` and `trace` are **server-level** queries like `sessions` —
//! they read the process-global [`dna_obs`] registry and span ring, not
//! any one session's engine state, so every transport answers them
//! without an engine-thread round trip: the single-stream loop
//! ([`crate::serve_stream`]), the broker ([`crate::run_broker`]), the
//! router, and the TCP connection threads ([`crate::net`]) all call
//! [`obs_reply`] / [`obs_reply_for`] before normal dispatch. Because
//! every path funnels through this one module, the engine path and the
//! view path produce byte-identical artifacts for the same registry
//! state.
//!
//! A `session` line on the query narrows the scrape to that session's
//! labeled series (process-wide series are always kept) — an unknown
//! name simply yields no labeled series, never an error, matching
//! Prometheus-style scrape semantics where absence is data.

use dna_io::{
    write_metrics, write_spans, Artifact, HistogramRow, MetricsReport, Query, QueryKind, SeriesRow,
    SpanReport, SpanRow,
};
use dna_obs::{EpochSpan, MetricsSnapshot, BUCKET_BOUNDS_US};

/// Serializes the process-global registry and span ring as the reply
/// to an already-parsed telemetry query; `None` for every other kind
/// (the caller dispatches those normally).
pub fn obs_reply_for(q: &Query) -> Option<String> {
    match &q.kind {
        QueryKind::Metrics => {
            let snap = dna_obs::global().snapshot(q.session.as_deref());
            Some(write_metrics(&metrics_report(&snap)))
        }
        QueryKind::TraceSpans { last } => {
            let spans = dna_obs::spans().snapshot(q.session.as_deref(), *last);
            Some(write_spans(&spans_report(&spans)))
        }
        _ => None,
    }
}

/// Sniffs raw artifact text and answers it if it is a telemetry query;
/// `None` otherwise (including malformed text — the normal dispatch
/// path owns every error story, so wire behavior is unchanged for
/// anything this module does not answer).
pub fn obs_reply(text: &str) -> Option<String> {
    let (_, kind) = dna_io::sniff(text).ok()?;
    if kind != Artifact::Query {
        return None;
    }
    obs_reply_for(&dna_io::parse_query(text).ok()?)
}

/// Converts a registry scrape into the canonical wire report,
/// extracting the p50/p95/p99 summary from each histogram's buckets.
pub fn metrics_report(snap: &MetricsSnapshot) -> MetricsReport {
    let series = |s: &dna_obs::SeriesValue| SeriesRow {
        name: s.name.clone(),
        session: s.session.clone(),
        value: s.value,
    };
    MetricsReport {
        counters: snap.counters.iter().map(series).collect(),
        gauges: snap.gauges.iter().map(series).collect(),
        histograms: snap
            .histograms
            .iter()
            .map(|h| {
                let s = &h.snapshot;
                let mut buckets: Vec<(Option<u64>, u64)> = BUCKET_BOUNDS_US
                    .iter()
                    .zip(s.buckets.iter())
                    .map(|(&bound, &n)| (Some(bound), n))
                    .collect();
                buckets.push((None, s.buckets[s.buckets.len() - 1]));
                HistogramRow {
                    name: h.name.clone(),
                    session: h.session.clone(),
                    count: s.count,
                    sum_ns: s.sum_ns,
                    p50_us: s.quantile_us(0.50),
                    p95_us: s.quantile_us(0.95),
                    p99_us: s.quantile_us(0.99),
                    buckets,
                }
            })
            .collect(),
    }
}

/// Converts a span-ring snapshot into the canonical wire report.
pub fn spans_report(spans: &[EpochSpan]) -> SpanReport {
    SpanReport {
        spans: spans
            .iter()
            .map(|s| SpanRow {
                session: s.session.clone(),
                epoch: s.epoch,
                parse_ns: s.parse_ns,
                cp_ns: s.cp_ns,
                dp_ns: s.dp_ns,
                publish_ns: s.publish_ns,
                total_ns: s.total_ns,
                changes: s.changes,
                flows: s.flows,
                label: s.label.clone(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_obs::Registry;
    use std::time::Duration;

    #[test]
    fn registry_scrape_serializes_canonically() {
        let r = Registry::new();
        r.counter_for("epochs_applied", "a").add(4);
        r.counter("tcp_connections").inc();
        r.gauge_for("view_served", "a").set(2);
        r.histogram_for("epoch_apply_us", "a")
            .observe(Duration::from_micros(700));
        let report = metrics_report(&r.snapshot(None));
        let text = write_metrics(&report);
        let back = dna_io::parse_metrics(&text).expect("round-trips");
        assert_eq!(back, report);
        assert_eq!(write_metrics(&back), text, "canonical");
        let h = &report.histograms[0];
        assert_eq!(h.count, 1);
        assert_eq!((h.p50_us, h.p95_us, h.p99_us), (1_000, 1_000, 1_000));
        assert_eq!(h.buckets.len(), dna_obs::BUCKETS);
        assert_eq!(h.buckets.last().unwrap().0, None, "overflow bucket last");
    }

    #[test]
    fn spans_convert_field_for_field() {
        let spans = vec![EpochSpan {
            session: "a".into(),
            epoch: 3,
            label: Some("link-failure".into()),
            parse_ns: 10,
            cp_ns: 20,
            dp_ns: 30,
            publish_ns: 40,
            total_ns: 100,
            changes: 2,
            flows: 5,
        }];
        let report = spans_report(&spans);
        let text = write_spans(&report);
        assert_eq!(dna_io::parse_spans(&text).unwrap(), report);
        assert_eq!(report.spans[0].epoch, 3);
        assert_eq!(report.spans[0].label.as_deref(), Some("link-failure"));
    }

    #[test]
    fn non_telemetry_artifacts_pass_through() {
        assert!(obs_reply("garbage").is_none());
        assert!(obs_reply("dna-io v1 trace\nend\n").is_none());
        let stats = dna_io::write_query(&Query {
            session: None,
            kind: QueryKind::Stats,
        });
        assert!(obs_reply(&stats).is_none());
        let metrics = dna_io::write_query(&Query {
            session: None,
            kind: QueryKind::Metrics,
        });
        let reply = obs_reply(&metrics).expect("telemetry query answered");
        assert!(dna_io::parse_metrics(&reply).is_ok(), "{reply}");
    }
}
